//! # flashcoop-repro
//!
//! Umbrella crate for the FlashCoop (ICPP 2010) reproduction workspace. It
//! re-exports the member crates so the examples and integration tests have a
//! single import surface:
//!
//! * [`fc_simkit`] — deterministic simulation substrate;
//! * [`fc_ssd`] — NAND flash / FTL / GC simulator;
//! * [`fc_trace`] — workloads (synthetic Table I generators + SPC parser);
//! * [`flashcoop`] — the cooperative buffer system itself;
//! * [`fc_cluster`] — the real threaded pair (wire protocol, TCP, recovery).
//!
//! See the workspace `README.md` for a tour and `DESIGN.md` for the
//! paper-to-code map.

pub use fc_cluster;
pub use fc_simkit;
pub use fc_ssd;
pub use fc_trace;
pub use flashcoop;
