//! Offline shim for `serde`: marker traits with blanket impls plus no-op
//! derive macros. The workspace only uses serde as derive bounds (it never
//! actually serialises — `serde_json` is deliberately not a dependency), so
//! "every type trivially satisfies the traits" is a faithful stand-in.

pub use serde_derive::{Deserialize, Serialize};

/// Marker replacement for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker replacement for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

#[cfg(test)]
mod tests {
    #[derive(crate::Serialize, crate::Deserialize)]
    struct Probe {
        _x: u64,
    }

    #[test]
    fn bounds_are_satisfied() {
        fn assert_serde<T: crate::Serialize + for<'de> crate::Deserialize<'de>>(_: &T) {}
        assert_serde(&Probe { _x: 1 });
        assert_serde(&42u32);
    }
}
