//! Offline shim for `parking_lot`: a [`Mutex`] and [`RwLock`] whose lock
//! methods never return a poison error, backed by their `std::sync`
//! counterparts. Only the API the workspace uses is provided.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquire the lock, ignoring poisoning (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquire a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire the exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(3);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 6);
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 4);
        assert_eq!(l.into_inner(), 4);
    }
}
