//! Offline shim for `parking_lot`: a [`Mutex`] whose `lock()` never returns
//! a poison error, backed by `std::sync::Mutex`. Only the API the workspace
//! uses is provided.

use std::sync::MutexGuard;

/// Non-poisoning mutex.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquire the lock, ignoring poisoning (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
