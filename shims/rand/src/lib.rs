//! Offline shim for `rand 0.8`: exactly the subset the workspace uses —
//! `rngs::SmallRng` (xoshiro256++ seeded via SplitMix64), `SeedableRng::
//! seed_from_u64`, and `Rng::{gen, gen_range}` over the primitive types the
//! simulators draw. Deterministic across runs and platforms.

use std::ops::{Range, RangeInclusive};

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling interface.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of a primitive type (uniform over its natural domain;
    /// `f64`/`f32` are uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self.next_u64(), || unreachable!())
    }

    /// Sample uniformly from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Types `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Derive a value from 64 random bits (`more` supplies further words if
    /// a wider type ever needs them).
    fn sample(bits: u64, more: impl FnMut() -> u64) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample(bits: u64, _more: impl FnMut() -> u64) -> Self {
                bits as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample(bits: u64, _more: impl FnMut() -> u64) -> Self {
        bits & 1 == 1
    }
}

impl Standard for f64 {
    fn sample(bits: u64, _more: impl FnMut() -> u64) -> Self {
        // 53 uniform mantissa bits, exactly the `rand` Standard distribution.
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample(bits: u64, _more: impl FnMut() -> u64) -> Self {
        (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Uniform sample from the range. Panics on an empty range.
    fn sample_from(self, rng: &mut impl Rng) -> T;
}

fn uniform_below(rng: &mut impl Rng, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Multiply-shift rejection (Lemire): unbiased and cheap.
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let lo = m as u64;
        if lo >= span {
            return (m >> 64) as u64;
        }
        let threshold = span.wrapping_neg() % span;
        if lo >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut impl Rng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut impl Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut impl Rng) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        let u = f64::sample(rng.next_u64(), || 0);
        self.start + u * (self.end - self.start)
    }
}

/// RNG implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ — small, fast, and plenty for simulation workloads.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u64 = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(5u64..=5);
            assert_eq!(y, 5);
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let g = r.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&g));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut r = SmallRng::seed_from_u64(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
