//! Offline shim for `proptest 1`: the strategy combinators and macros this
//! workspace's property tests use, driven by a deterministic per-test seed.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its case index and base seed;
//!   re-running reproduces it exactly (generation is seeded by FNV-1a of the
//!   test name, overridable with the `PROPTEST_SEED` env var).
//! * Strategies generate values directly from an RNG — there is no value
//!   tree. `prop_map`, ranges, tuples, `Just`, `prop_oneof!`, and
//!   `collection::vec` cover the workspace's usage.

use std::ops::Range;

// ---------------------------------------------------------------------------
// RNG (xoshiro256++, SplitMix64-seeded — self-contained, deterministic)
// ---------------------------------------------------------------------------

/// Deterministic RNG driving value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeded construction.
    pub fn new(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        out
    }

    /// Uniform in `[0, n)`; `n > 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        loop {
            let m = (self.next_u64() as u128) * (n as u128);
            let lo = m as u64;
            if lo >= n || lo >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Base seed for a named test: `PROPTEST_SEED` env override, else FNV-1a of
/// the test name — fixed across runs, distinct across tests.
pub fn base_seed(test_name: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(v) = s.trim().parse::<u64>() {
            return v;
        }
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------------------
// Core strategy trait
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).gen_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).gen_value(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Numeric range strategies.
macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                if span == 0 {
                    // Full-width range such as 0..u64::MAX wrapped to 0 is
                    // impossible here (start < end), span 0 means 2^64.
                    return rng.next_u64() as $t;
                }
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn gen_value(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit() as f32) * (self.end - self.start)
    }
}

// Tuple strategies up to arity 8 (the widest used in the workspace).
macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Sample uniformly over the type's natural domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit()
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---------------------------------------------------------------------------
// Collections / bool modules
// ---------------------------------------------------------------------------

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// `Vec` strategy with a uniformly chosen length.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding both booleans.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct AnyBool;

    /// Uniform boolean strategy.
    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = core::primitive::bool;
        fn gen_value(&self, rng: &mut TestRng) -> core::primitive::bool {
            rng.next_u64() & 1 == 1
        }
    }
}

// ---------------------------------------------------------------------------
// prop_oneof!
// ---------------------------------------------------------------------------

/// Box a strategy for use in heterogeneous unions (type-inference helper
/// for [`prop_oneof!`]).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Weighted union of boxed strategies sharing one value type.
pub struct OneOf<V> {
    arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
    total: u64,
}

impl<V> OneOf<V> {
    /// Build from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs positive total weight");
        OneOf { arms, total }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn gen_value(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.gen_value(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weight bookkeeping")
    }
}

/// Choose among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(::std::vec![
            $(($weight as u32, $crate::boxed($strategy)),)+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strategy),+]
    };
}

// ---------------------------------------------------------------------------
// Config, errors, runner macros
// ---------------------------------------------------------------------------

/// Per-block configuration (`cases` is the only knob the shim honours).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property within one case.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::TestCaseError(format!($($fmt)*)));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Define seeded property tests. Each contained `#[test] fn name(pat in
/// strategy, …) { body }` runs `cases` times with freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let seed = $crate::base_seed(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut __rng = $crate::TestRng::new(
                    seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $pat = $crate::Strategy::gen_value(&($strategy), &mut __rng);)+
                let outcome: Result<(), $crate::TestCaseError> = (|| {
                    $body
                    Ok(())
                })();
                if let Err(e) = outcome {
                    panic!(
                        "proptest '{}' failed at case {}/{} (base seed {}):\n{}",
                        stringify!($name), case, config.cases, seed, e
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// What `use proptest::prelude::*` brings in.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };

    /// Namespaced strategy modules (`prop::collection::vec`, `prop::bool::ANY`).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_generation() {
        let s = prop::collection::vec(0u64..100, 1..20);
        let mut a = crate::TestRng::new(9);
        let mut b = crate::TestRng::new(9);
        assert_eq!(s.gen_value(&mut a), s.gen_value(&mut b));
    }

    #[test]
    fn ranges_and_tuples_in_domain() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let (x, y, z) = (1u32..5, -2i64..3, 0.5f64..0.75).gen_value(&mut rng);
            assert!((1..5).contains(&x));
            assert!((-2..3).contains(&y));
            assert!((0.5..0.75).contains(&z));
        }
    }

    #[test]
    fn oneof_respects_weights_roughly() {
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let mut rng = crate::TestRng::new(5);
        let trues = (0..10_000).filter(|_| s.gen_value(&mut rng)).count();
        assert!((8500..9500).contains(&trues), "trues {trues}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn macro_self_test(v in prop::collection::vec(any::<u8>(), 0..16), b in prop::bool::ANY) {
            prop_assert!(v.len() < 16);
            prop_assert_eq!(b, b);
        }
    }
}
