//! Offline shim for `crossbeam 0.8`: an MPMC channel with the semantics the
//! cluster transports rely on — cloneable `Sender`/`Receiver` that are both
//! `Sync`, `recv_timeout`, and disconnect detection when either side is
//! fully dropped. Backed by `Mutex<VecDeque>` + `Condvar`; throughput is
//! plenty for the message rates involved.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Sending half; cloneable, shared across threads.
    pub struct Sender<T>(Arc<Chan<T>>);

    /// Receiving half; cloneable, shared across threads.
    pub struct Receiver<T>(Arc<Chan<T>>);

    /// The error returned by [`Sender::send`] when no receiver remains.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Errors from [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    /// Error from [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(chan.clone()), Receiver(chan))
    }

    /// Create a "bounded" channel. The shim does not enforce the capacity
    /// (the workspace only uses `bounded(1)` as a one-shot mailbox, where
    /// overflow cannot occur), so sends never block.
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.0.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(value);
            drop(q);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Wait up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .0
                    .ready
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        }

        /// Block until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.0.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking poll.
        pub fn try_recv(&self) -> Result<T, RecvTimeoutError> {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.0.senders.load(Ordering::SeqCst) == 0 {
                Err(RecvTimeoutError::Disconnected)
            } else {
                Err(RecvTimeoutError::Timeout)
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::SeqCst);
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_in_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(50)), Ok(1));
        assert_eq!(rx.recv_timeout(Duration::from_millis(50)), Ok(2));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn disconnect_detected_both_ways() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());

        let (tx, rx) = unbounded::<u32>();
        tx.send(9).unwrap();
        drop(tx);
        // Queued message still delivered, then disconnect.
        assert_eq!(rx.recv_timeout(Duration::from_millis(50)), Ok(9));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(50)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn wakes_a_blocked_receiver() {
        let (tx, rx) = bounded(1);
        let h = std::thread::spawn(move || rx.recv_timeout(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(30));
        tx.send(42u8).unwrap();
        assert_eq!(h.join().unwrap(), Ok(42));
    }

    #[test]
    fn cross_thread_drop_unblocks() {
        let (tx, rx) = unbounded::<u8>();
        let h = std::thread::spawn(move || rx.recv_timeout(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(30));
        drop(tx);
        assert_eq!(h.join().unwrap(), Err(RecvTimeoutError::Disconnected));
    }
}
