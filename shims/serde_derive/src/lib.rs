//! Offline shim for `serde_derive`: the derives expand to nothing. The
//! companion `serde` shim provides blanket impls of the marker traits, so an
//! empty expansion is all `#[derive(Serialize, Deserialize)]` needs.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
