//! Offline shim for `criterion 0.5`: runs each registered benchmark a small
//! number of iterations and prints mean wall-clock time. No statistics, no
//! HTML reports — just enough to keep the `benches/` targets compiling and
//! producing comparable numbers offline.
//!
//! When invoked with `--test` (as `cargo test` does for `harness = false`
//! bench targets), benchmark bodies are skipped entirely so the test run
//! stays fast.

use std::time::{Duration, Instant};

/// Benchmark driver.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 10,
            test_mode,
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        if !self.test_mode {
            println!("group: {name}");
        }
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let sample_size = self.sample_size;
        let test_mode = self.test_mode;
        run_one(&id.into(), sample_size, test_mode, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Register and immediately run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let n = self.sample_size.unwrap_or(self.criterion.sample_size);
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, n, self.criterion.test_mode, f);
        self
    }

    /// Close the group (formatting hook in real criterion; no-op here).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, test_mode: bool, mut f: F) {
    if test_mode {
        println!("bench {id}: skipped (--test mode)");
        return;
    }
    let mut b = Bencher {
        iters: samples.max(1) as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iters > 0 && b.elapsed > Duration::ZERO {
        let per = b.elapsed / b.iters as u32;
        println!("bench {id}: {per:?}/iter over {} iters", b.iters);
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Prevent the optimiser from deleting a value (re-export convenience).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
