//! Offline shim for `bytes 1`: cheap-to-clone immutable [`Bytes`] (shared
//! `Arc` storage + range), growable [`BytesMut`], and the little-endian
//! [`Buf`]/[`BufMut`] cursor traits — exactly the subset the wire protocol
//! and transports use.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Read cursor over a byte container.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Drop `n` bytes from the front.
    fn advance(&mut self, n: usize);

    /// View of the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(raw)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }
}

/// Append cursor over a growable byte container.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

// ---------------------------------------------------------------------------
// Bytes
// ---------------------------------------------------------------------------

/// Immutable, cheaply clonable byte buffer (shared storage + view range).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wrap a static slice (copied; the shim keeps one storage path).
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Split off the first `n` bytes into their own `Bytes` (shared storage,
    /// no copy); `self` keeps the rest.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to out of range");
        let head = Bytes {
            data: self.data.clone(),
            start: self.start,
            end: self.start + n,
        };
        self.start += n;
        head
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of range");
        self.start += n;
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

// ---------------------------------------------------------------------------
// BytesMut
// ---------------------------------------------------------------------------

/// Growable byte buffer with front consumption.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
    /// Read offset; bytes before it are consumed. Compacted opportunistically.
    head: usize,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
            head: 0,
        }
    }

    /// Length of the unconsumed bytes.
    pub fn len(&self) -> usize {
        self.inner.len() - self.head
    }

    /// True when no unconsumed bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.compact_if_large();
        self.inner.extend_from_slice(src);
    }

    /// Split off the first `n` unconsumed bytes into their own `BytesMut`.
    pub fn split_to(&mut self, n: usize) -> BytesMut {
        assert!(n <= self.len(), "split_to out of range");
        let head = self.inner[self.head..self.head + n].to_vec();
        self.head += n;
        BytesMut {
            inner: head,
            head: 0,
        }
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(mut self) -> Bytes {
        if self.head > 0 {
            self.inner.drain(..self.head);
        }
        Bytes::from(self.inner)
    }

    fn compact_if_large(&mut self) {
        // Keep the dead prefix bounded so long-lived decode buffers (the TCP
        // read loop) do not grow without bound.
        if self.head > 4096 && self.head > self.inner.len() / 2 {
            self.inner.drain(..self.head);
            self.head = 0;
        }
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of range");
        self.head += n;
        self.compact_if_large();
    }

    fn chunk(&self) -> &[u8] {
        &self.inner[self.head..]
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner[self.head..]
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner[self.head..]
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        BytesMut {
            inner: s.to_vec(),
            head: 0,
        }
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        Bytes::from(self[..].to_vec()).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u16_le(0xBEEF);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(u64::MAX - 1);
        b.put_slice(b"xyz");
        assert_eq!(b.len(), 1 + 2 + 4 + 8 + 3);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16_le(), 0xBEEF);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64_le(), u64::MAX - 1);
        assert_eq!(&b[..], b"xyz");
    }

    #[test]
    fn split_and_freeze() {
        let mut b = BytesMut::from(&b"hello world"[..]);
        let head = b.split_to(5);
        assert_eq!(&head[..], b"hello");
        b.advance(1);
        let frozen = b.freeze();
        assert_eq!(&frozen[..], b"world");
        let mut tail = frozen.clone();
        let w = tail.split_to(1);
        assert_eq!(&w[..], b"w");
        assert_eq!(&tail[..], b"orld");
        assert_eq!(frozen.len(), 5);
    }

    #[test]
    fn bytes_equality_and_indexing() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::copy_from_slice(b"abc");
        assert_eq!(a, b);
        assert_eq!(a[0], b'a');
        assert_eq!(a.to_vec(), b"abc".to_vec());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn index_mut_patch_in_place() {
        let mut out = BytesMut::new();
        out.put_u32_le(0);
        out.put_slice(b"body");
        let len = (out.len() - 4) as u32;
        out[0..4].copy_from_slice(&len.to_le_bytes());
        assert_eq!(out.get_u32_le(), 4);
    }

    #[test]
    fn compaction_keeps_contents() {
        let mut b = BytesMut::new();
        for i in 0..1000u32 {
            b.put_u32_le(i);
        }
        for i in 0..900u32 {
            assert_eq!(b.get_u32_le(), i);
        }
        b.extend_from_slice(&[1]);
        for i in 900..1000u32 {
            assert_eq!(b.get_u32_le(), i);
        }
        assert_eq!(b.get_u8(), 1);
    }
}
