//! Compare the three FTLs under identical random-write abuse.
//!
//! A bare-device study of Section II: the same scattered single-page write
//! stream hits a page-level, a BAST, and a FAST FTL; the merge and GC
//! behaviour diverges wildly. Then the same stream filtered through a
//! FlashCoop/LAR buffer shows how sequentialisation rescues the hybrids
//! (Section IV.B.4: "improvement of LAR for BAST is much larger…").
//!
//! ```text
//! cargo run --release --example ftl_comparison
//! ```

use fc_simkit::{DetRng, SimDuration, SimTime};
use fc_ssd::{FtlKind, Lpn, Ssd, SsdConfig};
use flashcoop::{CoopServer, FlashCoopConfig, PolicyKind, RemoteStore, Scheme};

fn main() {
    let writes = 20_000u64;
    println!("Bare device: {writes} random single-page writes on an aged SSD\n");
    println!(
        "{:<12} {:>10} {:>12} {:>10} {:>10} {:>10} {:>8}",
        "FTL", "erases", "page-copies", "switch", "partial", "full", "WA"
    );
    for kind in FtlKind::ALL {
        let mut ssd = Ssd::new(SsdConfig::evaluation(kind));
        let mut rng = DetRng::new(11);
        ssd.precondition(0.9, 0.5, &mut rng);
        let logical = ssd.logical_pages();
        for _ in 0..writes {
            ssd.write(Lpn(rng.below(logical)), 1);
        }
        let m = ssd.ftl_stats();
        println!(
            "{:<12} {:>10} {:>12} {:>10} {:>10} {:>10} {:>8.2}",
            kind.name(),
            ssd.erases_since_reset(),
            m.page_copies,
            m.switch_merges,
            m.partial_merges,
            m.full_merges,
            ssd.stats().write_amplification(),
        );
    }

    println!("\nSame stream through a FlashCoop/LAR buffer (4096 pages):\n");
    println!(
        "{:<12} {:>10} {:>14} {:>16}",
        "FTL", "erases", "mean-write(pg)", "single-page(%)"
    );
    for kind in FtlKind::ALL {
        let mut cfg = FlashCoopConfig::evaluation(kind, PolicyKind::Lar);
        cfg.buffer_pages = 4096;
        let mut server = CoopServer::new(cfg.clone(), Scheme::FlashCoop(PolicyKind::Lar));
        let mut rng = DetRng::new(11);
        server.ssd_mut().precondition(0.9, 0.5, &mut rng);
        let mut remote = RemoteStore::new(cfg.buffer_pages);
        let logical = server.ssd().logical_pages();
        let mut now = SimTime::ZERO;
        for _ in 0..writes {
            // Zipf-ish hot set so the buffer has locality to exploit.
            let lpn = if rng.chance(0.8) {
                rng.below(logical / 16)
            } else {
                rng.below(logical)
            };
            server.handle_write(now, lpn, 1, Some(&mut remote));
            now += SimDuration::from_millis(2);
        }
        let s = server.ssd().stats();
        println!(
            "{:<12} {:>10} {:>14.1} {:>16.1}",
            kind.name(),
            server.ssd().erases_since_reset(),
            s.mean_write_pages(),
            s.write_lengths.frac_single_page() * 100.0,
        );
    }
    println!(
        "\nBAST suffers the most from raw random writes (a full merge per \
         evicted log block) and gains the most from the buffer's reshaping."
    );
}
