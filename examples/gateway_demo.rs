//! Serving clients through the front door.
//!
//! A FlashCoop pair (two nodes over an in-memory peer link, write
//! replication on) put behind an `fc-gateway`, then four concurrent TCP
//! clients push financial-workload traffic at it — one of them hammering
//! hard enough to trip admission control. Ends with the gateway's view:
//! per-client attribution from the node, shed counts, batching effect,
//! and the client-observed latency distribution.
//!
//! ```text
//! cargo run --release --example gateway_demo
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use fc_cluster::{mem_pair, shared_backend, MemBackend, Node, NodeConfig};
use fc_gateway::{AdmissionConfig, ClientError, Gateway, GatewayClient, GatewayConfig};
use fc_obs::Histogram;
use fc_trace::{Op, SyntheticSpec};

fn main() {
    println!("— FlashCoop pair behind an fc-gateway —");

    // The pair: node 0 serves clients, node 1 is its cooperative peer
    // (remote buffer + replication target).
    let (ta, tb) = mem_pair();
    let backend = shared_backend(MemBackend::default());
    let node_a = Arc::new(Node::spawn(
        NodeConfig::test_profile(0),
        ta,
        backend.clone(),
    ));
    let _node_b = Node::spawn(NodeConfig::test_profile(1), tb, backend);

    // Admission: generous rate per client, but client 4 will exceed it.
    let gw = Gateway::new(
        GatewayConfig {
            admission: AdmissionConfig {
                per_client_rate: 0.0,    // no refill within this short demo…
                per_client_burst: 400.0, // …each client gets a 400-request budget
                max_inflight: 64,
            },
            ..GatewayConfig::default()
        },
        node_a,
    );
    let addr = gw.listen_tcp("127.0.0.1:0").expect("listen");
    println!("  gateway listening on {addr} (4 TCP clients incoming)");

    let latency = Histogram::new();
    let window: u64 = 1 << 12;
    let mut handles = Vec::new();
    for c in 1..=4u64 {
        let latency = latency.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = GatewayClient::connect_tcp(addr, c).expect("connect");
            client.hello().expect("hello");
            // Clients 1–3 stay inside their budget; client 4 offers 2×.
            let requests = if c == 4 { 800 } else { 300 };
            let trace = SyntheticSpec::fin1(window)
                .with_requests(requests)
                .generate(100 + c);
            let base = c * window;
            let (mut acked, mut shed) = (0u64, 0u64);
            for (seq, req) in trace.requests.iter().enumerate() {
                let started = Instant::now();
                let outcome = match req.op {
                    Op::Write => {
                        let data = Bytes::from(vec![(seq % 251) as u8; 256]);
                        client.write(base + req.lpn, vec![data]).map(|_| ())
                    }
                    Op::Read => client.read(base + req.lpn, 1).map(|_| ()),
                    Op::Trim => client.trim(base + req.lpn, 1).map(|_| ()),
                };
                match outcome {
                    Ok(()) => {
                        acked += 1;
                        latency.record(started.elapsed().as_nanos() as u64);
                    }
                    Err(ClientError::Busy) => shed += 1,
                    Err(e) => panic!("client {c}: {e}"),
                }
            }
            client.flush().ok();
            (c, acked, shed)
        }));
    }

    println!("\n  client   offered   acked    shed");
    for h in handles {
        let (c, acked, shed) = h.join().expect("client thread");
        println!("  {c:>6}   {:>7}   {acked:>5}   {shed:>5}", acked + shed);
    }

    let stats = gw.stats();
    println!("\n  gateway view:");
    println!(
        "    requests {}  admitted {}  shed {} ({:.1}%)",
        stats.requests,
        stats.admitted,
        stats.shed_total,
        100.0 * stats.shed_rate()
    );
    println!(
        "    writes {} in {} batches → {} runs ({} pages coalesced away)",
        stats.writes, stats.batches, stats.runs, stats.coalesced_pages
    );
    println!(
        "    max in-flight {} (cap 64), read hit ratio {:.1}%",
        stats.max_inflight_seen,
        if stats.read_pages > 0 {
            100.0 * stats.read_hits as f64 / stats.read_pages as f64
        } else {
            0.0
        }
    );

    let us = |ns: u64| ns as f64 / 1_000.0;
    println!(
        "    latency p50 {:.1} µs  p99 {:.1} µs  p999 {:.1} µs",
        us(latency.p50()),
        us(latency.p99()),
        us(latency.p999())
    );

    println!("\n  per-client attribution at the node:");
    println!("    client   writes   pages   write-through   reads   hits   trims");
    for (c, row) in gw.node().client_stats() {
        println!(
            "    {c:>6}   {:>6}   {:>5}   {:>13}   {:>5}   {:>4}   {:>5}",
            row.writes, row.pages_written, row.write_through, row.reads, row.read_hits, row.trims
        );
    }

    // Sanity: an acked write survives a flush barrier and reads back.
    let mut probe = GatewayClient::connect_tcp(addr, 99).expect("connect probe");
    probe.hello().expect("hello");
    probe.set_timeout(Duration::from_secs(5));
    let payload = Bytes::from_static(b"front-door durability probe");
    // Fresh client: its burst budget is untouched, so these are admitted.
    probe.write(7, vec![payload.clone()]).expect("probe write");
    probe.flush().expect("probe flush");
    let got = probe.read(7, 1).expect("probe read");
    assert_eq!(got[0].as_ref(), Some(&payload));
    drop(probe);

    gw.shutdown();
    println!("\ngateway demo complete");
}
