//! Elastic scale: grow a live 4-pair cluster to five pairs mid-workload,
//! retire the fifth again — all while eight closed-loop clients keep
//! hammering the gateway — and prove the clients never noticed: the final
//! state digest is bit-identical to a static 4-pair run of the same
//! workload.
//!
//! Under the hood each membership change is an epoch-fenced rebalance
//! (`fc-rebalance`): the coordinator plans the minimal moved-block set,
//! the gateway opens a dual-ring window (fenced blocks keep routing to
//! their old owner until migrated; fresh blocks go straight to the new
//! one), pages stream pair-to-pair in bounded batches, and the cut-over
//! retires the old epoch. See DESIGN.md §15.
//!
//! ```text
//! cargo run --release --example elastic_scale
//! ```

use std::time::Duration;

use fc_bench::loadgen::{self, LoadgenSpec, Mode, TransportKind, Workload};
use fc_gateway::AdmissionConfig;

fn main() {
    let base = LoadgenSpec {
        clients: 8,
        workload: Workload::Mix,
        seed: 11,
        requests: 2_000,
        mode: Mode::Closed,
        transport: TransportKind::Mem,
        pages_per_client: 1 << 12,
        admission: AdmissionConfig::unlimited(),
        shards: 4,
        ..LoadgenSpec::default()
    };

    println!("static 4-pair baseline:");
    let baseline = loadgen::run(&base).expect("baseline run");
    print!("{}", loadgen::report_text(&baseline));

    println!("\nelastic run: add a 5th pair at 10 ms, retire it at 60 ms, same workload:");
    let elastic = loadgen::run(&LoadgenSpec {
        add_pair_at: Some(Duration::from_millis(10)),
        remove_pair_at: Some(Duration::from_millis(60)),
        ..base.clone()
    })
    .expect("elastic run");
    print!("{}", loadgen::report_text(&elastic));

    assert_eq!(baseline.errors + elastic.errors, 0, "clean runs");
    assert_eq!(
        elastic.gateway.rebalances_completed, 2,
        "both membership changes committed"
    );
    elastic
        .verify_shard_sums()
        .expect("counter-sum identity across attach + retire");
    assert_eq!(
        baseline.state_digest, elastic.state_digest,
        "growing and shrinking the cluster mid-workload must not change \
         a single acked byte"
    );
    println!(
        "\nstate digest {:#018x} — identical with and without the live \
         add/remove: elastic membership changes placement, not contents",
        elastic.state_digest
    );
    println!(
        "moved {} blocks ({} pages) across {} migration batches",
        elastic.gateway.rebalance_moved_blocks,
        elastic.gateway.rebalance_moved_pages,
        elastic.gateway.rebalance_batches,
    );
    println!("elastic scale complete");
}
