//! Failure recovery, twice over.
//!
//! Part 1 — simulation: a cooperative pair replays write-heavy traffic; one
//! server crashes mid-run, the peer detects it by heartbeat timeout and
//! degrades (flush dirty, write-through); later the crashed server reboots,
//! pulls its replicated pages back from the peer, and the pair proves no
//! acknowledged write was lost (Section III.D).
//!
//! Part 2 — real threads over TCP on localhost: the same recovery protocol
//! (RCT fetch → replay → purge) with actual page data moving through the
//! `fc-cluster` node.
//!
//! ```text
//! cargo run --release --example failover
//! ```

use fc_cluster::{shared_backend, MemBackend, Node, NodeConfig, TcpTransport, WriteOutcome};
use fc_simkit::{DetRng, SimDuration, SimTime};
use fc_ssd::FtlKind;
use fc_trace::{IoRequest, Op, Trace};
use flashcoop::{CoopPair, FlashCoopConfig, Injection, PairEvent, PolicyKind};
use std::net::TcpListener;
use std::time::Duration;

fn write_trace(pages: u64, n: usize, seed: u64, name: &str) -> Trace {
    let mut rng = DetRng::new(seed);
    let mut t = Trace::new(name);
    let mut now = SimTime::ZERO;
    for _ in 0..n {
        now += SimDuration::from_millis(10 + rng.below(10));
        t.push(IoRequest {
            at: now,
            lpn: rng.below(pages - 2),
            pages: 1,
            op: Op::Write,
        });
    }
    t
}

fn simulated_failover() {
    println!("— simulated pair —");
    let mut cfg = FlashCoopConfig::tiny(FtlKind::PageLevel, PolicyKind::Lar);
    cfg.buffer_pages = 64;
    let pages = {
        use flashcoop::{CoopServer, Scheme};
        CoopServer::new(cfg.clone(), Scheme::Baseline).ssd().logical_pages()
    };
    let t0 = write_trace(pages, 800, 1, "victim");
    let t1 = write_trace(pages, 800, 2, "survivor");

    let crash_at = t0.requests[400].at;
    let recover_at = crash_at + SimDuration::from_secs(30);
    println!(
        "  crash of server 0 at {crash_at}, recovery at {recover_at} \
         (heartbeat timeout 5s)"
    );

    let mut pair = CoopPair::new(cfg.clone(), cfg, false);
    pair.replay(
        [&t0, &t1],
        &[
            Injection { at: crash_at, event: PairEvent::Crash(0) },
            Injection { at: recover_at, event: PairEvent::Recover(0) },
        ],
    );
    println!(
        "  server 1 degraded during the outage; degraded now: {}",
        pair.server(1).is_degraded()
    );
    let lost = pair.unrecoverable();
    println!(
        "  acknowledged writes lost across crash + recovery: {} {}",
        lost.len(),
        if lost.is_empty() { "✓" } else { "✗" }
    );
}

fn real_failover() {
    println!("— real nodes over TCP (localhost) —");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let client = std::thread::spawn(move || TcpTransport::connect(addr).expect("connect"));
    let server_t = TcpTransport::accept(&listener).expect("accept");
    let client_t = client.join().unwrap();

    let backend_a = shared_backend(MemBackend::new());
    let backend_b = shared_backend(MemBackend::new());
    let a = Node::spawn(NodeConfig::test_profile(0), client_t, backend_a.clone());
    let b = Node::spawn(NodeConfig::test_profile(1), server_t, backend_b);

    // A buffers + replicates twenty pages.
    let mut replicated = 0;
    for i in 0..20u64 {
        if a.write(i, format!("page-{i}-v1").as_bytes()) == WriteOutcome::Replicated {
            replicated += 1;
        }
    }
    println!("  node A wrote 20 pages, {replicated} replicated to B");
    println!(
        "  A dirty pages: {}, A backend pages: {}",
        a.dirty_pages(),
        backend_a.lock().pages()
    );

    // A crashes — its buffer is gone; only B's remote buffer has the data.
    a.crash();
    println!("  node A crashed (buffer lost); B hosts {} replicas", {
        // Give B a moment to settle.
        std::thread::sleep(Duration::from_millis(50));
        b.hosted_remote_pages().len()
    });

    // A reboots on the same backend over a fresh TCP connection; B re-homes
    // its surviving hosted pages onto a replacement endpoint (its memory
    // survived — only the socket died with A).
    let listener2 = TcpListener::bind("127.0.0.1:0").expect("bind2");
    let addr2 = listener2.local_addr().unwrap();
    let join = std::thread::spawn(move || TcpTransport::connect(addr2).expect("connect2"));
    let b2_t = TcpTransport::accept(&listener2).expect("accept2");
    let a2_t = join.join().unwrap();

    let hosted = b.export_remote();
    b.shutdown(); // old endpoint retired; its own dirty data flushed
    let b2 = Node::spawn(NodeConfig::test_profile(1), b2_t, shared_backend(MemBackend::new()));
    b2.import_remote(&hosted);

    let a2 = Node::spawn(NodeConfig::test_profile(0), a2_t, backend_a.clone());
    let recovered = a2
        .recover_from_peer(Duration::from_secs(2))
        .expect("recovery handshake");
    println!(
        "  node A rebooted, recovered {recovered} pages over TCP \
         (RCT fetch → replay → purge)"
    );
    println!(
        "  A backend now holds {} pages; B purged its remote buffer: {}",
        backend_a.lock().pages(),
        b2.hosted_remote_pages().is_empty()
    );
    let check = backend_a.lock().read_page(7).map(|(_, d)| d);
    println!(
        "  spot check page 7: {:?} ✓",
        check.map(|d| String::from_utf8_lossy(&d).into_owned())
    );
    a2.shutdown();
    b2.shutdown();
    println!("  demo done");
}

fn main() {
    simulated_failover();
    println!();
    real_failover();
}
