//! Failure recovery, twice over.
//!
//! Part 1 — simulation: a cooperative pair replays write-heavy traffic; one
//! server crashes mid-run, the peer detects it by heartbeat timeout and
//! degrades (flush dirty, write-through); later the crashed server reboots,
//! pulls its replicated pages back from the peer, and the pair proves no
//! acknowledged write was lost (Section III.D).
//!
//! Part 2 — real threads over TCP on localhost: the same recovery protocol
//! (RCT fetch → replay → purge) with actual page data moving through the
//! `fc-cluster` node.
//!
//! Part 3 — the full pair lifecycle over a partitioned link: Paired →
//! Solo (takeover destage + journaled writes) → Resyncing (the journal
//! streams back) → Paired, ending with byte-exact data on both ends.
//!
//! ```text
//! cargo run --release --example failover
//! ```

use fc_cluster::{
    mem_pair, shared_backend, FaultPlan, FaultTransport, MemBackend, Node, NodeConfig, PairState,
    TcpTransport, WriteOutcome,
};
use fc_simkit::{DetRng, SimDuration, SimTime};
use fc_ssd::FtlKind;
use fc_trace::{IoRequest, Op, Trace};
use flashcoop::{CoopPair, FlashCoopConfig, Injection, PairEvent, PolicyKind};
use std::net::TcpListener;
use std::time::Duration;

fn write_trace(pages: u64, n: usize, seed: u64, name: &str) -> Trace {
    let mut rng = DetRng::new(seed);
    let mut t = Trace::new(name);
    let mut now = SimTime::ZERO;
    for _ in 0..n {
        now += SimDuration::from_millis(10 + rng.below(10));
        t.push(IoRequest {
            at: now,
            lpn: rng.below(pages - 2),
            pages: 1,
            op: Op::Write,
        });
    }
    t
}

fn simulated_failover() {
    println!("— simulated pair —");
    let mut cfg = FlashCoopConfig::tiny(FtlKind::PageLevel, PolicyKind::Lar);
    cfg.buffer_pages = 64;
    let pages = {
        use flashcoop::{CoopServer, Scheme};
        CoopServer::new(cfg.clone(), Scheme::Baseline)
            .ssd()
            .logical_pages()
    };
    let t0 = write_trace(pages, 800, 1, "victim");
    let t1 = write_trace(pages, 800, 2, "survivor");

    let crash_at = t0.requests[400].at;
    let recover_at = crash_at + SimDuration::from_secs(30);
    println!(
        "  crash of server 0 at {crash_at}, recovery at {recover_at} \
         (heartbeat timeout 5s)"
    );

    let mut pair = CoopPair::new(cfg.clone(), cfg, false);
    pair.replay(
        [&t0, &t1],
        &[
            Injection {
                at: crash_at,
                event: PairEvent::Crash(0),
            },
            Injection {
                at: recover_at,
                event: PairEvent::Recover(0),
            },
        ],
    );
    println!(
        "  server 1 degraded during the outage; degraded now: {}",
        pair.server(1).is_degraded()
    );
    let lost = pair.unrecoverable();
    println!(
        "  acknowledged writes lost across crash + recovery: {} {}",
        lost.len(),
        if lost.is_empty() { "✓" } else { "✗" }
    );
}

fn real_failover() {
    println!("— real nodes over TCP (localhost) —");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let client = std::thread::spawn(move || TcpTransport::connect(addr).expect("connect"));
    let server_t = TcpTransport::accept(&listener).expect("accept");
    let client_t = client.join().unwrap();

    let backend_a = shared_backend(MemBackend::new());
    let backend_b = shared_backend(MemBackend::new());
    let a = Node::spawn(NodeConfig::test_profile(0), client_t, backend_a.clone());
    let b = Node::spawn(NodeConfig::test_profile(1), server_t, backend_b);

    // A buffers + replicates twenty pages.
    let mut replicated = 0;
    for i in 0..20u64 {
        if a.write(i, format!("page-{i}-v1").as_bytes()) == WriteOutcome::Replicated {
            replicated += 1;
        }
    }
    println!("  node A wrote 20 pages, {replicated} replicated to B");
    println!(
        "  A dirty pages: {}, A backend pages: {}",
        a.dirty_pages(),
        backend_a.lock().pages()
    );

    // A crashes — its buffer is gone; only B's remote buffer has the data.
    a.crash();
    println!("  node A crashed (buffer lost); B hosts {} replicas", {
        // Give B a moment to settle.
        std::thread::sleep(Duration::from_millis(50));
        b.hosted_remote_pages().len()
    });

    // A reboots on the same backend over a fresh TCP connection; B re-homes
    // its surviving hosted pages onto a replacement endpoint (its memory
    // survived — only the socket died with A).
    let listener2 = TcpListener::bind("127.0.0.1:0").expect("bind2");
    let addr2 = listener2.local_addr().unwrap();
    let join = std::thread::spawn(move || TcpTransport::connect(addr2).expect("connect2"));
    let b2_t = TcpTransport::accept(&listener2).expect("accept2");
    let a2_t = join.join().unwrap();

    let hosted = b.export_remote();
    b.shutdown(); // old endpoint retired; its own dirty data flushed
    let b2 = Node::spawn(
        NodeConfig::test_profile(1),
        b2_t,
        shared_backend(MemBackend::new()),
    );
    b2.import_remote(&hosted);

    let a2 = Node::spawn(NodeConfig::test_profile(0), a2_t, backend_a.clone());
    let recovered = a2
        .recover_from_peer(Duration::from_secs(2))
        .expect("recovery handshake");
    println!(
        "  node A rebooted, recovered {recovered} pages over TCP \
         (RCT fetch → replay → purge)"
    );
    println!(
        "  A backend now holds {} pages; B purged its remote buffer: {}",
        backend_a.lock().pages(),
        b2.hosted_remote_pages().is_empty()
    );
    let check = backend_a.lock().read_page(7).map(|(_, d)| d);
    println!(
        "  spot check page 7: {:?} ✓",
        check.map(|d| String::from_utf8_lossy(&d).into_owned())
    );
    a2.shutdown();
    b2.shutdown();
    println!("  demo done");
}

fn lifecycle_loop() {
    println!("— full lifecycle: fail → takeover → resync → rejoin —");
    use std::sync::Arc;
    use std::time::Instant;

    let wait_until = |mut cond: Box<dyn FnMut() -> bool>, timeout: Duration| -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        cond()
    };

    // A 400 ms partition opens 150 ms in — longer than the 200 ms failure
    // timeout, so both sides will declare the peer dead.
    let start = Duration::from_millis(150);
    let window = Duration::from_millis(400);
    let (ta, tb) = mem_pair();
    let fa = Arc::new(FaultTransport::new(
        ta,
        FaultPlan::new(21).with_partition_for(start, window),
    ));
    let fb = Arc::new(FaultTransport::new(
        tb,
        FaultPlan::new(22).with_partition_for(start, window),
    ));
    let backend_a = shared_backend(MemBackend::new());
    let backend_b = shared_backend(MemBackend::new());
    let a = Node::spawn(NodeConfig::test_profile(0), fa, backend_a);
    let b = Node::spawn(NodeConfig::test_profile(1), fb, backend_b);

    for i in 0..10u64 {
        a.write(i, format!("paired-{i}").as_bytes());
    }
    println!(
        "  paired: A replicated 10 pages, B hosts {}",
        b.hosted_remote_pages().len()
    );

    let a2 = &a;
    let b2 = &b;
    assert!(
        wait_until(
            Box::new(move || a2.lifecycle_state() == PairState::Solo
                && b2.lifecycle_state() == PairState::Solo),
            Duration::from_secs(2)
        ),
        "partition never took the pair solo"
    );
    println!(
        "  partition: both solo; B destaged {} hosted pages (takeover)",
        b.stats().repl.takeover_destages
    );

    for i in 100..108u64 {
        let outcome = a.write(i, format!("solo-{i}").as_bytes());
        assert_eq!(outcome, WriteOutcome::WriteThrough);
    }
    println!(
        "  solo: A wrote 8 pages through, {} journaled for catch-up",
        a.journal_len()
    );

    let a3 = &a;
    let b3 = &b;
    assert!(
        wait_until(
            Box::new(move || a3.lifecycle_state() == PairState::Paired
                && b3.lifecycle_state() == PairState::Paired),
            Duration::from_secs(3)
        ),
        "pair never re-formed after the partition healed"
    );
    let sa = a.stats();
    println!(
        "  rejoin: resynced {} pages in {} batches; journal now {}",
        sa.repl.resync_pages,
        sa.repl.resync_batches,
        a.journal_len()
    );

    assert_eq!(a.lifecycle_state(), PairState::Paired);
    assert_eq!(b.lifecycle_state(), PairState::Paired);
    let b4 = &b;
    wait_until(
        Box::new(move || b4.hosted_remote_pages().len() == 18),
        Duration::from_secs(1),
    );
    println!(
        "  final state Paired on both ends; B hosts {} pages \
         (lifecycle edges: A={}, B={}) ✓",
        b.hosted_remote_pages().len(),
        a.lifecycle_transitions(),
        b.lifecycle_transitions()
    );
    println!("  lifecycle loop complete: Paired -> Solo -> Resyncing -> Paired");
    a.shutdown();
    b.shutdown();
}

fn main() {
    simulated_failover();
    println!();
    real_failover();
    println!();
    lifecycle_loop();
}
