//! Replay the paper's financial workloads across all four schemes.
//!
//! Generates Table-I-calibrated Fin1 (write-dominant) and Fin2
//! (read-dominant) traces and replays each under Baseline and FlashCoop with
//! LAR / LRU / LFU on an aged BAST device — a one-screen version of the
//! paper's Figures 6 and 7.
//!
//! ```text
//! cargo run --release --example financial_workload
//! ```

use fc_bench::format::{report_header, report_row};
use fc_ssd::FtlKind;
use fc_trace::{SyntheticSpec, TraceStats};
use flashcoop::{replay, FlashCoopConfig, Preconditioning, RunReport, Scheme};

fn main() {
    let address_pages = 64 * 1024;
    let requests = 20_000;
    let seed = 7;

    println!("Workloads (synthetic, calibrated to the paper's Table I):");
    println!("{}", TraceStats::table1_header());
    let specs = [
        SyntheticSpec::fin1(address_pages).with_requests(requests),
        SyntheticSpec::fin2(address_pages).with_requests(requests),
    ];
    let traces: Vec<_> = specs.iter().map(|s| s.generate(seed)).collect();
    for t in &traces {
        println!("{}", TraceStats::from_trace(t).table1_row());
    }
    println!();

    println!("{}", report_header());
    for trace in &traces {
        for scheme in Scheme::ALL {
            let policy = match scheme {
                Scheme::FlashCoop(p) => p,
                Scheme::Baseline => flashcoop::PolicyKind::Lar,
            };
            let mut cfg = FlashCoopConfig::evaluation(FtlKind::Bast, policy);
            cfg.buffer_pages = 4096;
            let report: RunReport = replay(
                trace,
                &cfg,
                scheme,
                Some(Preconditioning {
                    fill: 0.9,
                    sequential: 0.5,
                }),
                seed,
            );
            println!("{}", report_row(&report));
        }
        println!();
    }
    println!(
        "Shape check (paper): FlashCoop beats Baseline everywhere; LAR is the \
         best policy on the write-heavy trace; erase counts drop with LAR."
    );
}
