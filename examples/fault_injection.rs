//! Deterministic fault injection on the replication path.
//!
//! Wraps node A's transport in a [`FaultTransport`] that drops, duplicates,
//! delays and reorders data-plane traffic per a seeded [`FaultPlan`], then
//! shows the retry/dedup machinery absorbing the faults: every write stays
//! durably replicated, the counters account for each fault, and the same
//! seed replays the identical fault schedule.
//!
//! ```text
//! cargo run --release --example fault_injection [seed]
//! ```

use fc_cluster::{
    mem_pair, shared_backend, FaultPlan, FaultStats, FaultTransport, MemBackend, Node, NodeConfig,
    RetryPolicy, WriteOutcome,
};
use fc_simkit::SimDuration;
use std::sync::Arc;
use std::time::Duration;

fn run(seed: u64, quiet: bool) -> (Vec<String>, FaultStats) {
    let plan = FaultPlan::new(seed)
        .with_drop(0.15)
        .with_dup(0.15)
        .with_delay(Duration::from_micros(200), Duration::from_micros(500))
        .with_reorder(0.2, 4);
    let (ta, tb) = mem_pair();
    // Keep a handle on the fault layer while the node drives it.
    let fa = Arc::new(FaultTransport::new(ta, plan));
    let cfg = NodeConfig {
        ack_timeout: Duration::from_millis(40),
        retry: RetryPolicy {
            attempts: 5,
            base_backoff: SimDuration::from_millis(2),
            multiplier: 2.0,
            max_backoff: SimDuration::from_millis(20),
        },
        ..NodeConfig::test_profile(0)
    };
    let a = Node::spawn(cfg, fa.clone(), shared_backend(MemBackend::new()));
    let b = Node::spawn(
        NodeConfig::test_profile(1),
        tb,
        shared_backend(MemBackend::new()),
    );

    let mut replicated = 0;
    for i in 0..32u64 {
        if a.write(i, format!("page-{i}").as_bytes()) == WriteOutcome::Replicated {
            replicated += 1;
        }
    }
    std::thread::sleep(Duration::from_millis(100)); // let late dups land
    let (sa, sb) = (a.stats(), b.stats());
    let stats = fa.fault_stats();
    let trace: Vec<String> = fa
        .fault_trace()
        .iter()
        .map(|r| format!("#{:<3} {:?}", r.index, r.action))
        .collect();
    if !quiet {
        println!(
            "seed {seed}: {replicated}/32 writes replicated, B hosts {} pages",
            sb.remote_pages
        );
        println!(
            "  A retries: {:>2}   B dups_dropped: {:>2}, reorders_healed: {:>2}",
            sa.repl.retries, sb.repl.dups_dropped, sb.repl.reorders_healed
        );
        println!(
            "  link: {} eligible sends — {} dropped, {} duplicated, {} held for reorder",
            stats.eligible, stats.dropped, stats.duplicated, stats.held
        );
    }
    a.shutdown();
    b.shutdown();
    (trace, stats)
}

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let (trace1, mut stats1) = run(seed, false);
    let (trace2, mut stats2) = run(seed, true);
    // The fault schedule is indexed by data-plane send count, so every
    // decision replays exactly. `passthrough` counts exempt control-plane
    // traffic (heartbeats), whose tally depends on wall-clock run length —
    // normalize it before comparing.
    stats1.passthrough = 0;
    stats2.passthrough = 0;
    assert_eq!(stats1, stats2, "same seed must replay the same schedule");
    assert_eq!(trace1, trace2);
    println!(
        "\nsecond run, same seed: {} identical fault decisions ✓",
        trace1.len()
    );
    println!("first few decisions:");
    for line in trace1.iter().take(6) {
        println!("  {line}");
    }
}
