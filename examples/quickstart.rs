//! Quickstart: one cooperative server under a tiny hand-rolled workload.
//!
//! Builds a FlashCoop server over a simulated BAST SSD, writes a few blocks
//! (buffered + replicated), reads them back, and prints what happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! cargo run --release --example quickstart -- --obs run.jsonl
//! ```
//!
//! With `--obs` every trace event and a final metric snapshot are streamed
//! to the given file as JSON lines; the example re-reads the file and
//! validates it against the fc-obs event schema before exiting.

use fc_obs::{Obs, Stamp};
use fc_simkit::{SimDuration, SimTime};
use fc_ssd::FtlKind;
use flashcoop::{CoopServer, FlashCoopConfig, PolicyKind, RemoteStore, Scheme};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let obs_path = args
        .iter()
        .position(|a| a == "--obs")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);

    // A small evaluation-grade config: BAST FTL, LAR replacement.
    let mut cfg = FlashCoopConfig::evaluation(FtlKind::Bast, PolicyKind::Lar);
    cfg.buffer_pages = 512;
    let mut server = CoopServer::new(cfg.clone(), Scheme::FlashCoop(PolicyKind::Lar));
    let obs = obs_path.as_ref().map(|p| {
        let o = Obs::jsonl_file(p).expect("create --obs file");
        server.attach_obs(&o);
        o
    });
    // The peer donates a remote buffer as large as our local one.
    let mut remote = RemoteStore::new(cfg.buffer_pages);

    println!("FlashCoop quickstart");
    println!(
        "  device: {} FTL, {} logical pages; buffer: {} pages; policy: {}",
        cfg.ssd.ftl,
        server.ssd().logical_pages(),
        cfg.buffer_pages,
        cfg.policy
    );

    // Write three logical blocks' worth of pages, interleaved like Figure 2.
    let mut now = SimTime::ZERO;
    let step = SimDuration::from_millis(5);
    let ppb = cfg.pages_per_block() as u64;
    let mut total_write = SimDuration::ZERO;
    for i in 0..ppb {
        for blk in [0u64, 1, 2] {
            total_write += server.handle_write(now, blk * ppb + i, 1, Some(&mut remote));
            now += step;
        }
    }
    println!(
        "  {} buffered writes, mean latency {} (replication round trip; the SSD is off the write path)",
        3 * ppb,
        total_write / (3 * ppb)
    );
    println!(
        "  buffer: {} resident / {} dirty pages; peer holds {} replicas",
        server.buffer().resident(),
        server.buffer().dirty(),
        remote.len()
    );

    // Read the first block back — straight from DRAM.
    let t_hit = server.handle_read(now, 0, ppb as u32, Some(&mut remote));
    now += step;
    // And something cold — that one goes to the SSD.
    let far = server.ssd().logical_pages() - ppb;
    let t_miss = server.handle_read(now, far, 1, Some(&mut remote));
    println!("  read hit of a whole block: {t_hit}; cold read miss: {t_miss}");

    // Force the buffer down so LAR flushes blocks sequentially.
    server.resize_buffer(now, 8, Some(&mut remote));
    let s = server.ssd().stats();
    println!(
        "  after shrinking the buffer: {} writes reached the SSD, mean length {:.1} pages",
        s.write_lengths.writes(),
        s.mean_write_pages()
    );
    println!(
        "  every acknowledged page recoverable: {}",
        server.unrecoverable_pages(Some(&remote)).is_empty()
    );

    if let (Some(o), Some(path)) = (&obs, &obs_path) {
        o.emit_snapshot(Stamp::Sim(now.as_nanos()));
        o.flush();
        let text = std::fs::read_to_string(path).expect("read back --obs file");
        match fc_obs::validate_jsonl(&text) {
            Ok(n) => println!("  obs: {n} events written to {}, schema OK", path.display()),
            Err(e) => {
                eprintln!("obs stream invalid: {e}");
                std::process::exit(1);
            }
        }
    }
}
