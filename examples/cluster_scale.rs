//! Cluster scale: four cooperative pairs (eight servers), mixed workloads,
//! one pair taking a failure — the paper's deployment model in one run.
//!
//! Pairs are mutually independent ("storage cluster is configured into
//! cooperative pairs"), so the cluster scales by adding pairs and a failure
//! never spills past its own pair.
//!
//! ```text
//! cargo run --release --example cluster_scale
//! ```

use fc_ssd::FtlKind;
use fc_trace::{SyntheticSpec, Trace};
use flashcoop::{Cluster, CoopServer, FlashCoopConfig, Injection, PairEvent, PolicyKind, Scheme};

fn main() {
    let mut cfg = FlashCoopConfig::evaluation(FtlKind::Bast, PolicyKind::Lar);
    cfg.buffer_pages = 2048;
    let pages = CoopServer::new(cfg.clone(), Scheme::Baseline)
        .ssd()
        .logical_pages()
        .min(48 * 1024);

    // Eight servers with alternating workload personalities.
    let specs = [
        SyntheticSpec::fin1(pages),
        SyntheticSpec::fin2(pages),
        SyntheticSpec::mix(pages),
        SyntheticSpec::fin1(pages),
        SyntheticSpec::fin2(pages),
        SyntheticSpec::mix(pages),
        SyntheticSpec::fin1(pages),
        SyntheticSpec::fin2(pages),
    ];
    let traces: Vec<Trace> = specs
        .iter()
        .enumerate()
        .map(|(i, s)| {
            s.clone()
                .with_requests(6_000)
                .with_rate_factor(20.0) // compress the replay window
                .generate(100 + i as u64)
        })
        .collect();
    let refs: Vec<&Trace> = traces.iter().collect();

    let mut cluster = Cluster::homogeneous(cfg, 4, true);
    println!(
        "cluster: {} pairs / {} servers, dynamic allocation on",
        cluster.pairs(),
        cluster.servers()
    );

    // Pair 2 loses a server a third of the way in and recovers later.
    let crash_at = traces[4].requests[2_000].at;
    let recover_at = traces[4].requests[4_000].at;
    let mut injections = vec![Vec::new(); 4];
    injections[2] = vec![
        Injection {
            at: crash_at,
            event: PairEvent::Crash(0),
        },
        Injection {
            at: recover_at,
            event: PairEvent::Recover(0),
        },
    ];
    println!("injecting: pair 2 / server 0 crashes at {crash_at}, recovers at {recover_at}\n");

    cluster.replay(&refs, &injections);

    println!(
        "{:<8} {:<6} {:>12} {:>14} {:>10} {:>10}",
        "server", "trace", "requests", "avg resp", "erases", "theta%"
    );
    for (s, trace) in traces.iter().enumerate().take(cluster.servers()) {
        let pair = cluster.pair(s / 2);
        let server = cluster.server(s);
        println!(
            "{:<8} {:<6} {:>12} {:>14} {:>10} {:>9.1}",
            format!("{}/{}", s / 2, s % 2),
            trace.name,
            server.metrics().response.count(),
            format!("{}", server.metrics().response.mean()),
            server.ssd().erases_since_reset(),
            pair.theta_now(s % 2) * 100.0,
        );
    }

    let report = cluster.report();
    println!(
        "\nfleet: {} requests, mean response {}, {} erases, {} pages replicated",
        report.requests, report.avg_response, report.total_erases, report.replicated_pages
    );
    println!(
        "acknowledged writes lost anywhere (including the crashed pair): {} {}",
        report.unrecoverable,
        if report.unrecoverable == 0 {
            "✓"
        } else {
            "✗"
        }
    );
}
