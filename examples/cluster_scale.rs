//! Cluster scale: four cooperative pairs (eight servers), mixed workloads,
//! one pair taking a failure — the paper's deployment model in one run.
//! Then the same scale-out story through the *threaded* stack: a workload
//! that saturates one gateway-fronted pair is absorbed by a 4-pair cluster
//! routed by the `fc-ring` consistent-hash ring.
//!
//! Pairs are mutually independent ("storage cluster is configured into
//! cooperative pairs"), so the cluster scales by adding pairs and a failure
//! never spills past its own pair.
//!
//! ```text
//! cargo run --release --example cluster_scale
//! ```

use fc_bench::loadgen::{self, LoadgenSpec, Mode, TransportKind, Workload};
use fc_gateway::AdmissionConfig;
use fc_ssd::FtlKind;
use fc_trace::{SyntheticSpec, Trace};
use flashcoop::{Cluster, CoopServer, FlashCoopConfig, Injection, PairEvent, PolicyKind, Scheme};

fn main() {
    let mut cfg = FlashCoopConfig::evaluation(FtlKind::Bast, PolicyKind::Lar);
    cfg.buffer_pages = 2048;
    let pages = CoopServer::new(cfg.clone(), Scheme::Baseline)
        .ssd()
        .logical_pages()
        .min(48 * 1024);

    // Eight servers with alternating workload personalities.
    let specs = [
        SyntheticSpec::fin1(pages),
        SyntheticSpec::fin2(pages),
        SyntheticSpec::mix(pages),
        SyntheticSpec::fin1(pages),
        SyntheticSpec::fin2(pages),
        SyntheticSpec::mix(pages),
        SyntheticSpec::fin1(pages),
        SyntheticSpec::fin2(pages),
    ];
    let traces: Vec<Trace> = specs
        .iter()
        .enumerate()
        .map(|(i, s)| {
            s.clone()
                .with_requests(6_000)
                .with_rate_factor(20.0) // compress the replay window
                .generate(100 + i as u64)
        })
        .collect();
    let refs: Vec<&Trace> = traces.iter().collect();

    let mut cluster = Cluster::homogeneous(cfg, 4, true);
    println!(
        "cluster: {} pairs / {} servers, dynamic allocation on",
        cluster.pairs(),
        cluster.servers()
    );

    // Pair 2 loses a server a third of the way in and recovers later.
    let crash_at = traces[4].requests[2_000].at;
    let recover_at = traces[4].requests[4_000].at;
    let mut injections = vec![Vec::new(); 4];
    injections[2] = vec![
        Injection {
            at: crash_at,
            event: PairEvent::Crash(0),
        },
        Injection {
            at: recover_at,
            event: PairEvent::Recover(0),
        },
    ];
    println!("injecting: pair 2 / server 0 crashes at {crash_at}, recovers at {recover_at}\n");

    cluster.replay(&refs, &injections);

    println!(
        "{:<8} {:<6} {:>12} {:>14} {:>10} {:>10}",
        "server", "trace", "requests", "avg resp", "erases", "theta%"
    );
    for (s, trace) in traces.iter().enumerate().take(cluster.servers()) {
        let pair = cluster.pair(s / 2);
        let server = cluster.server(s);
        println!(
            "{:<8} {:<6} {:>12} {:>14} {:>10} {:>9.1}",
            format!("{}/{}", s / 2, s % 2),
            trace.name,
            server.metrics().response.count(),
            format!("{}", server.metrics().response.mean()),
            server.ssd().erases_since_reset(),
            pair.theta_now(s % 2) * 100.0,
        );
    }

    let report = cluster.report();
    println!(
        "\nfleet: {} requests, mean response {}, {} erases, {} pages replicated",
        report.requests, report.avg_response, report.total_erases, report.replicated_pages
    );
    println!(
        "acknowledged writes lost anywhere (including the crashed pair): {} {}",
        report.unrecoverable,
        if report.unrecoverable == 0 {
            "✓"
        } else {
            "✗"
        }
    );

    // Part 2 — the threaded stack: eight closed-loop clients keep a single
    // gateway-fronted pair busy end to end; four pairs behind the
    // consistent-hash ring split the same offered load four ways.
    let base = LoadgenSpec {
        clients: 8,
        workload: Workload::Mix,
        seed: 7,
        requests: 1_500,
        mode: Mode::Closed,
        transport: TransportKind::Mem,
        pages_per_client: 1 << 12,
        admission: AdmissionConfig::unlimited(),
        ..LoadgenSpec::default()
    };
    println!("\nthreaded gateway: the same offered load against 1 pair, then 4:");
    let single = loadgen::run(&base).expect("single-pair run");
    let sharded = loadgen::run(&LoadgenSpec {
        shards: 4,
        ..base.clone()
    })
    .expect("sharded run");
    sharded
        .verify_shard_sums()
        .expect("per-shard counters sum to gateway totals");
    assert_eq!(single.errors + sharded.errors, 0, "clean runs");

    let us = |ns: u64| ns as f64 / 1_000.0;
    for (label, r) in [("1 pair", &single), ("4 pairs", &sharded)] {
        println!(
            "  {:<8} {:>9.0} req/s   p50 {:>7.1} µs   p99 {:>8.1} µs   acked {}",
            label,
            r.throughput(),
            us(r.latency.p50()),
            us(r.latency.p99()),
            r.acked,
        );
    }
    for line in &sharded.shard_lines {
        println!(
            "    shard {}  {:>6.1}% of acked traffic   p99 {:>8.1} µs",
            line.shard,
            100.0 * line.acked as f64 / sharded.acked.max(1) as f64,
            us(line.latency.p99()),
        );
    }
    assert_eq!(
        single.state_digest, sharded.state_digest,
        "sharding moves pages between pairs, never changes their contents"
    );
    println!(
        "  state digest {:#018x} — identical for 1 and 4 pairs: routing \
         changes placement, not contents",
        sharded.state_digest
    );
    println!("cluster scale complete");
}
