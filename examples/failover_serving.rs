//! Surviving a primary crash at the front door.
//!
//! Two cooperative pairs behind a sharded gateway; a client streams writes
//! while shard 0's primary is killed mid-load. The gateway's circuit
//! breaker fails the shard over to the surviving secondary, service
//! continues uninterrupted, and once the primary restarts, traffic drives
//! failback. Ends by re-reading every acknowledged write — zero loss — and
//! printing the health counters.
//!
//! ```text
//! cargo run --release --example failover_serving
//! ```

use std::collections::HashMap;
use std::time::{Duration, Instant};

use bytes::Bytes;
use fc_bench::loadgen::payload;
use fc_gateway::{GatewayConfig, ShardStatsSum, ShardedGateway};
use fc_ring::RingConfig;

const VICTIM: u16 = 0;
const SPACE: u64 = 512;
const PAGE_BYTES: usize = 128;

fn main() {
    println!("— sharded gateway vs. a primary crash —");

    let cfg = GatewayConfig::test_profile();
    let ring_cfg = RingConfig {
        block_pages: cfg.pages_per_block,
        ..RingConfig::default()
    };
    let sg = ShardedGateway::spawn_mem(cfg, ring_cfg, 2);
    let ring = sg.gateway().ring().expect("ring").clone();
    let mut client = sg.connect_mem_as(1);
    client.hello().expect("hello");

    let mut acked: HashMap<u64, Bytes> = HashMap::new();
    let deadline = || Instant::now() + Duration::from_secs(5);
    let write =
        |client: &mut fc_gateway::GatewayClient, acked: &mut HashMap<u64, Bytes>, seq: u64| {
            let lpn = (seq * 13) % SPACE;
            let page = payload(1, lpn, seq, PAGE_BYTES);
            client
                .write_with_retry(lpn, vec![page.clone()], deadline())
                .expect("write acked");
            acked.insert(lpn, page);
        };

    println!("  phase 1: both pairs healthy, 200 writes");
    for seq in 0..200 {
        write(&mut client, &mut acked, seq);
    }

    println!("  phase 2: killing shard {VICTIM}'s primary mid-load");
    sg.primary(VICTIM).fail();
    for seq in 200..400 {
        write(&mut client, &mut acked, seq);
    }
    let stats = sg.stats();
    assert!(stats.failovers >= 1, "the kill must force a failover");
    assert!(
        !sg.gateway().shard_routed_to_primary(VICTIM),
        "victim shard now routes to its secondary"
    );
    println!(
        "    failovers={}  retries={}  unavailable={}  (service never stopped)",
        stats.failovers, stats.retries, stats.unavailable
    );

    println!("  phase 3: restarting the primary; traffic drives failback");
    sg.primary(VICTIM).restart();
    let victim_lpn = (0..SPACE)
        .find(|&l| ring.shard_of_lpn(l) == VICTIM)
        .expect("victim owns an lpn");
    let failback_deadline = Instant::now() + Duration::from_secs(10);
    while !sg.gateway().shard_routed_to_primary(VICTIM) {
        assert!(Instant::now() < failback_deadline, "no failback within 10s");
        let _ = client.read(victim_lpn, 1);
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(sg.stats().failbacks >= 1);
    for seq in 400..600 {
        write(&mut client, &mut acked, seq);
    }

    println!("  phase 4: verifying all {} acked writes", acked.len());
    for (&lpn, want) in &acked {
        let got = client
            .read_with_retry(lpn, 1, deadline())
            .expect("read acked lpn");
        assert_eq!(
            got[0].as_deref(),
            Some(want.as_ref()),
            "acked write at lpn {lpn} lost across failover"
        );
    }
    ShardStatsSum::of(&sg.shard_stats())
        .matches(&sg.stats())
        .expect("per-shard counters sum exactly to the aggregates");

    let stats = sg.stats();
    println!(
        "  health: failovers={} failbacks={} retries={} unavailable={}",
        stats.failovers, stats.failbacks, stats.retries, stats.unavailable
    );
    sg.shutdown();
    println!("FAILOVER-SERVING OK: zero acked writes lost");
}
