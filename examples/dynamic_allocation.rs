//! Dynamic memory allocation in action (Section III.C / Figure 9).
//!
//! Two cooperative servers with shifting workloads: server 1's traffic
//! starts read-heavy and turns write-heavy halfway through. Watch server 0's
//! donated remote-buffer ratio θ follow Equation 1: θ rises as the peer gets
//! write-hungry and falls as local load grows.
//!
//! ```text
//! cargo run --release --example dynamic_allocation
//! ```

use fc_simkit::{DetRng, SimDuration, SimTime};
use fc_ssd::FtlKind;
use fc_trace::{IoRequest, Op, Trace};
use flashcoop::{CoopPair, FlashCoopConfig, PolicyKind};

/// A trace whose write fraction switches from `w1` to `w2` halfway.
fn two_phase_trace(pages: u64, n: usize, w1: f64, w2: f64, seed: u64, name: &str) -> Trace {
    let mut rng = DetRng::new(seed);
    let mut t = Trace::new(name);
    let mut now = SimTime::ZERO;
    for i in 0..n {
        now += SimDuration::from_millis(4 + rng.below(4));
        let wf = if i < n / 2 { w1 } else { w2 };
        let op = if rng.chance(wf) { Op::Write } else { Op::Read };
        t.push(IoRequest {
            at: now,
            lpn: rng.below(pages - 2),
            pages: 1,
            op,
        });
    }
    t
}

fn main() {
    let mut cfg = FlashCoopConfig::tiny(FtlKind::PageLevel, PolicyKind::Lar);
    cfg.buffer_pages = 128;
    cfg.alloc.period = SimDuration::from_secs(2);
    let pages = {
        use flashcoop::{CoopServer, Scheme};
        CoopServer::new(cfg.clone(), Scheme::Baseline)
            .ssd()
            .logical_pages()
    };

    // Server 0: steady moderate load. Server 1: reads first, writes later.
    let t0 = two_phase_trace(pages, 4_000, 0.5, 0.5, 1, "steady");
    let t1 = two_phase_trace(pages, 4_000, 0.1, 0.9, 2, "shifting");

    let mut pair = CoopPair::new(cfg.clone(), cfg, true);
    pair.replay([&t0, &t1], &[]);

    println!("Server 0's remote-buffer ratio over time (peer turns write-heavy):");
    println!(
        "{:>10} {:>14} {:>18} {:>10}",
        "t (s)", "local usage b", "peer write frac a", "theta"
    );
    for s in pair.theta_log(0).iter().step_by(2) {
        let bar = "#".repeat((s.theta * 40.0) as usize);
        println!(
            "{:>10.1} {:>14.3} {:>18.3} {:>9.1}% {}",
            s.at_secs,
            s.local_usage,
            s.peer_write_fraction,
            s.theta * 100.0,
            bar
        );
    }
    let log = pair.theta_log(0);
    let early: f64 = log.iter().take(log.len() / 3).map(|s| s.theta).sum::<f64>()
        / (log.len() / 3).max(1) as f64;
    let late: f64 = log
        .iter()
        .skip(2 * log.len() / 3)
        .map(|s| s.theta)
        .sum::<f64>()
        / (log.len() - 2 * log.len() / 3).max(1) as f64;
    println!(
        "\nmean theta, first third: {:.1}% → last third: {:.1}% \
         (Equation 1 follows the peer's write intensity)",
        early * 100.0,
        late * 100.0
    );
}
