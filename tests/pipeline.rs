//! End-to-end pipeline tests: trace → cooperative server → FTL → NAND.
//!
//! These replays run on a reduced geometry (32 MiB device, Table II page and
//! block shape) so they are fast in debug builds, and assert the paper's
//! *qualitative* claims — the quantitative tables come from the release-mode
//! `repro` binary.

use fc_ssd::{FtlConfig, FtlKind, Geometry, SsdConfig, TimingParams};
use fc_trace::{SyntheticSpec, Trace};
use flashcoop::{replay, FlashCoopConfig, PolicyKind, Preconditioning, RunReport, Scheme};

/// 32 MiB device with Table II shape.
fn small_device(ftl: FtlKind) -> SsdConfig {
    SsdConfig {
        geometry: Geometry {
            page_bytes: 4096,
            pages_per_block: 64,
            blocks_per_plane: 32,
            planes_per_die: 4,
            dies: 1,
        },
        timing: TimingParams::table2(),
        ftl,
        ftl_config: FtlConfig {
            log_blocks: 8,
            spare_fraction: 0.15,
            gc_high_watermark: 8,
            gc_low_watermark: 4,
            wear_aware_alloc: true,
            cmt_entries: 8192,
        },
    }
}

fn cfg(ftl: FtlKind, policy: PolicyKind) -> FlashCoopConfig {
    let mut c = FlashCoopConfig::evaluation(ftl, policy);
    c.ssd = small_device(ftl);
    c.buffer_pages = 512;
    c
}

fn workload(seed: u64) -> Trace {
    // Footprint must fit the 32 MiB device's logical space (~6.7k pages).
    let mut spec = SyntheticSpec::fin1(4 * 1024);
    spec.requests = 4_000;
    spec.generate(seed)
}

fn run(ftl: FtlKind, scheme: Scheme, seed: u64) -> RunReport {
    let policy = match scheme {
        Scheme::FlashCoop(p) => p,
        Scheme::Baseline => PolicyKind::Lar,
    };
    replay(
        &workload(seed),
        &cfg(ftl, policy),
        scheme,
        Some(Preconditioning {
            fill: 0.9,
            sequential: 0.5,
        }),
        seed,
    )
}

#[test]
fn flashcoop_beats_baseline_on_every_ftl() {
    for ftl in FtlKind::ALL {
        let lar = run(ftl, Scheme::FlashCoop(PolicyKind::Lar), 1);
        let base = run(ftl, Scheme::Baseline, 1);
        assert!(
            lar.avg_response.as_nanos() * 2 < base.avg_response.as_nanos(),
            "{ftl}: LAR {} vs Baseline {}",
            lar.avg_response,
            base.avg_response
        );
        assert!(
            lar.erases < base.erases,
            "{ftl}: LAR erases {} vs Baseline {}",
            lar.erases,
            base.erases
        );
    }
}

#[test]
fn lar_produces_fewer_single_page_writes_than_lru_lfu_and_baseline() {
    let lar = run(FtlKind::Bast, Scheme::FlashCoop(PolicyKind::Lar), 2);
    let lru = run(FtlKind::Bast, Scheme::FlashCoop(PolicyKind::Lru), 2);
    let lfu = run(FtlKind::Bast, Scheme::FlashCoop(PolicyKind::Lfu), 2);
    let base = run(FtlKind::Bast, Scheme::Baseline, 2);
    assert!(
        lar.frac_single_page < lru.frac_single_page / 2.0,
        "LAR {} vs LRU {}",
        lar.frac_single_page,
        lru.frac_single_page
    );
    assert!(lar.frac_single_page < lfu.frac_single_page / 2.0);
    assert!(lar.frac_single_page < base.frac_single_page);
    // And far more large writes (the Figure 8 crossover).
    assert!(lar.frac_gt8_pages > lru.frac_gt8_pages);
    assert!(lar.mean_write_pages > 2.0 * lru.mean_write_pages);
}

#[test]
fn lar_hit_ratio_tops_the_comparison_policies() {
    let lar = run(FtlKind::Bast, Scheme::FlashCoop(PolicyKind::Lar), 3);
    let lru = run(FtlKind::Bast, Scheme::FlashCoop(PolicyKind::Lru), 3);
    let lfu = run(FtlKind::Bast, Scheme::FlashCoop(PolicyKind::Lfu), 3);
    assert!(
        lar.hit_ratio > lru.hit_ratio,
        "LAR {} vs LRU {}",
        lar.hit_ratio,
        lru.hit_ratio
    );
    assert!(
        lar.hit_ratio > lfu.hit_ratio,
        "LAR {} vs LFU {}",
        lar.hit_ratio,
        lfu.hit_ratio
    );
}

#[test]
fn bigger_buffers_raise_hit_ratio() {
    // Table III's monotonicity, at test scale.
    let mut prev = -1.0;
    for pages in [128usize, 256, 512, 1024] {
        let mut c = cfg(FtlKind::Bast, PolicyKind::Lar);
        c.buffer_pages = pages;
        let r = replay(
            &workload(4),
            &c,
            Scheme::FlashCoop(PolicyKind::Lar),
            None,
            4,
        );
        assert!(
            r.hit_ratio >= prev,
            "hit ratio regressed at {pages} pages: {} < {prev}",
            r.hit_ratio
        );
        prev = r.hit_ratio;
    }
    assert!(prev > 0.2, "largest buffer should hit ≥ 20%, got {prev}");
}

#[test]
fn replay_is_bitwise_deterministic() {
    let a = run(FtlKind::Fast, Scheme::FlashCoop(PolicyKind::Lar), 5);
    let b = run(FtlKind::Fast, Scheme::FlashCoop(PolicyKind::Lar), 5);
    assert_eq!(a.avg_response, b.avg_response);
    assert_eq!(a.erases, b.erases);
    assert_eq!(a.hit_ratio, b.hit_ratio);
    assert_eq!(a.write_length_cdf, b.write_length_cdf);
}

#[test]
fn bast_gains_most_from_lar_sequentialisation() {
    // Section IV.B.4: BAST's erase reduction ratio under LAR exceeds the
    // page-level FTL's (BAST is the merge-happy one).
    let reduction = |ftl: FtlKind| {
        let lar = run(ftl, Scheme::FlashCoop(PolicyKind::Lar), 6);
        let base = run(ftl, Scheme::Baseline, 6);
        1.0 - lar.erases as f64 / base.erases.max(1) as f64
    };
    let bast = reduction(FtlKind::Bast);
    let page = reduction(FtlKind::PageLevel);
    assert!(
        bast > page * 0.8,
        "BAST reduction {bast:.2} should be at least comparable to page-level {page:.2}"
    );
    assert!(bast > 0.2, "BAST erase reduction too small: {bast:.2}");
}

#[test]
fn clustering_ablation_reduces_small_writes() {
    let mut with = cfg(FtlKind::Bast, PolicyKind::Lar);
    with.clustering = true;
    let mut without = cfg(FtlKind::Bast, PolicyKind::Lar);
    without.clustering = false;
    let t = workload(7);
    let r_with = replay(&t, &with, Scheme::FlashCoop(PolicyKind::Lar), None, 7);
    let r_without = replay(&t, &without, Scheme::FlashCoop(PolicyKind::Lar), None, 7);
    assert!(
        r_with.mean_write_pages > r_without.mean_write_pages,
        "clustering should grow device writes: {} vs {}",
        r_with.mean_write_pages,
        r_without.mean_write_pages
    );
}

#[test]
fn replication_ablation_trades_latency_for_network() {
    let mut with = cfg(FtlKind::PageLevel, PolicyKind::Lar);
    with.replication = true;
    let mut without = cfg(FtlKind::PageLevel, PolicyKind::Lar);
    without.replication = false;
    let t = workload(8);
    let r_with = replay(&t, &with, Scheme::FlashCoop(PolicyKind::Lar), None, 8);
    let r_without = replay(&t, &without, Scheme::FlashCoop(PolicyKind::Lar), None, 8);
    // Without replication writes complete at DRAM speed (no ack round trip)…
    assert!(r_without.avg_write_response < r_with.avg_write_response);
    // …but both remain far below a synchronous flash program.
    assert!(r_with.avg_write_response.as_micros_f64() < 200.0);
}
