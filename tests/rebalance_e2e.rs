//! End-to-end elastic-membership tests: a live cluster grows from three
//! pairs to four and shrinks back **while a random workload keeps
//! running**, across twenty seeds.
//!
//! Contracts from the issue:
//!
//! 1. **Model equivalence** — seeded random op sequences (write / read /
//!    trim / flush) through the gateway agree with a flat
//!    `HashMap<lpn, page>` oracle at every step, through both membership
//!    changes.
//! 2. **Zero acked-write loss** — after the add and after the remove, a
//!    full routed sweep of the lpn space equals the oracle exactly.
//! 3. **Minimal migration** — the coordinator's plan, computed at a
//!    client-idle instant, is exactly the ring diff restricted to
//!    occupied blocks; what actually migrates is that plan plus whatever
//!    the workload wrote onto owner-changed blocks before the window
//!    opened (never less).
//! 4. **Counter-sum identity** — Σ `gateway.shard.*` equals the
//!    aggregate `gateway.*` counters at every phase boundary, across
//!    attach and retire.

use std::collections::{HashMap, HashSet};
use std::time::Duration;

use bytes::Bytes;
use fc_bench::loadgen::payload;
use fc_gateway::{GatewayClient, GatewayConfig, ShardStatsSum, ShardedGateway};
use fc_rebalance::RebalanceConfig;
use fc_ring::RingConfig;
use fc_simkit::DetRng;

const SHARDS: u16 = 3;
const SPACE: u64 = 512;
const STEPS_PER_PHASE: u64 = 200;
const PAGE_BYTES: usize = 64;

/// The counter-sum identity, asserted with context.
fn assert_sums_match(sg: &ShardedGateway, label: &str) {
    if let Err((name, sum, total)) = ShardStatsSum::of(&sg.shard_stats()).matches(&sg.stats()) {
        panic!("{label}: Σ shard.{name} = {sum} != gateway.{name} = {total}");
    }
}

/// One phase of the random workload: writes (1–6 pages), reads (up to 16
/// pages, long enough to straddle shards), trims, and flushes, with every
/// read checked against the oracle in place.
fn drive(
    client: &mut GatewayClient,
    oracle: &mut HashMap<u64, Bytes>,
    rng: &mut DetRng,
    tag: u64,
    label: &str,
) {
    for step in 0..STEPS_PER_PHASE {
        match rng.below(10) {
            0..=4 => {
                let pages = 1 + rng.below(6);
                let lpn = rng.below(SPACE - pages);
                let payloads: Vec<Bytes> = (0..pages)
                    .map(|i| payload(1, lpn + i, tag * STEPS_PER_PHASE + step, PAGE_BYTES))
                    .collect();
                let ack = client.write(lpn, payloads.clone()).expect("write acked");
                assert_eq!(u64::from(ack.pages), pages, "{label} step {step}");
                for (i, p) in payloads.into_iter().enumerate() {
                    oracle.insert(lpn + i as u64, p);
                }
            }
            5..=7 => {
                let pages = 1 + rng.below(16);
                let lpn = rng.below(SPACE - pages);
                let got = client.read(lpn, pages as u32).expect("read");
                for (i, g) in got.iter().enumerate() {
                    assert_eq!(
                        g.as_ref(),
                        oracle.get(&(lpn + i as u64)),
                        "{label} step {step}: lpn {} diverged from oracle",
                        lpn + i as u64
                    );
                }
            }
            8 => {
                let pages = 1 + rng.below(8);
                let lpn = rng.below(SPACE - pages);
                client.trim(lpn, pages as u32).expect("trim");
                for l in lpn..lpn + pages {
                    oracle.remove(&l);
                }
            }
            _ => {
                client.flush().expect("flush");
            }
        }
    }
}

/// Full routed sweep: every page the oracle holds is readable with the
/// exact acked bytes, every page it does not hold is absent.
fn assert_state_matches(sg: &ShardedGateway, oracle: &HashMap<u64, Bytes>, label: &str) {
    for lpn in 0..SPACE {
        assert_eq!(
            sg.gateway().read_page(lpn).map(Bytes::from),
            oracle.get(&lpn).cloned(),
            "{label}: state diverged at lpn {lpn}"
        );
    }
}

fn run_one(seed: u64) {
    let sg =
        ShardedGateway::spawn_mem(GatewayConfig::test_profile(), RingConfig::default(), SHARDS);
    let ring0 = sg.gateway().ring().expect("ring");
    let bp = u64::from(ring0.block_pages());
    let mut client = sg.connect_mem_as(1);
    client.hello().expect("hello");
    let mut oracle: HashMap<u64, Bytes> = HashMap::new();
    let mut rng = DetRng::new(seed);
    let cfg = RebalanceConfig {
        batch_blocks: 4,
        inter_batch_pause: Duration::from_micros(50),
    };

    // Phase 1 — steady state on three pairs.
    drive(&mut client, &mut oracle, &mut rng, 1, "pre-scale");
    assert_sums_match(&sg, "pre-scale");

    // Phase 2 — live add. The plan is computed at a client-idle instant so
    // its minimality is exact: the ring diff restricted to occupied blocks.
    let (p3, s3) = fc_rebalance::spawn_mem_pair(SHARDS, ring0.block_pages());
    let new_shard = sg.attach_pair(p3, s3);
    assert_eq!(new_shard, SHARDS);
    let mut grown = ring0.clone();
    grown.add_pair(new_shard);
    let plan = fc_rebalance::plan(&sg, &grown).expect("plan");
    let occupied: HashSet<u64> = oracle.keys().map(|l| l / bp).collect();
    let expect: Vec<(u64, u16, u16)> = ring0
        .moved_blocks(&grown, SPACE / bp)
        .into_iter()
        .filter(|&(b, _, _)| occupied.contains(&b))
        .collect();
    assert_eq!(
        plan.moves, expect,
        "seed {seed}: plan must be exactly the occupied ring diff"
    );
    // Execute on a background thread while the workload keeps running.
    let report = std::thread::scope(|scope| {
        let migration = scope.spawn(|| fc_rebalance::execute(&sg, &plan, &cfg));
        drive(&mut client, &mut oracle, &mut rng, 2, "during-add");
        migration.join().expect("no panic").expect("scale up")
    });
    assert_eq!(report.from_epoch, ring0.epoch());
    assert_eq!(report.to_epoch, grown.epoch());
    assert_eq!(report.planned_blocks, plan.moves.len() as u64);
    assert!(
        report.moved_blocks >= report.planned_blocks,
        "seed {seed}: the begin-time fence can only grow the plan"
    );
    assert_eq!(sg.gateway().ring_epoch(), Some(grown.epoch()));
    assert!(!sg.gateway().rebalance_active());
    assert_state_matches(&sg, &oracle, "post-add");
    assert_sums_match(&sg, "post-add");

    // Phase 3 — live remove of the pair just added, same shape.
    let report = std::thread::scope(|scope| {
        let migration = scope.spawn(|| fc_rebalance::remove_pair(&sg, new_shard, &cfg));
        drive(&mut client, &mut oracle, &mut rng, 3, "during-remove");
        migration.join().expect("no panic").expect("scale down")
    });
    assert_eq!(report.to_epoch, grown.epoch() + 1);
    assert_eq!(
        sg.gateway().ring().expect("ring").members(),
        &[0, 1, 2],
        "seed {seed}: the ring must shrink back to the original members"
    );
    assert_state_matches(&sg, &oracle, "post-remove");
    assert_sums_match(&sg, "post-remove");

    // The retired pair hosts nothing; everything lives with the survivors.
    assert!(
        (0..SPACE).all(|l| sg.primary(new_shard).read(l).is_none()),
        "seed {seed}: retired pair still hosts data"
    );
    let stats = sg.stats();
    assert_eq!(stats.rebalances_started, 2);
    assert_eq!(stats.rebalances_completed, 2);
    assert_eq!(stats.shed_total, 0, "unlimited admission sheds nothing");
    assert_eq!(stats.bad_requests, 0);
    sg.shutdown();
}

/// Twenty seeds of grow-then-shrink under live load.
#[test]
fn elastic_membership_matches_oracle_across_twenty_seeds() {
    for seed in 0..20u64 {
        run_one(0xE1A5_7100 + seed);
    }
}
