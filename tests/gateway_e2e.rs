//! End-to-end gateway tests across the whole stack: real TCP clients →
//! fc-gateway sessions → fc-cluster pair (replication over an in-memory
//! peer link) → shared backend.
//!
//! Three contracts from the issue:
//!
//! 1. **Integrity** — with ≥8 concurrent TCP clients, every acknowledged
//!    write is readable back through the gateway with a byte-identical
//!    payload.
//! 2. **Determinism** — the in-memory loadgen variant produces identical
//!    final state (and identical tallies) for two runs with the same seed.
//! 3. **Saturation** — offered load past the queue-depth cap is shed with
//!    explicit `Busy` replies while in-flight stays bounded, all asserted
//!    via the `gateway.*` fc-obs counters; the loadgen's own shed tally
//!    matches the gateway counter exactly.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use fc_bench::loadgen::{self, payload, LoadgenSpec, Mode, TransportKind};
use fc_cluster::{mem_pair, shared_backend, MemBackend, Node, NodeConfig};
use fc_gateway::{AdmissionConfig, Gateway, GatewayClient, GatewayConfig};
use fc_obs::Obs;

fn spawn_pair() -> (Arc<Node>, Node) {
    let (ta, tb) = mem_pair();
    let backend = shared_backend(MemBackend::default());
    let a = Arc::new(Node::spawn(
        NodeConfig::test_profile(0),
        ta,
        backend.clone(),
    ));
    let b = Node::spawn(NodeConfig::test_profile(1), tb, backend);
    (a, b)
}

/// Contract 1: eight concurrent TCP clients; every acked write reads back
/// byte-identical through the same front door.
#[test]
fn eight_tcp_clients_every_acked_write_is_readable() {
    const CLIENTS: u64 = 8;
    const WRITES_PER_CLIENT: u64 = 120;
    const WINDOW: u64 = 1 << 12;
    const PAGE_BYTES: usize = 256;

    let (node_a, _node_b) = spawn_pair();
    let gw = Gateway::new(GatewayConfig::test_profile(), node_a);
    let addr = gw.listen_tcp("127.0.0.1:0").expect("listen");

    let mut handles = Vec::new();
    for c in 1..=CLIENTS {
        handles.push(std::thread::spawn(move || {
            let mut client = GatewayClient::connect_tcp(addr, c).expect("connect");
            client.hello().expect("hello");
            let base = c * WINDOW;
            // Mixed sizes: 1–3 pages per write, unique lpns per client so
            // every ack maps to exactly one expected payload.
            let mut acked: Vec<(u64, Bytes)> = Vec::new();
            let mut lpn = base;
            for seq in 0..WRITES_PER_CLIENT {
                let pages = 1 + (seq % 3);
                let payloads: Vec<Bytes> = (0..pages)
                    .map(|i| payload(c, lpn + i, seq, PAGE_BYTES))
                    .collect();
                let ack = client.write(lpn, payloads.clone()).expect("write acked");
                assert_eq!(u64::from(ack.pages), pages);
                for (i, p) in payloads.into_iter().enumerate() {
                    acked.push((lpn + i as u64, p));
                }
                lpn += pages;
                if seq == WRITES_PER_CLIENT / 2 {
                    client.flush().expect("flush barrier");
                }
            }
            // Read everything back through the same gateway session.
            for (lpn, want) in &acked {
                let got = client.read(*lpn, 1).expect("read acked page");
                let data = got[0]
                    .as_ref()
                    .unwrap_or_else(|| panic!("client {c}: acked write at lpn {lpn} unreadable"));
                assert_eq!(data, want, "client {c}: payload mismatch at lpn {lpn}");
            }
            acked.len() as u64
        }));
    }

    let mut total_pages = 0;
    for h in handles {
        total_pages += h.join().expect("client thread");
    }
    let stats = gw.stats();
    assert_eq!(stats.sessions_started, CLIENTS);
    assert_eq!(stats.shed_total, 0, "unlimited admission sheds nothing");
    assert_eq!(stats.writes, CLIENTS * WRITES_PER_CLIENT);
    assert_eq!(stats.write_pages, total_pages);
    assert_eq!(stats.flushes, CLIENTS);
    assert!(stats.batches >= 1 && stats.batches <= stats.writes);
    gw.shutdown();
}

/// Contract 2: the in-memory variant is deterministic — two loadgen runs
/// with the same seed end in byte-identical node state and equal tallies.
#[test]
fn mem_loadgen_is_deterministic_under_fixed_seed() {
    let spec = LoadgenSpec {
        clients: 4,
        requests: 150,
        seed: 42,
        mode: Mode::Closed,
        transport: TransportKind::Mem,
        admission: AdmissionConfig::unlimited(),
        pages_per_client: 1 << 10,
        ..LoadgenSpec::default()
    };
    let r1 = loadgen::run(&spec).expect("run 1");
    let r2 = loadgen::run(&spec).expect("run 2");

    assert_eq!(r1.errors, 0);
    assert_eq!(r2.errors, 0);
    assert_eq!(r1.issued, r2.issued);
    assert_eq!(r1.acked, r2.acked, "no shedding ⇒ identical ack sets");
    assert_eq!((r1.shed, r2.shed), (0, 0));
    assert_eq!(
        r1.state_digest, r2.state_digest,
        "same seed ⇒ byte-identical final state"
    );
    assert_eq!(r1.gateway.write_pages, r2.gateway.write_pages);
    assert_eq!(r1.gateway.trims, r2.gateway.trims);

    // A different seed must disturb the digest (the digest is not a
    // constant function).
    let r3 = loadgen::run(&LoadgenSpec { seed: 43, ..spec }).expect("run 3");
    assert_ne!(r1.state_digest, r3.state_digest);
}

/// Contract 3a: flooding past the queue-depth cap sheds with `Busy`, keeps
/// in-flight bounded, and the `gateway.*` registry counters tell the same
/// story as the client-side tallies.
#[test]
fn saturation_sheds_busy_and_bounds_inflight() {
    const CAP: u32 = 3;
    const CLIENTS: u64 = 8;
    const WRITES_PER_CLIENT: u64 = 60;

    let (node_a, _node_b) = spawn_pair();
    let cfg = GatewayConfig {
        admission: AdmissionConfig {
            per_client_rate: f64::INFINITY,
            per_client_burst: f64::INFINITY,
            max_inflight: CAP,
        },
        ..GatewayConfig::default()
    };
    let gw = Gateway::new(cfg, node_a);
    let obs = Obs::null();
    gw.attach_obs(&obs);

    let mut handles = Vec::new();
    for c in 1..=CLIENTS {
        let mut client = gw.connect_mem_as(c);
        handles.push(std::thread::spawn(move || {
            client.hello().expect("hello");
            // Pipeline everything before collecting a single reply: the
            // offered load vastly exceeds CAP concurrent requests.
            let mut ids = Vec::new();
            for seq in 0..WRITES_PER_CLIENT {
                let lpn = c * 1_000 + seq;
                let id = client
                    .send_write(lpn, vec![payload(c, lpn, seq, 128)])
                    .expect("send");
                ids.push((id, lpn, seq));
            }
            let mut acked: Vec<u64> = Vec::new();
            let mut shed = 0u64;
            for (id, lpn, _seq) in ids {
                let reply = client
                    .recv_reply(Duration::from_secs(10))
                    .expect("reply before timeout");
                assert_eq!(reply.id(), id, "per-session replies stay in order");
                match reply {
                    fc_gateway::Reply::WriteOk { .. } => acked.push(lpn),
                    fc_gateway::Reply::Error { code, .. } => {
                        assert_eq!(code, fc_gateway::ErrorCode::Busy);
                        shed += 1;
                    }
                    other => panic!("unexpected reply {other:?}"),
                }
            }
            (acked, shed)
        }));
    }

    let mut client_shed = 0u64;
    let mut acked_lpns: Vec<(u64, u64)> = Vec::new(); // (client, lpn)
    for (idx, h) in handles.into_iter().enumerate() {
        let (acked, shed) = h.join().expect("client thread");
        client_shed += shed;
        for lpn in acked {
            acked_lpns.push((idx as u64 + 1, lpn));
        }
    }

    // The final permit is released just *after* the last reply is sent —
    // give the session threads a moment to drain.
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while gw.stats().inflight != 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = gw.stats();
    let snap = obs.registry().snapshot();

    // The cap actually bit: offered load (8 clients × pipelined writes)
    // exceeded CAP concurrent requests, so something was shed…
    assert!(client_shed > 0, "saturation must shed");
    // …with in-flight bounded the whole time.
    assert!(
        stats.max_inflight_seen <= CAP,
        "max in-flight {} exceeded cap {CAP}",
        stats.max_inflight_seen
    );
    assert_eq!(stats.inflight, 0, "everything drained");

    // Client-observed sheds match the fc-obs counters exactly.
    assert_eq!(snap.counter("gateway.shed_total"), Some(client_shed));
    assert_eq!(snap.counter("gateway.shed_queue_full"), Some(client_shed));
    assert_eq!(snap.counter("gateway.shed_rate_limited"), Some(0));
    assert_eq!(
        snap.counter("gateway.requests"),
        Some(CLIENTS * WRITES_PER_CLIENT)
    );
    assert_eq!(
        snap.counter("gateway.admitted"),
        Some(CLIENTS * WRITES_PER_CLIENT - client_shed)
    );
    assert_eq!(stats.shed_total, client_shed);

    // Every acked write under saturation is still durable and intact.
    let mut by_lpn: HashMap<u64, u64> = HashMap::new();
    for (c, lpn) in &acked_lpns {
        by_lpn.insert(*lpn, *c);
    }
    for (lpn, c) in by_lpn {
        let seq = lpn - c * 1_000;
        let got = gw.node().read(lpn).expect("acked write readable");
        assert_eq!(Bytes::from(got), payload(c, lpn, seq, 128));
    }
    gw.shutdown();
}

/// Contract 3b: the loadgen's reported shed count matches the gateway
/// counter exactly when the queue-depth cap is the bottleneck.
#[test]
fn loadgen_shed_rate_matches_gateway_counter_under_saturation() {
    let spec = LoadgenSpec {
        clients: 6,
        requests: 80,
        mode: Mode::Open,
        transport: TransportKind::Mem,
        rate_factor: 1e9, // fire the whole schedule immediately
        admission: AdmissionConfig {
            per_client_rate: f64::INFINITY,
            per_client_burst: f64::INFINITY,
            max_inflight: 2,
        },
        pages_per_client: 1 << 10,
        ..LoadgenSpec::default()
    };
    let report = loadgen::run(&spec).expect("run");
    assert_eq!(report.errors, 0);
    assert_eq!(report.issued, 480);
    assert_eq!(report.acked + report.shed, report.issued);
    assert_eq!(
        report.shed, report.gateway.shed_total,
        "loadgen shed tally and gateway.shed_total agree exactly"
    );
    assert_eq!(report.gateway.shed_rate_limited, 0);
    assert_eq!(report.gateway.shed_queue_full, report.shed);
    assert!(report.gateway.max_inflight_seen <= 2, "in-flight bounded");
    let reported_rate = report.shed_rate();
    let counter_rate = report.gateway.shed_total as f64 / report.issued as f64;
    assert!((reported_rate - counter_rate).abs() < f64::EPSILON);
}
