//! Concurrency stress for the replication pipeline: many writers driving
//! batched replication with the in-flight window saturated, while a
//! sampler thread snapshots counters *mid-flight* and asserts the
//! accounting identities at every single snapshot.
//!
//! Two identities from the issue:
//!
//! 1. [`fc_cluster::NodeStats::writes_balance`] — `writes` always equals
//!    `replicated_pages + write_through`, because a node commits a write
//!    and its outcome under one lock acquisition.
//! 2. The gateway's 11-counter sum identity
//!    ([`fc_gateway::ShardStatsSum::matches`]) — Σ `gateway.shard.{i}.*`
//!    equals the aggregate `gateway.*` at every
//!    [`fc_gateway::ShardedGateway::stats_with_shards`] snapshot, because
//!    paired shard/aggregate bumps commit under the stats-commit guard.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use bytes::Bytes;
use fc_cluster::{mem_pair, shared_backend, MemBackend, Node, NodeConfig};
use fc_gateway::{GatewayConfig, ShardStatsSum, ShardedGateway};
use fc_ring::RingConfig;
use fc_simkit::DetRng;

const PAGE_BYTES: usize = 128;

/// A pipeline profile that keeps the window *full*: batches are small and
/// only two may be unacknowledged, so writers spend most of their time
/// enqueued behind window backpressure — the regime where a racy counter
/// commit would be caught.
fn windowed_config(id: u8) -> NodeConfig {
    let mut cfg = NodeConfig::test_profile(id);
    cfg.repl_batch_pages = 4;
    cfg.repl_window = 2;
    // Size the pools above the working set so writes exercise the
    // replication path instead of degrading to write-through.
    cfg.buffer_pages = 8192;
    cfg.remote_capacity = 16384;
    cfg
}

fn page(seed: u64, i: u64) -> Bytes {
    let mut v = vec![0u8; PAGE_BYTES];
    v[..8].copy_from_slice(&(seed ^ i).to_le_bytes());
    Bytes::from(v)
}

/// Four writers hammer one node with mixed single-page writes and 8-page
/// runs; a sampler asserts `writes_balance` on every concurrent snapshot.
#[test]
fn multi_writer_stress_holds_writes_balance_at_every_snapshot() {
    const WRITERS: u64 = 4;
    const ROUNDS: u64 = 120;
    const RUN_PAGES: u64 = 8;

    let (ta, tb) = mem_pair();
    let backend = shared_backend(MemBackend::default());
    let a = Arc::new(Node::spawn(windowed_config(0), ta, backend.clone()));
    let b = Node::spawn(windowed_config(1), tb, backend);

    let stop = Arc::new(AtomicBool::new(false));
    let sampler = {
        let a = Arc::clone(&a);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut snapshots = 0u64;
            while !stop.load(Ordering::SeqCst) {
                let s = a.stats();
                assert!(
                    s.writes_balance(),
                    "snapshot {snapshots}: writes {} != replicated {} + write_through {}",
                    s.writes,
                    s.replicated_pages,
                    s.write_through
                );
                snapshots += 1;
            }
            snapshots
        })
    };

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let a = Arc::clone(&a);
            thread::spawn(move || {
                let mut rng = DetRng::new(w + 1);
                for round in 0..ROUNDS {
                    // Disjoint per-writer lpn regions; runs and singles mix.
                    let base = w * 1024 + rng.below(512);
                    if round % 3 == 0 {
                        let _ = a.write(base, &page(w, round));
                    } else {
                        let pages: Vec<Bytes> =
                            (0..RUN_PAGES).map(|i| page(w, round * 64 + i)).collect();
                        let _ = a.write_run(w, base, &pages);
                    }
                }
            })
        })
        .collect();
    for h in writers {
        h.join().unwrap();
    }
    stop.store(true, Ordering::SeqCst);
    let snapshots = sampler.join().unwrap();
    assert!(
        snapshots > 100,
        "sampler barely ran ({snapshots} snapshots)"
    );

    let s = a.stats();
    assert!(s.writes_balance());
    let singles = WRITERS * ROUNDS.div_ceil(3);
    let runs = WRITERS * (ROUNDS - ROUNDS.div_ceil(3));
    assert_eq!(s.writes, singles + runs * RUN_PAGES, "every write counted");
    // The stress actually drove the batched pipeline: multi-page frames
    // went out, and the tiny window forced backpressure stalls.
    assert!(s.repl.batches_sent > 0, "no batched frames sent");
    assert!(
        s.repl.batch_pages > s.repl.batches_sent,
        "batches never coalesced more than one page"
    );
    // Clean link: no retries, no dedup/reorder healing, no credit stalls.
    assert_eq!(s.repl.retries, 0);
    assert_eq!(s.repl.dups_dropped, 0);
    assert_eq!(s.repl.corruptions_detected, 0);
    assert_eq!(s.repl.credit_stalls, 0);

    Arc::try_unwrap(a).ok().expect("writers done").shutdown();
    b.shutdown();
}

/// Four clients drive a 4-shard gateway (writes, reads, trims, flushes)
/// while the main thread takes combined snapshots; the 11-counter sum
/// identity must hold at every one, mid-flight included.
#[test]
fn sharded_gateway_counter_sums_match_at_every_snapshot() {
    const SHARDS: u16 = 4;
    const CLIENTS: u64 = 4;
    const STEPS: u64 = 150;
    const SPACE: u64 = 512;

    let sg = Arc::new(ShardedGateway::spawn_mem_with(
        GatewayConfig::test_profile(),
        RingConfig::default(),
        SHARDS,
        |cfg| {
            cfg.repl_batch_pages = 4;
            cfg.repl_window = 2;
            cfg.buffer_pages = 8192;
            cfg.remote_capacity = 16384;
        },
    ));

    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let sg = Arc::clone(&sg);
            thread::spawn(move || {
                let mut client = sg.connect_mem_as(c + 1);
                client.hello().expect("hello");
                let mut rng = DetRng::new(0xBEEF + c);
                let mut acked: HashMap<u64, Bytes> = HashMap::new();
                for step in 0..STEPS {
                    match rng.below(10) {
                        0..=5 => {
                            let pages = 1 + rng.below(6);
                            let lpn = rng.below(SPACE - pages);
                            let payloads: Vec<Bytes> =
                                (0..pages).map(|i| page(c, step * 64 + i)).collect();
                            let ack = client.write(lpn, payloads.clone()).expect("write");
                            assert_eq!(u64::from(ack.pages), pages);
                            for (i, p) in payloads.into_iter().enumerate() {
                                acked.insert(lpn + i as u64, p);
                            }
                        }
                        6..=7 => {
                            // Concurrent writers race on content, so reads
                            // only feed the read_pages/read_hits columns.
                            let pages = 1 + rng.below(8);
                            let lpn = rng.below(SPACE - pages);
                            let got = client.read(lpn, pages as u32).expect("read");
                            assert_eq!(got.len(), pages as usize);
                        }
                        8 => {
                            let pages = 1 + rng.below(4);
                            let lpn = rng.below(SPACE - pages);
                            client.trim(lpn, pages as u32).expect("trim");
                            for l in lpn..lpn + pages {
                                acked.remove(&l);
                            }
                        }
                        _ => {
                            client.flush().expect("flush");
                        }
                    }
                }
            })
        })
        .collect();

    // Sample until every client finishes; each combined snapshot must
    // satisfy the identity exactly, no matter what is in flight.
    let mut snapshots = 0u64;
    let mut done = false;
    while !done {
        done = clients.iter().all(|h| h.is_finished());
        let (g, shards) = sg.stats_with_shards();
        if let Err((name, sum, total)) = ShardStatsSum::of(&shards).matches(&g) {
            panic!("snapshot {snapshots}: Σ shard.{name} = {sum} != gateway.{name} = {total}");
        }
        snapshots += 1;
    }
    for h in clients {
        h.join().unwrap();
    }
    assert!(
        snapshots > 100,
        "sampler barely ran ({snapshots} snapshots)"
    );

    // Quiesced end state: identity still exact, and traffic really moved
    // through every shard.
    let (g, shards) = sg.stats_with_shards();
    ShardStatsSum::of(&shards)
        .matches(&g)
        .unwrap_or_else(|(name, sum, total)| {
            panic!("final: Σ shard.{name} = {sum} != gateway.{name} = {total}")
        });
    assert!(g.write_pages > 0 && g.read_pages > 0 && g.trim_pages > 0);
    for (i, s) in shards.iter().enumerate() {
        assert!(
            s.ops > 0,
            "shard {i} never served an op — workload not spread"
        );
    }
    Arc::try_unwrap(sg).ok().expect("clients done").shutdown();
}
