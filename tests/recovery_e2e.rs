//! Failure-recovery soak tests for the simulated cooperative pair, and
//! full-lifecycle end-to-end tests for the threaded pair.
//!
//! The invariant under test is the paper's consistency claim (Section III.D):
//! "With this failure recovery mechanism, FlashCoop can successfully
//! maintain data consistency" — concretely, **no acknowledged write is ever
//! unrecoverable**, across crashes, recoveries, and double-length outages,
//! for any injection schedule. The threaded tests at the bottom walk the
//! real pair through the whole lifecycle — fail → takeover → solo →
//! resync → Paired — over faulted links, including payload corruption.

use fc_simkit::{DetRng, SimDuration, SimTime};
use fc_ssd::FtlKind;
use fc_trace::{IoRequest, Op, Trace};
use flashcoop::{CoopPair, CoopServer, FlashCoopConfig, Injection, PairEvent, PolicyKind, Scheme};

fn cfg() -> FlashCoopConfig {
    let mut c = FlashCoopConfig::tiny(FtlKind::PageLevel, PolicyKind::Lar);
    c.buffer_pages = 48;
    c
}

fn device_pages() -> u64 {
    CoopServer::new(cfg(), Scheme::Baseline)
        .ssd()
        .logical_pages()
}

fn trace(pages: u64, n: usize, write_frac: f64, seed: u64) -> Trace {
    let mut rng = DetRng::new(seed);
    let mut t = Trace::new(format!("t{seed}"));
    let mut now = SimTime::ZERO;
    for _ in 0..n {
        now += SimDuration::from_millis(10 + rng.below(20));
        let op = if rng.chance(write_frac) {
            Op::Write
        } else {
            Op::Read
        };
        t.push(IoRequest {
            at: now,
            lpn: rng.below(pages - 2),
            pages: 1,
            op,
        });
    }
    t
}

fn assert_nothing_lost(pair: &CoopPair, label: &str) {
    let lost = pair.unrecoverable();
    assert!(
        lost.is_empty(),
        "{label}: lost acknowledged writes {lost:?}"
    );
}

#[test]
fn crash_of_either_server_loses_nothing() {
    let pages = device_pages();
    for victim in 0..2usize {
        let t0 = trace(pages, 500, 0.9, 10);
        let t1 = trace(pages, 500, 0.9, 11);
        let crash_at = t0.requests[250].at;
        let mut pair = CoopPair::new(cfg(), cfg(), false);
        pair.replay(
            [&t0, &t1],
            &[Injection {
                at: crash_at,
                event: PairEvent::Crash(victim),
            }],
        );
        assert!(!pair.is_alive(victim));
        assert_nothing_lost(&pair, &format!("crash({victim})"));
    }
}

#[test]
fn crash_then_recovery_restores_service_and_data() {
    let pages = device_pages();
    let t0 = trace(pages, 700, 0.9, 20);
    let t1 = trace(pages, 700, 0.5, 21);
    let crash_at = t0.requests[200].at;
    let recover_at = crash_at + SimDuration::from_secs(25);
    let mut pair = CoopPair::new(cfg(), cfg(), false);
    pair.replay(
        [&t0, &t1],
        &[
            Injection {
                at: crash_at,
                event: PairEvent::Crash(0),
            },
            Injection {
                at: recover_at,
                event: PairEvent::Recover(0),
            },
        ],
    );
    assert!(pair.is_alive(0));
    assert!(
        !pair.server(1).is_degraded(),
        "peer must resume replication"
    );
    // The recovered server served requests after its reboot.
    assert!(pair.server(0).metrics().writes > 0);
    assert_nothing_lost(&pair, "crash+recover");
}

#[test]
fn repeated_crash_recover_cycles_stay_consistent() {
    let pages = device_pages();
    let t0 = trace(pages, 1_200, 0.9, 30);
    let t1 = trace(pages, 1_200, 0.9, 31);
    let start = t0.requests[0].at;
    let mut injections = Vec::new();
    // Strictly sequential outages (the paper's fault model is single-failure,
    // "same as RAID 1"): each victim recovers before the next crash.
    for (i, victim) in [0usize, 1, 0].iter().enumerate() {
        let at = start + SimDuration::from_secs(5 + 8 * i as u64);
        injections.push(Injection {
            at,
            event: PairEvent::Crash(*victim),
        });
        injections.push(Injection {
            at: at + SimDuration::from_secs(4),
            event: PairEvent::Recover(*victim),
        });
    }
    let mut pair = CoopPair::new(cfg(), cfg(), false);
    pair.replay([&t0, &t1], &injections);
    assert!(pair.is_alive(0) && pair.is_alive(1));
    assert_nothing_lost(&pair, "3 crash/recover cycles");
}

#[test]
fn randomised_injection_schedules_never_lose_data() {
    let pages = device_pages();
    for seed in 0..8u64 {
        let mut rng = DetRng::new(1_000 + seed);
        let t0 = trace(pages, 400, 0.9, 40 + seed);
        let t1 = trace(pages, 400, 0.9, 60 + seed);
        let dur = t0.duration().as_nanos();
        let mut injections = Vec::new();
        let mut alive = [true, true];
        let mut at = SimTime::ZERO + SimDuration::from_nanos(rng.below(dur / 2));
        // Random alternating schedule; never crash both at once (the paper's
        // fault model, "same as RAID 1").
        for _ in 0..4 {
            let victim = rng.below(2) as usize;
            if alive[victim] && alive[1 - victim] {
                injections.push(Injection {
                    at,
                    event: PairEvent::Crash(victim),
                });
                alive[victim] = false;
            } else if !alive[victim] {
                injections.push(Injection {
                    at,
                    event: PairEvent::Recover(victim),
                });
                alive[victim] = true;
            }
            at += SimDuration::from_secs(10 + rng.below(30));
        }
        let mut pair = CoopPair::new(cfg(), cfg(), false);
        pair.replay([&t0, &t1], &injections);
        assert_nothing_lost(&pair, &format!("random schedule seed {seed}"));
    }
}

#[test]
fn degraded_mode_writes_are_immediately_durable() {
    let pages = device_pages();
    let t0 = trace(pages, 400, 1.0, 70);
    let t1 = trace(pages, 400, 1.0, 71);
    let crash_at = t1.requests[50].at;
    let mut pair = CoopPair::new(cfg(), cfg(), false);
    pair.replay(
        [&t0, &t1],
        &[Injection {
            at: crash_at,
            event: PairEvent::Crash(1),
        }],
    );
    // Server 0 finished the run degraded; every write it acknowledged after
    // the crash is already on its own SSD (write-through), so even the loss
    // of its buffer right now would be safe.
    assert!(pair.server(0).is_degraded());
    assert!(pair.server(0).unrecoverable_pages(None).is_empty());
}

#[test]
fn dynamic_allocation_keeps_consistency_under_failures() {
    let pages = device_pages();
    let mut c = cfg();
    c.alloc.period = SimDuration::from_millis(500);
    let t0 = trace(pages, 800, 0.9, 80);
    let t1 = trace(pages, 800, 0.3, 81);
    let crash_at = t0.requests[400].at;
    let recover_at = crash_at + SimDuration::from_secs(25);
    let mut pair = CoopPair::new(c.clone(), c, true);
    pair.replay(
        [&t0, &t1],
        &[
            Injection {
                at: crash_at,
                event: PairEvent::Crash(1),
            },
            Injection {
                at: recover_at,
                event: PairEvent::Recover(1),
            },
        ],
    );
    assert!(!pair.theta_log(0).is_empty(), "allocation loop ran");
    assert_nothing_lost(&pair, "dynamic alloc + failures");
}

// ---------------------------------------------------------------------------
// Threaded pair: full lifecycle over faulted links
// ---------------------------------------------------------------------------

mod threaded {
    use fc_cluster::{
        mem_pair, shared_backend, FaultPlan, FaultTransport, MemBackend, Node, NodeConfig,
        PairState, WriteOutcome,
    };
    use fc_simkit::DetRng;
    use std::collections::HashMap;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    fn wait_until(mut cond: impl FnMut() -> bool, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        cond()
    }

    /// The whole arc, deterministically: a paired pair replicates; a
    /// partition (longer than the failure timeout) takes both nodes solo
    /// and the survivor destages the pages it hosts; solo writes land in
    /// the journal; the partition heals, the journal streams across, and
    /// both nodes walk back to Paired with byte-exact data on both ends.
    #[test]
    fn full_lifecycle_fail_takeover_resync_rejoin() {
        let start = Duration::from_millis(150);
        let window = Duration::from_millis(400); // > failure_timeout (200ms)
        let (ta, tb) = mem_pair();
        let fa = Arc::new(FaultTransport::new(
            ta,
            FaultPlan::new(7).with_partition_for(start, window),
        ));
        let fb = Arc::new(FaultTransport::new(
            tb,
            FaultPlan::new(8).with_partition_for(start, window),
        ));
        let ba = shared_backend(MemBackend::new());
        let bb = shared_backend(MemBackend::new());
        let a = Node::spawn(NodeConfig::test_profile(0), fa.clone(), ba.clone());
        let b = Node::spawn(NodeConfig::test_profile(1), fb.clone(), bb);

        // Phase 1 — Paired: replicated writes land in B's remote buffer.
        let mut expected: HashMap<u64, Vec<u8>> = HashMap::new();
        for lpn in 0..8u64 {
            let content = format!("paired-{lpn}").into_bytes();
            assert_eq!(a.write(lpn, &content), WriteOutcome::Replicated);
            expected.insert(lpn, content);
        }
        assert!(wait_until(
            || b.hosted_remote_pages().len() == 8,
            Duration::from_secs(1)
        ));
        assert_eq!(a.lifecycle_state(), PairState::Paired);

        // Phase 2 — the partition opens; both sides detect the silence and
        // go Solo; B (the survivor hosting A's pages) destages them.
        assert!(
            wait_until(
                || a.lifecycle_state() == PairState::Solo && b.lifecycle_state() == PairState::Solo,
                Duration::from_secs(2)
            ),
            "partition never took the pair solo: a={:?} b={:?}",
            a.lifecycle_state(),
            b.lifecycle_state()
        );
        assert_eq!(
            b.stats().repl.takeover_destages,
            8,
            "survivor must destage every hosted page"
        );
        // Takeover keeps the pages reachable for A's recovery.
        assert_eq!(b.hosted_remote_pages().len(), 8);

        // Phase 3 — Solo: writes go write-through and into the journal.
        for lpn in 100..106u64 {
            let content = format!("solo-{lpn}").into_bytes();
            assert_eq!(a.write(lpn, &content), WriteOutcome::WriteThrough);
            expected.insert(lpn, content);
        }
        assert!(a.journal_len() >= 6, "solo writes must be journaled");
        assert!(a.is_degraded());

        // Phase 4 — the partition heals; heartbeats resume; the journal
        // streams across and both sides cut back over to Paired.
        assert!(
            wait_until(
                || a.lifecycle_state() == PairState::Paired
                    && b.lifecycle_state() == PairState::Paired,
                Duration::from_secs(3)
            ),
            "pair never re-formed: a={:?} b={:?}",
            a.lifecycle_state(),
            b.lifecycle_state()
        );
        assert!(wait_until(|| a.journal_len() == 0, Duration::from_secs(1)));

        // Every write — paired-phase and solo-phase — is hosted at B
        // byte-for-byte (remote buffer ∪ taken-over set).
        assert!(wait_until(
            || b.hosted_remote_pages().len() == expected.len(),
            Duration::from_secs(1)
        ));
        for (lpn, _ver, data) in b.export_remote() {
            assert_eq!(
                Some(data.as_slice()),
                expected.get(&lpn).map(|c| c.as_slice()),
                "B hosts wrong bytes for lpn {lpn}"
            );
        }
        // And A serves everything it acknowledged.
        for (lpn, content) in &expected {
            assert_eq!(a.read(*lpn).as_deref(), Some(content.as_slice()));
        }
        let sa = a.stats();
        assert!(sa.repl.resync_batches >= 1, "resync must have streamed");
        assert_eq!(sa.repl.resync_pages, 6);
        // Solo entry + resync start + resync complete ≥ 3 lifecycle edges.
        assert!(sa.repl.lifecycle_transitions >= 3);
        assert!(sa.writes_balance());
        a.shutdown();
        b.shutdown();
    }

    /// 20-seed sweep with 5 % payload corruption on top of the partition:
    /// zero acked-write loss, every injected corruption detected by the
    /// receiver's checksum, and no corrupted payload ever acked or
    /// destaged — everything either end holds is byte-exact.
    #[test]
    fn corruption_sweep_loses_nothing_and_detects_everything() {
        let start = Duration::from_millis(100);
        let window = Duration::from_millis(350);
        let mut total_injected = 0u64;
        for seed in 1..=20u64 {
            let (ta, tb) = mem_pair();
            let fa = Arc::new(FaultTransport::new(
                ta,
                FaultPlan::new(seed)
                    .with_partition_for(start, window)
                    .with_corrupt(0.05),
            ));
            let fb = Arc::new(FaultTransport::new(
                tb,
                FaultPlan::new(seed ^ 0xD00D).with_partition_for(start, window),
            ));
            let ba = shared_backend(MemBackend::new());
            let bb = shared_backend(MemBackend::new());
            let a = Node::spawn(NodeConfig::test_profile(0), fa.clone(), ba.clone());
            let b = Node::spawn(NodeConfig::test_profile(1), fb.clone(), bb);

            let mut expected: HashMap<u64, Vec<u8>> = HashMap::new();
            let mut rng = DetRng::new(seed);
            // Paired phase under corruption: damaged replications are
            // NACKed and resent clean.
            for i in 0..15u64 {
                let lpn = rng.below(30);
                let content = format!("e{seed}-w{i}-l{lpn}").into_bytes();
                let _ = a.write(lpn, &content);
                expected.insert(lpn, content);
            }
            // Partition → Solo; journaled writes.
            assert!(
                wait_until(
                    || a.lifecycle_state() == PairState::Solo,
                    Duration::from_secs(2)
                ),
                "seed {seed}: node A never went solo"
            );
            for lpn in 30..45u64 {
                let content = format!("e{seed}-solo-l{lpn}").into_bytes();
                let _ = a.write(lpn, &content);
                expected.insert(lpn, content);
            }
            // Heal → resync (batches may be corrupted in flight) → Paired.
            assert!(
                wait_until(
                    || a.lifecycle_state() == PairState::Paired
                        && b.lifecycle_state() == PairState::Paired,
                    Duration::from_secs(5)
                ),
                "seed {seed}: pair never re-formed (a={:?}, b={:?})",
                a.lifecycle_state(),
                b.lifecycle_state()
            );
            assert!(
                wait_until(|| a.journal_len() == 0, Duration::from_secs(2)),
                "seed {seed}: journal never drained"
            );
            // Accounting: detected == injected, exactly.
            assert!(
                wait_until(
                    || b.stats().repl.corruptions_detected == fa.fault_stats().corrupted,
                    Duration::from_secs(2)
                ),
                "seed {seed}: detected {} != injected {}",
                b.stats().repl.corruptions_detected,
                fa.fault_stats().corrupted
            );
            total_injected += fa.fault_stats().corrupted;

            // Zero acked-write loss, byte-for-byte, at the writer…
            for (lpn, content) in &expected {
                assert_eq!(
                    a.read(*lpn).as_deref(),
                    Some(content.as_slice()),
                    "seed {seed}: lpn {lpn} lost or stale at A"
                );
            }
            // …and nothing corrupted was ever acked or destaged at the
            // peer: every byte B holds for A matches what A wrote.
            for (lpn, _ver, data) in b.export_remote() {
                assert_eq!(
                    Some(data.as_slice()),
                    expected.get(&lpn).map(|c| c.as_slice()),
                    "seed {seed}: B hosts corrupted bytes for lpn {lpn}"
                );
            }
            assert!(a.stats().writes_balance(), "seed {seed}: stats imbalance");
            a.shutdown();
            b.shutdown();
        }
        assert!(total_injected > 0, "sweep injected no corruption");
    }
}
