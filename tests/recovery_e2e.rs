//! Failure-recovery soak tests for the simulated cooperative pair.
//!
//! The invariant under test is the paper's consistency claim (Section III.D):
//! "With this failure recovery mechanism, FlashCoop can successfully
//! maintain data consistency" — concretely, **no acknowledged write is ever
//! unrecoverable**, across crashes, recoveries, and double-length outages,
//! for any injection schedule.

use fc_simkit::{DetRng, SimDuration, SimTime};
use fc_ssd::FtlKind;
use fc_trace::{IoRequest, Op, Trace};
use flashcoop::{
    CoopPair, CoopServer, FlashCoopConfig, Injection, PairEvent, PolicyKind, Scheme,
};

fn cfg() -> FlashCoopConfig {
    let mut c = FlashCoopConfig::tiny(FtlKind::PageLevel, PolicyKind::Lar);
    c.buffer_pages = 48;
    c
}

fn device_pages() -> u64 {
    CoopServer::new(cfg(), Scheme::Baseline).ssd().logical_pages()
}

fn trace(pages: u64, n: usize, write_frac: f64, seed: u64) -> Trace {
    let mut rng = DetRng::new(seed);
    let mut t = Trace::new(format!("t{seed}"));
    let mut now = SimTime::ZERO;
    for _ in 0..n {
        now += SimDuration::from_millis(10 + rng.below(20));
        let op = if rng.chance(write_frac) { Op::Write } else { Op::Read };
        t.push(IoRequest {
            at: now,
            lpn: rng.below(pages - 2),
            pages: 1,
            op,
        });
    }
    t
}

fn assert_nothing_lost(pair: &CoopPair, label: &str) {
    let lost = pair.unrecoverable();
    assert!(lost.is_empty(), "{label}: lost acknowledged writes {lost:?}");
}

#[test]
fn crash_of_either_server_loses_nothing() {
    let pages = device_pages();
    for victim in 0..2usize {
        let t0 = trace(pages, 500, 0.9, 10);
        let t1 = trace(pages, 500, 0.9, 11);
        let crash_at = t0.requests[250].at;
        let mut pair = CoopPair::new(cfg(), cfg(), false);
        pair.replay(
            [&t0, &t1],
            &[Injection {
                at: crash_at,
                event: PairEvent::Crash(victim),
            }],
        );
        assert!(!pair.is_alive(victim));
        assert_nothing_lost(&pair, &format!("crash({victim})"));
    }
}

#[test]
fn crash_then_recovery_restores_service_and_data() {
    let pages = device_pages();
    let t0 = trace(pages, 700, 0.9, 20);
    let t1 = trace(pages, 700, 0.5, 21);
    let crash_at = t0.requests[200].at;
    let recover_at = crash_at + SimDuration::from_secs(25);
    let mut pair = CoopPair::new(cfg(), cfg(), false);
    pair.replay(
        [&t0, &t1],
        &[
            Injection { at: crash_at, event: PairEvent::Crash(0) },
            Injection { at: recover_at, event: PairEvent::Recover(0) },
        ],
    );
    assert!(pair.is_alive(0));
    assert!(!pair.server(1).is_degraded(), "peer must resume replication");
    // The recovered server served requests after its reboot.
    assert!(pair.server(0).metrics().writes > 0);
    assert_nothing_lost(&pair, "crash+recover");
}

#[test]
fn repeated_crash_recover_cycles_stay_consistent() {
    let pages = device_pages();
    let t0 = trace(pages, 1_200, 0.9, 30);
    let t1 = trace(pages, 1_200, 0.9, 31);
    let start = t0.requests[0].at;
    let mut injections = Vec::new();
    // Strictly sequential outages (the paper's fault model is single-failure,
    // "same as RAID 1"): each victim recovers before the next crash.
    for (i, victim) in [0usize, 1, 0].iter().enumerate() {
        let at = start + SimDuration::from_secs(5 + 8 * i as u64);
        injections.push(Injection { at, event: PairEvent::Crash(*victim) });
        injections.push(Injection {
            at: at + SimDuration::from_secs(4),
            event: PairEvent::Recover(*victim),
        });
    }
    let mut pair = CoopPair::new(cfg(), cfg(), false);
    pair.replay([&t0, &t1], &injections);
    assert!(pair.is_alive(0) && pair.is_alive(1));
    assert_nothing_lost(&pair, "3 crash/recover cycles");
}

#[test]
fn randomised_injection_schedules_never_lose_data() {
    let pages = device_pages();
    for seed in 0..8u64 {
        let mut rng = DetRng::new(1_000 + seed);
        let t0 = trace(pages, 400, 0.9, 40 + seed);
        let t1 = trace(pages, 400, 0.9, 60 + seed);
        let dur = t0.duration().as_nanos();
        let mut injections = Vec::new();
        let mut alive = [true, true];
        let mut at = SimTime::ZERO + SimDuration::from_nanos(rng.below(dur / 2));
        // Random alternating schedule; never crash both at once (the paper's
        // fault model, "same as RAID 1").
        for _ in 0..4 {
            let victim = rng.below(2) as usize;
            if alive[victim] && alive[1 - victim] {
                injections.push(Injection { at, event: PairEvent::Crash(victim) });
                alive[victim] = false;
            } else if !alive[victim] {
                injections.push(Injection { at, event: PairEvent::Recover(victim) });
                alive[victim] = true;
            }
            at += SimDuration::from_secs(10 + rng.below(30));
        }
        let mut pair = CoopPair::new(cfg(), cfg(), false);
        pair.replay([&t0, &t1], &injections);
        assert_nothing_lost(&pair, &format!("random schedule seed {seed}"));
    }
}

#[test]
fn degraded_mode_writes_are_immediately_durable() {
    let pages = device_pages();
    let t0 = trace(pages, 400, 1.0, 70);
    let t1 = trace(pages, 400, 1.0, 71);
    let crash_at = t1.requests[50].at;
    let mut pair = CoopPair::new(cfg(), cfg(), false);
    pair.replay(
        [&t0, &t1],
        &[Injection { at: crash_at, event: PairEvent::Crash(1) }],
    );
    // Server 0 finished the run degraded; every write it acknowledged after
    // the crash is already on its own SSD (write-through), so even the loss
    // of its buffer right now would be safe.
    assert!(pair.server(0).is_degraded());
    assert!(pair.server(0).unrecoverable_pages(None).is_empty());
}

#[test]
fn dynamic_allocation_keeps_consistency_under_failures() {
    let pages = device_pages();
    let mut c = cfg();
    c.alloc.period = SimDuration::from_millis(500);
    let t0 = trace(pages, 800, 0.9, 80);
    let t1 = trace(pages, 800, 0.3, 81);
    let crash_at = t0.requests[400].at;
    let recover_at = crash_at + SimDuration::from_secs(25);
    let mut pair = CoopPair::new(c.clone(), c, true);
    pair.replay(
        [&t0, &t1],
        &[
            Injection { at: crash_at, event: PairEvent::Crash(1) },
            Injection { at: recover_at, event: PairEvent::Recover(1) },
        ],
    );
    assert!(!pair.theta_log(0).is_empty(), "allocation loop ran");
    assert_nothing_lost(&pair, "dynamic alloc + failures");
}
