//! The synthetic workloads must reproduce the paper's Table I within tight
//! tolerances — this is the substitution contract for the unavailable SPC
//! financial traces (see DESIGN.md §1).

use fc_trace::{parse_spc, SpcConfig, SyntheticSpec, TraceStats};

const SPACE: u64 = 64 * 1024;
const N: usize = 30_000;

fn stats_for(spec: SyntheticSpec) -> TraceStats {
    TraceStats::from_trace(&spec.with_requests(N).generate(42))
}

#[test]
fn fin1_matches_paper_table1() {
    let s = stats_for(SyntheticSpec::fin1(SPACE));
    assert!(
        (s.avg_req_kb - 4.38).abs() < 0.25,
        "req size {}",
        s.avg_req_kb
    );
    assert!((s.write_pct - 91.0).abs() < 1.5, "write% {}", s.write_pct);
    assert!((s.seq_pct - 2.0).abs() < 1.0, "seq% {}", s.seq_pct);
    assert!(
        (s.avg_interarrival_ms - 133.5).abs() < 6.0,
        "interarrival {}",
        s.avg_interarrival_ms
    );
}

#[test]
fn fin2_matches_paper_table1() {
    let s = stats_for(SyntheticSpec::fin2(SPACE));
    assert!(
        (s.avg_req_kb - 4.84).abs() < 0.25,
        "req size {}",
        s.avg_req_kb
    );
    assert!((s.write_pct - 10.0).abs() < 1.5, "write% {}", s.write_pct);
    assert!(s.seq_pct < 1.0, "seq% {}", s.seq_pct);
    assert!(
        (s.avg_interarrival_ms - 64.53).abs() < 3.0,
        "interarrival {}",
        s.avg_interarrival_ms
    );
}

#[test]
fn mix_matches_paper_table1() {
    let s = stats_for(SyntheticSpec::mix(SPACE));
    // 3.16 KB quantises to one 4 KB page — the documented deviation.
    assert!(
        (s.avg_req_kb - 4.0).abs() < 0.1,
        "req size {}",
        s.avg_req_kb
    );
    assert!((s.write_pct - 50.0).abs() < 1.5, "write% {}", s.write_pct);
    assert!((s.seq_pct - 50.0).abs() < 2.5, "seq% {}", s.seq_pct);
    assert!(
        (s.avg_interarrival_ms - 199.91).abs() < 8.0,
        "interarrival {}",
        s.avg_interarrival_ms
    );
}

#[test]
fn generators_are_deterministic_across_calls() {
    let a = SyntheticSpec::fin1(SPACE).with_requests(2_000).generate(9);
    let b = SyntheticSpec::fin1(SPACE).with_requests(2_000).generate(9);
    assert_eq!(a.requests, b.requests);
}

#[test]
fn fin1_has_block_level_temporal_locality() {
    // "pages in the same logical block are likely to be accessed again":
    // the top decile of blocks must absorb the majority of accesses.
    let t = SyntheticSpec::fin1(SPACE).with_requests(N).generate(1);
    let mut counts = std::collections::HashMap::new();
    for r in &t.requests {
        *counts.entry(r.lpn / 64).or_insert(0u64) += 1;
    }
    let mut freqs: Vec<u64> = counts.values().copied().collect();
    freqs.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = freqs.iter().sum();
    let top: u64 = freqs.iter().take(freqs.len() / 10 + 1).sum();
    assert!(
        top as f64 / total as f64 > 0.6,
        "top decile carries only {:.2}",
        top as f64 / total as f64
    );
}

#[test]
fn spc_trace_round_trips_into_stats() {
    // A small SPC-format snippet (the real Fin1 files drop in the same way).
    let text = "\
0,0,4096,w,0.000\n\
0,8,4096,w,0.120\n\
0,16,8192,r,0.250\n\
1,0,4096,w,0.300\n\
0,16,4096,w,0.400\n";
    let trace = parse_spc("mini-fin", text, SpcConfig::default()).unwrap();
    assert_eq!(trace.len(), 4); // ASU filter removed one record
    let s = TraceStats::from_trace(&trace);
    assert_eq!(s.requests, 4);
    assert!((s.write_pct - 75.0).abs() < 1e-9);
    assert_eq!(s.footprint_pages, 4);
}

#[test]
fn wrapped_trace_fits_small_devices() {
    let mut t = SyntheticSpec::fin2(SPACE).with_requests(5_000).generate(3);
    t.wrap_addresses(2_048);
    assert!(t.address_span() <= 2_048);
    let s = TraceStats::from_trace(&t);
    assert_eq!(s.requests, 5_000);
}
