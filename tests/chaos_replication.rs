//! Chaos tests for the threaded cooperative pair over lossy links.
//!
//! The invariant is the same one `recovery_e2e.rs` soaks for the simulated
//! pair (Section III.D: "FlashCoop can successfully maintain data
//! consistency"): **no acknowledged write is ever unrecoverable** — here
//! under a [`FaultTransport`] that drops, delays, duplicates, reorders and
//! partitions traffic according to seeded [`FaultPlan`]s. Every assertion
//! message carries the seed, so a failing schedule can be replayed exactly.

use fc_cluster::{
    mem_pair, shared_backend, FaultAction, FaultPlan, FaultTransport, MemBackend, Message, Node,
    NodeConfig, PairState, RetryPolicy, Transport, WriteOutcome,
};
use fc_simkit::{DetRng, SimDuration};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Node timings tuned for lossy-link tests: short ack timeout so dropped
/// replications retry quickly, four attempts before giving up.
fn chaos_config(id: u8) -> NodeConfig {
    NodeConfig {
        ack_timeout: Duration::from_millis(40),
        retry: RetryPolicy {
            attempts: 4,
            base_backoff: SimDuration::from_millis(5),
            multiplier: 2.0,
            max_backoff: SimDuration::from_millis(20),
        },
        ..NodeConfig::test_profile(id)
    }
}

/// The fault-plan shapes the matrix cycles through. Drop probability stays
/// at or below 10 % and the reorder window at 4, per the suite's coverage
/// target.
fn plan_for(shape: u64, seed: u64) -> FaultPlan {
    match shape {
        0 => FaultPlan::new(seed).with_drop(0.10),
        1 => FaultPlan::new(seed)
            .with_drop(0.08)
            .with_dup(0.10)
            .with_delay(Duration::from_millis(1), Duration::from_millis(3)),
        2 => FaultPlan::new(seed).with_reorder(0.15, 4).with_dup(0.15),
        _ => FaultPlan::new(seed).with_drop(0.05).with_partition(10, 25),
    }
}

/// Run one seeded workload over faulted links, crash the writer, and verify
/// that the freshest surviving copy of every page written matches the last
/// acknowledged content. Returns the writer's final stats for aggregate
/// checks.
fn chaos_run(seed: u64, plan_a: FaultPlan, plan_b: FaultPlan) -> fc_cluster::NodeStats {
    let (ta, tb) = mem_pair();
    let fa = FaultTransport::new(ta, plan_a);
    let fb = FaultTransport::new(tb, plan_b);
    let ba = shared_backend(MemBackend::new());
    let bb = shared_backend(MemBackend::new());
    let a = Node::spawn(chaos_config(0), fa, ba.clone());
    let b = Node::spawn(chaos_config(1), fb, bb);

    let mut rng = DetRng::new(seed);
    let mut expected: HashMap<u64, Vec<u8>> = HashMap::new();
    for i in 0..80u64 {
        let lpn = rng.below(40);
        let content = format!("s{seed}-w{i}-l{lpn}").into_bytes();
        // Both outcomes promise durability; which one we got is the fault
        // schedule's business.
        let _ = a.write(lpn, &content);
        expected.insert(lpn, content);
    }

    let stats = a.stats();
    // The writer crashes: its buffer and hosted pages evaporate. Acked
    // writes must survive in its backend ∪ the peer's remote buffer.
    a.crash();
    let remote: HashMap<u64, (u64, Vec<u8>)> = b
        .export_remote()
        .into_iter()
        .map(|(l, v, d)| (l, (v, d)))
        .collect();
    b.shutdown();

    let backend = ba.lock();
    for (lpn, content) in &expected {
        let best = match (backend.read_page(*lpn), remote.get(lpn)) {
            (Some((bv, bd)), Some((rv, rd))) => Some(if *rv > bv { rd.clone() } else { bd }),
            (Some((_, bd)), None) => Some(bd),
            (None, Some((_, rd))) => Some(rd.clone()),
            (None, None) => None,
        };
        assert_eq!(
            best.as_deref(),
            Some(content.as_slice()),
            "seed {seed}: acked write to lpn {lpn} lost or stale after crash"
        );
    }
    stats
}

/// 20 seeds × rotating fault-plan shapes (drop-only; drop+delay+dup;
/// reorder+dup; partition-with-heal), plus a 5 % ack-drop plan on the
/// peer's side, and zero acked writes may be lost.
#[test]
fn chaos_matrix_loses_no_acked_writes() {
    let mut total_retries = 0;
    let mut total_faults = 0;
    for seed in 1..=20u64 {
        let plan_a = plan_for(seed % 4, seed);
        // The peer's outbound side carries the acks; drop a few of those
        // too so the retry/dedup path is exercised from both ends.
        let plan_b = FaultPlan::new(seed ^ 0xACE1).with_drop(0.05);
        let stats = chaos_run(seed, plan_a, plan_b);
        total_retries += stats.repl.retries;
        total_faults += stats.repl.retries + stats.repl.dups_dropped + stats.repl.reorders_healed;
    }
    // The matrix must actually have exercised the machinery, not just
    // clean-path replication.
    assert!(total_retries > 0, "no run ever retried — plans too gentle");
    assert!(total_faults > 0);
}

/// Batched-frame sweep: 20 seeds of multi-page `write_run`s — so the wire
/// carries `WriteReplBatch` frames, not single-page messages — through
/// rotating drop / dup+delay / reorder / corrupt plans. Invariants:
/// zero acked-write loss after the writer crashes, every injected
/// corruption detected by the receiver's CRC (`corruptions_detected ==
/// FaultStats.corrupted`), and `writes_balance` on the final snapshot.
#[test]
fn chaos_batched_runs_sweep_loses_no_acked_writes() {
    let mut total_batches = 0u64;
    let mut total_multi_page = 0u64;
    let mut total_corrupted = 0u64;
    let mut total_faults = 0u64;
    for seed in 1..=20u64 {
        let plan_a = match seed % 4 {
            0 => FaultPlan::new(seed).with_drop(0.10),
            1 => FaultPlan::new(seed)
                .with_dup(0.12)
                .with_delay(Duration::from_millis(1), Duration::from_millis(3)),
            2 => FaultPlan::new(seed).with_reorder(0.15, 4),
            // Corruption runs alone: a corrupted frame that was also
            // dropped or duplicated would skew the detection count.
            _ => FaultPlan::new(seed).with_corrupt(0.15),
        };
        let (ta, tb) = mem_pair();
        let fa = Arc::new(FaultTransport::new(ta, plan_a));
        let ba = shared_backend(MemBackend::new());
        let bb = shared_backend(MemBackend::new());
        let mut cfg_a = chaos_config(0);
        // Room for whole runs per frame, and a real in-flight window.
        cfg_a.repl_batch_pages = 8;
        cfg_a.repl_window = 4;
        let a = Node::spawn(cfg_a, fa.clone(), ba.clone());
        let b = Node::spawn(chaos_config(1), tb, bb);

        let mut rng = DetRng::new(seed);
        let mut expected: HashMap<u64, Vec<u8>> = HashMap::new();
        for i in 0..24u64 {
            let base = rng.below(40);
            let len = 4 + rng.below(5); // 4..=8 page runs
            let pages: Vec<Vec<u8>> = (0..len)
                .map(|j| format!("s{seed}-r{i}-l{}", base + j).into_bytes())
                .collect();
            // Durability is promised either way; the split between
            // replicated and write-through is the fault schedule's call.
            let _ = a.write_run(7, base, &pages);
            for (j, p) in pages.into_iter().enumerate() {
                expected.insert(base + j as u64, p);
            }
        }

        // Every injected corruption must be caught by B's payload CRC.
        wait_until(|| b.stats().repl.corruptions_detected == fa.fault_stats().corrupted);
        let injected = fa.fault_stats().corrupted;
        assert_eq!(
            b.stats().repl.corruptions_detected,
            injected,
            "seed {seed}: corruption detection count mismatch"
        );

        let stats = a.stats();
        assert!(stats.writes_balance(), "seed {seed}: stats imbalance");
        total_batches += stats.repl.batches_sent;
        total_multi_page += stats
            .repl
            .batch_pages
            .saturating_sub(stats.repl.batches_sent);
        total_corrupted += injected;
        total_faults += stats.repl.retries + injected;

        // The writer crashes; acked writes must survive in its backend ∪
        // the peer's remote buffer, freshest version winning.
        a.crash();
        let remote: HashMap<u64, (u64, Vec<u8>)> = b
            .export_remote()
            .into_iter()
            .map(|(l, v, d)| (l, (v, d)))
            .collect();
        b.shutdown();
        let backend = ba.lock();
        for (lpn, content) in &expected {
            let best = match (backend.read_page(*lpn), remote.get(lpn)) {
                (Some((bv, bd)), Some((rv, rd))) => Some(if *rv > bv { rd.clone() } else { bd }),
                (Some((_, bd)), None) => Some(bd),
                (None, Some((_, rd))) => Some(rd.clone()),
                (None, None) => None,
            };
            assert_eq!(
                best.as_deref(),
                Some(content.as_slice()),
                "seed {seed}: acked write to lpn {lpn} lost or stale after crash"
            );
        }
    }
    // The sweep must have driven real batched frames and real faults.
    assert!(total_batches > 0, "no batched frames sent");
    assert!(
        total_multi_page > 0,
        "every batch was a single page — runs never coalesced"
    );
    assert!(total_corrupted > 0, "corrupt plans injected nothing");
    assert!(total_faults > 0, "plans too gentle");
}

/// Same seed + same plan ⇒ byte-identical decision trace, run twice.
#[test]
fn fault_schedule_is_deterministic_for_a_fixed_seed() {
    let drive = || {
        let (ta, _tb) = mem_pair();
        let f = FaultTransport::new(
            ta,
            FaultPlan::new(0xC0FFEE)
                .with_drop(0.15)
                .with_dup(0.15)
                .with_reorder(0.2, 4)
                .with_partition(30, 40),
        );
        for i in 0..96u64 {
            f.send(Message::write_repl(
                i + 1,
                i % 7,
                i + 1,
                bytes::Bytes::from(vec![b'x'; 16]),
            ))
            .unwrap();
        }
        (f.fault_trace(), f.fault_stats())
    };
    let (trace1, stats1) = drive();
    let (trace2, stats2) = drive();
    assert_eq!(trace1, trace2, "fault decisions must replay identically");
    assert_eq!(stats1, stats2);
    // The plan was aggressive enough to produce each decision kind.
    let has = |f: fn(&FaultAction) -> bool| trace1.iter().any(|r| f(&r.action));
    assert!(has(|a| matches!(a, FaultAction::Drop)));
    assert!(has(|a| matches!(a, FaultAction::Deliver { dup: true, .. })));
    assert!(has(|a| matches!(a, FaultAction::Held { .. })));
    assert!(has(|a| matches!(a, FaultAction::Partitioned)));
}

/// Three consecutive drops of the same replication: the writer retries
/// exactly three times, the fourth attempt lands, and the write stays on
/// the replicated path — no spurious write-through, no degraded mode.
#[test]
fn three_drops_cost_three_retries_then_replicate() {
    let (ta, tb) = mem_pair();
    let fa = FaultTransport::new(ta, FaultPlan::new(9).with_drop_first(3));
    let ba = shared_backend(MemBackend::new());
    let bb = shared_backend(MemBackend::new());
    let mut cfg = chaos_config(0);
    cfg.retry.attempts = 5; // room for one more than needed
    let a = Node::spawn(cfg, fa, ba.clone());
    let b = Node::spawn(chaos_config(1), tb, bb);

    assert_eq!(a.write(7, b"fourth-time-lucky"), WriteOutcome::Replicated);
    let stats = a.stats();
    assert_eq!(stats.repl.retries, 3, "one retry per dropped attempt");
    assert_eq!(
        stats.write_through, 0,
        "no fallback to local-only durability"
    );
    assert_eq!(stats.replicated_pages, 1);
    assert!(!a.is_degraded());
    wait_until(|| b.hosted_remote_pages() == vec![7]);
    assert_eq!(b.hosted_remote_pages(), vec![7]);
    a.shutdown();
    b.shutdown();
}

/// Duplicated replications are detected and counted by the receiver, and
/// acked writes are not double-applied.
#[test]
fn duplicated_replications_are_deduplicated() {
    let (ta, tb) = mem_pair();
    let fa = FaultTransport::new(ta, FaultPlan::new(11).with_dup(1.0));
    let ba = shared_backend(MemBackend::new());
    let bb = shared_backend(MemBackend::new());
    let a = Node::spawn(chaos_config(0), fa, ba);
    let b = Node::spawn(chaos_config(1), tb, bb);

    for i in 0..10u64 {
        assert_eq!(
            a.write(i, format!("dup{i}").as_bytes()),
            WriteOutcome::Replicated
        );
    }
    wait_until(|| b.stats().repl.dups_dropped >= 10);
    let bs = b.stats();
    assert_eq!(bs.repl.dups_dropped, 10, "each write was sent twice");
    assert_eq!(b.hosted_remote_pages().len(), 10);
    assert_eq!(a.stats().replicated_pages, 10);
    a.shutdown();
    b.shutdown();
}

/// A Discard reordered behind a newer replication of the same page must not
/// delete the newer copy (the version bound holds), and the receiver counts
/// the healed reorder.
#[test]
fn reordered_discard_cannot_delete_newer_copy() {
    let (ta, tb) = mem_pair();
    let bb = shared_backend(MemBackend::new());
    let b = Node::spawn(chaos_config(1), tb, bb);

    // Simulate the wire after reordering: the v2 replication overtook the
    // Discard for the flushed v1.
    ta.send(Message::write_repl(
        2,
        5,
        2,
        bytes::Bytes::from_static(b"newer"),
    ))
    .unwrap();
    ta.send(Message::Discard {
        seq: 1,
        pages: vec![(5, 1)],
    })
    .unwrap();
    wait_until(|| b.stats().repl.reorders_healed == 1);
    assert_eq!(
        b.hosted_remote_pages(),
        vec![5],
        "late v1 Discard deleted the v2 copy"
    );
    assert_eq!(b.stats().repl.reorders_healed, 1);

    // A Discard at the newer version does remove it.
    ta.send(Message::Discard {
        seq: 3,
        pages: vec![(5, 2)],
    })
    .unwrap();
    wait_until(|| b.hosted_remote_pages().is_empty());
    assert!(b.hosted_remote_pages().is_empty());
    b.shutdown();
}

/// Losing the peer destages every dirty page and counts them.
#[test]
fn peer_loss_counts_partition_destages() {
    let (ta, tb) = mem_pair();
    let ba = shared_backend(MemBackend::new());
    let bb = shared_backend(MemBackend::new());
    let a = Node::spawn(chaos_config(0), ta, ba.clone());
    let b = Node::spawn(chaos_config(1), tb, bb);
    for i in 0..6u64 {
        assert_eq!(
            a.write(i, format!("d{i}").as_bytes()),
            WriteOutcome::Replicated
        );
    }
    assert!(a.dirty_pages() > 0);
    b.crash();
    // Next write hits the dead link, degrades, and destages the dirty set.
    assert_eq!(a.write(100, b"after"), WriteOutcome::WriteThrough);
    let stats = a.stats();
    assert!(a.is_degraded());
    assert_eq!(stats.repl.partition_destages, 6, "all dirty pages destaged");
    // Destaged pages really are on the backend.
    let backend = ba.lock();
    for i in 0..6u64 {
        assert!(backend.read_page(i).is_some(), "page {i} not destaged");
    }
    drop(backend);
    a.shutdown();
}

/// Crash-during-resync sweep: a partition forces both nodes solo; node A
/// accumulates solo writes in its catch-up journal; the partition heals and
/// the incremental resync starts streaming — and then the *resync target*
/// crashes at a seed-dependent instant. Whatever the timing, every
/// acknowledged write must remain readable at A, byte for byte, and A must
/// settle back into solo mode rather than wedge.
#[test]
fn crash_during_resync_never_loses_acked_writes() {
    let window = Duration::from_millis(300);
    let mut interrupted_runs = 0u32;
    for seed in 1..=20u64 {
        let (ta, tb) = mem_pair();
        let fa = Arc::new(FaultTransport::new(
            ta,
            FaultPlan::new(seed)
                .with_partition_for(Duration::ZERO, window)
                .with_delay(Duration::from_millis(1), Duration::from_millis(3)),
        ));
        let fb = Arc::new(FaultTransport::new(
            tb,
            FaultPlan::new(seed ^ 0xBEEF).with_partition_for(Duration::ZERO, window),
        ));
        let ba = shared_backend(MemBackend::new());
        let bb = shared_backend(MemBackend::new());
        let mut cfg_a = chaos_config(0);
        cfg_a.resync_batch = 2; // many small batches → a wide crash window
        let a = Node::spawn(cfg_a, fa.clone(), ba.clone());
        let b = Node::spawn(chaos_config(1), fb.clone(), bb);

        wait_until(|| a.lifecycle_state() == PairState::Solo);
        assert_eq!(
            a.lifecycle_state(),
            PairState::Solo,
            "seed {seed}: partition never took node A solo"
        );
        let mut expected: HashMap<u64, Vec<u8>> = HashMap::new();
        for lpn in 0..40u64 {
            let content = format!("c{seed}-l{lpn}").into_bytes();
            assert_eq!(a.write(lpn, &content), WriteOutcome::WriteThrough);
            expected.insert(lpn, content);
        }
        // The partition heals; wait for the resync stream to start, then
        // kill the target partway through (the jitter sweeps the crash
        // point across batch boundaries from seed to seed).
        wait_until(|| a.stats().repl.resync_batches >= 1);
        std::thread::sleep(Duration::from_millis(seed % 16));
        if a.lifecycle_state() == PairState::Resyncing {
            interrupted_runs += 1;
        }
        b.crash();
        // A must notice and fall back to solo (directly, or after its
        // in-flight batch exhausts its retries) without losing anything.
        wait_until(|| a.lifecycle_state() == PairState::Solo);
        assert_eq!(
            a.lifecycle_state(),
            PairState::Solo,
            "seed {seed}: survivor did not return to solo after target crash"
        );
        for (lpn, content) in &expected {
            assert_eq!(
                a.read(*lpn).as_deref(),
                Some(content.as_slice()),
                "seed {seed}: write to lpn {lpn} lost after crash-during-resync"
            );
        }
        assert!(a.stats().writes_balance(), "seed {seed}: stats imbalance");
        a.shutdown();
    }
    // The sweep must actually have caught some runs mid-stream; if every
    // run finished resyncing before the crash, the test proves nothing.
    assert!(
        interrupted_runs >= 1,
        "no run crashed during resync — widen the jitter or shrink batches"
    );
}

/// Corrupt-during-resync sweep: paired writes, then a partition and solo
/// writes, then a rejoin over a link that corrupts ~15 % of A's data
/// frames — paired replications *and* resync batches get damaged. Every
/// corruption must be detected (checksum → NACK → clean resend), the pair
/// must still re-form, and both sides must end with byte-exact data.
#[test]
fn corrupt_during_resync_repairs_and_rejoins() {
    let start = Duration::from_millis(150);
    let window = Duration::from_millis(300);
    let mut total_injected = 0u64;
    for seed in 1..=20u64 {
        let (ta, tb) = mem_pair();
        let fa = Arc::new(FaultTransport::new(
            ta,
            FaultPlan::new(seed)
                .with_partition_for(start, window)
                .with_corrupt(0.15),
        ));
        let fb = Arc::new(FaultTransport::new(
            tb,
            FaultPlan::new(seed ^ 0xFEED).with_partition_for(start, window),
        ));
        let ba = shared_backend(MemBackend::new());
        let bb = shared_backend(MemBackend::new());
        let mut cfg_a = chaos_config(0);
        cfg_a.resync_batch = 4;
        let a = Node::spawn(cfg_a, fa.clone(), ba.clone());
        let b = Node::spawn(chaos_config(1), fb.clone(), bb);

        // Phase 1 (paired, corrupting link): damaged frames are NACKed and
        // resent; a run of corrupt deliveries can exhaust the retry budget
        // and push A solo early, which the rejoin machinery must absorb.
        let mut expected: HashMap<u64, Vec<u8>> = HashMap::new();
        let mut rng = DetRng::new(seed);
        for i in 0..12u64 {
            let lpn = rng.below(20);
            let content = format!("p{seed}-w{i}-l{lpn}").into_bytes();
            let _ = a.write(lpn, &content);
            expected.insert(lpn, content);
        }
        // Phase 2: the partition opens; A goes solo and journals.
        wait_until(|| a.lifecycle_state() == PairState::Solo);
        assert_eq!(
            a.lifecycle_state(),
            PairState::Solo,
            "seed {seed}: partition never took node A solo"
        );
        for lpn in 20..44u64 {
            let content = format!("s{seed}-l{lpn}").into_bytes();
            let _ = a.write(lpn, &content);
            expected.insert(lpn, content);
        }
        // Phase 3: heal → resync (with corrupted batches along the way) →
        // Paired, on both ends.
        wait_until(|| {
            a.lifecycle_state() == PairState::Paired && b.lifecycle_state() == PairState::Paired
        });
        assert_eq!(
            (a.lifecycle_state(), b.lifecycle_state()),
            (PairState::Paired, PairState::Paired),
            "seed {seed}: pair never re-formed after corrupting resync"
        );
        wait_until(|| a.journal_len() == 0);
        assert_eq!(a.journal_len(), 0, "seed {seed}: journal never drained");

        // Accounting: every injected corruption was detected by B's
        // checksum, none slipped through.
        wait_until(|| b.stats().repl.corruptions_detected == fa.fault_stats().corrupted);
        let injected = fa.fault_stats().corrupted;
        assert_eq!(
            b.stats().repl.corruptions_detected,
            injected,
            "seed {seed}: corruption detection count mismatch"
        );
        total_injected += injected;

        // Byte-exactness, both ends: A serves every write; B's hosted set
        // (remote buffer ∪ taken-over pages) never contains damaged bytes.
        for (lpn, content) in &expected {
            assert_eq!(
                a.read(*lpn).as_deref(),
                Some(content.as_slice()),
                "seed {seed}: lpn {lpn} unreadable at A after rejoin"
            );
        }
        for (lpn, _ver, data) in b.export_remote() {
            assert_eq!(
                Some(data.as_slice()),
                expected.get(&lpn).map(|c| c.as_slice()),
                "seed {seed}: B hosts corrupted or unknown bytes for lpn {lpn}"
            );
        }
        a.shutdown();
        b.shutdown();
    }
    assert!(
        total_injected > 0,
        "sweep injected no corruption — plans too gentle"
    );
}

fn wait_until(mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}
