//! Differential conformance suite: all four FTLs must implement the *same*
//! block device.
//!
//! For identical operation sequences, every FTL must expose identical
//! logical contents (checked through the NAND ownership metadata), identical
//! host-visible accounting, and the shared physical invariants — whatever
//! their wildly different internal mechanics (log blocks, merges, mapping
//! caches) are doing.

use fc_simkit::DetRng;
use fc_ssd::ftl::{build_ftl, Ftl};
use fc_ssd::{BlockId, FtlConfig, FtlKind, Geometry, Lpn};
use std::collections::{BTreeSet, HashSet};

#[derive(Debug, Clone, Copy)]
enum DevOp {
    Write { lpn: u64, pages: u32 },
    Trim { lpn: u64, pages: u32 },
    Read { lpn: u64, pages: u32 },
}

/// A deterministic mixed op sequence over the tiny device's logical space.
fn op_sequence(logical: u64, n: usize, seed: u64) -> Vec<DevOp> {
    let mut rng = DetRng::new(seed);
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        let pages = 1 + (rng.below(4) as u32);
        let lpn = rng.below(logical - pages as u64);
        let op = match rng.below(10) {
            0..=5 => DevOp::Write { lpn, pages },
            6 => DevOp::Trim { lpn, pages },
            _ => DevOp::Read { lpn, pages },
        };
        ops.push(op);
    }
    ops
}

/// The host-visible state of a device: the set of logical pages that hold
/// data, extracted from NAND ownership metadata.
fn live_pages(ftl: &dyn Ftl) -> BTreeSet<u64> {
    let nand = ftl.nand();
    let geo = *nand.geometry();
    let mut live = BTreeSet::new();
    for b in 0..geo.blocks_total() {
        for (_, lpn) in nand.valid_entries(BlockId(b)) {
            assert!(
                live.insert(lpn.0),
                "{}: duplicate valid copy of page {}",
                ftl.kind(),
                lpn.0
            );
        }
    }
    live
}

fn run_sequence(kind: FtlKind, ops: &[DevOp]) -> (BTreeSet<u64>, u64) {
    let mut ftl = build_ftl(kind, Geometry::tiny(), FtlConfig::tiny_test());
    let mut host_written = 0u64;
    for op in ops {
        match *op {
            DevOp::Write { lpn, pages } => {
                ftl.write(Lpn(lpn), pages);
                host_written += pages as u64;
            }
            DevOp::Trim { lpn, pages } => {
                ftl.trim(Lpn(lpn), pages);
            }
            DevOp::Read { lpn, pages } => {
                ftl.read(Lpn(lpn), pages);
            }
        }
    }
    (live_pages(ftl.as_ref()), host_written)
}

#[test]
fn all_ftls_expose_identical_logical_state() {
    for seed in 0..6u64 {
        let probe = build_ftl(FtlKind::PageLevel, Geometry::tiny(), FtlConfig::tiny_test());
        let logical = probe.logical_pages();
        drop(probe);
        let ops = op_sequence(logical, 800, 100 + seed);

        let (reference, host_written) = run_sequence(FtlKind::PageLevel, &ops);
        for kind in [FtlKind::Bast, FtlKind::Fast, FtlKind::Dftl] {
            let (state, written) = run_sequence(kind, &ops);
            assert_eq!(written, host_written);
            assert_eq!(
                state, reference,
                "{kind} diverged from the page-level reference (seed {seed})"
            );
        }
    }
}

#[test]
fn live_state_matches_an_oracle_model() {
    // Independently track which pages must be live and compare per FTL.
    for kind in FtlKind::ALL_EXTENDED {
        let mut ftl = build_ftl(kind, Geometry::tiny(), FtlConfig::tiny_test());
        let logical = ftl.logical_pages();
        let ops = op_sequence(logical, 1_200, 7);
        let mut oracle: HashSet<u64> = HashSet::new();
        for op in &ops {
            match *op {
                DevOp::Write { lpn, pages } => {
                    ftl.write(Lpn(lpn), pages);
                    for i in 0..pages as u64 {
                        oracle.insert(lpn + i);
                    }
                }
                DevOp::Trim { lpn, pages } => {
                    ftl.trim(Lpn(lpn), pages);
                    for i in 0..pages as u64 {
                        oracle.remove(&(lpn + i));
                    }
                }
                DevOp::Read { lpn, pages } => {
                    ftl.read(Lpn(lpn), pages);
                }
            }
        }
        let live = live_pages(ftl.as_ref());
        let oracle: BTreeSet<u64> = oracle.into_iter().collect();
        assert_eq!(live, oracle, "{kind}: live set diverged from the oracle");
    }
}

#[test]
fn trim_everything_empties_every_ftl() {
    for kind in FtlKind::ALL_EXTENDED {
        let mut ftl = build_ftl(kind, Geometry::tiny(), FtlConfig::tiny_test());
        let logical = ftl.logical_pages();
        let mut rng = DetRng::new(11);
        for _ in 0..500 {
            ftl.write(Lpn(rng.below(logical)), 1);
        }
        ftl.trim(Lpn(0), logical as u32);
        assert!(
            live_pages(ftl.as_ref()).is_empty(),
            "{kind}: pages survived a full trim"
        );
        // And the space is writable again.
        ftl.write(Lpn(3), 2);
        assert_eq!(live_pages(ftl.as_ref()).len(), 2);
    }
}

#[test]
fn full_fill_then_full_overwrite_converges_for_every_ftl() {
    for kind in FtlKind::ALL_EXTENDED {
        let mut ftl = build_ftl(kind, Geometry::tiny(), FtlConfig::tiny_test());
        let logical = ftl.logical_pages();
        let ppb = ftl.nand().geometry().pages_per_block;
        // Sequential fill, block-sized requests (the FTL-friendliest input).
        let mut lpn = 0;
        while lpn + ppb as u64 <= logical {
            ftl.write(Lpn(lpn), ppb);
            lpn += ppb as u64;
        }
        // Overwrite everything once more.
        let mut lpn = 0;
        while lpn + ppb as u64 <= logical {
            ftl.write(Lpn(lpn), ppb);
            lpn += ppb as u64;
        }
        let live = live_pages(ftl.as_ref());
        assert_eq!(
            live.len() as u64,
            (logical / ppb as u64) * ppb as u64,
            "{kind}: lost pages across a full overwrite"
        );
        // Sequential block-sized traffic must not trigger full merges on the
        // hybrids (switch merges handle it).
        if matches!(kind, FtlKind::Bast) {
            assert_eq!(
                ftl.ftl_stats().full_merges,
                0,
                "BAST should switch-merge pure sequential traffic"
            );
        }
    }
}

#[test]
fn accounting_is_internally_consistent_for_every_ftl() {
    for kind in FtlKind::ALL_EXTENDED {
        let mut ftl = build_ftl(kind, Geometry::tiny(), FtlConfig::tiny_test());
        let logical = ftl.logical_pages();
        let mut rng = DetRng::new(23);
        let mut host_programs_lower_bound = 0u64;
        for _ in 0..2_000 {
            let pages = 1 + rng.below(3) as u32;
            let lpn = rng.below(logical - pages as u64);
            ftl.write(Lpn(lpn), pages);
            host_programs_lower_bound += pages as u64;
        }
        let nand = ftl.nand();
        // Programs >= host pages (copies only add).
        assert!(nand.total_programs() >= host_programs_lower_bound, "{kind}");
        // Erase counters agree between per-block and global views.
        let per_block: u64 = nand.erase_counts().iter().map(|&c| c as u64).sum();
        assert_eq!(per_block, nand.total_erases(), "{kind}");
    }
}
