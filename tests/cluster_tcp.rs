//! End-to-end tests of the real (threaded) cooperative pair over TCP.
//!
//! These exercise the full stack: wire codec → TCP transport → node pump →
//! buffer manager → backend, including the Section III.D recovery handshake
//! with actual page data.

use fc_cluster::{shared_backend, MemBackend, Node, NodeConfig, TcpTransport, WriteOutcome};
use std::net::TcpListener;
use std::time::Duration;

fn tcp_pair() -> (TcpTransport, TcpTransport) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let join = std::thread::spawn(move || TcpTransport::connect(addr).unwrap());
    let server = TcpTransport::accept(&listener).unwrap();
    (join.join().unwrap(), server)
}

#[test]
fn replicated_writes_and_reads_over_tcp() {
    let (ta, tb) = tcp_pair();
    let ba = shared_backend(MemBackend::new());
    let a = Node::spawn(NodeConfig::test_profile(0), ta, ba);
    let b = Node::spawn(
        NodeConfig::test_profile(1),
        tb,
        shared_backend(MemBackend::new()),
    );

    for i in 0..32u64 {
        assert_eq!(
            a.write(i, format!("payload-{i}").as_bytes()),
            WriteOutcome::Replicated
        );
    }
    for i in 0..32u64 {
        assert_eq!(a.read(i), Some(format!("payload-{i}").into_bytes()));
    }
    // Replicas visible at the peer.
    let mut hosted = 0;
    for _ in 0..100 {
        hosted = b.hosted_remote_pages().len();
        if hosted >= 32 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(hosted >= 30, "peer hosts only {hosted} replicas");
    a.shutdown();
    b.shutdown();
}

#[test]
fn full_crash_recovery_cycle_over_tcp() {
    let (ta, tb) = tcp_pair();
    let backend_a = shared_backend(MemBackend::new());
    let a = Node::spawn(NodeConfig::test_profile(0), ta, backend_a.clone());
    let b = Node::spawn(
        NodeConfig::test_profile(1),
        tb,
        shared_backend(MemBackend::new()),
    );

    for i in 0..16u64 {
        assert_eq!(
            a.write(i, format!("v1-{i}").as_bytes()),
            WriteOutcome::Replicated
        );
    }
    // Crash A: buffer contents exist only in B's remote buffer now.
    a.crash();
    assert_eq!(backend_a.lock().pages(), 0);

    // Reboot on a fresh connection; B re-homes its hosted pages.
    let (ta2, tb2) = tcp_pair();
    let hosted = b.export_remote();
    assert_eq!(hosted.len(), 16);
    b.shutdown();
    let b2 = Node::spawn(
        NodeConfig::test_profile(1),
        tb2,
        shared_backend(MemBackend::new()),
    );
    b2.import_remote(&hosted);
    let a2 = Node::spawn(NodeConfig::test_profile(0), ta2, backend_a.clone());

    let n = a2
        .recover_from_peer(Duration::from_secs(3))
        .expect("recovery");
    assert_eq!(n, 16);
    // Every page is durable on A's backend with the right contents.
    {
        let be = backend_a.lock();
        for i in 0..16u64 {
            let (_, data) = be.read_page(i).expect("recovered page");
            assert_eq!(data, format!("v1-{i}").into_bytes());
        }
    }
    // B purged after the handshake.
    let mut purged = false;
    for _ in 0..100 {
        if b2.hosted_remote_pages().is_empty() {
            purged = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(purged, "peer failed to purge after recovery");
    a2.shutdown();
    b2.shutdown();
}

#[test]
fn peer_death_degrades_writer_but_keeps_durability() {
    let (ta, tb) = tcp_pair();
    let backend_a = shared_backend(MemBackend::new());
    let a = Node::spawn(NodeConfig::test_profile(0), ta, backend_a.clone());
    let b = Node::spawn(
        NodeConfig::test_profile(1),
        tb,
        shared_backend(MemBackend::new()),
    );

    assert_eq!(a.write(1, b"before"), WriteOutcome::Replicated);
    b.crash(); // connection drops with it

    // The next write cannot replicate: it must come back write-through and
    // the node must be degraded with all dirty data flushed.
    let outcome = a.write(2, b"after");
    assert_eq!(outcome, WriteOutcome::WriteThrough);
    assert!(a.is_degraded());
    assert_eq!(a.dirty_pages(), 0, "degraded entry flushes all dirty pages");
    {
        let be = backend_a.lock();
        assert_eq!(be.read_page(1).unwrap().1, b"before".to_vec());
        assert_eq!(be.read_page(2).unwrap().1, b"after".to_vec());
    }
    a.shutdown();
}

#[test]
fn concurrent_writers_on_one_node_are_safe() {
    let (ta, tb) = tcp_pair();
    let backend_a = shared_backend(MemBackend::new());
    let a = std::sync::Arc::new(Node::spawn(
        NodeConfig::test_profile(0),
        ta,
        backend_a.clone(),
    ));
    let b = Node::spawn(
        NodeConfig::test_profile(1),
        tb,
        shared_backend(MemBackend::new()),
    );

    let mut handles = Vec::new();
    for t in 0..4u64 {
        let node = a.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..25u64 {
                let lpn = t * 100 + i;
                node.write(lpn, format!("t{t}-i{i}").as_bytes());
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // All 100 pages readable with correct contents.
    for t in 0..4u64 {
        for i in 0..25u64 {
            let lpn = t * 100 + i;
            assert_eq!(
                a.read(lpn),
                Some(format!("t{t}-i{i}").into_bytes()),
                "page {lpn}"
            );
        }
    }
    let stats = a.stats();
    assert_eq!(stats.writes, 100);
    std::sync::Arc::try_unwrap(a).ok().unwrap().shutdown();
    b.shutdown();
}

#[test]
fn overwrites_keep_latest_version_after_recovery() {
    let (ta, tb) = tcp_pair();
    let backend_a = shared_backend(MemBackend::new());
    let a = Node::spawn(NodeConfig::test_profile(0), ta, backend_a.clone());
    let b = Node::spawn(
        NodeConfig::test_profile(1),
        tb,
        shared_backend(MemBackend::new()),
    );

    a.write(5, b"old");
    a.write(5, b"mid");
    a.write(5, b"new");
    a.crash();

    let snapshot = b.export_remote();
    b.shutdown();
    let entry = snapshot.iter().find(|(l, _, _)| *l == 5).expect("page 5");
    assert_eq!(entry.2, b"new".to_vec(), "remote copy must be the latest");
}
