//! End-to-end tests for the sharded (multi-pair) gateway: consistent-hash
//! routing across N cooperative pairs, exercised the way the single-pair
//! stack is — through real gateway sessions down to real `Node` pairs.
//!
//! Three contracts from the issue:
//!
//! 1. **Model equivalence** — seeded random op sequences (write / read /
//!    trim / flush) through a 4-shard mem `ShardedGateway` agree with a
//!    flat `HashMap<lpn, page>` oracle at every step, including reads that
//!    straddle shard boundaries.
//! 2. **Shard-confined runs** — a contiguous LPN run spanning two shards
//!    is split at the shard boundary (not just at destage-block
//!    boundaries): every page lands on the pair that owns it, so routed
//!    reads always find it.
//! 3. **Chaos** — fault-inject one pair into Solo mid-workload: the other
//!    shards keep serving (their latency counters keep advancing), no
//!    acknowledged write is lost after the failed pair walks back to
//!    Paired, and the per-shard `gateway.shard.*` counters sum exactly to
//!    the aggregate gateway counters throughout.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use fc_bench::loadgen::payload;
use fc_cluster::{
    mem_pair, shared_backend, FaultPlan, FaultTransport, MemBackend, Node, NodeConfig, PairState,
};
use fc_gateway::{GatewayConfig, ShardStatsSum, ShardedGateway};
use fc_ring::{Ring, RingConfig};
use fc_simkit::DetRng;

fn wait_until(mut cond: impl FnMut() -> bool, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

/// The counter-sum identity, asserted with context.
fn assert_sums_match(sg: &ShardedGateway, label: &str) {
    if let Err((name, sum, total)) = ShardStatsSum::of(&sg.shard_stats()).matches(&sg.stats()) {
        panic!("{label}: Σ shard.{name} = {sum} != gateway.{name} = {total}");
    }
}

/// Contract 1: random op sequences against a flat oracle, three seeds.
#[test]
fn model_random_ops_match_flat_oracle() {
    const SHARDS: u16 = 4;
    const SPACE: u64 = 512;
    const STEPS: u64 = 600;
    const PAGE_BYTES: usize = 64;

    for seed in [11u64, 12, 13] {
        let sg =
            ShardedGateway::spawn_mem(GatewayConfig::test_profile(), RingConfig::default(), SHARDS);
        let ring = sg.gateway().ring().expect("sharded gateway has a ring");
        let mut client = sg.connect_mem_as(1);
        client.hello().expect("hello");

        let mut oracle: HashMap<u64, Bytes> = HashMap::new();
        let mut rng = DetRng::new(seed);
        let mut straddling_reads = 0u64;

        for step in 0..STEPS {
            match rng.below(10) {
                // Writes: 1–6 pages, overlapping freely with earlier ops.
                0..=4 => {
                    let pages = 1 + rng.below(6);
                    let lpn = rng.below(SPACE - pages);
                    let payloads: Vec<Bytes> = (0..pages)
                        .map(|i| payload(1, lpn + i, step, PAGE_BYTES))
                        .collect();
                    let ack = client.write(lpn, payloads.clone()).expect("write acked");
                    assert_eq!(u64::from(ack.pages), pages, "seed {seed} step {step}");
                    for (i, p) in payloads.into_iter().enumerate() {
                        oracle.insert(lpn + i as u64, p);
                    }
                }
                // Reads: up to 16 pages, long enough to straddle shards.
                5..=7 => {
                    let pages = 1 + rng.below(16);
                    let lpn = rng.below(SPACE - pages);
                    let first = ring.shard_of_lpn(lpn);
                    if (lpn..lpn + pages).any(|l| ring.shard_of_lpn(l) != first) {
                        straddling_reads += 1;
                    }
                    let got = client.read(lpn, pages as u32).expect("read");
                    assert_eq!(got.len(), pages as usize);
                    for (i, g) in got.iter().enumerate() {
                        assert_eq!(
                            g.as_ref(),
                            oracle.get(&(lpn + i as u64)),
                            "seed {seed} step {step}: lpn {} diverged from oracle",
                            lpn + i as u64
                        );
                    }
                }
                // Trims: drop 1–8 pages.
                8 => {
                    let pages = 1 + rng.below(8);
                    let lpn = rng.below(SPACE - pages);
                    client.trim(lpn, pages as u32).expect("trim");
                    for l in lpn..lpn + pages {
                        oracle.remove(&l);
                    }
                }
                // Flushes: fan out to every shard; no observable state change.
                _ => {
                    client.flush().expect("flush");
                }
            }
        }
        assert!(
            straddling_reads > 0,
            "seed {seed}: the op mix must exercise shard-straddling reads"
        );

        // Final sweep: the routed view of every page equals the oracle.
        for lpn in 0..SPACE {
            assert_eq!(
                sg.gateway().read_page(lpn).map(Bytes::from),
                oracle.get(&lpn).cloned(),
                "seed {seed}: final state diverged at lpn {lpn}"
            );
        }
        assert_sums_match(&sg, &format!("seed {seed}"));
        sg.shutdown();
    }
}

/// Contract 2 (regression): with ring blocks *finer* than destage blocks,
/// a contiguous run inside one destage block can span two shards — the
/// scheduler must split it there, or pages land on pairs that do not own
/// them and routed reads miss forever.
#[test]
fn write_run_spanning_two_shards_is_split_at_the_boundary() {
    const SHARDS: u16 = 4;
    let mut cfg = GatewayConfig::test_profile();
    cfg.pages_per_block = 8; // destage block: 8 pages
    let ring_cfg = RingConfig {
        block_pages: 2, // routing block: 2 pages ⇒ 4 routing blocks per run
        ..RingConfig::default()
    };
    let sg = ShardedGateway::spawn_mem(cfg, ring_cfg, SHARDS);
    let ring = sg.gateway().ring().expect("ring");

    // Find a destage-block-aligned 8-page run whose pages span ≥2 shards
    // (with 2-page routing blocks, nearly every destage block does).
    let lpn0 = (0..1_000u64)
        .map(|b| b * 8)
        .find(|&l| {
            let s0 = ring.shard_of_lpn(l);
            (1..8).any(|i| ring.shard_of_lpn(l + i) != s0)
        })
        .expect("some destage block spans two shards");
    let owners: Vec<u16> = (0..8).map(|i| ring.shard_of_lpn(lpn0 + i)).collect();
    let mut pages_per_shard = vec![0u64; SHARDS as usize];
    for &s in &owners {
        pages_per_shard[usize::from(s)] += 1;
    }

    let before = sg.shard_stats();
    let mut client = sg.connect_mem_as(1);
    client.hello().expect("hello");
    let payloads: Vec<Bytes> = (0..8).map(|i| payload(1, lpn0 + i, 0, 128)).collect();
    let ack = client.write(lpn0, payloads.clone()).expect("write acked");
    assert_eq!(ack.pages, 8);
    let after = sg.shard_stats();

    // Accounting: each owning shard got exactly its pages and ≥1 run; a
    // blind block-confined coalesce would have given all 8 to one shard.
    let involved: Vec<u16> = (0..SHARDS)
        .filter(|&s| pages_per_shard[usize::from(s)] > 0)
        .collect();
    assert!(involved.len() >= 2, "chosen run must span two shards");
    for s in 0..SHARDS as usize {
        let delta_pages = after[s].write_pages - before[s].write_pages;
        let delta_runs = after[s].runs - before[s].runs;
        assert_eq!(
            delta_pages, pages_per_shard[s],
            "shard {s}: wrong page share of the split run"
        );
        if pages_per_shard[s] > 0 {
            assert!(delta_runs >= 1, "shard {s}: owns pages but saw no run");
        } else {
            assert_eq!(delta_runs, 0, "shard {s}: owns nothing but saw a run");
        }
    }

    // Placement: every page is on its owner's primary — and nowhere else.
    for (i, want) in payloads.iter().enumerate() {
        let lpn = lpn0 + i as u64;
        let owner = owners[i];
        assert_eq!(
            sg.primary(owner).read(lpn).as_deref(),
            Some(want.as_ref()),
            "lpn {lpn}: missing from its owning shard {owner}"
        );
        for s in (0..SHARDS).filter(|&s| s != owner) {
            assert_eq!(
                sg.primary(s).read(lpn),
                None,
                "lpn {lpn}: leaked onto non-owning shard {s}"
            );
        }
        // And the routed read agrees.
        assert_eq!(
            sg.gateway().read_page(lpn).map(Bytes::from).as_ref(),
            Some(want),
            "lpn {lpn}: routed read missed"
        );
    }
    assert_sums_match(&sg, "split run");
    sg.shutdown();
}

/// Contract 3: one pair is partitioned into Solo mid-workload; the
/// cluster keeps serving, nothing acknowledged is ever lost, and the
/// counter-sum identity holds at every checkpoint.
#[test]
fn chaos_one_pair_solo_mid_workload_loses_nothing() {
    const SHARDS: u16 = 4;
    const VICTIM: u16 = 0;
    const PAGE_BYTES: usize = 96;
    // Partition opens well after the paired warm-up phase and lasts longer
    // than the 200 ms failure timeout, so the victim pair goes Solo.
    let start = Duration::from_millis(250);
    let window = Duration::from_millis(600);

    let cfg = GatewayConfig::test_profile();
    let ring_cfg = RingConfig {
        block_pages: cfg.pages_per_block,
        ..RingConfig::default()
    };
    let ring = Ring::with_pairs(ring_cfg, SHARDS);

    let mut primaries = Vec::new();
    let mut secondaries = Vec::new();
    for i in 0..SHARDS {
        let (ta, tb) = mem_pair();
        let mut ca = NodeConfig::test_profile((2 * i) as u8);
        ca.pages_per_block = cfg.pages_per_block;
        let mut cb = NodeConfig::test_profile((2 * i + 1) as u8);
        cb.pages_per_block = cfg.pages_per_block;
        if i == VICTIM {
            let fa = Arc::new(FaultTransport::new(
                ta,
                FaultPlan::new(7).with_partition_for(start, window),
            ));
            let fb = Arc::new(FaultTransport::new(
                tb,
                FaultPlan::new(8).with_partition_for(start, window),
            ));
            primaries.push(Arc::new(Node::spawn(
                ca,
                fa,
                shared_backend(MemBackend::new()),
            )));
            secondaries.push(Arc::new(Node::spawn(
                cb,
                fb,
                shared_backend(MemBackend::new()),
            )));
        } else {
            let backend = shared_backend(MemBackend::default());
            primaries.push(Arc::new(Node::spawn(ca, ta, backend.clone())));
            secondaries.push(Arc::new(Node::spawn(cb, tb, backend)));
        }
    }
    let sg = ShardedGateway::from_pairs(cfg, ring, primaries, secondaries);
    let ring = sg.gateway().ring().expect("ring");

    // A few lpns per shard so every phase touches every pair.
    let mut lpns_of_shard: Vec<Vec<u64>> = vec![Vec::new(); SHARDS as usize];
    for lpn in 0..4_096u64 {
        let owned = &mut lpns_of_shard[usize::from(ring.shard_of_lpn(lpn))];
        if owned.len() < 12 {
            owned.push(lpn);
        }
    }
    assert!(lpns_of_shard.iter().all(|v| v.len() == 12));

    let mut client = sg.connect_mem_as(1);
    client.hello().expect("hello");
    let mut acked: HashMap<u64, Bytes> = HashMap::new();
    let write_round =
        |client: &mut fc_gateway::GatewayClient, acked: &mut HashMap<u64, Bytes>, round: u64| {
            for lpns in &lpns_of_shard {
                for (i, &lpn) in lpns.iter().enumerate() {
                    // Rotate which lpns each round rewrites, so rounds overlap.
                    if (i as u64 + round).is_multiple_of(3) {
                        continue;
                    }
                    let p = payload(1, lpn, round, PAGE_BYTES);
                    let ack = client.write(lpn, vec![p.clone()]).expect("write acked");
                    assert_eq!(ack.pages, 1);
                    acked.insert(lpn, p);
                }
            }
        };

    // Phase 1 — healthy cluster, all pairs Paired.
    write_round(&mut client, &mut acked, 1);
    assert_sums_match(&sg, "phase 1 (paired)");

    // Phase 2 — the partition takes the victim pair Solo; the workload
    // keeps running against every shard.
    assert!(
        wait_until(
            || sg.primary(VICTIM).lifecycle_state() == PairState::Solo,
            Duration::from_secs(3)
        ),
        "victim pair never went Solo (state {:?})",
        sg.primary(VICTIM).lifecycle_state()
    );
    let before = sg.shard_stats();
    write_round(&mut client, &mut acked, 2);
    // Reads against the healthy shards while the victim is degraded.
    for s in (0..SHARDS).filter(|&s| s != VICTIM) {
        let lpn = lpns_of_shard[usize::from(s)][1];
        let got = client.read(lpn, 1).expect("read during chaos");
        assert_eq!(got[0].as_ref(), acked.get(&lpn), "shard {s} lost a write");
    }
    let after = sg.shard_stats();
    for s in 0..SHARDS as usize {
        assert!(
            after[s].latency_samples > before[s].latency_samples,
            "shard {s}: latency counter stalled during the victim's outage \
             ({} -> {})",
            before[s].latency_samples,
            after[s].latency_samples
        );
    }
    assert!(
        sg.primary(VICTIM).is_degraded(),
        "victim still degraded while partitioned"
    );
    assert_sums_match(&sg, "phase 2 (solo)");

    // Phase 3 — the partition heals; the pair walks back to Paired and
    // drains its solo-write journal.
    assert!(
        wait_until(
            || {
                sg.primary(VICTIM).lifecycle_state() == PairState::Paired
                    && sg.secondary(VICTIM).lifecycle_state() == PairState::Paired
            },
            Duration::from_secs(5)
        ),
        "victim pair never re-formed (a={:?} b={:?})",
        sg.primary(VICTIM).lifecycle_state(),
        sg.secondary(VICTIM).lifecycle_state()
    );
    assert!(
        wait_until(
            || sg.primary(VICTIM).journal_len() == 0,
            Duration::from_secs(2)
        ),
        "solo-write journal never drained"
    );
    write_round(&mut client, &mut acked, 3);
    client.flush().expect("flush");

    // No acknowledged write — from any phase, on any shard — was lost,
    // observed through the same front door that acked it.
    for (&lpn, want) in &acked {
        let got = client.read(lpn, 1).expect("read back");
        assert_eq!(
            got[0].as_ref(),
            Some(want),
            "acked write at lpn {lpn} (shard {}) lost or stale",
            ring.shard_of_lpn(lpn)
        );
    }
    let stats = sg.stats();
    assert_eq!(stats.shed_total, 0, "unlimited admission sheds nothing");
    assert_eq!(stats.bad_requests, 0, "no request failed during the outage");
    assert_sums_match(&sg, "phase 3 (healed)");
    sg.shutdown();
}
