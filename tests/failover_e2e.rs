//! End-to-end failover tests for the sharded gateway front door: a shard's
//! primary dies mid-workload and the gateway's health tracking reroutes the
//! shard to its surviving secondary, then fails back once the pair
//! re-forms.
//!
//! Contracts from the issue:
//!
//! 1. **Chaos sweep** — 20 seeds; each seed picks a victim shard and a
//!    closed- or open-loop client, kills the victim's primary mid-workload,
//!    restarts it, and waits for traffic-driven failback. Every
//!    acknowledged write must be readable after failback, no client call
//!    may outlive its deadline, and the per-shard counter-sum identity
//!    (`ShardStatsSum::matches`) must hold exactly at every phase
//!    boundary.
//! 2. **Graceful degradation** — with *both* replicas of a shard down, the
//!    gateway answers `Unavailable { retry_after_ms }` within its retry
//!    deadline instead of hanging, the surviving shard keeps serving, and
//!    service resumes once the pair restarts.
//!
//! Documented (deliberate) non-assertions: pages trimmed after their last
//! acked write are *not* asserted absent at the end — failback replay may
//! resurrect a page trimmed during the outage (see DESIGN.md §14) — and
//! read *values* are not checked during the outage, when pre-fail
//! replicated-but-unflushed pages may be invisible until failback.

use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

use bytes::Bytes;
use fc_bench::loadgen::payload;
use fc_gateway::{ClientError, GatewayClient, GatewayConfig, Reply, ShardStatsSum, ShardedGateway};
use fc_ring::RingConfig;
use fc_simkit::DetRng;

const SHARDS: u16 = 2;
const SPACE: u64 = 384;
const PAGE_BYTES: usize = 96;
/// Generous per-call bound: the gateway's test-profile retry deadline is
/// 1 s, so anything past this is a hang, not a slow retry.
const OP_DEADLINE: Duration = Duration::from_secs(5);

fn wait_until(mut cond: impl FnMut() -> bool, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

/// The counter-sum identity, asserted with context.
fn assert_sums_match(sg: &ShardedGateway, label: &str) {
    if let Err((name, sum, total)) = ShardStatsSum::of(&sg.shard_stats()).matches(&sg.stats()) {
        panic!("{label}: Σ shard.{name} = {sum} != gateway.{name} = {total}");
    }
}

/// Client-side ground truth: the last acked write per lpn, plus the set of
/// lpns whose post-failback state is deliberately unspecified (trimmed
/// after their last acked write, or covered by a failed trim).
struct Oracle {
    acked: HashMap<u64, Bytes>,
    unstable: HashSet<u64>,
}

impl Oracle {
    fn new() -> Oracle {
        Oracle {
            acked: HashMap::new(),
            unstable: HashSet::new(),
        }
    }

    fn wrote(&mut self, lpn: u64, pages: &[Bytes]) {
        for (i, p) in pages.iter().enumerate() {
            self.acked.insert(lpn + i as u64, p.clone());
            self.unstable.remove(&(lpn + i as u64));
        }
    }

    fn trimmed(&mut self, lpn: u64, pages: u64) {
        for l in lpn..lpn + pages {
            self.acked.remove(&l);
            self.unstable.insert(l);
        }
    }
}

/// Seeded workload driver for one chaos run: the rng, the oracle, and the
/// write sequence counter, plus the seed's closed-/open-loop choice.
struct Driver {
    rng: DetRng,
    oracle: Oracle,
    seq: u64,
    open_loop: bool,
}

impl Driver {
    fn new(seed: u64) -> Driver {
        Driver {
            rng: DetRng::new(0xFA11_0000 + seed),
            oracle: Oracle::new(),
            seq: 0,
            open_loop: seed & 1 == 1,
        }
    }

    /// One workload phase. Closed-loop issues write/read/trim/flush and
    /// waits for each reply; open-loop pipelines waves of 8 writes before
    /// draining. `verify` checks read payloads against the oracle (only
    /// meaningful while no replica is down and no failback replay is
    /// pending).
    fn drive_phase(&mut self, client: &mut GatewayClient, ops: u64, verify: bool, label: &str) {
        if self.open_loop {
            let mut wave: Vec<(u64, u64, Vec<Bytes>)> = Vec::new();
            for _ in 0..ops {
                let pages = 1 + self.rng.below(3);
                let lpn = self.rng.below(SPACE - pages);
                let payloads: Vec<Bytes> = (0..pages)
                    .map(|i| payload(1, lpn + i, self.seq, PAGE_BYTES))
                    .collect();
                self.seq += 1;
                let id = client
                    .send_write(lpn, payloads.clone())
                    .unwrap_or_else(|e| panic!("{label}: send_write: {e}"));
                wave.push((id, lpn, payloads));
                if wave.len() == 8 {
                    drain_wave(client, &mut wave, &mut self.oracle, label);
                }
            }
            drain_wave(client, &mut wave, &mut self.oracle, label);
            return;
        }
        for _ in 0..ops {
            let started = Instant::now();
            match self.rng.below(10) {
                0..=5 => {
                    let pages = 1 + self.rng.below(3);
                    let lpn = self.rng.below(SPACE - pages);
                    let payloads: Vec<Bytes> = (0..pages)
                        .map(|i| payload(1, lpn + i, self.seq, PAGE_BYTES))
                        .collect();
                    self.seq += 1;
                    client
                        .write_with_retry(lpn, payloads.clone(), started + OP_DEADLINE)
                        .unwrap_or_else(|e| panic!("{label}: write lpn {lpn}: {e}"));
                    self.oracle.wrote(lpn, &payloads);
                }
                6..=7 => {
                    let pages = 1 + self.rng.below(8);
                    let lpn = self.rng.below(SPACE - pages);
                    let got = client
                        .read_with_retry(lpn, pages as u32, started + OP_DEADLINE)
                        .unwrap_or_else(|e| panic!("{label}: read lpn {lpn}: {e}"));
                    if verify {
                        for (i, g) in got.iter().enumerate() {
                            let l = lpn + i as u64;
                            if self.oracle.unstable.contains(&l) {
                                continue;
                            }
                            assert_eq!(
                                g.as_ref(),
                                self.oracle.acked.get(&l),
                                "{label}: lpn {l} diverged from acked state"
                            );
                        }
                    }
                }
                8 => {
                    let pages = 1 + self.rng.below(4);
                    let lpn = self.rng.below(SPACE - pages);
                    match client.trim(lpn, pages as u32) {
                        Ok(_) => self.oracle.trimmed(lpn, pages),
                        // A failed trim may have applied to some shards of
                        // the range: its lpns are unspecified from here on.
                        Err(ClientError::Unavailable { .. }) => self.oracle.trimmed(lpn, pages),
                        Err(e) => panic!("{label}: trim lpn {lpn}: {e}"),
                    }
                }
                _ => {
                    if let Err(e) = client.flush() {
                        assert!(
                            matches!(e, ClientError::Unavailable { .. }),
                            "{label}: flush: {e}"
                        );
                    }
                }
            }
            let elapsed = started.elapsed();
            assert!(
                elapsed < OP_DEADLINE + Duration::from_secs(1),
                "{label}: call outlived its deadline ({elapsed:?})"
            );
        }
    }
}

/// Drain an open-loop wave in order, crediting acked writes to the oracle.
fn drain_wave(
    client: &GatewayClient,
    wave: &mut Vec<(u64, u64, Vec<Bytes>)>,
    oracle: &mut Oracle,
    label: &str,
) {
    for (id, lpn, payloads) in wave.drain(..) {
        let started = Instant::now();
        let reply = loop {
            let r = client
                .recv_reply(OP_DEADLINE)
                .unwrap_or_else(|e| panic!("{label}: no reply for id {id} within deadline: {e}"));
            if r.id() < id {
                continue; // stale reply to an earlier, abandoned attempt
            }
            break r;
        };
        assert_eq!(reply.id(), id, "{label}: replies arrive in order");
        assert!(
            started.elapsed() < OP_DEADLINE,
            "{label}: reply for id {id} outlived the deadline"
        );
        match reply {
            Reply::WriteOk { .. } => oracle.wrote(lpn, &payloads),
            // Not acked: the write may or may not have landed — its lpns
            // are unspecified until rewritten.
            Reply::Unavailable { .. } | Reply::Error { .. } => {
                oracle.trimmed(lpn, payloads.len() as u64);
            }
            other => panic!("{label}: unexpected reply {other:?}"),
        }
    }
}

/// One full kill → serve-degraded → restart → failback → verify cycle.
fn chaos_run(seed: u64) {
    let cfg = GatewayConfig::test_profile();
    let ring_cfg = RingConfig {
        block_pages: cfg.pages_per_block,
        ..RingConfig::default()
    };
    let sg = ShardedGateway::spawn_mem(cfg, ring_cfg, SHARDS);
    let ring = sg.gateway().ring().expect("sharded gateway has a ring");
    let victim = ((seed >> 1) as u16) % SHARDS;
    let victim_lpn = (0..SPACE)
        .find(|&l| ring.shard_of_lpn(l) == victim)
        .expect("victim shard owns some lpn");

    let mut client = sg.connect_mem_as(1);
    client.hello().expect("hello");
    let mut driver = Driver::new(seed);

    // Phase 1: paired warm-up.
    driver.drive_phase(&mut client, 50, true, &format!("seed {seed} pre-kill"));
    assert_sums_match(&sg, &format!("seed {seed} pre-kill"));
    assert!(sg.gateway().shard_routed_to_primary(victim));

    // Kill the victim's primary; the workload must keep completing.
    sg.primary(victim).fail();
    driver.drive_phase(&mut client, 50, false, &format!("seed {seed} outage"));
    assert_sums_match(&sg, &format!("seed {seed} outage"));
    assert!(
        !sg.gateway().shard_routed_to_primary(victim),
        "seed {seed}: outage traffic must have failed the shard over"
    );
    let stats = sg.stats();
    assert!(stats.failovers >= 1, "seed {seed}: no failover counted");
    assert_eq!(stats.unavailable, 0, "seed {seed}: secondary kept serving");

    // Restart the primary; failback is traffic-driven, so poke the victim
    // shard until the probe succeeds and the route flips back.
    sg.primary(victim).restart();
    let failed_back = wait_until(
        || {
            let _ = client.read(victim_lpn, 1);
            sg.gateway().shard_routed_to_primary(victim)
        },
        Duration::from_secs(10),
    );
    assert!(failed_back, "seed {seed}: no failback within 10s");
    assert!(
        sg.stats().failbacks >= 1,
        "seed {seed}: no failback counted"
    );

    // Phase 3: back on the primary; every acked write must be readable.
    driver.drive_phase(&mut client, 50, true, &format!("seed {seed} post-failback"));
    for (&lpn, want) in &driver.oracle.acked {
        let got = client
            .read_with_retry(lpn, 1, Instant::now() + OP_DEADLINE)
            .unwrap_or_else(|e| panic!("seed {seed}: final read lpn {lpn}: {e}"));
        assert_eq!(
            got[0].as_deref(),
            Some(want.as_ref()),
            "seed {seed}: acked write at lpn {lpn} lost across failover"
        );
    }
    assert_sums_match(&sg, &format!("seed {seed} post-failback"));
    sg.shutdown();
}

#[test]
fn chaos_failover_seeds_00_04() {
    for seed in 0..5 {
        chaos_run(seed);
    }
}

#[test]
fn chaos_failover_seeds_05_09() {
    for seed in 5..10 {
        chaos_run(seed);
    }
}

#[test]
fn chaos_failover_seeds_10_14() {
    for seed in 10..15 {
        chaos_run(seed);
    }
}

#[test]
fn chaos_failover_seeds_15_19() {
    for seed in 15..20 {
        chaos_run(seed);
    }
}

/// Contract 2: both replicas of a shard down ⇒ a typed `Unavailable`
/// within the retry deadline (no hang), the surviving shard keeps
/// serving, and service resumes once the pair restarts.
#[test]
fn both_replicas_down_degrades_to_typed_unavailable() {
    let cfg = GatewayConfig::test_profile();
    let ring_cfg = RingConfig {
        block_pages: cfg.pages_per_block,
        ..RingConfig::default()
    };
    let sg = ShardedGateway::spawn_mem(cfg, ring_cfg, SHARDS);
    let ring = sg.gateway().ring().expect("ring");
    let dead_lpn = (0..SPACE)
        .find(|&l| ring.shard_of_lpn(l) == 0)
        .expect("shard 0 owns some lpn");
    let live_lpn = (0..SPACE)
        .find(|&l| ring.shard_of_lpn(l) == 1)
        .expect("shard 1 owns some lpn");

    let mut client = sg.connect_mem_as(1);
    client.hello().expect("hello");
    let page = |lpn: u64, seq: u64| vec![payload(1, lpn, seq, PAGE_BYTES)];
    client.write(dead_lpn, page(dead_lpn, 0)).expect("warm-up");

    sg.primary(0).fail();
    sg.secondary(0).fail();

    let started = Instant::now();
    let err = client
        .write(dead_lpn, page(dead_lpn, 1))
        .expect_err("no live replica");
    let elapsed = started.elapsed();
    match err {
        ClientError::Unavailable { retry_after_ms } => assert!(retry_after_ms >= 1),
        other => panic!("expected Unavailable, got {other}"),
    }
    assert!(elapsed < OP_DEADLINE, "degraded, not hung: {elapsed:?}");
    assert!(sg.stats().unavailable >= 1);
    assert_sums_match(&sg, "double fault");

    // The surviving shard is unaffected.
    client
        .write(live_lpn, page(live_lpn, 2))
        .expect("surviving shard serves");

    // Restart both replicas: service on the shard resumes.
    sg.primary(0).restart();
    sg.secondary(0).restart();
    let recovered = wait_until(
        || client.write(dead_lpn, page(dead_lpn, 3)).is_ok(),
        Duration::from_secs(10),
    );
    assert!(recovered, "shard did not resume after double restart");
    assert_sums_match(&sg, "after double restart");
    sg.shutdown();
}

/// An `Unavailable` reply is only the end of the story for that attempt:
/// `send_with_retry` sleeps the hinted backoff and succeeds as soon as a
/// replica returns.
#[test]
fn client_retry_rides_out_a_brief_double_fault() {
    let cfg = GatewayConfig::test_profile();
    let ring_cfg = RingConfig {
        block_pages: cfg.pages_per_block,
        ..RingConfig::default()
    };
    let sg = ShardedGateway::spawn_mem(cfg, ring_cfg, SHARDS);
    let ring = sg.gateway().ring().expect("ring");
    let lpn = (0..SPACE)
        .find(|&l| ring.shard_of_lpn(l) == 0)
        .expect("shard 0 owns some lpn");

    let mut client = sg.connect_mem_as(1);
    client.hello().expect("hello");

    sg.primary(0).fail();
    sg.secondary(0).fail();
    let reviver = {
        let secondary = sg.secondary(0);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(300));
            secondary.restart();
        })
    };

    let want = payload(1, lpn, 9, PAGE_BYTES);
    let ack = client
        .write_with_retry(
            lpn,
            vec![want.clone()],
            Instant::now() + Duration::from_secs(10),
        )
        .expect("retry outlives the double fault");
    assert_eq!(ack.pages, 1);
    reviver.join().expect("reviver");
    assert_eq!(
        client.read(lpn, 1).expect("read")[0].as_deref(),
        Some(want.as_ref())
    );
    assert_sums_match(&sg, "after revival");
    sg.shutdown();
}
