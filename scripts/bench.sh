#!/usr/bin/env bash
# Replication-pipeline A/B benchmark: fixed-seed write-heavy (fin1)
# closed-loop load over the in-memory transport, pipelined vs the legacy
# stop-and-wait path, at 1 and 4 shards. Emits BENCH_10.json (one JSON
# object per config) and prints a ratio table.
#
# The knobs below size the node buffers above the working set so every
# write replicates (no credit-stall or self-evict write-through), raise
# the gateway destage block so a whole request reaches the node as one
# run, and lift client admission out of the way so shed == 0 — making
# the final-state digest bit-identical between the two modes (asserted
# here). Everything is seeded: same numbers on every run of this script.
#
# Usage: scripts/bench.sh [--smoke]
#   --smoke   tiny request counts, skips the >= 2x throughput assertion
#             (wired into scripts/ci.sh; full runs are for BENCH_10.json)
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=0
[[ "${1:-}" == "--smoke" ]] && SMOKE=1

REQS_1SHARD=1500
REQS_4SHARD=800
REPEATS=3
MIN_RATIO="2.0"
if [[ "$SMOKE" == 1 ]]; then
  REQS_1SHARD=60
  REQS_4SHARD=40
  REPEATS=1
fi

cargo build --release --offline -q -p fc-bench
LG=target/release/loadgen

# Shared fixed-seed workload: fin1 (write fraction 0.91), 32-page mean
# requests, admission lifted out of the way (shed must be 0 for the
# digest identity to hold).
COMMON=(--transport mem --trace fin1 --seed 42 --pages 256 --req-pages 32
  --remote-capacity 16384 --buffer-pages 8192 --repl-batch-pages 32
  --pages-per-block 64 --client-rate 1000000)

# Best-of-N throughput per config: the box this runs on is shared, so a
# single run can eat an unrelated scheduling hiccup. Everything except
# wall time is deterministic across repeats (same seed, same digest).
run_cfg() { # name, extra flags...
  local name=$1
  shift
  echo "==> $name (best of $REPEATS)" >&2
  for _ in $(seq "$REPEATS"); do
    "$LG" "${COMMON[@]}" "$@" --json
    echo
  done |
    python3 -c "
import json, sys
runs = [json.loads(l) for l in sys.stdin if l.strip()]
best = max(runs, key=lambda r: r['throughput_rps'])
assert len({r['state_digest'] for r in runs}) == 1, 'digest varies across repeats'
best['name'] = '$name'
print(json.dumps(best))
"
}

OUT=BENCH_10.json
# Smoke runs (CI) must not clobber the checked-in full-run results.
[[ "$SMOKE" == 1 ]] && OUT=$(mktemp --suffix .bench10.json)
{
  run_cfg pipelined_1shard --clients 4 --requests "$REQS_1SHARD"
  run_cfg legacy_1shard --clients 4 --requests "$REQS_1SHARD" --legacy-repl
  run_cfg pipelined_4shard --clients 8 --shards 4 --requests "$REQS_4SHARD"
  run_cfg legacy_4shard --clients 8 --shards 4 --requests "$REQS_4SHARD" --legacy-repl
} >"$OUT"

python3 - "$OUT" "$MIN_RATIO" "$SMOKE" <<'EOF'
import json, sys

path, min_ratio, smoke = sys.argv[1], float(sys.argv[2]), sys.argv[3] == "1"
rows = {r["name"]: r for r in map(json.loads, open(path))}

print(f"{'config':<18} {'rps':>9} {'p50us':>8} {'p99us':>9} {'p999us':>9} "
      f"{'shed':>6} {'retries':>7} {'digest':>20}")
for name, r in rows.items():
    lat = r["latency_us"]
    print(f"{name:<18} {r['throughput_rps']:>9.0f} {lat['p50']:>8.0f} "
          f"{lat['p99']:>9.0f} {lat['p999']:>9.0f} {r['shed_rate']:>6.3f} "
          f"{r['replication']['retries']:>7} {r['state_digest']:>20}")

ok = True
for shards in ("1shard", "4shard"):
    p, l = rows[f"pipelined_{shards}"], rows[f"legacy_{shards}"]
    ratio = p["throughput_rps"] / l["throughput_rps"]
    print(f"{shards}: pipelined/legacy throughput ratio = {ratio:.2f}x")
    if p["state_digest"] != l["state_digest"]:
        print(f"FAIL: {shards} final-state digest differs between modes")
        ok = False
    for r in (p, l):
        if r["shed"] != 0 or r["errors"] != 0:
            print(f"FAIL: {r['name']} shed={r['shed']} errors={r['errors']}")
            ok = False
    if shards == "1shard" and not smoke and ratio < min_ratio:
        print(f"FAIL: 1shard ratio {ratio:.2f}x below required {min_ratio}x")
        ok = False
sys.exit(0 if ok else 1)
EOF

echo "BENCH OK ($OUT)"
