#!/usr/bin/env bash
# CI entry point: build, full test suite, lints. Everything is offline
# (dependencies are path shims under shims/) and seeded — property tests
# derive per-test seeds deterministically (override with PROPTEST_SEED),
# and the chaos suite in tests/chaos_replication.rs uses fixed seeds 1..=20,
# so a red run here is reproducible locally with the same commands.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt (check only)"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release --offline

echo "==> tier-1: root package tests"
cargo test -q --offline

echo "==> workspace tests"
cargo test --workspace -q --offline

echo "==> clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> rustdoc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline

echo "==> benches compile (criterion harness, including node_write A/B)"
cargo bench --workspace --no-run --offline -q

echo "==> lifecycle chaos suite (partitions, crash/corrupt-during-resync)"
cargo test -q --offline --test chaos_replication --test recovery_e2e

echo "==> sharded cluster: ring proptests + model/chaos/split-run e2e"
cargo test -q --offline -p fc-ring
cargo test -q --offline --test sharded_e2e

echo "==> gateway failover chaos: 20-seed kill/failover/failback sweep"
cargo test -q --offline --test failover_e2e

echo "==> elastic membership: 20-seed live add/remove rebalance sweep"
cargo test -q --offline --test rebalance_e2e

echo "==> failover smoke: full fail → takeover → resync → rejoin loop"
cargo run --release --offline --example failover \
  | grep -q "lifecycle loop complete"

echo "==> obs smoke: quickstart --obs emits schema-valid JSONL"
obs_out="$(mktemp -d)/quickstart.jsonl"
cargo run --release --offline --example quickstart -- --obs "$obs_out" \
  | grep -q "schema OK"
test -s "$obs_out"
rm -rf "$(dirname "$obs_out")"

echo "==> gateway smoke: 4 concurrent clients through the front door"
cargo run --release --offline --example gateway_demo \
  | grep -q "gateway demo complete"

echo "==> loadgen smoke: closed-loop mix workload, 8 clients"
cargo run --release --offline -p fc-bench --bin loadgen -- \
  --clients 8 --trace mix --seed 42 --requests 400 \
  | grep -q "p999"

echo "==> sharded loadgen smoke: 4 pairs behind one gateway, per-shard lines"
cargo run --release --offline -p fc-bench --bin loadgen -- \
  --clients 8 --trace mix --seed 42 --requests 400 --transport mem --shards 4 \
  | grep -q "shard 3"

echo "==> cluster-scale smoke: sim cluster + 1-pair vs 4-pair gateway"
cargo run --release --offline --example cluster_scale \
  | grep -q "cluster scale complete"

echo "==> front-door failover smoke: kill a primary mid-load, zero acked loss"
cargo run --release --offline --example failover_serving \
  | grep -q "FAILOVER-SERVING OK"

echo "==> elastic loadgen smoke: add + retire a pair mid-workload"
cargo run --release --offline -p fc-bench --bin loadgen -- \
  --clients 8 --trace mix --seed 42 --requests 400 --transport mem \
  --shards 4 --add-pair-at 5 --remove-pair-at 40 \
  | grep -q "rebalance"

echo "==> elastic scale smoke: digest identical with and without live scaling"
cargo run --release --offline --example elastic_scale \
  | grep -q "elastic scale complete"

echo "==> replication-pipeline A/B smoke: pipelined vs legacy, digest identity"
scripts/bench.sh --smoke | grep -q "BENCH OK"

echo "CI OK"
