//! # fc-rebalance
//!
//! The elastic-membership coordinator: takes a running
//! [`ShardedGateway`] from ring epoch E to E+1 — adding or removing a
//! cooperative pair — without stopping the cluster.
//!
//! The protocol has four phases, all built on the gateway's dual-ring
//! window (see `fc_gateway::Gateway::begin_rebalance`):
//!
//! 1. **Plan** ([`plan`]) — ask each source pair which blocks it actually
//!    holds ([`Node::try_migration_lpns`]) and keep exactly those whose
//!    owner differs between the old and new rings. Unoccupied blocks
//!    never migrate; their first write simply lands on the new owner.
//! 2. **Begin** — install the new ring (epoch E+1) as the routing target
//!    and fence the moved blocks to their old owners. The gateway
//!    re-scans occupancy under the same write guard that switches the
//!    routing, so blocks first written after the plan was computed are
//!    fenced too — planning does not have to stop the world.
//! 3. **Migrate** ([`execute`]) — stream the fenced blocks pair-to-pair
//!    in bounded batches over the CRC-framed resync entry format
//!    (export → import → release); each batch runs under the gateway's
//!    route-table write guard, so a block's move is atomic against
//!    client ops, and the inter-batch pause keeps migration from
//!    starving admitted traffic.
//! 4. **Commit** — cut over to epoch E+1; for a removal, drain and
//!    quiesce the victim pair afterwards.
//!
//! The front doors are [`add_pair`] and [`remove_pair`]. Both refuse to
//! start while a source shard is failed-over or halted — migration reads
//! the designated primaries, and a degraded pair's state belongs to the
//! failover machinery, not to a rebalance.

use std::sync::Arc;
use std::time::Duration;

use fc_cluster::{mem_pair, shared_backend, MemBackend, Node, NodeConfig, NodeDown};
use fc_gateway::{MigrateBatchError, RebalanceError, ShardedGateway};
use fc_ring::Ring;

/// Coordinator knobs.
#[derive(Debug, Clone)]
pub struct RebalanceConfig {
    /// Blocks migrated per batch — the bound on how long one batch holds
    /// the gateway's route-table write guard (client ops are held for the
    /// duration of a batch).
    pub batch_blocks: usize,
    /// Pause between batches, letting held client ops drain so migration
    /// cannot starve admitted traffic.
    pub inter_batch_pause: Duration,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            batch_blocks: 8,
            inter_batch_pause: Duration::from_micros(200),
        }
    }
}

/// The minimal moved-block set for one membership change: exactly the
/// blocks some source pair holds whose owner differs between the rings.
#[derive(Debug, Clone)]
pub struct RebalancePlan {
    /// Epoch of the ring the cluster routes by today.
    pub from_epoch: u64,
    /// Epoch the cluster cuts over to.
    pub to_epoch: u64,
    /// The target ring.
    pub new_ring: Ring,
    /// `(block, from_shard, to_shard)` moves, ascending by block.
    pub moves: Vec<(u64, u16, u16)>,
}

impl RebalancePlan {
    /// The planned block ids, ascending.
    pub fn blocks(&self) -> Vec<u64> {
        self.moves.iter().map(|&(b, _, _)| b).collect()
    }
}

/// What one completed rebalance did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebalanceReport {
    pub from_epoch: u64,
    pub to_epoch: u64,
    /// Blocks the plan fenced (occupied ∩ owner-changed).
    pub planned_blocks: u64,
    /// Blocks actually handed over: the gateway's begin-time fence, which
    /// can exceed `planned_blocks` when writes landed on owner-changed
    /// blocks between planning and the window opening.
    pub moved_blocks: u64,
    /// Pages those blocks carried.
    pub moved_pages: u64,
    /// Migration batches executed.
    pub batches: u64,
}

/// Why a rebalance refused to start or stopped partway. A partial stop
/// leaves the gateway's window open with unmigrated blocks still fenced
/// (and served) by their old owners — the cluster keeps running in the
/// dual-ring state and the rebalance can be retried.
#[derive(Debug)]
pub enum RebalanceFailure {
    /// The gateway refused a control transition.
    Refused(RebalanceError),
    /// A migration batch stopped on a copy error.
    Migrate(MigrateBatchError),
    /// Shard is failed-over or its primary halted; heal it first.
    ShardDegraded(u16),
    /// `remove_pair` of a pair the ring does not contain.
    NotAMember(u16),
    /// `remove_pair` of the only remaining pair.
    LastPair,
    /// The gateway is not sharded.
    NotSharded,
}

impl std::fmt::Display for RebalanceFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RebalanceFailure::Refused(e) => write!(f, "gateway refused: {e}"),
            RebalanceFailure::Migrate(e) => write!(f, "migration stopped: {e}"),
            RebalanceFailure::ShardDegraded(s) => {
                write!(f, "shard {s} is degraded; heal it before rebalancing")
            }
            RebalanceFailure::NotAMember(s) => write!(f, "pair {s} is not a ring member"),
            RebalanceFailure::LastPair => write!(f, "refusing to remove the last pair"),
            RebalanceFailure::NotSharded => write!(f, "gateway is not sharded"),
        }
    }
}

impl std::error::Error for RebalanceFailure {}

impl From<RebalanceError> for RebalanceFailure {
    fn from(e: RebalanceError) -> Self {
        RebalanceFailure::Refused(e)
    }
}

impl From<MigrateBatchError> for RebalanceFailure {
    fn from(e: MigrateBatchError) -> Self {
        RebalanceFailure::Migrate(e)
    }
}

/// Compute the minimal moved-block set from the current ring to
/// `new_ring`: for every current member, the blocks it actually holds
/// (buffer-resident or durable) whose owner changes. Refuses while any
/// source shard is failed-over or halted.
pub fn plan(sg: &ShardedGateway, new_ring: &Ring) -> Result<RebalancePlan, RebalanceFailure> {
    let old = sg.gateway().ring().ok_or(RebalanceFailure::NotSharded)?;
    let bp = u64::from(old.block_pages());
    let mut moves: Vec<(u64, u16, u16)> = Vec::new();
    for &p in old.members() {
        let primary = sg.primary(p);
        if !sg.gateway().shard_routed_to_primary(p) || primary.is_halted() {
            return Err(RebalanceFailure::ShardDegraded(p));
        }
        let lpns = primary
            .try_migration_lpns()
            .map_err(|NodeDown| RebalanceFailure::ShardDegraded(p))?;
        let mut blocks: Vec<u64> = lpns.iter().map(|l| l / bp).collect();
        blocks.sort_unstable();
        blocks.dedup();
        for b in blocks {
            // A block can only move *from* the pair the old ring says owns
            // it; pages parked elsewhere (e.g. trimmed-but-listed) are not
            // this rebalance's problem.
            if old.shard_of_block(b) != p {
                continue;
            }
            let to = new_ring.shard_of_block(b);
            if to != p {
                moves.push((b, p, to));
            }
        }
    }
    moves.sort_unstable();
    Ok(RebalancePlan {
        from_epoch: old.epoch(),
        to_epoch: new_ring.epoch(),
        new_ring: new_ring.clone(),
        moves,
    })
}

/// Run a planned rebalance: open the window, migrate every fenced block
/// in bounded batches, commit. On a mid-flight error the window stays
/// open (see [`RebalanceFailure`]); calling [`execute`] again with the
/// same plan resumes — already-moved blocks are skipped by the gateway.
pub fn execute(
    sg: &ShardedGateway,
    plan: &RebalancePlan,
    cfg: &RebalanceConfig,
) -> Result<RebalanceReport, RebalanceFailure> {
    let gw = sg.gateway();
    let bp = u64::from(plan.new_ring.block_pages());
    // The gateway re-scans occupancy under its write guard at begin, so
    // the fenced set it hands back — not the plan — is what must migrate:
    // it additionally covers blocks first written between planning and the
    // window opening. On resume it is whatever the interrupted window
    // still holds fenced.
    let blocks =
        match gw.begin_rebalance(plan.new_ring.clone(), plan.moves.iter().map(|&(b, _, _)| b)) {
            Ok(fenced) => fenced,
            Err(RebalanceError::WindowOpen) => gw.rebalance_pending_blocks(),
            Err(e) => return Err(e.into()),
        };
    // Snapshot node handles up front: the copy callback runs under the
    // gateway's route-table write guard, where routing back through the
    // gateway would self-deadlock.
    let primaries: Vec<Arc<Node>> = (0..sg.shards()).map(|s| sg.primary(s)).collect();
    let mut moved_pages = 0u64;
    let mut batches = 0u64;
    for chunk in blocks.chunks(cfg.batch_blocks.max(1)) {
        moved_pages += gw.migrate_batch(chunk, |block, from, to| {
            let lpns: Vec<u64> = (block * bp..(block + 1) * bp).collect();
            let entries = primaries[usize::from(from)].try_export_pages(&lpns)?;
            let applied = primaries[usize::from(to)].try_import_pages(&entries)?;
            primaries[usize::from(from)].try_release_pages(&lpns)?;
            Ok(applied)
        })?;
        batches += 1;
        if !cfg.inter_batch_pause.is_zero() {
            std::thread::sleep(cfg.inter_batch_pause);
        }
    }
    let to_epoch = gw.commit_rebalance()?;
    Ok(RebalanceReport {
        from_epoch: plan.from_epoch,
        to_epoch,
        planned_blocks: plan.moves.len() as u64,
        moved_blocks: blocks.len() as u64,
        moved_pages,
        batches,
    })
}

/// Live scale-up: attach `primary`/`secondary` as the next shard slot,
/// grow the ring by that pair, and migrate exactly the minimally
/// reassigned occupied blocks onto it. Returns once the cluster routes by
/// the new epoch.
pub fn add_pair(
    sg: &ShardedGateway,
    primary: Arc<Node>,
    secondary: Arc<Node>,
    cfg: &RebalanceConfig,
) -> Result<RebalanceReport, RebalanceFailure> {
    let old = sg.gateway().ring().ok_or(RebalanceFailure::NotSharded)?;
    let shard = sg.attach_pair(primary, secondary);
    let mut new_ring = old;
    new_ring.add_pair(shard);
    let plan = plan(sg, &new_ring)?;
    execute(sg, &plan, cfg)
}

/// Live scale-down: migrate every block `victim` holds onto the surviving
/// pairs, cut the ring over without it, then drain (flush) and quiesce
/// both of its nodes. The victim's shard slot stays attached so per-shard
/// stats keep their history; it simply takes no more traffic.
pub fn remove_pair(
    sg: &ShardedGateway,
    victim: u16,
    cfg: &RebalanceConfig,
) -> Result<RebalanceReport, RebalanceFailure> {
    let old = sg.gateway().ring().ok_or(RebalanceFailure::NotSharded)?;
    if !old.members().contains(&victim) {
        return Err(RebalanceFailure::NotAMember(victim));
    }
    if old.members().len() == 1 {
        return Err(RebalanceFailure::LastPair);
    }
    let mut new_ring = old;
    new_ring.remove_pair(victim);
    let plan = plan(sg, &new_ring)?;
    let report = execute(sg, &plan, cfg)?;
    // Post-cut-over the victim owns nothing and receives nothing; destage
    // any stray dirty state and stop its pump threads.
    let primary = sg.primary(victim);
    let _ = primary.try_flush_dirty();
    primary.quiesce();
    sg.secondary(victim).quiesce();
    Ok(report)
}

/// Spawn one in-memory cooperative pair for shard `shard` (node ids
/// `2*shard`/`2*shard+1`, shared mem backend, block geometry
/// `pages_per_block`) — the building block scale-up demos and tests hand
/// to [`add_pair`].
pub fn spawn_mem_pair(shard: u16, pages_per_block: u32) -> (Arc<Node>, Arc<Node>) {
    let (ta, tb) = mem_pair();
    let backend = shared_backend(MemBackend::default());
    let mut cfg_a = NodeConfig::test_profile((2 * shard) as u8);
    cfg_a.pages_per_block = pages_per_block;
    let mut cfg_b = NodeConfig::test_profile((2 * shard + 1) as u8);
    cfg_b.pages_per_block = pages_per_block;
    (
        Arc::new(Node::spawn(cfg_a, ta, backend.clone())),
        Arc::new(Node::spawn(cfg_b, tb, backend)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use fc_gateway::GatewayConfig;
    use fc_ring::RingConfig;

    const BLOCKS: u64 = 64;

    fn page(lpn: u64, tag: u8) -> Bytes {
        Bytes::from(vec![tag, lpn as u8, (lpn >> 8) as u8, 0xAB])
    }

    fn quick() -> RebalanceConfig {
        RebalanceConfig {
            batch_blocks: 4,
            inter_batch_pause: Duration::ZERO,
        }
    }

    #[test]
    fn plan_is_exactly_the_occupied_ring_diff() {
        let sg = ShardedGateway::spawn_mem(GatewayConfig::test_profile(), RingConfig::default(), 2);
        let old = sg.gateway().ring().unwrap();
        let bp = u64::from(old.block_pages());
        let mut client = sg.connect_mem_as(1);
        client.hello().unwrap();
        let occupied: Vec<u64> = (0..BLOCKS).step_by(3).collect();
        for &b in &occupied {
            client.write(b * bp, vec![page(b * bp, 1)]).unwrap();
        }
        let mut new_ring = old.clone();
        new_ring.add_pair(2);
        let plan = plan(&sg, &new_ring).unwrap();
        let expect: Vec<(u64, u16, u16)> = old
            .moved_blocks(&new_ring, BLOCKS)
            .into_iter()
            .filter(|&(b, _, _)| occupied.contains(&b))
            .collect();
        assert_eq!(plan.moves, expect, "plan must be the occupied ring diff");
        assert_eq!(plan.from_epoch, old.epoch());
        assert_eq!(plan.to_epoch, new_ring.epoch());
        sg.shutdown();
    }

    #[test]
    fn add_then_remove_round_trip_keeps_every_acked_write() {
        let sg = ShardedGateway::spawn_mem(GatewayConfig::test_profile(), RingConfig::default(), 2);
        let ring0 = sg.gateway().ring().unwrap();
        let bp = u64::from(ring0.block_pages());
        let mut client = sg.connect_mem_as(1);
        client.hello().unwrap();
        let mut oracle = std::collections::HashMap::new();
        for b in 0..BLOCKS {
            let lpn = b * bp + (b % bp);
            let data = page(lpn, 1);
            client.write(lpn, vec![data.clone()]).unwrap();
            oracle.insert(lpn, data);
        }
        client.flush().unwrap();

        let (p2, s2) = spawn_mem_pair(2, ring0.block_pages());
        let up = add_pair(&sg, p2, s2, &quick()).expect("scale up");
        assert_eq!(up.from_epoch + 1, up.to_epoch);
        assert_eq!(up.moved_blocks, up.planned_blocks);
        assert!(up.moved_blocks > 0);
        assert_eq!(sg.gateway().ring().unwrap().pairs(), &[0, 1, 2]);

        let down = remove_pair(&sg, 2, &quick()).expect("scale down");
        assert_eq!(down.to_epoch, up.to_epoch + 1);
        assert_eq!(
            down.moved_blocks, up.moved_blocks,
            "removing the pair must move back exactly what moved in"
        );
        assert_eq!(sg.gateway().ring().unwrap().pairs(), &[0, 1]);

        for (lpn, data) in &oracle {
            assert_eq!(
                client.read(*lpn, 1).unwrap()[0].as_deref(),
                Some(&data[..]),
                "lpn {lpn} lost across the add/remove round trip"
            );
        }
        // The round trip restored the original assignment: nothing is
        // left hosted on the retired pair.
        assert!(
            oracle.keys().all(|&lpn| sg.primary(2).read(lpn).is_none()),
            "retired pair still hosts data"
        );
        sg.shutdown();
    }

    #[test]
    fn refuses_degraded_sources_and_bad_victims() {
        let sg = ShardedGateway::spawn_mem(GatewayConfig::test_profile(), RingConfig::default(), 2);
        let ring = sg.gateway().ring().unwrap();
        assert!(matches!(
            remove_pair(&sg, 7, &quick()),
            Err(RebalanceFailure::NotAMember(7))
        ));
        sg.primary(1).fail();
        let mut grown = ring.clone();
        grown.add_pair(2);
        assert!(matches!(
            plan(&sg, &grown),
            Err(RebalanceFailure::ShardDegraded(1))
        ));
        sg.primary(1).restart();
        sg.shutdown();
    }

    #[test]
    fn refuses_to_remove_the_last_pair() {
        let sg = ShardedGateway::spawn_mem(GatewayConfig::test_profile(), RingConfig::default(), 1);
        assert!(matches!(
            remove_pair(&sg, 0, &quick()),
            Err(RebalanceFailure::LastPair)
        ));
        sg.shutdown();
    }
}
