//! The cooperative pair — two servers backing each other's writes.
//!
//! "Storage cluster is configured into cooperative pairs, in which each
//! server of the pair serves its own read/write requests, as well as remote
//! write requests from neighboring peer" (Section III.A). [`CoopPair`]
//! replays two traces merged by timestamp, runs the heartbeat monitors and
//! the dynamic memory allocation loop, and supports failure injection:
//!
//! * **Crash(i)** — server *i* loses its volatile state and the remote store
//!   it hosted for the peer; the peer detects the silence via heartbeat
//!   timeout and enters degraded mode (flush dirty, write-through).
//! * **Recover(i)** — server *i* reboots, fetches the peer-held snapshot of
//!   its replicated pages, replays them into its SSD, and purges the peer's
//!   store; the peer sees beats again and resumes replication.

use crate::alloc::{resource_usage, theta, ThetaSample, WorkloadWindow};
use crate::config::{FlashCoopConfig, Scheme};
use crate::recovery::{HeartbeatMonitor, PeerEvent};
use crate::server::CoopServer;
use crate::tables::RemoteStore;
use fc_simkit::SimTime;
use fc_trace::{Op, Trace};

/// A scheduled failure-injection event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injection {
    /// When the event fires.
    pub at: SimTime,
    /// What happens.
    pub event: PairEvent,
}

/// Pair-level events for failure injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairEvent {
    /// Server `i` crashes (volatile state lost).
    Crash(usize),
    /// Server `i` reboots and runs local-failure recovery.
    Recover(usize),
}

/// Two cooperative servers and the shared machinery between them.
pub struct CoopPair {
    servers: [CoopServer; 2],
    /// `stores[i]` holds server *i*'s replicated pages; it physically lives
    /// on server `1-i` and is lost when that host crashes.
    stores: [RemoteStore; 2],
    alive: [bool; 2],
    /// `hb[i]` watches server *i*'s beats (maintained by its peer).
    hb: [HeartbeatMonitor; 2],
    windows: [WorkloadWindow; 2],
    total_mem: [usize; 2],
    theta_now: [f64; 2],
    theta_log: [Vec<ThetaSample>; 2],
    last_alloc: SimTime,
    next_beat: SimTime,
    dynamic_alloc: bool,
}

impl CoopPair {
    /// Build a pair. `cfg.buffer_pages` is interpreted as each server's
    /// *total* donatable memory M; the dynamic allocator splits it into
    /// local buffer (M·(1−θ)) and hosted remote buffer (M·θ). With
    /// `dynamic_alloc` off, the split is fixed at 50/50.
    pub fn new(cfg0: FlashCoopConfig, cfg1: FlashCoopConfig, dynamic_alloc: bool) -> Self {
        let m0 = cfg0.buffer_pages;
        let m1 = cfg1.buffer_pages;
        let s0 = Scheme::FlashCoop(cfg0.policy);
        let s1 = Scheme::FlashCoop(cfg1.policy);
        let mut pair = CoopPair {
            servers: [CoopServer::new(cfg0, s0), CoopServer::new(cfg1, s1)],
            stores: [RemoteStore::new(m1 / 2), RemoteStore::new(m0 / 2)],
            alive: [true, true],
            hb: [
                HeartbeatMonitor::default_profile(),
                HeartbeatMonitor::default_profile(),
            ],
            windows: [WorkloadWindow::new(), WorkloadWindow::new()],
            total_mem: [m0, m1],
            theta_now: [0.5, 0.5],
            theta_log: [Vec::new(), Vec::new()],
            last_alloc: SimTime::ZERO,
            next_beat: SimTime::ZERO,
            dynamic_alloc,
        };
        // Initial 50/50 split of each server's memory.
        for i in 0..2 {
            pair.apply_theta(SimTime::ZERO, i, 0.5);
        }
        pair
    }

    /// Server `i`.
    pub fn server(&self, i: usize) -> &CoopServer {
        &self.servers[i]
    }

    /// Mutable server access (report assembly).
    pub fn server_mut(&mut self, i: usize) -> &mut CoopServer {
        &mut self.servers[i]
    }

    /// The remote store holding server `i`'s replicated pages.
    pub fn store_for(&self, i: usize) -> &RemoteStore {
        &self.stores[i]
    }

    /// θ history of server `i` (Figure 9's series).
    pub fn theta_log(&self, i: usize) -> &[ThetaSample] {
        &self.theta_log[i]
    }

    /// Current θ of server `i`.
    pub fn theta_now(&self, i: usize) -> f64 {
        self.theta_now[i]
    }

    /// Is server `i` up?
    pub fn is_alive(&self, i: usize) -> bool {
        self.alive[i]
    }

    /// Replay two traces (one per server) merged by timestamp, applying the
    /// failure injections at their scheduled times. Injections must be
    /// sorted by time.
    pub fn replay(&mut self, traces: [&Trace; 2], injections: &[Injection]) {
        let mut idx = [0usize, 0usize];
        let mut inj = injections.iter().peekable();
        loop {
            // Next request across both traces.
            let t0 = traces[0].requests.get(idx[0]).map(|r| r.at);
            let t1 = traces[1].requests.get(idx[1]).map(|r| r.at);
            let (who, at) = match (t0, t1) {
                (None, None) => break,
                (Some(a), None) => (0, a),
                (None, Some(b)) => (1, b),
                (Some(a), Some(b)) => {
                    if a <= b {
                        (0, a)
                    } else {
                        (1, b)
                    }
                }
            };
            // Fire injections and housekeeping due before this request.
            while let Some(&&Injection { at: iat, event }) = inj.peek() {
                if iat > at {
                    break;
                }
                self.advance_time(iat);
                self.apply_event(iat, event);
                inj.next();
            }
            self.advance_time(at);

            let req = traces[who].requests[idx[who]];
            idx[who] += 1;
            if !self.alive[who] {
                continue; // a crashed server serves nothing
            }
            let peer = 1 - who;
            // Server `who` replicates into stores[who], hosted at `peer`.
            let (servers, stores) = (&mut self.servers, &mut self.stores);
            let remote = if self.alive[peer] {
                Some(&mut stores[who])
            } else {
                None
            };
            match req.op {
                Op::Write => {
                    servers[who].handle_write(req.at, req.lpn, req.pages, remote);
                }
                Op::Read => {
                    servers[who].handle_read(req.at, req.lpn, req.pages, remote);
                }
                Op::Trim => {
                    servers[who].handle_trim(req.at, req.lpn, req.pages, remote);
                }
            }
        }
        // Drain remaining injections (e.g. a recovery after the last I/O).
        let pending: Vec<Injection> = inj.copied().collect();
        for i in pending {
            self.advance_time(i.at);
            self.apply_event(i.at, i.event);
        }
    }

    /// Every acknowledged-but-unrecoverable page across the pair, as
    /// `(server, lpn)`. Empty = the pair lost nothing.
    pub fn unrecoverable(&self) -> Vec<(usize, u64)> {
        let mut bad = Vec::new();
        for i in 0..2 {
            let peer = 1 - i;
            let store = if self.alive[peer] {
                Some(&self.stores[i])
            } else {
                None
            };
            for lpn in self.servers[i].unrecoverable_pages(store) {
                bad.push((i, lpn));
            }
        }
        bad
    }

    // ---- internals --------------------------------------------------------

    /// Run heartbeats and the allocation loop up to `now`.
    fn advance_time(&mut self, now: SimTime) {
        // Periodic beats from every live server.
        while self.next_beat <= now {
            let at = self.next_beat;
            for i in 0..2 {
                if self.alive[i] {
                    match self.hb[i].on_beat(at) {
                        Some(PeerEvent::Recovered) => {
                            // Peer of `i` reconciles (its replicas at `i` are
                            // gone) and resumes replication.
                            self.servers[1 - i].reconcile_after_peer_recovery(at);
                        }
                        // An on-time beat clears any suspicion the watcher
                        // held about `i`.
                        _ => {
                            if self.alive[1 - i] {
                                self.servers[1 - i].on_peer_healthy();
                            }
                        }
                    }
                }
            }
            self.next_beat = at + self.hb[0].interval();
        }
        // Poll monitors: a Failed event puts the *watcher* into solo
        // (degraded) mode; a Suspected event only marks its lifecycle.
        for i in 0..2 {
            let watcher = 1 - i;
            match self.hb[i].poll(now) {
                Some(PeerEvent::Failed) if self.alive[watcher] => {
                    self.servers[watcher].enter_degraded(now);
                }
                Some(PeerEvent::Suspected) if self.alive[watcher] => {
                    self.servers[watcher].on_peer_suspected();
                }
                _ => {}
            }
        }
        // Dynamic allocation period.
        let period = self.servers[0].util_period();
        if self.dynamic_alloc && now.saturating_since(self.last_alloc) >= period {
            self.evaluate_allocation(now);
            self.last_alloc = now;
        }
    }

    fn apply_event(&mut self, now: SimTime, event: PairEvent) {
        match event {
            PairEvent::Crash(i) => {
                assert!(i < 2);
                self.alive[i] = false;
                self.servers[i].crash();
                // The remote store hosted at `i` (holding the peer's pages)
                // dies with it.
                self.stores[1 - i].purge();
            }
            PairEvent::Recover(i) => {
                assert!(i < 2);
                self.alive[i] = true;
                // Local-failure recovery: fetch the snapshot the peer held
                // for us, replay into the SSD, purge the peer's store.
                if self.alive[1 - i] {
                    let snapshot = self.stores[i].snapshot();
                    self.servers[i].recover_from_snapshot(now, &snapshot);
                    self.stores[i].purge();
                }
                self.servers[i].exit_degraded();
                // The recovery protocol contacts the peer directly (it must,
                // to fetch the RCT snapshot), so the peer resumes replication
                // without waiting for the next heartbeat round.
                self.hb[i].on_beat(now);
                if self.alive[1 - i] {
                    self.servers[1 - i].reconcile_after_peer_recovery(now);
                }
            }
        }
    }

    fn evaluate_allocation(&mut self, now: SimTime) {
        for i in 0..2 {
            if !self.alive[i] || !self.alive[1 - i] {
                continue;
            }
            let peer = 1 - i;
            let pm = self.servers[peer].metrics();
            let a_peer = self.windows[peer].write_fraction(pm.writes, pm.reads);
            let params = self.servers[i].alloc_params();
            let b_local = resource_usage(&params, self.servers[i].util_sample(now));
            let th = theta(a_peer, b_local);
            self.theta_log[i].push(ThetaSample {
                at_secs: now.as_secs_f64(),
                local_usage: b_local,
                peer_write_fraction: a_peer,
                theta: th,
            });
            self.apply_theta(now, i, th);
        }
    }

    /// Resize server `i`'s local buffer and its hosted remote store to match θ.
    fn apply_theta(&mut self, now: SimTime, i: usize, th: f64) {
        self.theta_now[i] = th;
        let m = self.total_mem[i];
        let remote_cap = ((m as f64) * th) as usize;
        let local_cap = m.saturating_sub(remote_cap).max(1);
        // The store hosted at `i` holds the *peer's* pages.
        self.stores[1 - i].set_capacity(remote_cap.max(1));
        let (servers, stores) = (&mut self.servers, &mut self.stores);
        servers[i].resize_buffer(now, local_cap, Some(&mut stores[i]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicyKind;
    use fc_simkit::{DetRng, SimDuration};
    use fc_ssd::FtlKind;
    use fc_trace::IoRequest;

    fn cfg() -> FlashCoopConfig {
        let mut c = FlashCoopConfig::tiny(FtlKind::PageLevel, PolicyKind::Lar);
        c.buffer_pages = 32;
        c.alloc.period = SimDuration::from_millis(500);
        c
    }

    fn trace(pages: u64, n: usize, write_frac: f64, seed: u64, name: &str) -> Trace {
        let mut rng = DetRng::new(seed);
        let mut t = Trace::new(name);
        let mut now = SimTime::ZERO;
        for _ in 0..n {
            now += SimDuration::from_millis(15 + rng.below(15));
            let op = if rng.chance(write_frac) {
                Op::Write
            } else {
                Op::Read
            };
            t.push(IoRequest {
                at: now,
                lpn: rng.below(pages - 2),
                pages: 1,
                op,
            });
        }
        t
    }

    fn device_pages() -> u64 {
        CoopServer::new(cfg(), Scheme::Baseline)
            .ssd()
            .logical_pages()
    }

    #[test]
    fn healthy_pair_loses_nothing() {
        let pages = device_pages();
        let mut pair = CoopPair::new(cfg(), cfg(), true);
        let t0 = trace(pages, 400, 0.9, 1, "a");
        let t1 = trace(pages, 400, 0.2, 2, "b");
        pair.replay([&t0, &t1], &[]);
        assert!(pair.unrecoverable().is_empty());
        assert!(pair.server(0).metrics().writes > 0);
        assert!(pair.server(1).metrics().reads > 0);
    }

    #[test]
    fn crash_and_recovery_preserve_acknowledged_writes() {
        let pages = device_pages();
        let mut pair = CoopPair::new(cfg(), cfg(), false);
        let t0 = trace(pages, 600, 0.9, 3, "a");
        let t1 = trace(pages, 600, 0.9, 4, "b");
        let mid = t0.requests[300].at;
        let later = mid + SimDuration::from_secs(30);
        let inj = [
            Injection {
                at: mid,
                event: PairEvent::Crash(0),
            },
            Injection {
                at: later,
                event: PairEvent::Recover(0),
            },
        ];
        pair.replay([&t0, &t1], &inj);
        assert!(
            pair.unrecoverable().is_empty(),
            "acknowledged writes lost: {:?}",
            pair.unrecoverable()
        );
        assert!(pair.is_alive(0));
    }

    #[test]
    fn peer_enters_degraded_mode_after_crash_and_resumes_after_recovery() {
        let pages = device_pages();
        let mut pair = CoopPair::new(cfg(), cfg(), false);
        let t0 = trace(pages, 400, 0.9, 5, "a");
        let t1 = trace(pages, 400, 0.9, 6, "b");
        let quarter = t1.requests[100].at;
        let inj = [Injection {
            at: quarter,
            event: PairEvent::Crash(0),
        }];
        pair.replay([&t0, &t1], &inj);
        // Server 1 detected the silence and went degraded.
        assert!(pair.server(1).is_degraded());
        assert!(pair.unrecoverable().is_empty());

        // Now with recovery: degraded mode ends.
        let mut pair2 = CoopPair::new(cfg(), cfg(), false);
        let recover_at = quarter + SimDuration::from_secs(20);
        let inj2 = [
            Injection {
                at: quarter,
                event: PairEvent::Crash(0),
            },
            Injection {
                at: recover_at,
                event: PairEvent::Recover(0),
            },
        ];
        pair2.replay([&t0, &t1], &inj2);
        assert!(
            !pair2.server(1).is_degraded(),
            "peer must resume replication"
        );
        assert!(pair2.unrecoverable().is_empty());
    }

    #[test]
    fn survivor_lifecycle_loops_back_to_paired() {
        use crate::recovery::PairState;
        let pages = device_pages();
        let mut pair = CoopPair::new(cfg(), cfg(), false);
        let t0 = trace(pages, 400, 0.9, 5, "a");
        let t1 = trace(pages, 400, 0.9, 6, "b");
        let quarter = t1.requests[100].at;
        let recover_at = quarter + SimDuration::from_secs(20);
        let inj = [
            Injection {
                at: quarter,
                event: PairEvent::Crash(0),
            },
            Injection {
                at: recover_at,
                event: PairEvent::Recover(0),
            },
        ];
        pair.replay([&t0, &t1], &inj);
        // The survivor walked Solo and back: final state is Paired and the
        // loop took at least Paired→Solo→Resyncing→Paired (3 edges; the
        // monitor usually adds a Suspect edge before failure is declared).
        assert_eq!(pair.server(1).lifecycle_state(), PairState::Paired);
        assert!(
            pair.server(1).lifecycle_transitions() >= 3,
            "expected a full solo loop, saw {} transitions",
            pair.server(1).lifecycle_transitions()
        );
        assert!(pair.unrecoverable().is_empty());
    }

    #[test]
    fn dynamic_allocation_tracks_peer_write_intensity() {
        let pages = device_pages();
        // Server 1's peer (server 0) is write-heavy; server 1 is idle-ish.
        let mut pair = CoopPair::new(cfg(), cfg(), true);
        let t0 = trace(pages, 2_000, 0.95, 7, "writer");
        let t1 = trace(pages, 200, 0.05, 8, "reader");
        pair.replay([&t0, &t1], &[]);
        let log1 = pair.theta_log(1); // server 1 donates to write-heavy peer
        let log0 = pair.theta_log(0); // server 0 donates to read-heavy peer
        assert!(!log1.is_empty() && !log0.is_empty());
        let avg = |l: &[ThetaSample]| l.iter().map(|s| s.theta).sum::<f64>() / l.len() as f64;
        assert!(
            avg(log1) > avg(log0),
            "write-heavy peer should earn more remote buffer: {} vs {}",
            avg(log1),
            avg(log0)
        );
    }

    #[test]
    fn crashed_server_serves_no_requests() {
        let pages = device_pages();
        let mut pair = CoopPair::new(cfg(), cfg(), false);
        let t0 = trace(pages, 300, 0.9, 9, "a");
        let t1 = trace(pages, 10, 0.9, 10, "b");
        let start = t0.requests[0].at;
        let inj = [Injection {
            at: start,
            event: PairEvent::Crash(0),
        }];
        pair.replay([&t0, &t1], &inj);
        assert_eq!(pair.server(0).metrics().writes, 0);
        assert!(pair.server(1).metrics().writes > 0);
    }

    #[test]
    fn static_split_keeps_theta_constant() {
        let pages = device_pages();
        let mut pair = CoopPair::new(cfg(), cfg(), false);
        let t0 = trace(pages, 300, 0.9, 11, "a");
        let t1 = trace(pages, 300, 0.1, 12, "b");
        pair.replay([&t0, &t1], &[]);
        assert_eq!(pair.theta_now(0), 0.5);
        assert_eq!(pair.theta_now(1), 0.5);
        assert!(pair.theta_log(0).is_empty());
    }
}
