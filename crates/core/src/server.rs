//! One cooperative storage server.
//!
//! [`CoopServer`] wires the access portal of Figure 3 to a virtual-clock
//! replay: requests arrive at trace timestamps and contend for two FIFO
//! resources — the SSD channel and the replication NIC. A request's response
//! time is queueing plus service on whatever it had to touch:
//!
//! * **FlashCoop write** — DRAM insert + replication round trip to the peer's
//!   remote buffer; the SSD is *not* on the critical path. Evicted blocks are
//!   flushed asynchronously (they occupy the SSD timeline, delaying later
//!   read misses — the paper's "internal operations … compete for resources
//!   with incoming foreground requests").
//! * **FlashCoop read** — buffer hits cost DRAM; misses queue on the SSD and
//!   the fetched pages are cached.
//! * **Baseline** — every request goes synchronously to the SSD.
//!
//! The server also keeps the durability bookkeeping used by the recovery
//! tests: `committed` models what is on the SSD (the flash simulator stores
//! no user data), and `versions` is the oracle of acknowledged writes.

use crate::buffer::{BufferConfig, BufferManager};
use crate::config::{FlashCoopConfig, Scheme};
use crate::policy::Eviction;
use crate::recovery::{LifecycleTransition, PairLifecycle, PairState, PeerEvent};
use crate::tables::{Rct, RemoteStore};
use fc_obs::{Histogram, Obs};
use fc_simkit::resource::Timeline;
use fc_simkit::stats::LatencyStats;
use fc_simkit::{SimDuration, SimTime};
use fc_ssd::{Lpn, Ssd};
use std::collections::HashMap;

/// Per-server response-time and replication counters.
#[derive(Debug, Clone, Default)]
pub struct ServerMetrics {
    /// All requests.
    pub response: LatencyStats,
    /// Writes only.
    pub write_response: LatencyStats,
    /// Reads only.
    pub read_response: LatencyStats,
    /// Pages replicated to the peer.
    pub replicated_pages: u64,
    /// Replications refused by a full remote store (forced sync flushes).
    pub remote_rejections: u64,
    /// Write requests handled.
    pub writes: u64,
    /// Read requests handled.
    pub reads: u64,
    /// TRIM requests handled.
    pub trims: u64,
    /// Length in pages of every destage run issued to the SSD (the
    /// sequentiality the buffer reshaped random writes into). When an
    /// observability handle is attached this is the registry's
    /// `core.destage.run_pages` histogram, shared by handle.
    pub destage_run_pages: Histogram,
}

/// Dumps the server's request counters and latency distributions under
/// `core.*` into an observability registry.
impl fc_obs::StatSource for ServerMetrics {
    fn emit(&self, reg: &mut fc_obs::Registry) {
        reg.counter("core.writes").store(self.writes);
        reg.counter("core.reads").store(self.reads);
        reg.counter("core.trims").store(self.trims);
        reg.counter("core.replicated_pages")
            .store(self.replicated_pages);
        reg.counter("core.remote_rejections")
            .store(self.remote_rejections);
        self.response.emit_with_prefix("core.response", reg);
        self.write_response
            .emit_with_prefix("core.write_response", reg);
        self.read_response
            .emit_with_prefix("core.read_response", reg);
    }
}

/// Resource-utilisation snapshot for the dynamic allocation monitor
/// (the mᵢ, pᵢ, nᵢ of Equation 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilSample {
    /// Memory utilisation: buffer occupancy.
    pub m: f64,
    /// CPU utilisation.
    pub p: f64,
    /// Network utilisation.
    pub n: f64,
}

/// One cooperative storage server under trace replay.
pub struct CoopServer {
    cfg: FlashCoopConfig,
    scheme: Scheme,
    buffer: BufferManager,
    ssd: Ssd,
    /// Foreground device queue (synchronous writes, read misses).
    ssd_q: Timeline,
    /// Background device queue (asynchronous buffer flushes). Foreground
    /// requests do not wait behind this queue; they pay a bounded
    /// interference penalty instead (the device finishes its current
    /// page-level operation before serving the read).
    ssd_bg: Timeline,
    nic_q: Timeline,
    rct: Rct,
    /// Latest acknowledged version per page (test oracle; would be the
    /// client's knowledge in a real deployment).
    versions: HashMap<u64, u64>,
    /// Version durably on the SSD per page (models device contents).
    committed: HashMap<u64, u64>,
    next_version: u64,
    metrics: ServerMetrics,
    /// Where this server stands relative to its peer (replaces the old
    /// one-way `degraded` latch; see [`PairLifecycle`]).
    lifecycle: PairLifecycle,
    cpu_busy: SimDuration,
    obs: Option<Obs>,
}

impl CoopServer {
    /// Build a server. `scheme` selects Baseline or FlashCoop behaviour; for
    /// Baseline the buffer exists but is bypassed.
    pub fn new(cfg: FlashCoopConfig, scheme: Scheme) -> Self {
        let buffer = BufferManager::from_config(
            BufferConfig::builder()
                .policy(cfg.policy)
                .capacity(cfg.buffer_pages)
                .pages_per_block(cfg.pages_per_block())
                .clustering(cfg.clustering)
                .lar_dirty_tiebreak(cfg.lar_dirty_tiebreak)
                .dirty_watermark(cfg.dirty_watermark)
                .build(),
        );
        let ssd = Ssd::new(cfg.ssd);
        CoopServer {
            buffer,
            ssd,
            ssd_q: Timeline::new(),
            ssd_bg: Timeline::new(),
            nic_q: Timeline::new(),
            rct: Rct::new(),
            versions: HashMap::new(),
            committed: HashMap::new(),
            next_version: 1,
            metrics: ServerMetrics::default(),
            lifecycle: PairLifecycle::new(),
            cpu_busy: SimDuration::ZERO,
            cfg,
            scheme,
            obs: None,
        }
    }

    /// Wire the whole server into an observability handle: the buffer's
    /// hit/miss counters and eviction events, the SSD's program/erase/GC
    /// stream, per-request `write`/`read`/`trim` response events, `destage`
    /// events, and the `core.destage.run_pages` run-length histogram.
    ///
    /// Attach *after* preconditioning so aging traffic stays out of the
    /// stream. The handle's sim clock is advanced by each request handler.
    pub fn attach_obs(&mut self, obs: &Obs) {
        self.buffer.attach_obs(obs);
        self.ssd.attach_obs(obs);
        // Share the registry's histogram handle so destage recording feeds
        // snapshots directly (pre-attach recordings are folded in once:
        // a fresh server has none, so this is a plain handle swap).
        self.metrics.destage_run_pages = obs.registry().histogram("core.destage.run_pages");
        self.obs = Some(obs.clone());
    }

    /// The scheme this server runs.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The underlying SSD (stats inspection).
    pub fn ssd(&self) -> &Ssd {
        &self.ssd
    }

    /// Mutable SSD access (preconditioning).
    pub fn ssd_mut(&mut self) -> &mut Ssd {
        &mut self.ssd
    }

    /// The local buffer.
    pub fn buffer(&self) -> &BufferManager {
        &self.buffer
    }

    /// Response-time metrics.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// Mutable metrics (percentile queries sort internally).
    pub fn metrics_mut(&mut self) -> &mut ServerMetrics {
        &mut self.metrics
    }

    /// This server's RCT (its view of what the peer holds for it).
    pub fn rct(&self) -> &Rct {
        &self.rct
    }

    /// True while writes bypass replication (`Solo` or `Resyncing`).
    pub fn is_degraded(&self) -> bool {
        self.lifecycle.is_degraded()
    }

    /// Current pair-lifecycle state.
    pub fn lifecycle_state(&self) -> PairState {
        self.lifecycle.state()
    }

    /// Lifecycle transitions taken since boot (or the last crash).
    pub fn lifecycle_transitions(&self) -> u64 {
        self.lifecycle.transitions()
    }

    /// The monitor raised suspicion about the peer (beat overdue).
    pub fn on_peer_suspected(&mut self) {
        if let Some(tr) = self.lifecycle.on_peer_event(PeerEvent::Suspected) {
            self.emit_transition(&tr);
        }
    }

    /// A beat arrived while the peer was merely suspect: clear suspicion.
    pub fn on_peer_healthy(&mut self) {
        if let Some(tr) = self.lifecycle.on_peer_healthy() {
            self.emit_transition(&tr);
        }
    }

    fn emit_transition(&self, tr: &LifecycleTransition) {
        if let Some(o) = &self.obs {
            o.emit(
                o.event("core", "lifecycle")
                    .str_field("from", tr.from.name())
                    .str_field("to", tr.to.name())
                    .str_field("cause", tr.cause),
            );
        }
    }

    /// Dynamic-allocation parameters (Equation 1 weights and period).
    pub fn alloc_params(&self) -> crate::config::AllocParams {
        self.cfg.alloc
    }

    /// Re-evaluation period for the dynamic allocation loop.
    pub fn util_period(&self) -> SimDuration {
        self.cfg.alloc.period
    }

    /// Resource utilisation over `[0, now]` (Equation 1 inputs).
    pub fn util_sample(&self, now: SimTime) -> UtilSample {
        let horizon = now.as_nanos();
        let p = if horizon == 0 {
            0.0
        } else {
            (self.cpu_busy.as_nanos() as f64 / horizon as f64).min(1.0)
        };
        UtilSample {
            m: self.buffer.occupancy().min(1.0),
            p,
            n: self.nic_q.utilization(now),
        }
    }

    /// Bounded interference a foreground request suffers when background
    /// flush work is in flight: the device completes its current page-level
    /// operation before switching to the foreground request.
    fn bg_interference(&self, now: SimTime) -> SimDuration {
        if self.ssd_bg.is_idle_at(now) {
            SimDuration::ZERO
        } else {
            self.cfg.ssd.timing.host_page_program()
        }
    }

    /// Handle a write request arriving at `now`. `remote` is the peer's
    /// remote store, when the peer is reachable.
    pub fn handle_write(
        &mut self,
        now: SimTime,
        lpn: u64,
        pages: u32,
        mut remote: Option<&mut RemoteStore>,
    ) -> SimDuration {
        if let Some(o) = &self.obs {
            o.set_sim_now(now.as_nanos());
        }
        let version = self.next_version;
        self.next_version += 1;
        for i in 0..pages as u64 {
            self.versions.insert(lpn + i, version);
        }
        self.metrics.writes += 1;
        self.cpu_busy += self.cfg.cpu_per_request;

        let resp = match self.scheme {
            Scheme::Baseline => {
                let service = self.ssd.write(Lpn(lpn), pages) + self.bg_interference(now);
                let grant = self.ssd_q.acquire(now, service);
                self.commit_range(lpn, pages, version);
                grant.latency_since(now)
            }
            Scheme::FlashCoop(_) if self.lifecycle.is_degraded() => {
                // Remote failure: no forwarding; write-through so no new
                // unreplicated dirty data accumulates (Section III.D).
                let ev = self.buffer.insert_clean(lpn, pages);
                self.issue_flushes(now, &ev, remote.take());
                let service = self.ssd.write(Lpn(lpn), pages) + self.bg_interference(now);
                let grant = self.ssd_q.acquire(now, service);
                self.commit_range(lpn, pages, version);
                grant.latency_since(now)
            }
            Scheme::FlashCoop(_) => {
                let dram = self.cfg.dram_page_access.saturating_mul(pages as u64);
                self.cpu_busy += dram;
                let ev = self.buffer.write(lpn, pages);

                // Replicate every written page to the peer's remote buffer.
                let mut rejected: Vec<u64> = Vec::new();
                let mut ack_at = now + dram;
                if self.cfg.replication {
                    if let Some(store) = remote.as_deref_mut() {
                        for i in 0..pages as u64 {
                            let p = lpn + i;
                            if store.write(p, version) {
                                self.rct.insert(p, version);
                                self.metrics.replicated_pages += 1;
                            } else {
                                rejected.push(p);
                                self.metrics.remote_rejections += 1;
                            }
                        }
                        let bytes = pages as u64 * self.cfg.ssd.geometry.page_bytes as u64;
                        let grant = self
                            .nic_q
                            .acquire(now, self.cfg.link.serialization_time(bytes));
                        ack_at = ack_at.max(grant.end + self.cfg.link.latency * 2);
                    } else {
                        // Peer unreachable and not yet marked degraded: every
                        // page must be made durable synchronously.
                        rejected.extend((0..pages as u64).map(|i| lpn + i));
                    }
                }

                // Pages that could not be replicated are flushed
                // synchronously — durability must not regress.
                if !rejected.is_empty() {
                    let runs: Vec<(Lpn, u32)> = rejected.iter().map(|&p| (Lpn(p), 1)).collect();
                    let service = self.ssd.write_batch(&runs);
                    let grant = self.ssd_q.acquire(now, service);
                    ack_at = ack_at.max(grant.end);
                    for &p in &rejected {
                        self.committed.insert(p, version);
                        self.buffer.mark_clean(p);
                    }
                }

                self.issue_flushes(now, &ev, remote.as_deref_mut());
                // Proactive cleaning, when configured: write back dirty data
                // in the background before replacement pressure forces it.
                let bg = self.buffer.background_clean();
                self.issue_flushes(now, &bg, remote.take());
                ack_at.saturating_since(now)
            }
        };
        self.metrics.response.push(resp);
        self.metrics.write_response.push(resp);
        if let Some(o) = &self.obs {
            o.emit(
                o.event("core", "write")
                    .u64_field("lpn", lpn)
                    .u64_field("pages", pages as u64)
                    .u64_field("resp_ns", resp.as_nanos()),
            );
        }
        resp
    }

    /// Handle a read request arriving at `now`.
    pub fn handle_read(
        &mut self,
        now: SimTime,
        lpn: u64,
        pages: u32,
        mut remote: Option<&mut RemoteStore>,
    ) -> SimDuration {
        if let Some(o) = &self.obs {
            o.set_sim_now(now.as_nanos());
        }
        self.metrics.reads += 1;
        self.cpu_busy += self.cfg.cpu_per_request;
        let resp = match self.scheme {
            Scheme::Baseline => {
                let service = self.ssd.read(Lpn(lpn), pages) + self.bg_interference(now);
                let grant = self.ssd_q.acquire(now, service);
                grant.latency_since(now)
            }
            Scheme::FlashCoop(_) => {
                let segments = self.buffer.read(lpn, pages);
                let mut done = now;
                let mut dram_total = SimDuration::ZERO;
                for seg in &segments {
                    if seg.hit {
                        dram_total += self.cfg.dram_page_access.saturating_mul(seg.pages as u64);
                    } else {
                        let service =
                            self.ssd.read(Lpn(seg.lpn), seg.pages) + self.bg_interference(now);
                        let grant = self.ssd_q.acquire(now, service);
                        done = done.max(grant.end);
                        let ev = self.buffer.insert_clean(seg.lpn, seg.pages);
                        self.issue_flushes(now, &ev, remote.as_deref_mut());
                    }
                }
                self.cpu_busy += dram_total;
                done = done.max(now + dram_total);
                done.saturating_since(now)
            }
        };
        self.metrics.response.push(resp);
        self.metrics.read_response.push(resp);
        if let Some(o) = &self.obs {
            o.emit(
                o.event("core", "read")
                    .u64_field("lpn", lpn)
                    .u64_field("pages", pages as u64)
                    .u64_field("resp_ns", resp.as_nanos()),
            );
        }
        resp
    }

    /// Record that `pages` pages at `lpn` are durable at `version`.
    fn commit_range(&mut self, lpn: u64, pages: u32, version: u64) {
        for i in 0..pages as u64 {
            let e = self.committed.entry(lpn + i).or_insert(version);
            *e = (*e).max(version);
        }
    }

    /// Issue the flush work of an eviction as one batched device write, off
    /// the request's critical path; commit versions and release remote copies.
    fn issue_flushes(&mut self, now: SimTime, ev: &Eviction, mut remote: Option<&mut RemoteStore>) {
        if ev.is_empty() {
            return;
        }
        let runs: Vec<(Lpn, u32)> = ev.runs.iter().map(|r| (Lpn(r.lpn), r.pages)).collect();
        for r in &ev.runs {
            self.metrics.destage_run_pages.record(r.pages as u64);
        }
        let service = self.ssd.write_batch(&runs);
        self.ssd_bg.acquire_background(now, service);
        if let Some(o) = &self.obs {
            let lengths: Vec<u64> = ev.runs.iter().map(|r| r.pages as u64).collect();
            o.emit(
                o.event("core", "destage")
                    .u64_field("runs", lengths.len() as u64)
                    .u64_field("pages", lengths.iter().sum())
                    .u64s_field("run_pages", lengths)
                    .u64_field("service_ns", service.as_nanos()),
            );
        }
        for r in &ev.runs {
            for i in 0..r.pages as u64 {
                let p = r.lpn + i;
                if let Some(&v) = self.versions.get(&p) {
                    let e = self.committed.entry(p).or_insert(v);
                    *e = (*e).max(v);
                }
                self.rct.discard(p);
                if let Some(store) = remote.as_deref_mut() {
                    store.discard(p);
                }
            }
        }
    }

    /// Handle a TRIM (file deletion) arriving at `now`: the data ceases to
    /// exist everywhere — buffer, remote replica, device mapping, and the
    /// durability oracle. "Short lived files … are removed and purged from
    /// the buffer before they are pushed to SSD" (Section III.A).
    pub fn handle_trim(
        &mut self,
        now: SimTime,
        lpn: u64,
        pages: u32,
        mut remote: Option<&mut RemoteStore>,
    ) -> SimDuration {
        if let Some(o) = &self.obs {
            o.set_sim_now(now.as_nanos());
        }
        self.metrics.trims += 1;
        self.cpu_busy += self.cfg.cpu_per_request;
        match self.scheme {
            Scheme::FlashCoop(_) => {
                self.buffer.discard(lpn, pages);
            }
            Scheme::Baseline => {}
        }
        for i in 0..pages as u64 {
            let p = lpn + i;
            self.versions.remove(&p);
            self.committed.remove(&p);
            self.rct.discard(p);
            if let Some(store) = remote.as_deref_mut() {
                store.discard(p);
            }
        }
        let service = self.ssd.trim(Lpn(lpn), pages);
        // TRIM is a metadata command; it still serialises on the device.
        let grant = self.ssd_q.acquire(now, service);
        let resp = grant.latency_since(now).max(self.cfg.dram_page_access);
        self.metrics.response.push(resp);
        if let Some(o) = &self.obs {
            o.emit(
                o.event("core", "trim")
                    .u64_field("lpn", lpn)
                    .u64_field("pages", pages as u64)
                    .u64_field("resp_ns", resp.as_nanos()),
            );
        }
        resp
    }

    /// Apply a new local-buffer capacity (dynamic memory allocation);
    /// evictions forced by a shrink are flushed in the background.
    pub fn resize_buffer(&mut self, now: SimTime, pages: usize, remote: Option<&mut RemoteStore>) {
        let ev = self.buffer.set_capacity(pages);
        self.issue_flushes(now, &ev, remote);
    }

    // ---- failure handling (Section III.D) --------------------------------

    /// Local failure: the server crashes, losing all volatile state (buffer,
    /// RCT mirror). SSD contents (`committed`) survive.
    pub fn crash(&mut self) {
        self.buffer.clear();
        self.rct.clear();
        // A rebooted node starts a fresh lifecycle at Paired.
        self.lifecycle = PairLifecycle::new();
    }

    /// Local-failure recovery, step 2-3: replay the peer's remote-buffer
    /// snapshot into the SSD. Returns the time the replay occupied the SSD.
    /// The caller then purges the peer's store (step 4).
    pub fn recover_from_snapshot(&mut self, now: SimTime, snapshot: &[(u64, u64)]) -> SimDuration {
        if snapshot.is_empty() {
            return SimDuration::ZERO;
        }
        let pairs: Vec<(u64, bool)> = snapshot.iter().map(|&(l, _)| (l, true)).collect();
        let runs = crate::policy::runs_from_sorted(&pairs);
        let batch: Vec<(Lpn, u32)> = runs.iter().map(|r| (Lpn(r.lpn), r.pages)).collect();
        let service = self.ssd.write_batch(&batch);
        let grant = self.ssd_q.acquire(now, service);
        for &(lpn, ver) in snapshot {
            let e = self.committed.entry(lpn).or_insert(ver);
            *e = (*e).max(ver);
        }
        grant.latency_since(now)
    }

    /// Remote failure: stop forwarding and immediately flush all local dirty
    /// data. Returns the flush duration.
    pub fn enter_degraded(&mut self, now: SimTime) -> SimDuration {
        if let Some(tr) = self.lifecycle.force_solo("remote_failure") {
            self.emit_transition(&tr);
        }
        let ev = self.buffer.drain_dirty();
        if ev.is_empty() {
            return SimDuration::ZERO;
        }
        let runs: Vec<(Lpn, u32)> = ev.runs.iter().map(|r| (Lpn(r.lpn), r.pages)).collect();
        let service = self.ssd.write_batch(&runs);
        let grant = self.ssd_q.acquire(now, service);
        for r in &ev.runs {
            for i in 0..r.pages as u64 {
                let p = r.lpn + i;
                if let Some(&v) = self.versions.get(&p) {
                    let e = self.committed.entry(p).or_insert(v);
                    *e = (*e).max(v);
                }
                self.rct.discard(p);
            }
        }
        grant.latency_since(now)
    }

    /// Peer is back: resume replication. In the simulated pair the resync is
    /// instantaneous (the dirty flush already happened synchronously inside
    /// [`CoopServer::enter_degraded`]), so this walks `Solo → Resyncing →
    /// Paired` in one call, emitting both edges.
    pub fn exit_degraded(&mut self) {
        for tr in self.lifecycle.rejoin("peer_recovered") {
            self.emit_transition(&tr);
        }
    }

    /// The peer returned from a failure (possibly one shorter than the
    /// heartbeat timeout, so we may never have entered degraded mode). Its
    /// remote buffer — and every replica it held for us — restarted empty,
    /// so all local dirty pages must be made durable locally and the RCT
    /// cleared before buffered operation resumes. Without this, a dirty
    /// page whose replica died with the peer would be one local crash away
    /// from loss.
    pub fn reconcile_after_peer_recovery(&mut self, now: SimTime) -> SimDuration {
        let d = self.enter_degraded(now);
        self.rct.clear();
        self.exit_degraded();
        d
    }

    /// Durability check: every acknowledged write's latest version must be
    /// recoverable — on the SSD, dirty in the local buffer, or replicated in
    /// the peer's store. Returns the LPNs that violate this (empty = safe).
    pub fn unrecoverable_pages(&self, peer_store: Option<&RemoteStore>) -> Vec<u64> {
        let mut bad = Vec::new();
        for (&lpn, &ver) in &self.versions {
            let committed_ok = self.committed.get(&lpn).map(|&c| c >= ver).unwrap_or(false);
            let buffered_ok = self.buffer.lookup(lpn) == Some(true);
            let replicated_ok = peer_store
                .and_then(|s| {
                    s.snapshot()
                        .iter()
                        .find(|&&(l, _)| l == lpn)
                        .map(|&(_, v)| v)
                })
                .map(|v| v >= ver)
                .unwrap_or(false);
            if !committed_ok && !buffered_ok && !replicated_ok {
                bad.push(lpn);
            }
        }
        bad.sort_unstable();
        bad
    }

    /// Pages whose latest version is durable on the SSD.
    pub fn committed_len(&self) -> usize {
        self.committed.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicyKind;
    use fc_ssd::FtlKind;

    fn server(scheme: Scheme) -> CoopServer {
        let policy = match scheme {
            Scheme::FlashCoop(p) => p,
            Scheme::Baseline => PolicyKind::Lar,
        };
        CoopServer::new(FlashCoopConfig::tiny(FtlKind::PageLevel, policy), scheme)
    }

    fn lar() -> Scheme {
        Scheme::FlashCoop(PolicyKind::Lar)
    }

    #[test]
    fn flashcoop_write_is_much_faster_than_baseline() {
        let mut fc = server(lar());
        let mut base = server(Scheme::Baseline);
        let mut remote = RemoteStore::new(1024);
        let t_fc = fc.handle_write(SimTime::ZERO, 0, 1, Some(&mut remote));
        let t_base = base.handle_write(SimTime::ZERO, 0, 1, None);
        assert!(
            t_fc.as_nanos() * 3 < t_base.as_nanos(),
            "buffered {t_fc} vs sync {t_base}"
        );
        assert_eq!(remote.len(), 1);
        assert_eq!(fc.rct().len(), 1);
    }

    #[test]
    fn read_hit_is_served_from_dram() {
        let mut s = server(lar());
        let mut remote = RemoteStore::new(1024);
        s.handle_write(SimTime::ZERO, 5, 1, Some(&mut remote));
        let t = s.handle_read(SimTime::from_millis(1), 5, 1, Some(&mut remote));
        assert_eq!(t, s.cfg.dram_page_access);
    }

    #[test]
    fn read_miss_queues_on_ssd_and_caches() {
        let mut s = server(lar());
        let mut remote = RemoteStore::new(1024);
        let t1 = s.handle_read(SimTime::ZERO, 9, 1, Some(&mut remote));
        assert!(t1 >= SimDuration::from_micros(100)); // at least the bus transfer
                                                      // Second read of the same page hits DRAM.
        let t2 = s.handle_read(SimTime::from_millis(1), 9, 1, Some(&mut remote));
        assert!(t2 < t1);
    }

    #[test]
    fn eviction_commits_versions_and_discards_remote_copies() {
        let mut s = server(lar());
        let mut remote = RemoteStore::new(1024);
        // Tiny config: 16-page buffer, 4-page blocks. Fill 5 blocks with
        // single accesses → overflow evicts least-popular whole blocks.
        let mut now = SimTime::ZERO;
        for blk in 0..5u64 {
            s.handle_write(now, blk * 4, 4, Some(&mut remote));
            now += SimDuration::from_millis(1);
        }
        assert!(s.committed_len() > 0, "flushes must commit pages");
        // Every acknowledged page is recoverable somewhere.
        assert!(s.unrecoverable_pages(Some(&remote)).is_empty());
        // Remote copies of committed pages were discarded.
        assert!(remote.len() < 20);
    }

    #[test]
    fn baseline_commits_synchronously() {
        let mut s = server(Scheme::Baseline);
        s.handle_write(SimTime::ZERO, 3, 2, None);
        assert_eq!(s.committed_len(), 2);
        assert!(s.unrecoverable_pages(None).is_empty());
    }

    #[test]
    fn crash_loses_buffer_but_replicas_cover_it() {
        let mut s = server(lar());
        let mut remote = RemoteStore::new(1024);
        s.handle_write(SimTime::ZERO, 0, 4, Some(&mut remote));
        s.crash();
        // Buffer gone: the only copies are remote.
        assert_eq!(s.buffer().resident(), 0);
        assert!(s.unrecoverable_pages(Some(&remote)).is_empty());
        assert_eq!(s.unrecoverable_pages(None), vec![0, 1, 2, 3]);
        // Recovery replays the snapshot into the SSD.
        let snap = remote.snapshot();
        let d = s.recover_from_snapshot(SimTime::from_millis(5), &snap);
        assert!(d > SimDuration::ZERO);
        remote.purge();
        assert!(s.unrecoverable_pages(None).is_empty());
    }

    #[test]
    fn degraded_mode_flushes_dirty_and_writes_through() {
        let mut s = server(lar());
        let mut remote = RemoteStore::new(1024);
        s.handle_write(SimTime::ZERO, 0, 3, Some(&mut remote));
        assert!(s.buffer().dirty() > 0);
        let d = s.enter_degraded(SimTime::from_millis(1));
        assert!(d > SimDuration::ZERO);
        assert_eq!(s.buffer().dirty(), 0);
        assert!(s.is_degraded());
        assert!(s.unrecoverable_pages(None).is_empty(), "flush covered all");
        // Writes in degraded mode are synchronous and durable immediately.
        let t = s.handle_write(SimTime::from_millis(2), 8, 1, None);
        assert!(t >= SimDuration::from_micros(300));
        assert!(s.unrecoverable_pages(None).is_empty());
        s.exit_degraded();
        assert!(!s.is_degraded());
    }

    #[test]
    fn lifecycle_walks_suspect_solo_resync_paired() {
        use crate::recovery::PairState;
        let (obs, ring) = fc_obs::Obs::ring(256);
        let mut s = server(lar());
        s.attach_obs(&obs);
        assert_eq!(s.lifecycle_state(), PairState::Paired);

        s.on_peer_suspected();
        assert_eq!(s.lifecycle_state(), PairState::Suspect);
        assert!(!s.is_degraded(), "suspicion alone keeps replication on");
        s.on_peer_healthy();
        assert_eq!(s.lifecycle_state(), PairState::Paired);

        s.enter_degraded(SimTime::ZERO);
        assert_eq!(s.lifecycle_state(), PairState::Solo);
        s.exit_degraded();
        assert_eq!(s.lifecycle_state(), PairState::Paired);
        // Suspect out-and-back (2) plus the solo loop (3).
        assert_eq!(s.lifecycle_transitions(), 5);

        // Every edge surfaced as a core/lifecycle event.
        let edges: Vec<_> = ring
            .drain()
            .into_iter()
            .filter(|e| e.kind == "lifecycle")
            .collect();
        assert_eq!(edges.len(), 5);

        // A crash reboots the lifecycle to Paired.
        s.enter_degraded(SimTime::ZERO);
        s.crash();
        assert_eq!(s.lifecycle_state(), PairState::Paired);
        assert_eq!(s.lifecycle_transitions(), 0);
    }

    #[test]
    fn full_remote_store_forces_synchronous_flush() {
        let mut s = server(lar());
        let mut remote = RemoteStore::new(2);
        let t = s.handle_write(SimTime::ZERO, 0, 4, Some(&mut remote));
        // 2 pages replicated, 2 rejected → sync flush dominates latency.
        assert_eq!(s.metrics().replicated_pages, 2);
        assert_eq!(s.metrics().remote_rejections, 2);
        assert!(t >= SimDuration::from_micros(300));
        assert!(s.unrecoverable_pages(Some(&remote)).is_empty());
    }

    #[test]
    fn missing_peer_without_degraded_mode_is_still_durable() {
        let mut s = server(lar());
        let t = s.handle_write(SimTime::ZERO, 0, 1, None);
        assert!(t >= SimDuration::from_micros(300), "sync fallback");
        assert!(s.unrecoverable_pages(None).is_empty());
    }

    #[test]
    fn util_sample_tracks_buffer_and_nic() {
        let mut s = server(lar());
        let mut remote = RemoteStore::new(1024);
        let u0 = s.util_sample(SimTime::ZERO);
        assert_eq!(u0.m, 0.0);
        s.handle_write(SimTime::ZERO, 0, 8, Some(&mut remote));
        let u = s.util_sample(SimTime::from_millis(1));
        assert!(u.m > 0.0);
        assert!(u.n > 0.0);
        assert!(u.p > 0.0);
        assert!(u.m <= 1.0 && u.n <= 1.0 && u.p <= 1.0);
    }

    #[test]
    fn dirty_watermark_bounds_exposed_data() {
        let mut cfg = FlashCoopConfig::tiny(FtlKind::PageLevel, PolicyKind::Lar);
        cfg.dirty_watermark = Some(0.5);
        let mut s = CoopServer::new(cfg, Scheme::FlashCoop(PolicyKind::Lar));
        let mut remote = RemoteStore::new(1024);
        let mut now = SimTime::ZERO;
        for i in 0..64u64 {
            s.handle_write(now, i % 14, 1, Some(&mut remote));
            now += SimDuration::from_millis(1);
        }
        // 16-page buffer, 0.5 watermark: dirty stays near/below 8 + one block.
        assert!(
            s.buffer().dirty() <= 12,
            "dirty {} not bounded by the watermark",
            s.buffer().dirty()
        );
        // Cleaned pages were committed (durable) and remain readable fast.
        assert!(s.committed_len() > 0);
        assert!(s.unrecoverable_pages(Some(&remote)).is_empty());
    }

    #[test]
    fn trim_erases_all_traces_of_the_data() {
        let mut s = server(lar());
        let mut remote = RemoteStore::new(1024);
        s.handle_write(SimTime::ZERO, 0, 4, Some(&mut remote));
        assert_eq!(s.buffer().dirty(), 4);
        assert_eq!(remote.len(), 4);
        s.handle_trim(SimTime::from_millis(1), 0, 4, Some(&mut remote));
        assert_eq!(s.buffer().dirty(), 0);
        assert_eq!(s.buffer().resident(), 0);
        assert_eq!(remote.len(), 0);
        assert_eq!(s.rct().len(), 0);
        // Deleted data needs no recovery: nothing is unrecoverable.
        assert!(s.unrecoverable_pages(None).is_empty());
        assert_eq!(s.metrics().trims, 1);
        // The short-lived data never reached the SSD.
        assert_eq!(s.ssd().stats().host_pages_written, 0);
    }

    #[test]
    fn baseline_trim_reaches_the_device() {
        let mut s = server(Scheme::Baseline);
        s.handle_write(SimTime::ZERO, 0, 2, None);
        s.handle_trim(SimTime::from_millis(1), 0, 2, None);
        assert_eq!(s.ssd().stats().trims, 1);
        assert!(s.unrecoverable_pages(None).is_empty());
    }

    #[test]
    fn obs_request_events_cover_every_response_sample() {
        let (obs, ring) = fc_obs::Obs::ring(4096);
        let mut s = server(lar());
        s.attach_obs(&obs);
        let mut remote = RemoteStore::new(1024);
        let mut now = SimTime::ZERO;
        for blk in 0..6u64 {
            s.handle_write(now, blk * 4, 4, Some(&mut remote));
            now += SimDuration::from_millis(1);
        }
        s.handle_read(now, 0, 2, Some(&mut remote));
        s.handle_trim(now, 20, 1, Some(&mut remote));
        let events = ring.events();
        let resp: Vec<u64> = events
            .iter()
            .filter(|e| {
                e.component == "core" && matches!(e.kind.as_ref(), "write" | "read" | "trim")
            })
            .map(|e| e.get("resp_ns").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(resp.len() as u64, s.metrics().response.count());
        // The stream reproduces the mean response time exactly.
        let mean = resp.iter().sum::<u64>() as f64 / resp.len() as f64;
        let reported = s.metrics_mut().response.mean().as_nanos() as f64;
        assert!((mean - reported).abs() <= 1.0, "{mean} vs {reported}");
        // Destage events carry the same run lengths the histogram recorded.
        let destage_pages: u64 = events
            .iter()
            .filter(|e| e.kind == "destage")
            .map(|e| e.get("pages").unwrap().as_u64().unwrap())
            .sum();
        assert!(destage_pages > 0, "writes overflowed the tiny buffer");
        assert_eq!(destage_pages, s.metrics().destage_run_pages.sum());
    }

    #[test]
    fn metrics_partition_reads_and_writes() {
        let mut s = server(lar());
        let mut remote = RemoteStore::new(1024);
        s.handle_write(SimTime::ZERO, 0, 1, Some(&mut remote));
        s.handle_read(SimTime::from_millis(1), 0, 1, Some(&mut remote));
        s.handle_read(SimTime::from_millis(2), 50, 1, Some(&mut remote));
        let m = s.metrics();
        assert_eq!(m.writes, 1);
        assert_eq!(m.reads, 2);
        assert_eq!(m.response.count(), 3);
        assert_eq!(m.write_response.count(), 1);
        assert_eq!(m.read_response.count(), 2);
    }
}
