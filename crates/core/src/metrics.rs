//! Experiment reports — one [`RunReport`] per (scheme, FTL, trace) cell of
//! the paper's evaluation matrix, carrying everything Figures 6–8 and
//! Table III read off a run.

use crate::config::Scheme;
use fc_simkit::SimDuration;
use fc_ssd::{FtlKind, FtlStats};
use serde::{Deserialize, Serialize};

/// Fault-tolerance counters for the replication path. Shared between the
/// threaded cluster node (`fc-cluster`) and any future simulated lossy
/// link: every counter is a symptom of the network misbehaving and the
/// protocol absorbing it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicationStats {
    /// Replication sends re-attempted after an ack timeout.
    pub retries: u64,
    /// Pipelined `WriteReplBatch` frames handed to the transport for the
    /// first time (retransmissions count under `retries`). Zero when the
    /// legacy stop-and-wait path is in use.
    pub batches_sent: u64,
    /// Pages carried by those first-send batches; `batch_pages /
    /// batches_sent` is the mean replication batch size.
    pub batch_pages: u64,
    /// Received data-plane messages discarded as duplicates (same sequence
    /// number seen before — retransmissions or network duplication).
    pub dups_dropped: u64,
    /// Received data-plane messages that arrived behind a higher sequence
    /// number and were applied anyway (reordering absorbed).
    pub reorders_healed: u64,
    /// Dirty pages destaged to the backend because the peer was declared
    /// failed or unreachable (degraded-mode entries).
    pub partition_destages: u64,
    /// Peer-owned replica pages sequentially destaged to the local backend
    /// when taking over for a failed peer (the paper's takeover path).
    pub takeover_destages: u64,
    /// Catch-up batches streamed to a returning peer and acknowledged.
    pub resync_batches: u64,
    /// Pages carried by those acknowledged batches.
    pub resync_pages: u64,
    /// Resyncs that had to fall back to streaming the full resident buffer
    /// because the catch-up journal overflowed while solo.
    pub full_resyncs: u64,
    /// Payload-checksum failures detected on receive (wire corruption) or
    /// by a local scrub.
    pub corruptions_detected: u64,
    /// Corruptions healed — a NACKed send that was resent and acked, or a
    /// local page repaired from the peer replica.
    pub corruptions_repaired: u64,
    /// Local pages repaired from the peer replica by scrub runs.
    pub scrub_repairs: u64,
    /// Writes that went through locally because the peer advertised no
    /// remote-buffer credits (sender-side backpressure).
    pub credit_stalls: u64,
    /// Replication messages refused because the remote buffer was full
    /// (receiver-side backpressure).
    pub credit_rejections: u64,
    /// Pair-lifecycle state transitions taken.
    pub lifecycle_transitions: u64,
}

/// Dumps the fault-tolerance counters under `cluster.replication.*`.
impl fc_obs::StatSource for ReplicationStats {
    fn emit(&self, reg: &mut fc_obs::Registry) {
        reg.counter("cluster.replication.retries")
            .store(self.retries);
        reg.counter("cluster.replication.batches_sent")
            .store(self.batches_sent);
        reg.counter("cluster.replication.batch_pages")
            .store(self.batch_pages);
        reg.counter("cluster.replication.dups_dropped")
            .store(self.dups_dropped);
        reg.counter("cluster.replication.reorders_healed")
            .store(self.reorders_healed);
        reg.counter("cluster.replication.partition_destages")
            .store(self.partition_destages);
        reg.counter("cluster.replication.takeover_destages")
            .store(self.takeover_destages);
        reg.counter("cluster.replication.resync_batches")
            .store(self.resync_batches);
        reg.counter("cluster.replication.resync_pages")
            .store(self.resync_pages);
        reg.counter("cluster.replication.full_resyncs")
            .store(self.full_resyncs);
        reg.counter("cluster.replication.corruptions_detected")
            .store(self.corruptions_detected);
        reg.counter("cluster.replication.corruptions_repaired")
            .store(self.corruptions_repaired);
        reg.counter("cluster.replication.scrub_repairs")
            .store(self.scrub_repairs);
        reg.counter("cluster.replication.credit_stalls")
            .store(self.credit_stalls);
        reg.counter("cluster.replication.credit_rejections")
            .store(self.credit_rejections);
        reg.counter("cluster.replication.lifecycle_transitions")
            .store(self.lifecycle_transitions);
    }
}

impl ReplicationStats {
    /// True when the link behaved perfectly: nothing retried, deduplicated,
    /// reordered, or destaged. The batch throughput counters are excluded —
    /// they grow on a healthy pipelined link.
    pub fn is_clean(&self) -> bool {
        ReplicationStats {
            batches_sent: 0,
            batch_pages: 0,
            ..*self
        } == ReplicationStats::default()
    }

    /// Sum the counters of `other` into `self` (merging per-node reports).
    pub fn absorb(&mut self, other: &ReplicationStats) {
        self.retries += other.retries;
        self.batches_sent += other.batches_sent;
        self.batch_pages += other.batch_pages;
        self.dups_dropped += other.dups_dropped;
        self.reorders_healed += other.reorders_healed;
        self.partition_destages += other.partition_destages;
        self.takeover_destages += other.takeover_destages;
        self.resync_batches += other.resync_batches;
        self.resync_pages += other.resync_pages;
        self.full_resyncs += other.full_resyncs;
        self.corruptions_detected += other.corruptions_detected;
        self.corruptions_repaired += other.corruptions_repaired;
        self.scrub_repairs += other.scrub_repairs;
        self.credit_stalls += other.credit_stalls;
        self.credit_rejections += other.credit_rejections;
        self.lifecycle_transitions += other.lifecycle_transitions;
    }
}

/// Results of one trace replay.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Scheme under test.
    pub scheme: Scheme,
    /// FTL of the device.
    pub ftl: FtlKind,
    /// Workload name.
    pub trace: String,
    /// Requests replayed.
    pub requests: usize,
    /// Mean response time over all requests (Figure 6's metric).
    pub avg_response: SimDuration,
    /// 99th-percentile response time.
    pub p99_response: SimDuration,
    /// Mean write response time.
    pub avg_write_response: SimDuration,
    /// Mean read response time.
    pub avg_read_response: SimDuration,
    /// Buffer hit ratio (Table III's metric; 0 for Baseline).
    pub hit_ratio: f64,
    /// Block erases during the measured replay (Figure 7's metric).
    pub erases: u64,
    /// Flash page programs per host page written.
    pub write_amplification: f64,
    /// Mean length of writes reaching the SSD, in pages.
    pub mean_write_pages: f64,
    /// Fraction of SSD writes that were a single page (Figure 8 commentary).
    pub frac_single_page: f64,
    /// Fraction of SSD writes longer than 8 pages.
    pub frac_gt8_pages: f64,
    /// Write-length CDF points (Figure 8's curves).
    pub write_length_cdf: Vec<(u64, f64)>,
    /// FTL merge/GC counters.
    pub ftl_stats: FtlStats,
}

impl RunReport {
    /// Header for [`RunReport::row`].
    #[deprecated(
        since = "0.2.0",
        note = "use fc-bench's table adapter (fc_bench format module); the \
                report is plain serialisable data"
    )]
    pub fn header() -> String {
        format!(
            "{:<18} {:<11} {:<5} {:>12} {:>12} {:>8} {:>10} {:>6} {:>8} {:>8}",
            "Scheme",
            "FTL",
            "Trace",
            "AvgResp(ms)",
            "p99(ms)",
            "Hit(%)",
            "Erases",
            "WA",
            "1pg(%)",
            ">8pg(%)"
        )
    }

    /// One results row.
    #[deprecated(
        since = "0.2.0",
        note = "use fc-bench's table adapter (fc_bench format module); the \
                report is plain serialisable data"
    )]
    pub fn row(&self) -> String {
        format!(
            "{:<18} {:<11} {:<5} {:>12.3} {:>12.3} {:>8.2} {:>10} {:>6.2} {:>8.2} {:>8.2}",
            self.scheme.name(),
            self.ftl.name(),
            self.trace,
            self.avg_response.as_millis_f64(),
            self.p99_response.as_millis_f64(),
            self.hit_ratio * 100.0,
            self.erases,
            self.write_amplification,
            self.frac_single_page * 100.0,
            self.frac_gt8_pages * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicyKind;

    fn report() -> RunReport {
        RunReport {
            scheme: Scheme::FlashCoop(PolicyKind::Lar),
            ftl: FtlKind::Bast,
            trace: "Fin1".into(),
            requests: 1000,
            avg_response: SimDuration::from_micros(630),
            p99_response: SimDuration::from_millis(5),
            avg_write_response: SimDuration::from_micros(100),
            avg_read_response: SimDuration::from_micros(900),
            hit_ratio: 0.78,
            erases: 8700,
            write_amplification: 1.4,
            mean_write_pages: 12.0,
            frac_single_page: 0.03,
            frac_gt8_pages: 0.35,
            write_length_cdf: vec![(1, 0.03), (64, 1.0)],
            ftl_stats: FtlStats::default(),
        }
    }

    #[test]
    #[allow(deprecated)]
    fn row_and_header_align() {
        let r = report();
        let row = r.row();
        assert!(row.contains("FlashCoop w. LAR"));
        assert!(row.contains("BAST"));
        assert!(row.contains("Fin1"));
        assert!(row.contains("8700"));
        // Millisecond conversion shows 0.630.
        assert!(row.contains("0.630"));
        assert!(!RunReport::header().is_empty());
    }

    #[test]
    fn replication_stats_merge_and_cleanliness() {
        let mut a = ReplicationStats::default();
        assert!(a.is_clean());
        let b = ReplicationStats {
            retries: 2,
            batches_sent: 15,
            batch_pages: 16,
            dups_dropped: 1,
            reorders_healed: 3,
            partition_destages: 4,
            takeover_destages: 5,
            resync_batches: 6,
            resync_pages: 7,
            full_resyncs: 8,
            corruptions_detected: 9,
            corruptions_repaired: 10,
            scrub_repairs: 11,
            credit_stalls: 12,
            credit_rejections: 13,
            lifecycle_transitions: 14,
        };
        a.absorb(&b);
        a.absorb(&b);
        assert!(!a.is_clean());
        assert_eq!(a.retries, 4);
        assert_eq!(a.batches_sent, 30);
        assert_eq!(a.batch_pages, 32);
        assert_eq!(a.dups_dropped, 2);
        assert_eq!(a.reorders_healed, 6);
        assert_eq!(a.partition_destages, 8);
        assert_eq!(a.takeover_destages, 10);
        assert_eq!(a.resync_batches, 12);
        assert_eq!(a.resync_pages, 14);
        assert_eq!(a.full_resyncs, 16);
        assert_eq!(a.corruptions_detected, 18);
        assert_eq!(a.corruptions_repaired, 20);
        assert_eq!(a.scrub_repairs, 22);
        assert_eq!(a.credit_stalls, 24);
        assert_eq!(a.credit_rejections, 26);
        assert_eq!(a.lifecycle_transitions, 28);
    }

    #[test]
    fn report_is_serialisable() {
        // Verify the derives compile by requiring the traits via a bound
        // (serde_json is deliberately not a dependency).
        fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>(_: &T) {}
        assert_serde(&report());
    }
}
