//! FlashCoop configuration.
//!
//! Every tunable of the system in one serialisable struct, with the defaults
//! used by the paper's evaluation runs.

use fc_simkit::{LinkModel, SimDuration};
use fc_ssd::{FtlKind, SsdConfig};
use serde::{Deserialize, Serialize};

/// Which replacement policy drives the cooperative buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Locality-Aware Replacement — the paper's contribution (Section III.B).
    Lar,
    /// Least Recently Used (page-granular comparison policy).
    Lru,
    /// Least Frequently Used (page-granular comparison policy).
    Lfu,
}

impl PolicyKind {
    /// All policies in the order the paper's figures present them.
    pub const ALL: [PolicyKind; 3] = [PolicyKind::Lar, PolicyKind::Lru, PolicyKind::Lfu];

    /// Display name matching the figure legends.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Lar => "LAR",
            PolicyKind::Lru => "LRU",
            PolicyKind::Lfu => "LFU",
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A complete evaluation scheme: the paper compares FlashCoop under three
/// replacement policies against a bufferless Baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// Synchronous writes straight to the SSD, no cooperative buffer.
    Baseline,
    /// FlashCoop with the given replacement policy.
    FlashCoop(PolicyKind),
}

impl Scheme {
    /// All four schemes in figure order.
    pub const ALL: [Scheme; 4] = [
        Scheme::FlashCoop(PolicyKind::Lar),
        Scheme::FlashCoop(PolicyKind::Lru),
        Scheme::FlashCoop(PolicyKind::Lfu),
        Scheme::Baseline,
    ];

    /// Legend label.
    pub fn name(self) -> String {
        match self {
            Scheme::Baseline => "Baseline".to_string(),
            Scheme::FlashCoop(p) => format!("FlashCoop w. {p}"),
        }
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// Dynamic memory allocation parameters (Equation 1, Section III.C).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AllocParams {
    /// Weight of memory utilisation in the resource-usage term `b`.
    pub alpha: f64,
    /// Weight of CPU utilisation.
    pub beta: f64,
    /// Weight of network utilisation.
    pub gamma: f64,
    /// Re-evaluation period for θ.
    pub period: SimDuration,
}

impl Default for AllocParams {
    fn default() -> Self {
        // The paper's Figure 9 setting: α = 0.4, β = 0.2, γ = 0.4.
        AllocParams {
            alpha: 0.4,
            beta: 0.2,
            gamma: 0.4,
            period: SimDuration::from_secs(10),
        }
    }
}

/// Bounded retry-with-backoff for the replication path (Section III.D's
/// "high speed data center network" is fast but not lossless; a dropped
/// Replicate or ack should be retried before the writer gives up and
/// degrades to write-through).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total send attempts, including the first (must be >= 1).
    pub attempts: u32,
    /// Delay before the first retry.
    pub base_backoff: SimDuration,
    /// Backoff growth factor per further retry (>= 1.0).
    pub multiplier: f64,
    /// Ceiling on any single backoff.
    pub max_backoff: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base_backoff: SimDuration::from_millis(2),
            multiplier: 2.0,
            max_backoff: SimDuration::from_millis(100),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries: one attempt, then give up.
    pub fn no_retries() -> Self {
        RetryPolicy {
            attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Backoff before retry number `retry` (0-based: the delay between the
    /// first attempt's timeout and the second attempt). Exponential in
    /// `multiplier`, capped at `max_backoff`.
    pub fn backoff_for(&self, retry: u32) -> SimDuration {
        let base = self.base_backoff.as_nanos() as f64;
        let factor = self.multiplier.max(1.0).powi(retry.min(63) as i32);
        let ns = (base * factor).min(self.max_backoff.as_nanos() as f64);
        SimDuration::from_nanos(ns as u64)
    }

    /// Retries this policy allows after the initial attempt.
    pub fn max_retries(&self) -> u32 {
        self.attempts.saturating_sub(1)
    }
}

/// Full system configuration for one cooperative server.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlashCoopConfig {
    /// Buffer capacity in pages (local buffer portion).
    pub buffer_pages: usize,
    /// Replacement policy.
    pub policy: PolicyKind,
    /// SSD beneath the buffer.
    pub ssd: SsdConfig,
    /// Replication link to the cooperative peer.
    pub link: LinkModel,
    /// DRAM access cost per page (buffer hit service time).
    pub dram_page_access: SimDuration,
    /// CPU cost of handling one request (storage stack + FS overhead);
    /// feeds the `p` term of the allocation monitor.
    pub cpu_per_request: SimDuration,
    /// Group small tail flushes into block-sized writes (Section III.B.3).
    pub clustering: bool,
    /// LAR second-level sort: break popularity ties toward the most dirty
    /// pages (Section III.B.2). Off = the popularity-only ablation.
    pub lar_dirty_tiebreak: bool,
    /// Proactive background-cleaning watermark (dirty fraction of the
    /// buffer). None = flush only on replacement, as the paper measures.
    pub dirty_watermark: Option<f64>,
    /// Replicate buffered writes to the peer (off = local write-back only,
    /// used by the replication ablation; recovery guarantees are void).
    pub replication: bool,
    /// Dynamic memory allocation parameters.
    pub alloc: AllocParams,
}

impl FlashCoopConfig {
    /// The paper's evaluation configuration with a given FTL and policy.
    pub fn evaluation(ftl: FtlKind, policy: PolicyKind) -> Self {
        FlashCoopConfig {
            buffer_pages: 4096,
            policy,
            ssd: SsdConfig::evaluation(ftl),
            link: LinkModel::ten_gbe(),
            dram_page_access: SimDuration::from_micros(2),
            cpu_per_request: SimDuration::from_micros(500),
            clustering: true,
            lar_dirty_tiebreak: true,
            dirty_watermark: None,
            replication: true,
            alloc: AllocParams::default(),
        }
    }

    /// A tiny configuration for unit tests.
    pub fn tiny(ftl: FtlKind, policy: PolicyKind) -> Self {
        FlashCoopConfig {
            buffer_pages: 16,
            policy,
            ssd: SsdConfig::tiny(ftl),
            link: LinkModel::ten_gbe(),
            dram_page_access: SimDuration::from_micros(2),
            cpu_per_request: SimDuration::from_micros(500),
            clustering: true,
            lar_dirty_tiebreak: true,
            dirty_watermark: None,
            replication: true,
            alloc: AllocParams::default(),
        }
    }

    /// Pages per logical block of the underlying SSD (the block granularity
    /// LAR manages; "System can obtain block size of underline SSD").
    pub fn pages_per_block(&self) -> u32 {
        self.ssd.geometry.pages_per_block
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_names_match_figures() {
        assert_eq!(Scheme::Baseline.name(), "Baseline");
        assert_eq!(
            Scheme::FlashCoop(PolicyKind::Lar).name(),
            "FlashCoop w. LAR"
        );
        assert_eq!(Scheme::ALL.len(), 4);
        assert_eq!(PolicyKind::ALL.len(), 3);
    }

    #[test]
    fn alloc_defaults_match_figure9() {
        let a = AllocParams::default();
        assert_eq!(a.alpha, 0.4);
        assert_eq!(a.beta, 0.2);
        assert_eq!(a.gamma, 0.4);
        assert!((a.alpha + a.beta + a.gamma - 1.0).abs() < 1e-12);
    }

    #[test]
    fn retry_backoff_grows_and_caps() {
        let p = RetryPolicy {
            attempts: 5,
            base_backoff: SimDuration::from_millis(2),
            multiplier: 2.0,
            max_backoff: SimDuration::from_millis(10),
        };
        assert_eq!(p.backoff_for(0), SimDuration::from_millis(2));
        assert_eq!(p.backoff_for(1), SimDuration::from_millis(4));
        assert_eq!(p.backoff_for(2), SimDuration::from_millis(8));
        // Capped from 16 ms down to the ceiling.
        assert_eq!(p.backoff_for(3), SimDuration::from_millis(10));
        assert_eq!(p.backoff_for(60), SimDuration::from_millis(10));
        assert_eq!(p.max_retries(), 4);
    }

    #[test]
    fn no_retries_policy_is_single_attempt() {
        let p = RetryPolicy::no_retries();
        assert_eq!(p.attempts, 1);
        assert_eq!(p.max_retries(), 0);
    }

    #[test]
    fn sub_unit_multiplier_never_shrinks_backoff() {
        let p = RetryPolicy {
            multiplier: 0.5,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_for(3), p.base_backoff);
    }

    #[test]
    fn evaluation_config_is_consistent() {
        let c = FlashCoopConfig::evaluation(FtlKind::Bast, PolicyKind::Lar);
        assert_eq!(c.pages_per_block(), 64);
        assert!(c.buffer_pages > 0);
        assert!(c.replication && c.clustering);
    }
}
