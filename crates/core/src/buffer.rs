//! The cooperative write buffer.
//!
//! [`BufferManager`] is the local half of FlashCoop's cooperative buffer: it
//! holds both read-cached and write-buffered pages ("LAR services both read
//! and write operations", Section III.B.1), tracks dirtiness, and produces
//! flush plans when capacity is exceeded.
//!
//! Eviction behaviour per policy:
//!
//! * **LAR** — the victim is a whole logical block (least popular, most
//!   dirty). A victim with dirty pages flushes *all* its resident pages as
//!   sequential runs; a clean victim is dropped. With clustering on, small
//!   dirty tails from several least-popular blocks are grouped into one
//!   block-sized batch (Section III.B.3).
//! * **LRU / LFU** — the victim is a single page. A dirty victim is flushed
//!   together with contiguous dirty neighbours in the same logical block
//!   (flush-time combining — matching the paper's Figure 8, where LRU/LFU
//!   emit ~29 % single-page writes but some multi-page ones); neighbours stay
//!   resident, marked clean.

use crate::config::PolicyKind;
use crate::policy::lar::LarDirectory;
use crate::policy::ranked::{RankMode, RankedDirectory};
use crate::policy::{runs_from_sorted, Eviction, FlushRun};
use fc_obs::{Counter, Obs};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Buffer construction parameters — the named-field form of what used to be
/// [`BufferManager::with_options`]'s five positional arguments.
///
/// Build one with [`BufferConfig::builder`]:
///
/// ```
/// use flashcoop::buffer::{BufferConfig, BufferManager};
/// use flashcoop::PolicyKind;
///
/// let buf = BufferManager::from_config(
///     BufferConfig::builder()
///         .policy(PolicyKind::Lar)
///         .capacity(64)
///         .pages_per_block(4)
///         .build(),
/// );
/// assert_eq!(buf.capacity(), 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BufferConfig {
    /// Replacement policy.
    pub policy: PolicyKind,
    /// Capacity in pages.
    pub capacity: usize,
    /// Pages per logical block (LAR's eviction granularity).
    pub pages_per_block: u32,
    /// Group small dirty tails into block-sized batches (Section III.B.3).
    pub clustering: bool,
    /// LAR second-level sort toward dirtier blocks (Section III.B.2).
    pub lar_dirty_tiebreak: bool,
    /// Proactive background-cleaning watermark (dirty fraction); `None` =
    /// flush only on replacement, the paper's measured configuration.
    pub dirty_watermark: Option<f64>,
}

impl Default for BufferConfig {
    fn default() -> Self {
        BufferConfig {
            policy: PolicyKind::Lar,
            capacity: 4096,
            pages_per_block: 64,
            clustering: true,
            lar_dirty_tiebreak: true,
            dirty_watermark: None,
        }
    }
}

impl BufferConfig {
    /// Start a builder from the defaults.
    pub fn builder() -> BufferConfigBuilder {
        BufferConfigBuilder {
            cfg: BufferConfig::default(),
        }
    }
}

/// Builder for [`BufferConfig`].
#[derive(Debug, Clone)]
pub struct BufferConfigBuilder {
    cfg: BufferConfig,
}

impl BufferConfigBuilder {
    /// Replacement policy.
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.cfg.policy = policy;
        self
    }

    /// Capacity in pages.
    pub fn capacity(mut self, pages: usize) -> Self {
        self.cfg.capacity = pages;
        self
    }

    /// Pages per logical block.
    pub fn pages_per_block(mut self, ppb: u32) -> Self {
        self.cfg.pages_per_block = ppb;
        self
    }

    /// Enable/disable tail clustering.
    pub fn clustering(mut self, on: bool) -> Self {
        self.cfg.clustering = on;
        self
    }

    /// Enable/disable the LAR dirty-count tie-break.
    pub fn lar_dirty_tiebreak(mut self, on: bool) -> Self {
        self.cfg.lar_dirty_tiebreak = on;
        self
    }

    /// Background-cleaning high watermark.
    pub fn dirty_watermark(mut self, high: Option<f64>) -> Self {
        self.cfg.dirty_watermark = high;
        self
    }

    /// Finish the configuration.
    pub fn build(self) -> BufferConfig {
        self.cfg
    }
}

/// Residency metadata for one buffered page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PageMeta {
    dirty: bool,
}

/// Counters maintained by the buffer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferStats {
    /// Page accesses that found the page resident.
    pub page_hits: u64,
    /// Page accesses that missed.
    pub page_misses: u64,
    /// Eviction cycles run.
    pub evictions: u64,
    /// Pages flushed to the SSD (dirty + accompanying clean).
    pub flushed_pages: u64,
    /// Dirty pages among those flushed.
    pub flushed_dirty: u64,
    /// Clean pages dropped without a flush.
    pub clean_drops: u64,
    /// Eviction batches that grouped more than one victim block (clustering).
    pub clustered_batches: u64,
}

impl BufferStats {
    /// Hit ratio over all page accesses (Table III's metric).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.page_hits + self.page_misses;
        if total == 0 {
            0.0
        } else {
            self.page_hits as f64 / total as f64
        }
    }
}

/// Dumps the buffer counters under `core.buffer.*`, matching the live
/// counter names an attached buffer maintains (see
/// [`BufferManager::attach_obs`]).
impl fc_obs::StatSource for BufferStats {
    fn emit(&self, reg: &mut fc_obs::Registry) {
        reg.counter("core.buffer.page_hits").store(self.page_hits);
        reg.counter("core.buffer.page_misses")
            .store(self.page_misses);
        reg.counter("core.buffer.evictions").store(self.evictions);
        reg.counter("core.buffer.flushed_pages")
            .store(self.flushed_pages);
        reg.counter("core.buffer.flushed_dirty")
            .store(self.flushed_dirty);
        reg.counter("core.buffer.clean_drops")
            .store(self.clean_drops);
        reg.counter("core.buffer.clustered_batches")
            .store(self.clustered_batches);
        reg.gauge("core.buffer.hit_ratio").set(self.hit_ratio());
    }
}

/// One contiguous piece of a read request, classified hit or miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadSegment {
    /// First page of the segment.
    pub lpn: u64,
    /// Length in pages.
    pub pages: u32,
    /// True if every page was resident.
    pub hit: bool,
}

/// Observability handles cached at attach time so the hot paths stay at
/// relaxed atomic increments (no registry lock per access).
#[derive(Debug, Clone)]
struct BufObs {
    obs: Obs,
    hits: Counter,
    misses: Counter,
}

/// The local buffer of one cooperative server.
#[derive(Debug, Clone)]
pub struct BufferManager {
    policy: PolicyKind,
    capacity: usize,
    ppb: u32,
    clustering: bool,
    pages: HashMap<u64, PageMeta>,
    dirty_count: usize,
    lar: LarDirectory,
    ranked: RankedDirectory,
    stats: BufferStats,
    /// Background-cleaning high watermark as a dirty fraction of capacity
    /// (None = clean only on eviction, the paper's measured configuration).
    dirty_watermark: Option<f64>,
    obs: Option<BufObs>,
}

impl BufferManager {
    /// Create a buffer of `capacity` pages managing `pages_per_block`-page
    /// logical blocks under the given policy.
    pub fn new(
        policy: PolicyKind,
        capacity: usize,
        pages_per_block: u32,
        clustering: bool,
    ) -> Self {
        Self::with_options(policy, capacity, pages_per_block, clustering, true)
    }

    /// Like [`BufferManager::new`] with the LAR dirty-count tie-break made
    /// optional (the Section III.B.2 second-level-sort ablation).
    pub fn with_options(
        policy: PolicyKind,
        capacity: usize,
        pages_per_block: u32,
        clustering: bool,
        lar_dirty_tiebreak: bool,
    ) -> Self {
        assert!(capacity > 0, "buffer needs at least one page");
        assert!(pages_per_block > 0);
        let mode = match policy {
            PolicyKind::Lfu => RankMode::Lfu,
            _ => RankMode::Lru,
        };
        BufferManager {
            policy,
            capacity,
            ppb: pages_per_block,
            clustering,
            pages: HashMap::new(),
            dirty_count: 0,
            lar: if lar_dirty_tiebreak {
                LarDirectory::new()
            } else {
                LarDirectory::popularity_only()
            },
            ranked: RankedDirectory::new(mode),
            stats: BufferStats::default(),
            dirty_watermark: None,
            obs: None,
        }
    }

    /// Build a buffer from a [`BufferConfig`] (the builder-based entry
    /// point; `new`/`with_options` remain as positional shorthands).
    pub fn from_config(cfg: BufferConfig) -> Self {
        let mut b = Self::with_options(
            cfg.policy,
            cfg.capacity,
            cfg.pages_per_block,
            cfg.clustering,
            cfg.lar_dirty_tiebreak,
        );
        b.set_dirty_watermark(cfg.dirty_watermark);
        b
    }

    /// Wire this buffer into an observability handle: hit/miss counters
    /// (`core.buffer.page_hits`/`page_misses`, seeded with the current
    /// totals) plus `evict_block`/`evict_page` trace events carrying the
    /// replacement decision (LAR popularity/dirtiness scores).
    pub fn attach_obs(&mut self, obs: &Obs) {
        let hits = obs.registry().counter("core.buffer.page_hits");
        hits.store(self.stats.page_hits);
        let misses = obs.registry().counter("core.buffer.page_misses");
        misses.store(self.stats.page_misses);
        self.obs = Some(BufObs {
            obs: obs.clone(),
            hits,
            misses,
        });
    }

    #[inline]
    fn obs_hit(&self) {
        if let Some(o) = &self.obs {
            o.hits.inc();
        }
    }

    #[inline]
    fn obs_miss(&self) {
        if let Some(o) = &self.obs {
            o.misses.inc();
        }
    }

    /// Enable proactive background cleaning: whenever the dirty fraction
    /// exceeds `high`, [`BufferManager::background_clean`] writes back
    /// least-popular dirty blocks (pages stay resident, now clean) until the
    /// fraction drops to half the watermark. This bounds how much data a
    /// failure window can expose and smooths flush bursts; the paper's
    /// evaluation runs without it (flush only on replacement).
    pub fn set_dirty_watermark(&mut self, high: Option<f64>) {
        self.dirty_watermark = high.map(|h| h.clamp(0.05, 1.0));
    }

    /// Policy in use.
    pub fn policy(&self) -> PolicyKind {
        self.policy
    }

    /// Capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pages currently resident.
    pub fn resident(&self) -> usize {
        self.pages.len()
    }

    /// Dirty pages currently resident.
    pub fn dirty(&self) -> usize {
        self.dirty_count
    }

    /// Occupancy fraction (the `m` input of the allocation monitor).
    pub fn occupancy(&self) -> f64 {
        self.pages.len() as f64 / self.capacity as f64
    }

    /// Counters.
    pub fn stats(&self) -> &BufferStats {
        &self.stats
    }

    /// Residency and dirtiness of a page: `None` = absent,
    /// `Some(true)` = dirty, `Some(false)` = clean.
    pub fn lookup(&self, lpn: u64) -> Option<bool> {
        self.pages.get(&lpn).map(|m| m.dirty)
    }

    /// Resize the buffer (dynamic memory allocation moves the local/remote
    /// split at runtime, Section III.C). Shrinking evicts immediately;
    /// returns the flush work that forced.
    pub fn set_capacity(&mut self, capacity: usize) -> Eviction {
        self.capacity = capacity.max(1);
        self.make_room()
    }

    /// Buffer a write of `pages` pages at `lpn`; returns the flush work the
    /// insertion forced (empty while the buffer has room).
    pub fn write(&mut self, lpn: u64, pages: u32) -> Eviction {
        self.access(lpn, pages, true);
        self.make_room()
    }

    /// Classify a read into hit/miss segments and record the accesses.
    /// The caller fetches miss segments from the SSD and then calls
    /// [`BufferManager::insert_clean`] for each.
    pub fn read(&mut self, lpn: u64, pages: u32) -> Vec<ReadSegment> {
        // Record block accesses / touches first.
        let mut segments: Vec<ReadSegment> = Vec::new();
        for i in 0..pages as u64 {
            let p = lpn + i;
            let hit = self.pages.contains_key(&p);
            if hit {
                self.stats.page_hits += 1;
                self.obs_hit();
                if matches!(self.policy, PolicyKind::Lru | PolicyKind::Lfu) {
                    self.ranked.touch(p);
                }
            } else {
                self.stats.page_misses += 1;
                self.obs_miss();
            }
            match segments.last_mut() {
                Some(seg) if seg.hit == hit && seg.lpn + seg.pages as u64 == p => {
                    seg.pages += 1;
                }
                _ => segments.push(ReadSegment {
                    lpn: p,
                    pages: 1,
                    hit,
                }),
            }
        }
        if self.policy == PolicyKind::Lar {
            // One popularity increment per block per request. Blocks that are
            // not resident at all get their increment when the post-fetch
            // `insert_clean` creates them (popularity 0 → 1), so each request
            // bumps each block exactly once.
            let first_block = lpn / self.ppb as u64;
            let last_block = (lpn + pages as u64 - 1) / self.ppb as u64;
            for lbn in first_block..=last_block {
                if self.lar.get(lbn).is_some() {
                    self.lar.on_block_access(lbn);
                }
            }
        }
        segments
    }

    /// Cache pages fetched from the SSD after a read miss; may evict.
    pub fn insert_clean(&mut self, lpn: u64, pages: u32) -> Eviction {
        self.access_without_hit_accounting(lpn, pages, false);
        if self.policy == PolicyKind::Lar {
            // Newly-created blocks receive the access increment the enclosing
            // read could not give them (they were absent at classify time).
            let first_block = lpn / self.ppb as u64;
            let last_block = (lpn + pages as u64 - 1) / self.ppb as u64;
            for lbn in first_block..=last_block {
                if self
                    .lar
                    .get(lbn)
                    .map(|b| b.popularity == 0)
                    .unwrap_or(false)
                {
                    self.lar.on_block_access(lbn);
                }
            }
        }
        self.make_room()
    }

    /// Discard `pages` pages at `lpn` (the data was deleted — a short-lived
    /// file, Section III.A): resident copies vanish without a flush, dirty
    /// or not. Returns how many resident pages were dropped.
    pub fn discard(&mut self, lpn: u64, pages: u32) -> u32 {
        let mut dropped = 0;
        for i in 0..pages as u64 {
            if self.pages.contains_key(&(lpn + i)) {
                self.remove_page(lpn + i);
                dropped += 1;
            }
        }
        dropped
    }

    /// Run the background cleaner if the dirty watermark is exceeded.
    /// Returns write-back work (cleaned pages remain resident).
    pub fn background_clean(&mut self) -> Eviction {
        let Some(high) = self.dirty_watermark else {
            return Eviction::default();
        };
        let mut ev = Eviction::default();
        let target = ((high * 0.5) * self.capacity as f64) as usize;
        if self.dirty_count <= ((high * self.capacity as f64) as usize).max(1) {
            return ev;
        }
        while self.dirty_count > target {
            let cleaned = match self.policy {
                PolicyKind::Lar => self.clean_lar_block(&mut ev),
                PolicyKind::Lru | PolicyKind::Lfu => self.clean_any_dirty_run(&mut ev),
            };
            if !cleaned {
                break;
            }
        }
        ev
    }

    /// Write back the least-popular dirty block's dirty span; pages stay.
    fn clean_lar_block(&mut self, ev: &mut Eviction) -> bool {
        let Some(lbn) = self.lar.dirty_victim() else {
            return false;
        };
        let base = lbn * self.ppb as u64;
        let mut span: Vec<(u64, bool)> = Vec::new();
        for off in 0..self.ppb as u64 {
            if let Some(meta) = self.pages.get(&(base + off)) {
                span.push((base + off, meta.dirty));
            }
        }
        let first = span.iter().position(|&(_, d)| d);
        let last = span.iter().rposition(|&(_, d)| d);
        let (Some(lo), Some(hi)) = (first, last) else {
            return false;
        };
        let runs = runs_from_sorted(&span[lo..=hi]);
        for r in &runs {
            self.stats.flushed_pages += r.pages as u64;
            self.stats.flushed_dirty += r.dirty as u64;
            for i in 0..r.pages as u64 {
                self.mark_clean(r.lpn + i);
            }
        }
        ev.runs.extend(runs);
        true
    }

    /// Write back one contiguous dirty run (lowest LPN first); pages stay.
    fn clean_any_dirty_run(&mut self, ev: &mut Eviction) -> bool {
        let Some(&start) = self
            .pages
            .iter()
            .filter(|(_, m)| m.dirty)
            .map(|(l, _)| l)
            .min()
        else {
            return false;
        };
        let block_end = (start / self.ppb as u64 + 1) * self.ppb as u64;
        let mut end = start + 1;
        while end < block_end && self.pages.get(&end).map(|m| m.dirty).unwrap_or(false) {
            end += 1;
        }
        let pages = (end - start) as u32;
        ev.runs.push(FlushRun {
            lpn: start,
            pages,
            dirty: pages,
        });
        self.stats.flushed_pages += pages as u64;
        self.stats.flushed_dirty += pages as u64;
        for p in start..end {
            self.mark_clean(p);
        }
        true
    }

    /// Flush every dirty page (remote-failure handling and shutdown:
    /// "dirty data in its local buffer will be immediately flushed into
    /// SSD"). Pages stay resident but become clean.
    pub fn drain_dirty(&mut self) -> Eviction {
        let mut dirty: Vec<u64> = self
            .pages
            .iter()
            .filter(|(_, m)| m.dirty)
            .map(|(&l, _)| l)
            .collect();
        dirty.sort_unstable();
        // Like eviction flushes, drain runs are per logical block: split the
        // sorted dirty list at block boundaries before building runs.
        let mut runs = Vec::new();
        let mut chunk: Vec<(u64, bool)> = Vec::new();
        for &l in &dirty {
            if let Some(&(prev, _)) = chunk.last() {
                if l / self.ppb as u64 != prev / self.ppb as u64 {
                    runs.extend(runs_from_sorted(&chunk));
                    chunk.clear();
                }
            }
            chunk.push((l, true));
        }
        if !chunk.is_empty() {
            runs.extend(runs_from_sorted(&chunk));
        }
        for &l in &dirty {
            self.mark_clean(l);
        }
        let mut ev = Eviction::default();
        for r in &runs {
            self.stats.flushed_pages += r.pages as u64;
            self.stats.flushed_dirty += r.dirty as u64;
        }
        ev.runs = runs;
        ev
    }

    /// Drop every resident page (a crash losing buffer contents).
    pub fn clear(&mut self) {
        self.pages.clear();
        self.dirty_count = 0;
        self.lar = LarDirectory::new();
        let mode = match self.policy {
            PolicyKind::Lfu => RankMode::Lfu,
            _ => RankMode::Lru,
        };
        self.ranked = RankedDirectory::new(mode);
    }

    /// All resident pages in ascending LPN order. The resync path streams
    /// this when the catch-up journal overflowed: a full-buffer resync walks
    /// the working set sequentially, the same access shape the takeover
    /// destage uses.
    pub fn resident_pages(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.pages.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// All dirty pages currently resident (recovery inspection).
    pub fn dirty_pages(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .pages
            .iter()
            .filter(|(_, m)| m.dirty)
            .map(|(&l, _)| l)
            .collect();
        v.sort_unstable();
        v
    }

    // ---- internals ------------------------------------------------------

    fn access(&mut self, lpn: u64, pages: u32, dirty: bool) {
        for i in 0..pages as u64 {
            let p = lpn + i;
            let hit = self.pages.contains_key(&p);
            if hit {
                self.stats.page_hits += 1;
                self.obs_hit();
            } else {
                self.stats.page_misses += 1;
                self.obs_miss();
            }
            self.insert_page(p, dirty);
        }
        self.count_block_accesses(lpn, pages);
    }

    fn access_without_hit_accounting(&mut self, lpn: u64, pages: u32, dirty: bool) {
        for i in 0..pages as u64 {
            self.insert_page(lpn + i, dirty);
        }
        // Popularity for the enclosing read was already counted (or the
        // block is new — residency adjustments brought it into the
        // directory with popularity 0; the *next* access bumps it).
    }

    fn count_block_accesses(&mut self, lpn: u64, pages: u32) {
        if self.policy != PolicyKind::Lar {
            return;
        }
        let first_block = lpn / self.ppb as u64;
        let last_block = (lpn + pages as u64 - 1) / self.ppb as u64;
        for lbn in first_block..=last_block {
            self.lar.on_block_access(lbn);
        }
    }

    fn insert_page(&mut self, lpn: u64, dirty: bool) {
        let lbn = lpn / self.ppb as u64;
        match self.pages.get_mut(&lpn) {
            Some(meta) => {
                if dirty && !meta.dirty {
                    meta.dirty = true;
                    self.dirty_count += 1;
                    if self.policy == PolicyKind::Lar {
                        self.lar.adjust(lbn, 0, 1);
                    }
                }
            }
            None => {
                self.pages.insert(lpn, PageMeta { dirty });
                if dirty {
                    self.dirty_count += 1;
                }
                if self.policy == PolicyKind::Lar {
                    self.lar.adjust(lbn, 1, i64::from(dirty));
                }
            }
        }
        if matches!(self.policy, PolicyKind::Lru | PolicyKind::Lfu) {
            self.ranked.touch(lpn);
        }
    }

    /// Mark one resident page clean (after the owning server or node has
    /// synchronously written it through to stable storage).
    pub fn mark_clean(&mut self, lpn: u64) {
        if let Some(meta) = self.pages.get_mut(&lpn) {
            if meta.dirty {
                meta.dirty = false;
                self.dirty_count -= 1;
                if self.policy == PolicyKind::Lar {
                    self.lar.adjust(lpn / self.ppb as u64, 0, -1);
                }
            }
        }
    }

    fn remove_page(&mut self, lpn: u64) {
        if let Some(meta) = self.pages.remove(&lpn) {
            if meta.dirty {
                self.dirty_count -= 1;
            }
            if self.policy == PolicyKind::Lar {
                self.lar
                    .adjust(lpn / self.ppb as u64, -1, -i64::from(meta.dirty));
            } else {
                self.ranked.remove(lpn);
            }
        }
    }

    fn make_room(&mut self) -> Eviction {
        let mut ev = Eviction::default();
        let mut evicted_blocks = 0u32;
        while self.pages.len() > self.capacity {
            match self.policy {
                PolicyKind::Lar => {
                    let Some(lbn) = self.lar.victim() else { break };
                    // flush_block always removes the directory entry, so the
                    // loop makes progress even on an empty (phantom) entry.
                    if self.flush_block(lbn, &mut ev) {
                        evicted_blocks += 1;
                    }
                }
                PolicyKind::Lru | PolicyKind::Lfu => {
                    if !self.evict_ranked_page(&mut ev) {
                        break;
                    }
                }
            }
        }
        // Clustering pass: if the cycle produced a small dirty flush, gather
        // more least-popular dirty blocks until the batch reaches one
        // physical block of pages (Section III.B.3).
        if self.policy == PolicyKind::Lar
            && self.clustering
            && !ev.is_empty()
            && ev.flushed_pages() < self.ppb as u64
        {
            // Only blocks from the same (least-popular) class — "the tails"
            // of Section III.B.3 — are grouped, and only up to one physical
            // block of pages.
            let anchor_pop = self
                .lar
                .dirty_victim()
                .and_then(|l| self.lar.get(l))
                .map(|b| b.popularity);
            if let Some(anchor) = anchor_pop {
                while ev.flushed_pages() < self.ppb as u64 {
                    let Some(lbn) = self.lar.dirty_victim() else {
                        break;
                    };
                    let Some(meta) = self.lar.get(lbn).copied() else {
                        break;
                    };
                    if meta.popularity != anchor {
                        break;
                    }
                    if ev.flushed_pages() + meta.resident as u64 > self.ppb as u64 {
                        break;
                    }
                    let mut extra = Eviction::default();
                    if !self.flush_block(lbn, &mut extra) {
                        break;
                    }
                    ev.absorb(extra);
                    evicted_blocks += 1;
                }
            }
        }
        if evicted_blocks > 1 {
            self.stats.clustered_batches += 1;
        }
        if !ev.is_empty() || ev.clean_dropped > 0 {
            self.stats.evictions += 1;
        }
        ev
    }

    /// Flush (or drop, when clean) every resident page of `lbn`.
    fn flush_block(&mut self, lbn: u64, ev: &mut Eviction) -> bool {
        // LAR's decision scores, captured before directory mutation so the
        // eviction trace event reflects what the policy actually compared.
        let decision = self.lar.get(lbn).copied();
        let base = lbn * self.ppb as u64;
        let mut resident: Vec<(u64, bool)> = Vec::new();
        for off in 0..self.ppb as u64 {
            if let Some(meta) = self.pages.get(&(base + off)) {
                resident.push((base + off, meta.dirty));
            }
        }
        if resident.is_empty() {
            self.lar.remove(lbn);
            return false;
        }
        // Flush the span from the first to the last dirty page: interior
        // clean pages are written alongside so "logically continuous pages
        // can be physically placed onto continuous pages" (Section III.B.2),
        // while clean pages outside the dirty span are dropped for free.
        let first_dirty = resident.iter().position(|&(_, d)| d);
        let last_dirty = resident.iter().rposition(|&(_, d)| d);
        let mut flushed_now = 0u64;
        let dropped_now: u64 = match (first_dirty, last_dirty) {
            (Some(lo), Some(hi)) => {
                let span = &resident[lo..=hi];
                let runs = runs_from_sorted(span);
                for r in &runs {
                    self.stats.flushed_pages += r.pages as u64;
                    self.stats.flushed_dirty += r.dirty as u64;
                    flushed_now += r.pages as u64;
                }
                ev.runs.extend(runs);
                let dropped = resident.len() - span.len();
                ev.clean_dropped += dropped as u32;
                self.stats.clean_drops += dropped as u64;
                dropped as u64
            }
            _ => {
                ev.clean_dropped += resident.len() as u32;
                self.stats.clean_drops += resident.len() as u64;
                resident.len() as u64
            }
        };
        for (lpn, _) in resident {
            self.remove_page(lpn);
        }
        self.lar.remove(lbn);
        if let Some(o) = &self.obs {
            let d = decision.unwrap_or_default();
            o.obs.emit(
                o.obs
                    .event("core.buffer", "evict_block")
                    .u64_field("lbn", lbn)
                    .u64_field("popularity", d.popularity)
                    .u64_field("dirty", d.dirty as u64)
                    .u64_field("resident", d.resident as u64)
                    .u64_field("flushed_pages", flushed_now)
                    .u64_field("clean_dropped", dropped_now),
            );
        }
        true
    }

    /// Evict one LRU/LFU victim page (with flush-time combining for dirty
    /// victims). Returns false if the directory is empty.
    fn evict_ranked_page(&mut self, ev: &mut Eviction) -> bool {
        let Some(victim) = self.ranked.victim() else {
            return false;
        };
        let dirty = self.pages.get(&victim).map(|m| m.dirty).unwrap_or(false);
        if !dirty {
            self.remove_page(victim);
            ev.clean_dropped += 1;
            self.stats.clean_drops += 1;
            if let Some(o) = &self.obs {
                o.obs.emit(
                    o.obs
                        .event("core.buffer", "evict_page")
                        .u64_field("lpn", victim)
                        .bool_field("dirty", false)
                        .u64_field("flushed_pages", 0),
                );
            }
            return true;
        }
        // Combine with contiguous dirty neighbours inside the same logical
        // block; they are written out together and stay resident, clean.
        let block_start = (victim / self.ppb as u64) * self.ppb as u64;
        let block_end = block_start + self.ppb as u64;
        let mut lo = victim;
        while lo > block_start && self.pages.get(&(lo - 1)).map(|m| m.dirty).unwrap_or(false) {
            lo -= 1;
        }
        let mut hi = victim + 1;
        while hi < block_end && self.pages.get(&hi).map(|m| m.dirty).unwrap_or(false) {
            hi += 1;
        }
        let pages = (hi - lo) as u32;
        ev.runs.push(FlushRun {
            lpn: lo,
            pages,
            dirty: pages,
        });
        self.stats.flushed_pages += pages as u64;
        self.stats.flushed_dirty += pages as u64;
        for p in lo..hi {
            if p == victim {
                self.remove_page(p);
            } else {
                self.mark_clean(p);
            }
        }
        if let Some(o) = &self.obs {
            o.obs.emit(
                o.obs
                    .event("core.buffer", "evict_page")
                    .u64_field("lpn", victim)
                    .bool_field("dirty", true)
                    .u64_field("flushed_pages", pages as u64),
            );
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PPB: u32 = 4;

    fn buf(policy: PolicyKind, cap: usize) -> BufferManager {
        BufferManager::new(policy, cap, PPB, true)
    }

    #[test]
    fn writes_fit_until_capacity() {
        let mut b = buf(PolicyKind::Lar, 8);
        for i in 0..8 {
            let ev = b.write(i, 1);
            assert!(ev.is_empty(), "no eviction while under capacity");
        }
        assert_eq!(b.resident(), 8);
        assert_eq!(b.dirty(), 8);
    }

    #[test]
    fn lar_evicts_whole_least_popular_block() {
        let mut b = buf(PolicyKind::Lar, 8);
        // Block 0 (pages 0..4) popular: three accesses.
        b.write(0, 4);
        b.read(0, 2);
        b.read(2, 2);
        // Block 1 (pages 4..8) unpopular: one access.
        b.write(4, 4);
        // Overflow: block 1 must go, entirely, as one 4-page run.
        let ev = b.write(8, 1);
        assert_eq!(ev.runs.len(), 1);
        assert_eq!(
            ev.runs[0],
            FlushRun {
                lpn: 4,
                pages: 4,
                dirty: 4
            }
        );
        assert!(b.lookup(4).is_none());
        assert!(b.lookup(0).is_some());
    }

    #[test]
    fn lar_flushes_interior_clean_pages_and_drops_trailing_ones() {
        let mut b = buf(PolicyKind::Lar, 6);
        // Block 0: dirty pages 0 and 2, clean page 1 (read-cached), clean
        // page 3 — one access each way.
        b.write(0, 1);
        b.insert_clean(1, 1);
        b.write(2, 1);
        b.insert_clean(3, 1);
        // Block 1 more popular: four accesses.
        b.write(4, 1);
        b.read(4, 1);
        b.write(5, 1);
        // Overflow via block 1 again → victim is block 0 (popularity 2 vs 4).
        let ev = b.write(6, 1);
        // Dirty span 0..=2 flushed as one contiguous run (clean page 1
        // rides along); trailing clean page 3 is dropped for free.
        let total: u64 = ev.runs.iter().map(|r| r.pages as u64).sum();
        assert_eq!(total, 3, "dirty span flushed together: {ev:?}");
        let dirty: u64 = ev.runs.iter().map(|r| r.dirty as u64).sum();
        assert_eq!(dirty, 2);
        assert_eq!(ev.clean_dropped, 1);
        assert!(b.lookup(3).is_none());
    }

    #[test]
    fn lar_drops_clean_only_blocks_without_flush() {
        let mut b = buf(PolicyKind::Lar, 5);
        b.insert_clean(0, 4); // clean block 0, one access
        b.write(4, 1);
        b.read(4, 1); // block 1 now popularity 2
        let ev = b.insert_clean(8, 1); // overflow → clean block 0 is dropped
        assert!(ev.runs.is_empty(), "{ev:?}");
        assert_eq!(ev.clean_dropped, 4);
        assert_eq!(b.lookup(4), Some(true));
        assert_eq!(b.lookup(8), Some(false));
        assert!(b.lookup(0).is_none());
    }

    #[test]
    fn lru_evicts_single_oldest_page() {
        let mut b = buf(PolicyKind::Lru, 4);
        b.insert_clean(0, 1);
        b.insert_clean(10, 1);
        b.insert_clean(20, 1);
        b.insert_clean(30, 1);
        b.read(0, 1); // refresh page 0
        let ev = b.insert_clean(40, 1); // evict page 10 (oldest)
        assert!(ev.runs.is_empty());
        assert_eq!(ev.clean_dropped, 1);
        assert!(b.lookup(10).is_none());
        assert!(b.lookup(0).is_some());
    }

    #[test]
    fn lru_dirty_victim_combines_contiguous_dirty_neighbours() {
        let mut b = buf(PolicyKind::Lru, 4);
        b.write(0, 1);
        b.write(1, 1);
        b.write(2, 1);
        b.write(9, 1);
        // Overflow: victim is page 0; pages 1,2 are contiguous dirty in the
        // same block → combined 3-page write.
        let ev = b.write(13, 1);
        assert_eq!(
            ev.runs,
            vec![FlushRun {
                lpn: 0,
                pages: 3,
                dirty: 3
            }]
        );
        // Victim gone; combined neighbours stay, now clean.
        assert!(b.lookup(0).is_none());
        assert_eq!(b.lookup(1), Some(false));
        assert_eq!(b.lookup(2), Some(false));
    }

    #[test]
    fn lru_combining_respects_block_boundary() {
        let mut b = buf(PolicyKind::Lru, 4);
        b.write(3, 1); // last page of block 0
        b.write(4, 1); // first page of block 1 — contiguous LPN, new block
        b.write(8, 1);
        b.write(9, 1);
        let ev = b.write(13, 1); // victim: page 3
        assert_eq!(
            ev.runs,
            vec![FlushRun {
                lpn: 3,
                pages: 1,
                dirty: 1
            }]
        );
        assert_eq!(b.lookup(4), Some(true), "page in next block untouched");
    }

    #[test]
    fn lfu_evicts_least_frequent() {
        let mut b = buf(PolicyKind::Lfu, 3);
        b.insert_clean(1, 1);
        b.read(1, 1);
        b.read(1, 1);
        b.insert_clean(2, 1);
        b.read(2, 1);
        b.insert_clean(3, 1); // frequency 1 → victim
        let ev = b.insert_clean(4, 1);
        assert_eq!(ev.clean_dropped, 1);
        assert!(b.lookup(3).is_none());
    }

    #[test]
    fn read_segments_split_hits_and_misses() {
        let mut b = buf(PolicyKind::Lar, 8);
        b.write(2, 2); // pages 2,3 resident
        let segs = b.read(0, 6);
        assert_eq!(
            segs,
            vec![
                ReadSegment {
                    lpn: 0,
                    pages: 2,
                    hit: false
                },
                ReadSegment {
                    lpn: 2,
                    pages: 2,
                    hit: true
                },
                ReadSegment {
                    lpn: 4,
                    pages: 2,
                    hit: false
                },
            ]
        );
        assert_eq!(b.stats().page_hits, 2); // only the read's pages 2,3 hit
    }

    #[test]
    fn hit_ratio_counts_all_accesses() {
        let mut b = buf(PolicyKind::Lar, 8);
        b.write(0, 2); // 2 misses
        b.write(0, 2); // 2 hits
        b.read(0, 2); // 2 hits
        b.read(4, 2); // 2 misses
        let s = b.stats();
        assert_eq!(s.page_hits, 4);
        assert_eq!(s.page_misses, 4);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn drain_dirty_flushes_everything_and_keeps_pages() {
        let mut b = buf(PolicyKind::Lar, 16);
        b.write(0, 3);
        b.write(8, 2);
        b.insert_clean(4, 1);
        let ev = b.drain_dirty();
        assert_eq!(ev.flushed_pages(), 5);
        assert_eq!(ev.dirty_pages(), 5);
        assert_eq!(b.dirty(), 0);
        assert_eq!(b.resident(), 6, "pages remain resident, clean");
        // A second drain is a no-op.
        assert!(b.drain_dirty().is_empty());
    }

    #[test]
    fn clear_drops_everything() {
        let mut b = buf(PolicyKind::Lru, 8);
        b.write(0, 4);
        b.clear();
        assert_eq!(b.resident(), 0);
        assert_eq!(b.dirty(), 0);
        assert!(b.dirty_pages().is_empty());
    }

    #[test]
    fn clustering_groups_small_dirty_tails() {
        // Buffer with many 1-dirty-page unpopular blocks: one eviction cycle
        // should batch several of them toward a block-size write.
        let mut b = BufferManager::new(PolicyKind::Lar, 6, PPB, true);
        for blk in 0..6u64 {
            b.write(blk * PPB as u64, 1);
        }
        // Make one block popular so it is retained.
        b.read(0, 1);
        b.read(0, 1);
        let ev = b.write(100, 1); // overflow
        assert!(
            ev.runs.len() > 1,
            "clustering should gather multiple tails: {ev:?}"
        );
        assert!(ev.flushed_pages() <= PPB as u64);
        assert!(b.stats().clustered_batches >= 1);
    }

    #[test]
    fn clustering_off_evicts_single_victim() {
        let mut b = BufferManager::new(PolicyKind::Lar, 6, PPB, false);
        for blk in 0..6u64 {
            b.write(blk * PPB as u64, 1);
        }
        b.read(0, 1);
        b.read(0, 1);
        let ev = b.write(100, 1);
        assert_eq!(ev.runs.len(), 1, "{ev:?}");
        assert_eq!(b.stats().clustered_batches, 0);
    }

    #[test]
    fn background_cleaner_holds_the_watermark() {
        for policy in PolicyKind::ALL {
            let mut b = BufferManager::new(policy, 32, PPB, true);
            b.set_dirty_watermark(Some(0.5));
            let mut cleaned_total = 0u64;
            for i in 0..64u64 {
                b.write(i % 30, 1);
                let ev = b.background_clean();
                for r in &ev.runs {
                    assert_eq!(r.dirty, r.pages, "cleaner only writes dirty runs");
                }
                cleaned_total += ev.dirty_pages();
                assert!(
                    b.dirty() <= 16 + PPB as usize,
                    "{policy}: dirty {} exceeded watermark region",
                    b.dirty()
                );
            }
            assert!(cleaned_total > 0, "{policy}: cleaner never ran");
            // Cleaned pages remain resident.
            assert!(b.resident() >= b.dirty());
        }
    }

    #[test]
    fn cleaner_disabled_by_default() {
        let mut b = buf(PolicyKind::Lar, 8);
        for i in 0..8u64 {
            b.write(i, 1);
        }
        assert!(b.background_clean().is_empty());
        assert_eq!(b.dirty(), 8);
    }

    #[test]
    fn rewrite_of_clean_page_makes_it_dirty() {
        let mut b = buf(PolicyKind::Lar, 8);
        b.insert_clean(0, 1);
        assert_eq!(b.lookup(0), Some(false));
        assert_eq!(b.dirty(), 0);
        b.write(0, 1);
        assert_eq!(b.lookup(0), Some(true));
        assert_eq!(b.dirty(), 1);
    }

    #[test]
    fn config_builder_round_trips_every_knob() {
        let cfg = BufferConfig::builder()
            .policy(PolicyKind::Lfu)
            .capacity(32)
            .pages_per_block(8)
            .clustering(false)
            .lar_dirty_tiebreak(false)
            .dirty_watermark(Some(0.4))
            .build();
        assert_eq!(cfg.policy, PolicyKind::Lfu);
        assert_eq!(cfg.capacity, 32);
        assert_eq!(cfg.pages_per_block, 8);
        assert!(!cfg.clustering && !cfg.lar_dirty_tiebreak);
        assert_eq!(cfg.dirty_watermark, Some(0.4));
        let b = BufferManager::from_config(cfg);
        assert_eq!(b.policy(), PolicyKind::Lfu);
        assert_eq!(b.capacity(), 32);
        // Defaults match the positional constructor's conventions.
        let d = BufferConfig::default();
        assert_eq!(d.policy, PolicyKind::Lar);
        assert!(d.clustering && d.lar_dirty_tiebreak);
        assert_eq!(d.dirty_watermark, None);
    }

    #[test]
    fn obs_counters_and_eviction_events_mirror_stats() {
        let (obs, ring) = fc_obs::Obs::ring(256);
        let mut b = buf(PolicyKind::Lar, 8);
        b.attach_obs(&obs);
        b.write(0, 4);
        b.read(0, 2); // 2 hits
        b.write(4, 4);
        b.write(8, 1); // overflow → block eviction
        let snap = obs.registry().snapshot();
        assert_eq!(
            snap.counter("core.buffer.page_hits"),
            Some(b.stats().page_hits)
        );
        assert_eq!(
            snap.counter("core.buffer.page_misses"),
            Some(b.stats().page_misses)
        );
        let evicts: Vec<_> = ring
            .events()
            .into_iter()
            .filter(|e| e.kind == "evict_block")
            .collect();
        assert_eq!(evicts.len(), 1, "one LAR block eviction");
        let e = &evicts[0];
        assert_eq!(e.get("lbn").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(e.get("popularity").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(e.get("dirty").and_then(|v| v.as_u64()), Some(4));
        assert_eq!(e.get("flushed_pages").and_then(|v| v.as_u64()), Some(4));
    }

    #[test]
    fn obs_page_eviction_events_for_ranked_policies() {
        let (obs, ring) = fc_obs::Obs::ring(64);
        let mut b = buf(PolicyKind::Lru, 4);
        b.attach_obs(&obs);
        b.insert_clean(0, 4);
        b.insert_clean(10, 1); // evicts clean page 0
        let evicts: Vec<_> = ring
            .events()
            .into_iter()
            .filter(|e| e.kind == "evict_page")
            .collect();
        assert!(!evicts.is_empty());
        assert_eq!(
            evicts[0].get("dirty").and_then(|v| v.as_bool()),
            Some(false)
        );
    }

    #[test]
    fn dirty_pages_lists_sorted() {
        let mut b = buf(PolicyKind::Lar, 16);
        b.write(9, 1);
        b.write(2, 1);
        b.insert_clean(5, 1);
        assert_eq!(b.dirty_pages(), vec![2, 9]);
    }

    #[test]
    fn resident_pages_lists_all_sorted() {
        let mut b = buf(PolicyKind::Lar, 16);
        b.write(9, 1);
        b.write(2, 1);
        b.insert_clean(5, 1);
        assert_eq!(b.resident_pages(), vec![2, 5, 9]);
        b.discard(5, 1);
        assert_eq!(b.resident_pages(), vec![2, 9]);
    }
}
