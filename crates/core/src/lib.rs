//! # flashcoop
//!
//! Reproduction of **FlashCoop: A Locality-Aware Cooperative Buffer
//! Management for SSD-Based Storage Cluster** (Wei, Gong, Pathak, Tay —
//! ICPP 2010).
//!
//! FlashCoop sits between the file system and the SSD of each server in a
//! cooperative pair. Writes land in the local DRAM buffer *and* replicate
//! into the peer's donated remote buffer over a fast network instead of
//! synchronously hitting the SSD. The **Locality-Aware Replacement (LAR)**
//! policy evicts whole logical blocks — least popular first, most dirty as
//! the tie-break — and flushes them sequentially, reshaping random write
//! streams into the sequential patterns flash wants.
//!
//! Module map (Figure 3 of the paper → code):
//!
//! * [`config`] — every tunable; [`config::Scheme`] enumerates the four
//!   evaluated systems (Baseline + FlashCoop×{LAR, LRU, LFU}).
//! * [`buffer`] + [`policy`] — local buffer and the replacement policies.
//! * [`tables`] — the RCT and the donated remote store (LCT lives inside
//!   the buffer).
//! * [`server`] — the access portal wired to a virtual-clock replay over an
//!   [`fc_ssd::Ssd`].
//! * [`pair`] — two servers, heartbeats, failure injection, recovery.
//! * [`alloc`] — dynamic memory allocation (Equation 1).
//! * [`recovery`] — heartbeat failure detection (Section III.D).
//! * [`sim`] / [`metrics`] — the experiment driver and its reports.
//!
//! ```
//! use flashcoop::{FlashCoopConfig, PolicyKind, Scheme, replay, Preconditioning};
//! use fc_ssd::FtlKind;
//! use fc_trace::SyntheticSpec;
//!
//! let cfg = FlashCoopConfig::tiny(FtlKind::PageLevel, PolicyKind::Lar);
//! let trace = SyntheticSpec::mix(128).with_requests(200).generate(1);
//! let report = replay(&trace, &cfg, Scheme::FlashCoop(PolicyKind::Lar), None, 42);
//! assert_eq!(report.requests, 200);
//! let _ = Preconditioning::default();
//! ```

pub mod alloc;
pub mod buffer;
pub mod cluster;
pub mod config;
pub mod metrics;
pub mod pair;
pub mod policy;
pub mod recovery;
pub mod server;
pub mod sim;
pub mod tables;

pub use buffer::{BufferConfig, BufferConfigBuilder, BufferManager, BufferStats, ReadSegment};
pub use cluster::{Cluster, ClusterReport};
pub use config::{AllocParams, FlashCoopConfig, PolicyKind, RetryPolicy, Scheme};
pub use metrics::{ReplicationStats, RunReport};
pub use pair::{CoopPair, Injection, PairEvent};
pub use policy::{Eviction, FlushRun};
pub use recovery::{
    HeartbeatMonitor, LifecycleTransition, PairLifecycle, PairState, PeerEvent, PeerState,
};
pub use server::{CoopServer, ServerMetrics, UtilSample};
pub use sim::{replay, replay_with_obs, Preconditioning};
pub use tables::{Rct, RemoteStore};
