//! Trace-replay driver — the experiment engine behind Figures 6–8 and
//! Table III.
//!
//! [`replay`] runs one (trace, scheme, FTL) cell: build a server, age the
//! SSD, replay every request at its trace timestamp against a peer remote
//! store sized like the local buffer (the symmetric-pair configuration the
//! paper measures: "results presented in this paper are collected on one
//! server except dynamic testing"), and collect a [`RunReport`].
//!
//! No warm-up exclusion is applied: all schemes replay the same requests
//! from the same aged device state, so cold-buffer effects cancel in the
//! comparisons, exactly as in a full-trace replay study. Dirty data still
//! buffered at the end is *not* force-flushed — short-lived data that never
//! reaches the SSD is part of FlashCoop's claimed benefit (Section III.A).

use crate::config::{FlashCoopConfig, Scheme};
use crate::metrics::RunReport;
use crate::server::CoopServer;
use crate::tables::RemoteStore;
use fc_obs::{Obs, SnapshotScheduler};
use fc_simkit::DetRng;
use fc_trace::{Op, Trace};
use serde::{Deserialize, Serialize};

/// Device aging applied before measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Preconditioning {
    /// Fraction of the logical space filled.
    pub fill: f64,
    /// Fraction of the fill written sequentially.
    pub sequential: f64,
}

impl Default for Preconditioning {
    fn default() -> Self {
        // An aged enterprise device: 85% full, half sequential history.
        Preconditioning {
            fill: 0.85,
            sequential: 0.5,
        }
    }
}

/// Replay `trace` under `scheme` on a fresh server built from `cfg`.
///
/// `precondition` ages the device first (pass `None` for a factory-fresh
/// SSD); `seed` drives the aging randomness.
pub fn replay(
    trace: &Trace,
    cfg: &FlashCoopConfig,
    scheme: Scheme,
    precondition: Option<Preconditioning>,
    seed: u64,
) -> RunReport {
    replay_with_obs(trace, cfg, scheme, precondition, seed, None)
}

/// [`replay`] with an optional observability handle.
///
/// When `obs` is given the run is fully instrumented: the server attaches
/// *after* preconditioning (aging traffic stays out of the stream), every
/// request advances the handle's sim clock, a [`SnapshotScheduler`] turns
/// the registry into periodic `snapshot` events (16 over the trace span),
/// and the stream is bracketed by `run_start`/`run_end` events — `run_end`
/// carries the headline [`RunReport`] numbers for cross-checking a replayed
/// JSONL stream against the report.
pub fn replay_with_obs(
    trace: &Trace,
    cfg: &FlashCoopConfig,
    scheme: Scheme,
    precondition: Option<Preconditioning>,
    seed: u64,
    obs: Option<&Obs>,
) -> RunReport {
    let mut server = CoopServer::new(cfg.clone(), scheme);
    if let Some(p) = precondition {
        let mut rng = DetRng::new(seed);
        server
            .ssd_mut()
            .precondition(p.fill, p.sequential, &mut rng);
    }
    assert!(
        trace.address_span() <= server.ssd().logical_pages(),
        "trace footprint ({}) exceeds device logical capacity ({}); \
         wrap the trace or enlarge the geometry",
        trace.address_span(),
        server.ssd().logical_pages()
    );

    let span_ns = trace.requests.last().map(|r| r.at.as_nanos()).unwrap_or(0);
    let mut scheduler = obs.map(|o| {
        server.attach_obs(o);
        o.set_sim_now(0);
        o.emit(
            o.event("core", "run_start")
                .str_field("scheme", scheme.name())
                .str_field("ftl", cfg.ssd.ftl.name().to_string())
                .str_field("trace", trace.name.clone())
                .u64_field("requests", trace.len() as u64)
                .u64_field("seed", seed),
        );
        // 16 registry snapshots across the trace span (at least one period).
        SnapshotScheduler::new((span_ns / 16).max(1))
    });

    // Symmetric pair: the peer donates a store as large as our buffer.
    let mut remote = RemoteStore::new(cfg.buffer_pages);
    for req in &trace.requests {
        if let (Some(s), Some(o)) = (scheduler.as_mut(), obs) {
            s.poll(req.at.as_nanos(), o);
        }
        match req.op {
            Op::Write => {
                server.handle_write(req.at, req.lpn, req.pages, Some(&mut remote));
            }
            Op::Read => {
                server.handle_read(req.at, req.lpn, req.pages, Some(&mut remote));
            }
            Op::Trim => {
                server.handle_trim(req.at, req.lpn, req.pages, Some(&mut remote));
            }
        }
    }
    let report = report_for(&mut server, trace, scheme);
    if let (Some(mut s), Some(o)) = (scheduler, obs) {
        s.finish(span_ns, o);
        o.emit(
            o.event("core", "run_end")
                .u64_field("requests", report.requests as u64)
                .u64_field("erases", report.erases)
                .u64_field("avg_response_ns", report.avg_response.as_nanos())
                .u64_field("p99_response_ns", report.p99_response.as_nanos())
                .f64_field("hit_ratio", report.hit_ratio)
                .f64_field("write_amplification", report.write_amplification),
        );
        o.flush();
    }
    report
}

/// Assemble the report from a replayed server.
pub(crate) fn report_for(server: &mut CoopServer, trace: &Trace, scheme: Scheme) -> RunReport {
    let hit_ratio = match scheme {
        Scheme::Baseline => 0.0,
        Scheme::FlashCoop(_) => server.buffer().stats().hit_ratio(),
    };
    let erases = server.ssd().erases_since_reset();
    let ssd_stats = server.ssd().stats();
    let wa = ssd_stats.write_amplification();
    let mean_write_pages = ssd_stats.mean_write_pages();
    let frac_single = ssd_stats.write_lengths.frac_single_page();
    let frac_gt8 = ssd_stats.write_lengths.frac_larger_than(8);
    let cdf = ssd_stats.write_lengths.cdf();
    let ftl_stats = server.ssd().ftl_stats();
    let ftl = server.ssd().ftl_kind();

    let m = server.metrics_mut();
    let p99 = m.response.percentile(99.0);
    RunReport {
        scheme,
        ftl,
        trace: trace.name.clone(),
        requests: trace.len(),
        avg_response: m.response.mean(),
        p99_response: p99,
        avg_write_response: m.write_response.mean(),
        avg_read_response: m.read_response.mean(),
        hit_ratio,
        erases,
        write_amplification: wa,
        mean_write_pages,
        frac_single_page: frac_single,
        frac_gt8_pages: frac_gt8,
        write_length_cdf: cdf,
        ftl_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicyKind;
    use fc_simkit::{SimDuration, SimTime};
    use fc_ssd::FtlKind;
    use fc_trace::IoRequest;

    /// A small mixed trace confined to the tiny device.
    fn small_trace(pages: u64, n: usize, seed: u64) -> Trace {
        let mut rng = DetRng::new(seed);
        let mut t = Trace::new("unit");
        let mut now = SimTime::ZERO;
        for i in 0..n {
            now += SimDuration::from_micros(500 + rng.below(1000));
            let lpn = rng.below(pages - 4);
            let op = if i % 3 == 0 { Op::Read } else { Op::Write };
            t.push(IoRequest {
                at: now,
                lpn,
                pages: 1 + (i as u32 % 3),
                op,
            });
        }
        t
    }

    fn tiny_cfg(policy: PolicyKind) -> FlashCoopConfig {
        FlashCoopConfig::tiny(FtlKind::PageLevel, policy)
    }

    #[test]
    fn replay_produces_complete_report() {
        let cfg = tiny_cfg(PolicyKind::Lar);
        let server = CoopServer::new(cfg.clone(), Scheme::Baseline);
        let pages = server.ssd().logical_pages();
        let trace = small_trace(pages, 300, 1);
        let r = replay(&trace, &cfg, Scheme::FlashCoop(PolicyKind::Lar), None, 7);
        assert_eq!(r.requests, 300);
        assert!(r.avg_response > SimDuration::ZERO);
        assert!(r.p99_response >= r.avg_response);
        assert!(r.hit_ratio >= 0.0 && r.hit_ratio <= 1.0);
        assert!(!r.write_length_cdf.is_empty());
    }

    #[test]
    fn flashcoop_beats_baseline_on_write_heavy_trace() {
        let cfg = tiny_cfg(PolicyKind::Lar);
        let server = CoopServer::new(cfg.clone(), Scheme::Baseline);
        let pages = server.ssd().logical_pages();
        let trace = small_trace(pages, 500, 2);
        let pre = Some(Preconditioning {
            fill: 0.8,
            sequential: 0.5,
        });
        let fc = replay(&trace, &cfg, Scheme::FlashCoop(PolicyKind::Lar), pre, 7);
        let base = replay(&trace, &cfg, Scheme::Baseline, pre, 7);
        assert!(
            fc.avg_response < base.avg_response,
            "FlashCoop {} vs Baseline {}",
            fc.avg_response,
            base.avg_response
        );
    }

    #[test]
    fn replay_is_deterministic() {
        let cfg = tiny_cfg(PolicyKind::Lru);
        let server = CoopServer::new(cfg.clone(), Scheme::Baseline);
        let pages = server.ssd().logical_pages();
        let trace = small_trace(pages, 200, 3);
        let a = replay(&trace, &cfg, Scheme::FlashCoop(PolicyKind::Lru), None, 9);
        let b = replay(&trace, &cfg, Scheme::FlashCoop(PolicyKind::Lru), None, 9);
        assert_eq!(a.avg_response, b.avg_response);
        assert_eq!(a.erases, b.erases);
        assert_eq!(a.hit_ratio, b.hit_ratio);
    }

    #[test]
    fn obs_stream_recomputes_report_headlines() {
        let cfg = tiny_cfg(PolicyKind::Lar);
        let server = CoopServer::new(cfg.clone(), Scheme::Baseline);
        let pages = server.ssd().logical_pages();
        let trace = small_trace(pages, 300, 6);
        let (obs, ring) = fc_obs::Obs::ring(16_384);
        let pre = Some(Preconditioning {
            fill: 0.8,
            sequential: 0.5,
        });
        let r = replay_with_obs(
            &trace,
            &cfg,
            Scheme::FlashCoop(PolicyKind::Lar),
            pre,
            7,
            Some(&obs),
        );
        let events = ring.events();
        // Bracketing events present; the stream is schema-valid JSONL.
        assert_eq!(events.first().unwrap().kind, "run_start");
        assert_eq!(events.last().unwrap().kind, "run_end");
        let jsonl: String = events.iter().map(|e| e.to_json() + "\n").collect();
        assert_eq!(fc_obs::validate_jsonl(&jsonl).unwrap(), events.len());
        // Periodic snapshots fired.
        assert!(events.iter().filter(|e| e.kind == "snapshot").count() >= 2);
        // Recompute the mean response from per-request events.
        let resp: Vec<u64> = events
            .iter()
            .filter(|e| {
                e.component == "core" && matches!(e.kind.as_ref(), "write" | "read" | "trim")
            })
            .map(|e| e.get("resp_ns").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(resp.len(), r.requests);
        let mean = resp.iter().sum::<u64>() / resp.len() as u64;
        assert!(mean.abs_diff(r.avg_response.as_nanos()) <= 1);
        // Recompute measured erases from per-write device events
        // (preconditioning happened before attach, so the stream contains
        // exactly the measured-phase erases).
        let erases: u64 = events
            .iter()
            .filter(|e| e.kind == "host_write")
            .map(|e| e.get("erases").unwrap().as_u64().unwrap())
            .sum();
        assert_eq!(erases, r.erases);
        // The attached run reports the same numbers as a plain replay.
        let plain = replay(&trace, &cfg, Scheme::FlashCoop(PolicyKind::Lar), pre, 7);
        assert_eq!(plain.avg_response, r.avg_response);
        assert_eq!(plain.erases, r.erases);
        assert_eq!(plain.hit_ratio, r.hit_ratio);
    }

    #[test]
    #[should_panic(expected = "exceeds device logical capacity")]
    fn oversized_trace_is_rejected() {
        let cfg = tiny_cfg(PolicyKind::Lar);
        let mut t = Trace::new("big");
        t.push(IoRequest {
            at: SimTime::ZERO,
            lpn: u32::MAX as u64,
            pages: 1,
            op: Op::Write,
        });
        replay(&t, &cfg, Scheme::Baseline, None, 1);
    }

    #[test]
    fn baseline_report_has_zero_hit_ratio() {
        let cfg = tiny_cfg(PolicyKind::Lar);
        let server = CoopServer::new(cfg.clone(), Scheme::Baseline);
        let pages = server.ssd().logical_pages();
        let trace = small_trace(pages, 100, 4);
        let r = replay(&trace, &cfg, Scheme::Baseline, None, 5);
        assert_eq!(r.hit_ratio, 0.0);
        assert!(r.erases > 0 || r.write_amplification >= 1.0);
    }
}
