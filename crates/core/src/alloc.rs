//! Dynamic memory allocation — Equation 1 of Section III.C.
//!
//! Each server splits its memory between a local buffer and a remote buffer
//! donated to the peer. The remote-buffer ratio θᵢ of server *i* is
//!
//! ```text
//! θᵢ = aⱼ · (1 − bᵢ)          (Equation 1)
//! aⱼ = λʷʳⁱᵗᵉⱼ / λⱼ           (peer j's write-intensity)
//! bᵢ = α·mᵢ + β·pᵢ + γ·nᵢ     (local resource usage)
//! ```
//!
//! so "more remote buffer will be allocated if its local usage is low and
//! workload of its neighbor is write intensive". The two servers
//! periodically exchange (a, b) and resize their donated stores.

use crate::config::AllocParams;
use crate::server::UtilSample;
use serde::{Deserialize, Serialize};

/// Local resource usage bᵢ = α·m + β·p + γ·n, clamped to [0, 1].
pub fn resource_usage(params: &AllocParams, u: UtilSample) -> f64 {
    (params.alpha * u.m.clamp(0.0, 1.0)
        + params.beta * u.p.clamp(0.0, 1.0)
        + params.gamma * u.n.clamp(0.0, 1.0))
    .clamp(0.0, 1.0)
}

/// Remote-buffer ratio θᵢ = aⱼ·(1 − bᵢ), clamped to [0, 1].
pub fn theta(peer_write_fraction: f64, local_usage: f64) -> f64 {
    (peer_write_fraction.clamp(0.0, 1.0) * (1.0 - local_usage.clamp(0.0, 1.0))).clamp(0.0, 1.0)
}

/// Differences a window of request counters, yielding the workload factor
/// aⱼ = λʷʳⁱᵗᵉ/λ over that window ("each server of the pair periodically
/// collects and exchanges required information").
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct WorkloadWindow {
    last_writes: u64,
    last_reads: u64,
}

impl WorkloadWindow {
    /// Fresh window anchored at zero counters.
    pub fn new() -> Self {
        WorkloadWindow::default()
    }

    /// Consume the counter deltas since the previous call and return the
    /// window's write fraction. An idle window reports the *cumulative*
    /// fraction so θ does not collapse to zero between sparse arrivals.
    pub fn write_fraction(&mut self, total_writes: u64, total_reads: u64) -> f64 {
        let dw = total_writes.saturating_sub(self.last_writes);
        let dr = total_reads.saturating_sub(self.last_reads);
        self.last_writes = total_writes;
        self.last_reads = total_reads;
        if dw + dr > 0 {
            dw as f64 / (dw + dr) as f64
        } else if total_writes + total_reads > 0 {
            total_writes as f64 / (total_writes + total_reads) as f64
        } else {
            0.0
        }
    }
}

/// One θ evaluation for reporting (Figure 9's series points).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThetaSample {
    /// Seconds into the run.
    pub at_secs: f64,
    /// Local resource usage bᵢ.
    pub local_usage: f64,
    /// Peer write fraction aⱼ.
    pub peer_write_fraction: f64,
    /// Resulting θᵢ.
    pub theta: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> AllocParams {
        AllocParams::default() // α=0.4 β=0.2 γ=0.4
    }

    #[test]
    fn resource_usage_weights_inputs() {
        let u = UtilSample {
            m: 0.5,
            p: 1.0,
            n: 0.25,
        };
        // 0.4*0.5 + 0.2*1.0 + 0.4*0.25 = 0.5
        assert!((resource_usage(&params(), u) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn resource_usage_clamps() {
        let u = UtilSample {
            m: 5.0,
            p: 5.0,
            n: 5.0,
        };
        assert_eq!(resource_usage(&params(), u), 1.0);
        let z = UtilSample {
            m: -1.0,
            p: -1.0,
            n: -1.0,
        };
        assert_eq!(resource_usage(&params(), z), 0.0);
    }

    #[test]
    fn theta_increases_with_peer_write_intensity() {
        // The Figure 9 ordering: a write-heavy peer (Fin1, a≈0.91) earns a
        // larger donation than a read-heavy one (Fin2, a≈0.10).
        let b = 0.3;
        assert!(theta(0.91, b) > theta(0.10, b));
    }

    #[test]
    fn theta_decreases_with_local_usage() {
        // The Figure 9 trend: θ falls as the local server gets busier.
        let a = 0.91;
        let t1 = theta(a, 0.1);
        let t2 = theta(a, 0.5);
        let t3 = theta(a, 0.9);
        assert!(t1 > t2 && t2 > t3);
    }

    #[test]
    fn theta_bounds() {
        assert_eq!(theta(2.0, -1.0), 1.0);
        assert_eq!(theta(0.0, 0.0), 0.0);
        assert_eq!(theta(1.0, 1.0), 0.0);
    }

    #[test]
    fn workload_window_differences_counters() {
        let mut w = WorkloadWindow::new();
        assert_eq!(w.write_fraction(9, 1), 0.9);
        // Next window: 5 writes, 15 reads.
        assert_eq!(w.write_fraction(14, 16), 0.25);
        // Idle window falls back to the cumulative fraction.
        let f = w.write_fraction(14, 16);
        assert!((f - 14.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn workload_window_empty_history_is_zero() {
        let mut w = WorkloadWindow::new();
        assert_eq!(w.write_fraction(0, 0), 0.0);
    }
}
