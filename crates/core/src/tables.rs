//! Caching tables — the LCT/RCT metadata of Figure 3.
//!
//! * The **Local Caching Table (LCT)** indexes the pages in the local buffer;
//!   in this implementation it is the page map inside
//!   [`crate::buffer::BufferManager`], so this module only re-exports the
//!   remote-side structures.
//! * The **Remote Caching Table ([`Rct`])** is a server's index of *its own*
//!   dirty pages currently replicated in the peer's remote buffer. After a
//!   local failure, the server "reads RCT from neighbouring server" — i.e.
//!   fetches [`RemoteStore::snapshot`] — and replays those pages into its
//!   SSD (Section III.D).
//! * The **[`RemoteStore`]** is the memory a server donates to hold its
//!   *peer's* replicated pages (the "remote buffer" half of Figure 3).
//!
//! Pages carry a monotonically increasing version so recovery and the
//! consistency checker can prove no acknowledged write is lost or rolled
//! back.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Index of this server's pages replicated at the peer.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Rct {
    entries: HashMap<u64, u64>,
}

impl Rct {
    /// Empty table.
    pub fn new() -> Self {
        Rct::default()
    }

    /// Record that `lpn` at `version` is replicated.
    pub fn insert(&mut self, lpn: u64, version: u64) {
        let e = self.entries.entry(lpn).or_insert(version);
        *e = (*e).max(version);
    }

    /// Drop the entry after the page was flushed to the SSD (its remote copy
    /// is discarded).
    pub fn discard(&mut self, lpn: u64) {
        self.entries.remove(&lpn);
    }

    /// Replicated version of `lpn`, if any.
    pub fn get(&self, lpn: u64) -> Option<u64> {
        self.entries.get(&lpn).copied()
    }

    /// Number of replicated pages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is replicated.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop everything (peer purged its remote buffer).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// All entries, sorted by LPN.
    pub fn entries(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.entries.iter().map(|(&l, &ver)| (l, ver)).collect();
        v.sort_unstable();
        v
    }
}

/// Memory donated to the peer: holds the peer's replicated dirty pages.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RemoteStore {
    entries: HashMap<u64, u64>,
    capacity: usize,
}

impl RemoteStore {
    /// A store that holds up to `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        RemoteStore {
            entries: HashMap::new(),
            capacity,
        }
    }

    /// Capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resize the store (dynamic memory allocation adjusts θ at runtime).
    /// Shrinking below the current occupancy is allowed — the entries stay
    /// until the owner flushes/discards them; new writes are refused instead.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
    }

    /// Pages held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Store a replicated page. Returns false (rejected) when full — the
    /// writer must then fall back to a synchronous flush.
    pub fn write(&mut self, lpn: u64, version: u64) -> bool {
        if !self.entries.contains_key(&lpn) && self.entries.len() >= self.capacity {
            return false;
        }
        let e = self.entries.entry(lpn).or_insert(version);
        *e = (*e).max(version);
        true
    }

    /// Discard a page (its owner flushed it to SSD).
    pub fn discard(&mut self, lpn: u64) {
        self.entries.remove(&lpn);
    }

    /// Full contents, sorted by LPN — what a rebooted owner fetches during
    /// local-failure recovery ("reads RCT from neighboring server").
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.entries.iter().map(|(&l, &ver)| (l, ver)).collect();
        v.sort_unstable();
        v
    }

    /// Drop everything ("notifies neighboring server to clean out remote
    /// buffer").
    pub fn purge(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rct_tracks_latest_version() {
        let mut r = Rct::new();
        r.insert(5, 1);
        r.insert(5, 3);
        r.insert(5, 2); // stale insert cannot roll back
        assert_eq!(r.get(5), Some(3));
        assert_eq!(r.len(), 1);
        r.discard(5);
        assert!(r.is_empty());
        assert_eq!(r.get(5), None);
    }

    #[test]
    fn rct_entries_sorted() {
        let mut r = Rct::new();
        r.insert(9, 1);
        r.insert(2, 2);
        assert_eq!(r.entries(), vec![(2, 2), (9, 1)]);
        r.clear();
        assert!(r.is_empty());
    }

    #[test]
    fn remote_store_respects_capacity() {
        let mut s = RemoteStore::new(2);
        assert!(s.write(1, 1));
        assert!(s.write(2, 1));
        assert!(!s.write(3, 1), "full store rejects new pages");
        // Overwrite of an existing page is always accepted.
        assert!(s.write(1, 2));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn remote_store_snapshot_and_purge() {
        let mut s = RemoteStore::new(8);
        s.write(7, 1);
        s.write(3, 4);
        assert_eq!(s.snapshot(), vec![(3, 4), (7, 1)]);
        s.discard(3);
        assert_eq!(s.snapshot(), vec![(7, 1)]);
        s.purge();
        assert!(s.is_empty());
    }

    #[test]
    fn remote_store_resize() {
        let mut s = RemoteStore::new(1);
        assert!(s.write(1, 1));
        assert!(!s.write(2, 1));
        s.set_capacity(2);
        assert!(s.write(2, 1));
        s.set_capacity(1); // shrink below occupancy: existing entries stay
        assert_eq!(s.len(), 2);
        assert!(!s.write(3, 1));
        assert_eq!(s.capacity(), 1);
    }

    #[test]
    fn remote_store_version_monotone() {
        let mut s = RemoteStore::new(4);
        s.write(1, 5);
        s.write(1, 2);
        assert_eq!(s.snapshot(), vec![(1, 5)]);
    }
}
