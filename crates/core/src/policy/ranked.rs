//! Page-granular LRU / LFU directories — the comparison policies.
//!
//! The paper evaluates FlashCoop with classic recency- and frequency-based
//! replacement to show that hit-ratio-only policies "are not effective for
//! SSD because sequential locality is unfortunately ignored" (Section V.A).
//! Both are page-granular: the victim is a single page, and a dirty victim
//! produces the small writes that dominate their Figure 8 distributions.

use std::collections::{BTreeSet, HashMap};

/// Which order the directory maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankMode {
    /// Least-recently-used page first.
    Lru,
    /// Least-frequently-used page first (FIFO within a frequency class).
    Lfu,
}

/// Ordering key: (rank, insertion stamp, lpn). For LRU the rank is the last
/// access stamp; for LFU it is the access count.
type Key = (u64, u64, u64);

/// Page directory in LRU or LFU eviction order.
#[derive(Debug, Clone)]
pub struct RankedDirectory {
    mode: RankMode,
    stamp: u64,
    entries: HashMap<u64, Key>,
    index: BTreeSet<Key>,
}

impl RankedDirectory {
    /// Empty directory in the given mode.
    pub fn new(mode: RankMode) -> Self {
        RankedDirectory {
            mode,
            stamp: 0,
            entries: HashMap::new(),
            index: BTreeSet::new(),
        }
    }

    /// Number of tracked pages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no pages are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True if the page is tracked.
    pub fn contains(&self, lpn: u64) -> bool {
        self.entries.contains_key(&lpn)
    }

    /// Record an access to `lpn`, inserting it if new.
    pub fn touch(&mut self, lpn: u64) {
        self.stamp += 1;
        let stamp = self.stamp;
        let old = self.entries.get(&lpn).copied();
        let new = match (self.mode, old) {
            (RankMode::Lru, _) => (stamp, stamp, lpn),
            (RankMode::Lfu, Some((freq, first, _))) => (freq + 1, first, lpn),
            (RankMode::Lfu, None) => (1, stamp, lpn),
        };
        if let Some(o) = old {
            self.index.remove(&o);
        }
        self.index.insert(new);
        self.entries.insert(lpn, new);
    }

    /// The current victim page.
    pub fn victim(&self) -> Option<u64> {
        self.index.first().map(|&(_, _, lpn)| lpn)
    }

    /// Remove a page (evicted or invalidated).
    pub fn remove(&mut self, lpn: u64) -> bool {
        match self.entries.remove(&lpn) {
            Some(k) => {
                self.index.remove(&k);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut d = RankedDirectory::new(RankMode::Lru);
        d.touch(1);
        d.touch(2);
        d.touch(3);
        assert_eq!(d.victim(), Some(1));
        d.touch(1); // 2 becomes the oldest
        assert_eq!(d.victim(), Some(2));
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn lfu_evicts_least_frequent() {
        let mut d = RankedDirectory::new(RankMode::Lfu);
        d.touch(1);
        d.touch(1);
        d.touch(2);
        d.touch(3);
        d.touch(3);
        d.touch(3);
        assert_eq!(d.victim(), Some(2));
        d.touch(2);
        d.touch(2); // 2 now at 3 accesses; 1 has 2
        assert_eq!(d.victim(), Some(1));
    }

    #[test]
    fn lfu_breaks_frequency_ties_fifo() {
        let mut d = RankedDirectory::new(RankMode::Lfu);
        d.touch(10);
        d.touch(20);
        d.touch(30);
        // All at frequency 1: the first-inserted is the victim.
        assert_eq!(d.victim(), Some(10));
        d.remove(10);
        assert_eq!(d.victim(), Some(20));
    }

    #[test]
    fn remove_is_idempotent() {
        let mut d = RankedDirectory::new(RankMode::Lru);
        d.touch(5);
        assert!(d.remove(5));
        assert!(!d.remove(5));
        assert!(d.is_empty());
        assert_eq!(d.victim(), None);
    }

    #[test]
    fn contains_tracks_membership() {
        let mut d = RankedDirectory::new(RankMode::Lfu);
        assert!(!d.contains(1));
        d.touch(1);
        assert!(d.contains(1));
        d.remove(1);
        assert!(!d.contains(1));
    }

    #[test]
    fn index_consistent_under_churn() {
        let mut d = RankedDirectory::new(RankMode::Lfu);
        for i in 0..200u64 {
            d.touch(i % 13);
            if i % 5 == 0 {
                d.remove((i + 1) % 13);
            }
        }
        let mut popped = 0;
        while let Some(v) = d.victim() {
            assert!(d.remove(v));
            popped += 1;
            assert!(popped <= 13);
        }
        assert!(d.is_empty());
    }
}
