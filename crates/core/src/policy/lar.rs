//! LAR block directory — the two-level sort of Section III.B.2.
//!
//! The first level orders logical blocks by **popularity**: the number of
//! block accesses, where one request touching several pages of the same block
//! counts once ("Sequentially accessing multiple pages of the block is
//! treated as one block access"). Blocks written by long sequential runs thus
//! stay *unpopular* and get flushed early — exactly what the SSD wants.
//!
//! The second level breaks popularity ties by **dirty-page count**: among
//! equally-popular blocks, the one with the most dirty pages is evicted
//! first, so each flush carries as many dirty pages as possible and
//! "logically continuous pages can be physically placed onto continuous
//! pages" (Figure 4's example: block 4 beats block 2 at popularity 2 because
//! it holds 3 dirty pages against 2).

use std::collections::{BTreeSet, HashMap};

/// Per-block metadata.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LarBlock {
    /// Block accesses (reads and writes; one per request per block).
    pub popularity: u64,
    /// Dirty resident pages.
    pub dirty: u32,
    /// Resident pages (dirty + clean).
    pub resident: u32,
}

/// Ordering key: least popularity first, then most dirty pages first.
/// `u32::MAX - dirty` makes larger dirty counts sort earlier within a
/// popularity class; the lbn disambiguates.
type Key = (u64, u32, u64);

fn key(lbn: u64, b: &LarBlock) -> Key {
    (b.popularity, u32::MAX - b.dirty, lbn)
}

/// Directory of buffered logical blocks in LAR eviction order.
#[derive(Debug, Clone, Default)]
pub struct LarDirectory {
    blocks: HashMap<u64, LarBlock>,
    index: BTreeSet<Key>,
    /// Ablation switch: ignore the dirty-count tie-break (pure popularity).
    popularity_only: bool,
}

impl LarDirectory {
    /// Empty directory with the paper's full two-level sort.
    pub fn new() -> Self {
        LarDirectory::default()
    }

    /// Ablation variant: first-level sort only (ties break by block number,
    /// not dirty count) — used to measure what Section III.B.2's second
    /// level buys.
    pub fn popularity_only() -> Self {
        LarDirectory {
            popularity_only: true,
            ..LarDirectory::default()
        }
    }

    fn key_of(&self, lbn: u64, b: &LarBlock) -> Key {
        if self.popularity_only {
            (b.popularity, 0, lbn)
        } else {
            key(lbn, b)
        }
    }

    /// Number of blocks with at least one resident page.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when no blocks are resident.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Metadata for a block, if resident.
    pub fn get(&self, lbn: u64) -> Option<&LarBlock> {
        self.blocks.get(&lbn)
    }

    /// Record one block access (one request touching this block).
    pub fn on_block_access(&mut self, lbn: u64) {
        self.update(lbn, |b| b.popularity += 1);
    }

    /// Adjust residency counters when pages enter/leave or change dirtiness.
    pub fn adjust(&mut self, lbn: u64, d_resident: i64, d_dirty: i64) {
        self.update(lbn, |b| {
            b.resident = (b.resident as i64 + d_resident).max(0) as u32;
            b.dirty = (b.dirty as i64 + d_dirty).max(0) as u32;
        });
        // Blocks with no resident pages leave the directory.
        if self
            .blocks
            .get(&lbn)
            .map(|b| b.resident == 0)
            .unwrap_or(false)
        {
            self.remove(lbn);
        }
    }

    /// The current victim: least popular, most dirty.
    pub fn victim(&self) -> Option<u64> {
        self.index.first().map(|&(_, _, lbn)| lbn)
    }

    /// Like [`LarDirectory::victim`] but only blocks holding dirty pages
    /// (used by the clustering pass, which gathers dirty tails).
    pub fn dirty_victim(&self) -> Option<u64> {
        self.index
            .iter()
            .map(|&(_, _, lbn)| lbn)
            .find(|lbn| self.blocks.get(lbn).map(|b| b.dirty > 0).unwrap_or(false))
    }

    /// Remove a block entirely (after eviction).
    pub fn remove(&mut self, lbn: u64) -> Option<LarBlock> {
        let b = self.blocks.remove(&lbn)?;
        let k = self.key_of(lbn, &b);
        self.index.remove(&k);
        Some(b)
    }

    fn update(&mut self, lbn: u64, f: impl FnOnce(&mut LarBlock)) {
        let popularity_only = self.popularity_only;
        let key_fn = |lbn: u64, b: &LarBlock| {
            if popularity_only {
                (b.popularity, 0, lbn)
            } else {
                key(lbn, b)
            }
        };
        let entry = self.blocks.entry(lbn).or_default();
        let old = key_fn(lbn, entry);
        f(entry);
        let new = key_fn(lbn, entry);
        if old != new {
            self.index.remove(&old);
        }
        self.index.insert(new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn least_popular_is_victim() {
        let mut d = LarDirectory::new();
        d.adjust(1, 1, 1);
        d.on_block_access(1);
        d.on_block_access(1);
        d.adjust(2, 1, 1);
        d.on_block_access(2);
        assert_eq!(d.victim(), Some(2));
        d.on_block_access(2);
        d.on_block_access(2);
        assert_eq!(d.victim(), Some(1));
    }

    #[test]
    fn dirty_count_breaks_popularity_ties() {
        // Figure 4: blocks 2 and 4 both have popularity 2; block 4 has three
        // dirty pages against two, so block 4 is the victim.
        let mut d = LarDirectory::new();
        d.adjust(2, 4, 2);
        d.on_block_access(2);
        d.on_block_access(2);
        d.adjust(4, 4, 3);
        d.on_block_access(4);
        d.on_block_access(4);
        assert_eq!(d.victim(), Some(4));
    }

    #[test]
    fn sequential_multi_page_access_counts_once() {
        // The caller is responsible for calling on_block_access once per
        // request; verify popularity reflects that contract.
        let mut d = LarDirectory::new();
        d.adjust(7, 6, 6); // six pages inserted by one request…
        d.on_block_access(7); // …but one popularity increment
        assert_eq!(d.get(7).unwrap().popularity, 1);
        assert_eq!(d.get(7).unwrap().resident, 6);
    }

    #[test]
    fn empty_blocks_leave_directory() {
        let mut d = LarDirectory::new();
        d.adjust(3, 2, 1);
        assert_eq!(d.len(), 1);
        d.adjust(3, -2, -1);
        assert!(d.is_empty());
        assert_eq!(d.victim(), None);
    }

    #[test]
    fn remove_returns_metadata() {
        let mut d = LarDirectory::new();
        d.adjust(5, 3, 2);
        d.on_block_access(5);
        let b = d.remove(5).unwrap();
        assert_eq!(b.resident, 3);
        assert_eq!(b.dirty, 2);
        assert_eq!(b.popularity, 1);
        assert!(d.remove(5).is_none());
        assert!(d.is_empty());
    }

    #[test]
    fn dirty_victim_skips_clean_blocks() {
        let mut d = LarDirectory::new();
        d.adjust(1, 2, 0); // clean block, least popular
        d.adjust(2, 2, 1); // dirty block
        d.on_block_access(2);
        assert_eq!(d.victim(), Some(1));
        assert_eq!(d.dirty_victim(), Some(2));
    }

    #[test]
    fn counters_never_go_negative() {
        let mut d = LarDirectory::new();
        d.adjust(9, 1, 0);
        d.adjust(9, 0, -5); // dirty underflow clamps
        assert_eq!(d.get(9).unwrap().dirty, 0);
        assert_eq!(d.get(9).unwrap().resident, 1);
    }

    #[test]
    fn popularity_only_ignores_dirty_tiebreak() {
        let mut d = LarDirectory::popularity_only();
        d.adjust(2, 4, 2);
        d.on_block_access(2);
        d.adjust(4, 4, 3);
        d.on_block_access(4);
        // Same popularity; without the second level, the lower lbn wins
        // regardless of dirty counts (Figure 4 would pick block 4).
        assert_eq!(d.victim(), Some(2));
        d.remove(2);
        assert_eq!(d.victim(), Some(4));
        d.remove(4);
        assert!(d.is_empty());
    }

    #[test]
    fn index_and_map_stay_consistent_under_churn() {
        let mut d = LarDirectory::new();
        for i in 0..50u64 {
            d.adjust(i % 7, 1, i64::from(i % 2 == 0));
            if i % 3 == 0 {
                d.on_block_access(i % 7);
            }
        }
        // Every victim pop must correspond to a real block until empty.
        let mut seen = 0;
        while let Some(v) = d.victim() {
            assert!(d.get(v).is_some());
            d.remove(v);
            seen += 1;
            assert!(seen <= 7);
        }
        assert!(d.is_empty());
    }
}
