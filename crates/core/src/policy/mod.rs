//! Replacement-policy bookkeeping.
//!
//! The buffer manager ([`crate::buffer::BufferManager`]) owns the resident
//! pages; the *directories* in this module own the eviction order:
//!
//! * [`lar::LarDirectory`] — block-granular two-level sort (popularity, then
//!   dirty-page count), Section III.B.2.
//! * [`ranked::RankedDirectory`] — page-granular LRU/LFU orders for the
//!   comparison policies.
//!
//! Flush plans are expressed as [`FlushRun`]s: contiguous LPN runs written
//! sequentially to the SSD, the unit the write-length distribution
//! (Figure 8) is measured over.

pub mod lar;
pub mod ranked;

use serde::{Deserialize, Serialize};

/// A contiguous run of pages to write sequentially to the SSD.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlushRun {
    /// First logical page.
    pub lpn: u64,
    /// Run length in pages.
    pub pages: u32,
    /// How many of those pages were dirty (the rest are clean pages flushed
    /// alongside to keep the physical block contiguous — Section III.B.2's
    /// "both read and dirty pages of this block … sequentially flushed").
    pub dirty: u32,
}

impl FlushRun {
    /// Pages after the end of the run.
    pub fn end_lpn(&self) -> u64 {
        self.lpn + self.pages as u64
    }
}

/// The flush work produced by one eviction cycle. When clustering is on,
/// several small dirty tails are grouped into one batch and issued to the
/// device as a single write (Section III.B.3).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Eviction {
    /// Runs to write, in LPN order per victim.
    pub runs: Vec<FlushRun>,
    /// Pages dropped without a flush (clean victims).
    pub clean_dropped: u32,
}

impl Eviction {
    /// Total pages across all runs.
    pub fn flushed_pages(&self) -> u64 {
        self.runs.iter().map(|r| r.pages as u64).sum()
    }

    /// Total dirty pages across all runs.
    pub fn dirty_pages(&self) -> u64 {
        self.runs.iter().map(|r| r.dirty as u64).sum()
    }

    /// True when nothing needs writing.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Append another eviction's work.
    pub fn absorb(&mut self, other: Eviction) {
        self.runs.extend(other.runs);
        self.clean_dropped += other.clean_dropped;
    }
}

/// Build contiguous [`FlushRun`]s from a sorted list of (lpn, dirty) pages.
pub(crate) fn runs_from_sorted(pages: &[(u64, bool)]) -> Vec<FlushRun> {
    let mut out = Vec::new();
    let mut iter = pages.iter().copied();
    let Some((first, first_dirty)) = iter.next() else {
        return out;
    };
    let mut run = FlushRun {
        lpn: first,
        pages: 1,
        dirty: u32::from(first_dirty),
    };
    for (lpn, dirty) in iter {
        debug_assert!(lpn > run.end_lpn() - 1, "pages must be sorted and unique");
        if lpn == run.end_lpn() {
            run.pages += 1;
            run.dirty += u32::from(dirty);
        } else {
            out.push(run);
            run = FlushRun {
                lpn,
                pages: 1,
                dirty: u32::from(dirty),
            };
        }
    }
    out.push(run);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_split_at_gaps() {
        let pages = [(0, true), (1, false), (2, true), (5, true), (6, false)];
        let runs = runs_from_sorted(&pages);
        assert_eq!(
            runs,
            vec![
                FlushRun {
                    lpn: 0,
                    pages: 3,
                    dirty: 2
                },
                FlushRun {
                    lpn: 5,
                    pages: 2,
                    dirty: 1
                },
            ]
        );
    }

    #[test]
    fn empty_input_empty_runs() {
        assert!(runs_from_sorted(&[]).is_empty());
    }

    #[test]
    fn single_page_run() {
        let runs = runs_from_sorted(&[(9, false)]);
        assert_eq!(
            runs,
            vec![FlushRun {
                lpn: 9,
                pages: 1,
                dirty: 0
            }]
        );
        assert_eq!(runs[0].end_lpn(), 10);
    }

    #[test]
    fn eviction_totals() {
        let mut e = Eviction::default();
        assert!(e.is_empty());
        e.runs.push(FlushRun {
            lpn: 0,
            pages: 4,
            dirty: 3,
        });
        e.clean_dropped = 2;
        let mut other = Eviction::default();
        other.runs.push(FlushRun {
            lpn: 10,
            pages: 1,
            dirty: 1,
        });
        other.clean_dropped = 1;
        e.absorb(other);
        assert_eq!(e.flushed_pages(), 5);
        assert_eq!(e.dirty_pages(), 4);
        assert_eq!(e.clean_dropped, 3);
    }
}
