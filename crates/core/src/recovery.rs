//! Heartbeat-based failure detection — the "Monitor & Recovery" module of
//! Figure 3 and Section III.D.
//!
//! "Availability of peer server is monitored by sending Heartbeat message
//! periodically." The monitor is a small deterministic state machine shared
//! by the simulation pair and the real cluster implementation
//! (`fc-cluster`): beats arrive, the poller watches the gap since the last
//! beat, and transitions surface as [`PeerEvent`]s.

use fc_simkit::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Observed peer health.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PeerState {
    /// Beats arriving on schedule.
    Healthy,
    /// A beat is overdue (more than one interval late) but within timeout.
    Suspected,
    /// No beat for the full timeout: the peer is declared failed, triggering
    /// remote-failure handling.
    Failed,
}

/// A state transition worth acting on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PeerEvent {
    /// Healthy → Suspected.
    Suspected,
    /// Suspected/Healthy → Failed.
    Failed,
    /// Failed → Healthy (a beat arrived after a declared failure).
    Recovered,
}

/// Heartbeat monitor for one peer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeartbeatMonitor {
    interval: SimDuration,
    timeout: SimDuration,
    last_beat: SimTime,
    state: PeerState,
}

impl HeartbeatMonitor {
    /// Create a monitor. `timeout` must be at least `interval`; beats more
    /// than one `interval` late raise suspicion, beats more than `timeout`
    /// late declare failure.
    pub fn new(interval: SimDuration, timeout: SimDuration) -> Self {
        assert!(!interval.is_zero(), "heartbeat interval must be positive");
        assert!(timeout >= interval, "timeout below heartbeat interval");
        HeartbeatMonitor {
            interval,
            timeout,
            last_beat: SimTime::ZERO,
            state: PeerState::Healthy,
        }
    }

    /// The paper's setting scaled for simulation: 1 s beats, 5 s timeout.
    pub fn default_profile() -> Self {
        HeartbeatMonitor::new(SimDuration::from_secs(1), SimDuration::from_secs(5))
    }

    /// Current state.
    pub fn state(&self) -> PeerState {
        self.state
    }

    /// Heartbeat interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// A beat arrived at `now`.
    pub fn on_beat(&mut self, now: SimTime) -> Option<PeerEvent> {
        self.last_beat = self.last_beat.max(now);
        match self.state {
            PeerState::Failed => {
                self.state = PeerState::Healthy;
                Some(PeerEvent::Recovered)
            }
            PeerState::Suspected => {
                self.state = PeerState::Healthy;
                None
            }
            PeerState::Healthy => None,
        }
    }

    /// Re-evaluate at `now`; returns a transition if one fired.
    pub fn poll(&mut self, now: SimTime) -> Option<PeerEvent> {
        let silence = now.saturating_since(self.last_beat);
        let next = if silence >= self.timeout {
            PeerState::Failed
        } else if silence > self.interval {
            PeerState::Suspected
        } else {
            PeerState::Healthy
        };
        let event = match (self.state, next) {
            (PeerState::Healthy, PeerState::Suspected) => Some(PeerEvent::Suspected),
            (PeerState::Healthy, PeerState::Failed)
            | (PeerState::Suspected, PeerState::Failed) => Some(PeerEvent::Failed),
            _ => None,
        };
        // poll() never un-fails a peer — only an actual beat does.
        if !(self.state == PeerState::Failed && next != PeerState::Failed) {
            self.state = next;
        }
        event
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mon() -> HeartbeatMonitor {
        HeartbeatMonitor::new(SimDuration::from_millis(100), SimDuration::from_millis(500))
    }

    const AT: fn(u64) -> SimTime = SimTime::from_millis;

    #[test]
    fn healthy_while_beats_arrive() {
        let mut m = mon();
        for t in (0..10).map(|i| AT(i * 100)) {
            assert_eq!(m.on_beat(t), None);
            assert_eq!(m.poll(t), None);
            assert_eq!(m.state(), PeerState::Healthy);
        }
    }

    #[test]
    fn late_beat_raises_suspicion_then_recovers_silently() {
        let mut m = mon();
        m.on_beat(AT(0));
        assert_eq!(m.poll(AT(250)), Some(PeerEvent::Suspected));
        assert_eq!(m.state(), PeerState::Suspected);
        // A beat clears suspicion without a Recovered event (never failed).
        assert_eq!(m.on_beat(AT(260)), None);
        assert_eq!(m.state(), PeerState::Healthy);
    }

    #[test]
    fn timeout_declares_failure_once() {
        let mut m = mon();
        m.on_beat(AT(0));
        assert_eq!(m.poll(AT(600)), Some(PeerEvent::Failed));
        assert_eq!(m.state(), PeerState::Failed);
        // Polling again does not re-fire.
        assert_eq!(m.poll(AT(700)), None);
        assert_eq!(m.state(), PeerState::Failed);
    }

    #[test]
    fn beat_after_failure_recovers() {
        let mut m = mon();
        m.on_beat(AT(0));
        m.poll(AT(600));
        assert_eq!(m.on_beat(AT(650)), Some(PeerEvent::Recovered));
        assert_eq!(m.state(), PeerState::Healthy);
        assert_eq!(m.poll(AT(700)), None);
    }

    #[test]
    fn poll_does_not_resurrect_failed_peer() {
        let mut m = mon();
        m.on_beat(AT(0));
        m.poll(AT(600));
        // Even though last_beat math would say "suspected", a failed peer
        // stays failed until an actual beat.
        assert_eq!(m.poll(AT(601)), None);
        assert_eq!(m.state(), PeerState::Failed);
    }

    #[test]
    fn direct_healthy_to_failed_jump() {
        let mut m = mon();
        m.on_beat(AT(0));
        // One giant gap with no intermediate poll.
        assert_eq!(m.poll(AT(10_000)), Some(PeerEvent::Failed));
    }

    #[test]
    fn stale_beat_does_not_rewind_clock() {
        let mut m = mon();
        m.on_beat(AT(1000));
        m.on_beat(AT(400)); // out-of-order delivery
        assert_eq!(m.poll(AT(1050)), None);
        assert_eq!(m.state(), PeerState::Healthy);
    }

    #[test]
    #[should_panic(expected = "timeout below heartbeat interval")]
    fn invalid_timeout_panics() {
        HeartbeatMonitor::new(SimDuration::from_millis(100), SimDuration::from_millis(50));
    }

    #[test]
    fn silence_exactly_at_timeout_boundary_fails() {
        // `silence >= timeout` declares failure, so the boundary itself
        // (silence == timeout, here 500 ms on the nose) must fail.
        let mut m = mon();
        m.on_beat(AT(0));
        assert_eq!(m.poll(AT(500)), Some(PeerEvent::Failed));
        assert_eq!(m.state(), PeerState::Failed);
        // One tick earlier is only suspicion.
        let mut m = mon();
        m.on_beat(AT(0));
        assert_eq!(m.poll(AT(499)), Some(PeerEvent::Suspected));
        assert_eq!(m.state(), PeerState::Suspected);
    }

    #[test]
    fn silence_exactly_at_interval_boundary_stays_healthy() {
        // Suspicion needs silence *strictly greater* than one interval: a
        // beat that lands exactly one period after the last is on time.
        let mut m = mon();
        m.on_beat(AT(0));
        assert_eq!(m.poll(AT(100)), None);
        assert_eq!(m.state(), PeerState::Healthy);
        assert_eq!(m.poll(AT(101)), Some(PeerEvent::Suspected));
    }

    #[test]
    fn failed_recovered_suspected_cycle() {
        // A peer that dies, comes back, then starts lagging again must walk
        // the full Failed → Recovered → Suspected → Failed cycle with one
        // event per transition.
        let mut m = mon();
        m.on_beat(AT(0));
        assert_eq!(m.poll(AT(600)), Some(PeerEvent::Failed));
        assert_eq!(m.on_beat(AT(650)), Some(PeerEvent::Recovered));
        assert_eq!(m.state(), PeerState::Healthy);
        // Lagging again: suspicion fires anew after recovery…
        assert_eq!(m.poll(AT(900)), Some(PeerEvent::Suspected));
        // …and a second full silence re-declares failure.
        assert_eq!(m.poll(AT(1200)), Some(PeerEvent::Failed));
        assert_eq!(m.state(), PeerState::Failed);
        // The cycle is repeatable, not a one-shot.
        assert_eq!(m.on_beat(AT(1210)), Some(PeerEvent::Recovered));
        assert_eq!(m.poll(AT(1211)), None);
        assert_eq!(m.state(), PeerState::Healthy);
    }

    #[test]
    fn zero_gap_double_beat_is_harmless() {
        // Two beats with the same timestamp (burst delivery after a stall)
        // must not fire spurious events or disturb the clock.
        let mut m = mon();
        assert_eq!(m.on_beat(AT(300)), None);
        assert_eq!(m.on_beat(AT(300)), None);
        assert_eq!(m.state(), PeerState::Healthy);
        assert_eq!(m.poll(AT(400)), None);
        // Same at the recovery edge: only the first beat reports Recovered.
        let mut m = mon();
        m.on_beat(AT(0));
        m.poll(AT(600));
        assert_eq!(m.on_beat(AT(600)), Some(PeerEvent::Recovered));
        assert_eq!(m.on_beat(AT(600)), None);
    }

    #[test]
    fn beat_at_time_zero_counts() {
        // last_beat starts at SimTime::ZERO; a beat at t=0 is
        // indistinguishable — verify the monitor still behaves (fails after
        // the timeout, recovers on the next beat).
        let mut m = mon();
        assert_eq!(m.on_beat(SimTime::ZERO), None);
        assert_eq!(m.poll(AT(499)), Some(PeerEvent::Suspected));
        assert_eq!(m.poll(AT(500)), Some(PeerEvent::Failed));
        assert_eq!(m.on_beat(AT(500)), Some(PeerEvent::Recovered));
    }
}
