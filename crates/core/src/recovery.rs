//! Heartbeat-based failure detection — the "Monitor & Recovery" module of
//! Figure 3 and Section III.D.
//!
//! "Availability of peer server is monitored by sending Heartbeat message
//! periodically." The monitor is a small deterministic state machine shared
//! by the simulation pair and the real cluster implementation
//! (`fc-cluster`): beats arrive, the poller watches the gap since the last
//! beat, and transitions surface as [`PeerEvent`]s.

use fc_simkit::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Observed peer health.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PeerState {
    /// Beats arriving on schedule.
    Healthy,
    /// A beat is overdue (more than one interval late) but within timeout.
    Suspected,
    /// No beat for the full timeout: the peer is declared failed, triggering
    /// remote-failure handling.
    Failed,
}

/// A state transition worth acting on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PeerEvent {
    /// Healthy → Suspected.
    Suspected,
    /// Suspected/Healthy → Failed.
    Failed,
    /// Failed → Healthy (a beat arrived after a declared failure).
    Recovered,
}

/// Heartbeat monitor for one peer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeartbeatMonitor {
    interval: SimDuration,
    timeout: SimDuration,
    last_beat: SimTime,
    state: PeerState,
}

impl HeartbeatMonitor {
    /// Create a monitor. `timeout` must be at least `interval`; beats more
    /// than one `interval` late raise suspicion, beats more than `timeout`
    /// late declare failure.
    pub fn new(interval: SimDuration, timeout: SimDuration) -> Self {
        assert!(!interval.is_zero(), "heartbeat interval must be positive");
        assert!(timeout >= interval, "timeout below heartbeat interval");
        HeartbeatMonitor {
            interval,
            timeout,
            last_beat: SimTime::ZERO,
            state: PeerState::Healthy,
        }
    }

    /// The paper's setting scaled for simulation: 1 s beats, 5 s timeout.
    pub fn default_profile() -> Self {
        HeartbeatMonitor::new(SimDuration::from_secs(1), SimDuration::from_secs(5))
    }

    /// Current state.
    pub fn state(&self) -> PeerState {
        self.state
    }

    /// Heartbeat interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// A beat arrived at `now`.
    pub fn on_beat(&mut self, now: SimTime) -> Option<PeerEvent> {
        self.last_beat = self.last_beat.max(now);
        match self.state {
            PeerState::Failed => {
                self.state = PeerState::Healthy;
                Some(PeerEvent::Recovered)
            }
            PeerState::Suspected => {
                self.state = PeerState::Healthy;
                None
            }
            PeerState::Healthy => None,
        }
    }

    /// Re-evaluate at `now`; returns a transition if one fired.
    pub fn poll(&mut self, now: SimTime) -> Option<PeerEvent> {
        let silence = now.saturating_since(self.last_beat);
        let next = if silence >= self.timeout {
            PeerState::Failed
        } else if silence > self.interval {
            PeerState::Suspected
        } else {
            PeerState::Healthy
        };
        let event = match (self.state, next) {
            (PeerState::Healthy, PeerState::Suspected) => Some(PeerEvent::Suspected),
            (PeerState::Healthy, PeerState::Failed) | (PeerState::Suspected, PeerState::Failed) => {
                Some(PeerEvent::Failed)
            }
            _ => None,
        };
        // poll() never un-fails a peer — only an actual beat does.
        if !(self.state == PeerState::Failed && next != PeerState::Failed) {
            self.state = next;
        }
        event
    }
}

/// Where a node stands relative to its cooperative partner.
///
/// The lifecycle replaces the old one-way `degraded: bool`: instead of a
/// latch that only trips, it is a loop — `Paired → Suspect → Solo →
/// Resyncing → Paired` — so a node that loses its peer takes over the
/// peer's pages, serves solo, and re-enters the pair when the peer returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PairState {
    /// Replication is live; acked writes are redundant on the peer.
    Paired,
    /// The peer's beat is overdue. Replication continues optimistically but
    /// the node is one timeout away from going solo.
    Suspect,
    /// The peer is gone (declared failed, link severed, or acks exhausted).
    /// Writes go through to the local SSD and into the catch-up journal.
    Solo,
    /// The peer is back and the journal is streaming over; writes still go
    /// through locally until the cut-over barrier drains the journal.
    Resyncing,
}

impl PairState {
    /// Lower-case label used in obs events.
    pub fn name(self) -> &'static str {
        match self {
            PairState::Paired => "paired",
            PairState::Suspect => "suspect",
            PairState::Solo => "solo",
            PairState::Resyncing => "resyncing",
        }
    }

    /// True when writes must bypass replication (write-through locally).
    pub fn is_degraded(self) -> bool {
        matches!(self, PairState::Solo | PairState::Resyncing)
    }
}

/// One edge of the lifecycle graph, reported so callers can mirror it into
/// their observability stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifecycleTransition {
    /// State left.
    pub from: PairState,
    /// State entered.
    pub to: PairState,
    /// Static label naming the trigger (e.g. `"peer_failed"`).
    pub cause: &'static str,
}

/// The pair-lifecycle state machine, shared by the simulated pair
/// ([`crate::CoopServer`]) and the threaded cluster node (`fc-cluster`).
///
/// Transitions are total functions: an event that is illegal in the current
/// state returns `None` and changes nothing, which makes the machine robust
/// against racing signal sources (monitor poll vs. data-plane timeouts).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PairLifecycle {
    state: PairState,
    transitions: u64,
}

impl Default for PairLifecycle {
    fn default() -> Self {
        PairLifecycle::new()
    }
}

impl PairLifecycle {
    /// A fresh lifecycle starts `Paired` (matching a freshly spawned pair).
    pub fn new() -> Self {
        PairLifecycle {
            state: PairState::Paired,
            transitions: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> PairState {
        self.state
    }

    /// Transitions taken so far (each emitted edge counts once).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// True when writes must bypass replication.
    pub fn is_degraded(&self) -> bool {
        self.state.is_degraded()
    }

    fn go(&mut self, to: PairState, cause: &'static str) -> Option<LifecycleTransition> {
        if self.state == to {
            return None;
        }
        let tr = LifecycleTransition {
            from: self.state,
            to,
            cause,
        };
        self.state = to;
        self.transitions += 1;
        Some(tr)
    }

    /// Feed a [`HeartbeatMonitor`] event into the machine.
    pub fn on_peer_event(&mut self, ev: PeerEvent) -> Option<LifecycleTransition> {
        match (ev, self.state) {
            (PeerEvent::Suspected, PairState::Paired) => {
                self.go(PairState::Suspect, "peer_suspected")
            }
            (PeerEvent::Failed, PairState::Paired)
            | (PeerEvent::Failed, PairState::Suspect)
            | (PeerEvent::Failed, PairState::Resyncing) => self.go(PairState::Solo, "peer_failed"),
            (PeerEvent::Recovered, PairState::Solo) => {
                self.go(PairState::Resyncing, "peer_recovered")
            }
            _ => None,
        }
    }

    /// A beat arrived while merely suspicious: clear the suspicion.
    /// (From `Solo`, only a `Recovered` event or an explicit
    /// [`PairLifecycle::begin_resync`] rejoins — a beat alone is not enough,
    /// because solo entry may have been caused by data-plane failures the
    /// heartbeat path cannot see.)
    pub fn on_peer_healthy(&mut self) -> Option<LifecycleTransition> {
        if self.state == PairState::Suspect {
            self.go(PairState::Paired, "peer_healthy")
        } else {
            None
        }
    }

    /// Drop to `Solo` from any state — used for data-plane causes the
    /// monitor cannot see (ack timeout exhausted, transport disconnected)
    /// and for aborting a resync whose peer died again.
    pub fn force_solo(&mut self, cause: &'static str) -> Option<LifecycleTransition> {
        self.go(PairState::Solo, cause)
    }

    /// Start streaming the catch-up journal (`Solo → Resyncing`).
    pub fn begin_resync(&mut self, cause: &'static str) -> Option<LifecycleTransition> {
        if self.state == PairState::Solo {
            self.go(PairState::Resyncing, cause)
        } else {
            None
        }
    }

    /// Cut-over barrier passed: the journal is drained and acknowledged
    /// (`Resyncing → Paired`).
    pub fn resync_complete(&mut self) -> Option<LifecycleTransition> {
        if self.state == PairState::Resyncing {
            self.go(PairState::Paired, "resync_complete")
        } else {
            None
        }
    }

    /// The resync stream died (`Resyncing → Solo`).
    pub fn resync_failed(&mut self, cause: &'static str) -> Option<LifecycleTransition> {
        if self.state == PairState::Resyncing {
            self.go(PairState::Solo, cause)
        } else {
            None
        }
    }

    /// Walk back to `Paired` through whatever states remain, returning every
    /// edge taken. The simulated pair uses this where resync is modelled as
    /// instantaneous (the flush already happened synchronously); the
    /// threaded node instead drives `begin_resync`/`resync_complete`
    /// batch-by-batch.
    pub fn rejoin(&mut self, cause: &'static str) -> Vec<LifecycleTransition> {
        let mut edges = Vec::new();
        if let Some(tr) = self.on_peer_healthy() {
            edges.push(tr);
        }
        if let Some(tr) = self.begin_resync(cause) {
            edges.push(tr);
        }
        if let Some(tr) = self.resync_complete() {
            edges.push(tr);
        }
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mon() -> HeartbeatMonitor {
        HeartbeatMonitor::new(SimDuration::from_millis(100), SimDuration::from_millis(500))
    }

    const AT: fn(u64) -> SimTime = SimTime::from_millis;

    #[test]
    fn healthy_while_beats_arrive() {
        let mut m = mon();
        for t in (0..10).map(|i| AT(i * 100)) {
            assert_eq!(m.on_beat(t), None);
            assert_eq!(m.poll(t), None);
            assert_eq!(m.state(), PeerState::Healthy);
        }
    }

    #[test]
    fn late_beat_raises_suspicion_then_recovers_silently() {
        let mut m = mon();
        m.on_beat(AT(0));
        assert_eq!(m.poll(AT(250)), Some(PeerEvent::Suspected));
        assert_eq!(m.state(), PeerState::Suspected);
        // A beat clears suspicion without a Recovered event (never failed).
        assert_eq!(m.on_beat(AT(260)), None);
        assert_eq!(m.state(), PeerState::Healthy);
    }

    #[test]
    fn timeout_declares_failure_once() {
        let mut m = mon();
        m.on_beat(AT(0));
        assert_eq!(m.poll(AT(600)), Some(PeerEvent::Failed));
        assert_eq!(m.state(), PeerState::Failed);
        // Polling again does not re-fire.
        assert_eq!(m.poll(AT(700)), None);
        assert_eq!(m.state(), PeerState::Failed);
    }

    #[test]
    fn beat_after_failure_recovers() {
        let mut m = mon();
        m.on_beat(AT(0));
        m.poll(AT(600));
        assert_eq!(m.on_beat(AT(650)), Some(PeerEvent::Recovered));
        assert_eq!(m.state(), PeerState::Healthy);
        assert_eq!(m.poll(AT(700)), None);
    }

    #[test]
    fn poll_does_not_resurrect_failed_peer() {
        let mut m = mon();
        m.on_beat(AT(0));
        m.poll(AT(600));
        // Even though last_beat math would say "suspected", a failed peer
        // stays failed until an actual beat.
        assert_eq!(m.poll(AT(601)), None);
        assert_eq!(m.state(), PeerState::Failed);
    }

    #[test]
    fn direct_healthy_to_failed_jump() {
        let mut m = mon();
        m.on_beat(AT(0));
        // One giant gap with no intermediate poll.
        assert_eq!(m.poll(AT(10_000)), Some(PeerEvent::Failed));
    }

    #[test]
    fn stale_beat_does_not_rewind_clock() {
        let mut m = mon();
        m.on_beat(AT(1000));
        m.on_beat(AT(400)); // out-of-order delivery
        assert_eq!(m.poll(AT(1050)), None);
        assert_eq!(m.state(), PeerState::Healthy);
    }

    #[test]
    #[should_panic(expected = "timeout below heartbeat interval")]
    fn invalid_timeout_panics() {
        HeartbeatMonitor::new(SimDuration::from_millis(100), SimDuration::from_millis(50));
    }

    #[test]
    fn silence_exactly_at_timeout_boundary_fails() {
        // `silence >= timeout` declares failure, so the boundary itself
        // (silence == timeout, here 500 ms on the nose) must fail.
        let mut m = mon();
        m.on_beat(AT(0));
        assert_eq!(m.poll(AT(500)), Some(PeerEvent::Failed));
        assert_eq!(m.state(), PeerState::Failed);
        // One tick earlier is only suspicion.
        let mut m = mon();
        m.on_beat(AT(0));
        assert_eq!(m.poll(AT(499)), Some(PeerEvent::Suspected));
        assert_eq!(m.state(), PeerState::Suspected);
    }

    #[test]
    fn silence_exactly_at_interval_boundary_stays_healthy() {
        // Suspicion needs silence *strictly greater* than one interval: a
        // beat that lands exactly one period after the last is on time.
        let mut m = mon();
        m.on_beat(AT(0));
        assert_eq!(m.poll(AT(100)), None);
        assert_eq!(m.state(), PeerState::Healthy);
        assert_eq!(m.poll(AT(101)), Some(PeerEvent::Suspected));
    }

    #[test]
    fn failed_recovered_suspected_cycle() {
        // A peer that dies, comes back, then starts lagging again must walk
        // the full Failed → Recovered → Suspected → Failed cycle with one
        // event per transition.
        let mut m = mon();
        m.on_beat(AT(0));
        assert_eq!(m.poll(AT(600)), Some(PeerEvent::Failed));
        assert_eq!(m.on_beat(AT(650)), Some(PeerEvent::Recovered));
        assert_eq!(m.state(), PeerState::Healthy);
        // Lagging again: suspicion fires anew after recovery…
        assert_eq!(m.poll(AT(900)), Some(PeerEvent::Suspected));
        // …and a second full silence re-declares failure.
        assert_eq!(m.poll(AT(1200)), Some(PeerEvent::Failed));
        assert_eq!(m.state(), PeerState::Failed);
        // The cycle is repeatable, not a one-shot.
        assert_eq!(m.on_beat(AT(1210)), Some(PeerEvent::Recovered));
        assert_eq!(m.poll(AT(1211)), None);
        assert_eq!(m.state(), PeerState::Healthy);
    }

    #[test]
    fn zero_gap_double_beat_is_harmless() {
        // Two beats with the same timestamp (burst delivery after a stall)
        // must not fire spurious events or disturb the clock.
        let mut m = mon();
        assert_eq!(m.on_beat(AT(300)), None);
        assert_eq!(m.on_beat(AT(300)), None);
        assert_eq!(m.state(), PeerState::Healthy);
        assert_eq!(m.poll(AT(400)), None);
        // Same at the recovery edge: only the first beat reports Recovered.
        let mut m = mon();
        m.on_beat(AT(0));
        m.poll(AT(600));
        assert_eq!(m.on_beat(AT(600)), Some(PeerEvent::Recovered));
        assert_eq!(m.on_beat(AT(600)), None);
    }

    #[test]
    fn beat_at_time_zero_counts() {
        // last_beat starts at SimTime::ZERO; a beat at t=0 is
        // indistinguishable — verify the monitor still behaves (fails after
        // the timeout, recovers on the next beat).
        let mut m = mon();
        assert_eq!(m.on_beat(SimTime::ZERO), None);
        assert_eq!(m.poll(AT(499)), Some(PeerEvent::Suspected));
        assert_eq!(m.poll(AT(500)), Some(PeerEvent::Failed));
        assert_eq!(m.on_beat(AT(500)), Some(PeerEvent::Recovered));
    }

    // ---- PairLifecycle -------------------------------------------------

    #[test]
    fn lifecycle_full_loop() {
        let mut l = PairLifecycle::new();
        assert_eq!(l.state(), PairState::Paired);
        assert!(!l.is_degraded());

        let tr = l.on_peer_event(PeerEvent::Suspected).unwrap();
        assert_eq!((tr.from, tr.to), (PairState::Paired, PairState::Suspect));
        assert!(!l.is_degraded());

        let tr = l.on_peer_event(PeerEvent::Failed).unwrap();
        assert_eq!((tr.from, tr.to), (PairState::Suspect, PairState::Solo));
        assert!(l.is_degraded());

        let tr = l.on_peer_event(PeerEvent::Recovered).unwrap();
        assert_eq!((tr.from, tr.to), (PairState::Solo, PairState::Resyncing));
        assert!(l.is_degraded(), "writes stay write-through during resync");

        let tr = l.resync_complete().unwrap();
        assert_eq!((tr.from, tr.to), (PairState::Resyncing, PairState::Paired));
        assert!(!l.is_degraded());
        assert_eq!(l.transitions(), 4);
    }

    #[test]
    fn lifecycle_suspicion_clears_on_healthy_beat() {
        let mut l = PairLifecycle::new();
        l.on_peer_event(PeerEvent::Suspected);
        let tr = l.on_peer_healthy().unwrap();
        assert_eq!((tr.from, tr.to), (PairState::Suspect, PairState::Paired));
        // A healthy beat alone never rescues Solo — only Recovered/resync.
        l.force_solo("ack_timeout");
        assert_eq!(l.on_peer_healthy(), None);
        assert_eq!(l.state(), PairState::Solo);
    }

    #[test]
    fn lifecycle_illegal_events_are_inert() {
        let mut l = PairLifecycle::new();
        // Recovered without ever failing: nothing happens.
        assert_eq!(l.on_peer_event(PeerEvent::Recovered), None);
        assert_eq!(l.resync_complete(), None);
        assert_eq!(l.begin_resync("x"), None);
        assert_eq!(l.state(), PairState::Paired);
        assert_eq!(l.transitions(), 0);
        // Suspected while already Solo: stays Solo.
        l.force_solo("disconnected");
        assert_eq!(l.on_peer_event(PeerEvent::Suspected), None);
        assert_eq!(l.state(), PairState::Solo);
    }

    #[test]
    fn lifecycle_peer_dies_again_mid_resync() {
        let mut l = PairLifecycle::new();
        l.force_solo("peer_failed");
        l.begin_resync("peer_recovered");
        let tr = l.on_peer_event(PeerEvent::Failed).unwrap();
        assert_eq!((tr.from, tr.to), (PairState::Resyncing, PairState::Solo));
        // And the stream-level failure path reports the same edge.
        l.begin_resync("peer_recovered");
        let tr = l.resync_failed("resync_ack_timeout").unwrap();
        assert_eq!((tr.from, tr.to), (PairState::Resyncing, PairState::Solo));
        assert_eq!(tr.cause, "resync_ack_timeout");
    }

    #[test]
    fn lifecycle_force_solo_is_idempotent() {
        let mut l = PairLifecycle::new();
        assert!(l.force_solo("a").is_some());
        assert!(l.force_solo("b").is_none());
        assert_eq!(l.transitions(), 1);
    }

    #[test]
    fn lifecycle_rejoin_returns_every_edge() {
        let mut l = PairLifecycle::new();
        assert!(l.rejoin("noop").is_empty());

        l.force_solo("peer_failed");
        let edges = l.rejoin("reconcile");
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0].to, PairState::Resyncing);
        assert_eq!(edges[1].to, PairState::Paired);
        assert_eq!(l.state(), PairState::Paired);

        // From Suspect, rejoin is the single healthy edge.
        l.on_peer_event(PeerEvent::Suspected);
        let edges = l.rejoin("beat");
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].to, PairState::Paired);
    }
}
