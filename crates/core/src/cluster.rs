//! A storage cluster: many servers organised as cooperative pairs.
//!
//! "Storage cluster is configured into cooperative pairs, in which each
//! server of the pair serves its own read/write requests, as well as remote
//! write requests from neighboring peer" (Section III.A). Pairs are mutually
//! independent — that is precisely what makes the design scale: adding
//! servers adds pairs, and no global coordination exists. [`Cluster`] holds
//! the pairs, replays per-server traces, and aggregates the fleet's metrics.

use crate::config::FlashCoopConfig;
use crate::pair::{CoopPair, Injection};
use crate::server::CoopServer;
use fc_simkit::SimDuration;
use fc_trace::Trace;

/// A cluster of `2 × pairs` cooperative servers.
pub struct Cluster {
    pairs: Vec<CoopPair>,
}

/// Aggregate metrics across the fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// Servers in the cluster.
    pub servers: usize,
    /// Requests served fleet-wide.
    pub requests: u64,
    /// Mean response time across all requests of all servers.
    pub avg_response: SimDuration,
    /// Total block erases across all SSDs.
    pub total_erases: u64,
    /// Total pages replicated between peers.
    pub replicated_pages: u64,
    /// Acknowledged-but-unrecoverable pages fleet-wide (must be 0).
    pub unrecoverable: usize,
}

impl Cluster {
    /// Build a cluster from per-pair configurations.
    pub fn new(pair_configs: Vec<(FlashCoopConfig, FlashCoopConfig)>, dynamic_alloc: bool) -> Self {
        assert!(
            !pair_configs.is_empty(),
            "a cluster needs at least one pair"
        );
        Cluster {
            pairs: pair_configs
                .into_iter()
                .map(|(a, b)| CoopPair::new(a, b, dynamic_alloc))
                .collect(),
        }
    }

    /// Build `n` identical pairs.
    pub fn homogeneous(cfg: FlashCoopConfig, pairs: usize, dynamic_alloc: bool) -> Self {
        Cluster::new(
            (0..pairs.max(1))
                .map(|_| (cfg.clone(), cfg.clone()))
                .collect(),
            dynamic_alloc,
        )
    }

    /// Number of pairs.
    pub fn pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.pairs.len() * 2
    }

    /// One pair.
    pub fn pair(&self, i: usize) -> &CoopPair {
        &self.pairs[i]
    }

    /// Mutable access to one pair (failure injection, report assembly).
    pub fn pair_mut(&mut self, i: usize) -> &mut CoopPair {
        &mut self.pairs[i]
    }

    /// Server `s` (pairs are laid out as `[0,1], [2,3], …`).
    pub fn server(&self, s: usize) -> &CoopServer {
        self.pairs[s / 2].server(s % 2)
    }

    /// Replay one trace per server (`traces.len()` must equal
    /// [`Cluster::servers`]), with optional per-pair failure injections.
    /// Pairs are independent, so they replay in sequence deterministically.
    pub fn replay(&mut self, traces: &[&Trace], injections: &[Vec<Injection>]) {
        assert_eq!(
            traces.len(),
            self.servers(),
            "need one trace per server ({} != {})",
            traces.len(),
            self.servers()
        );
        for (i, pair) in self.pairs.iter_mut().enumerate() {
            let empty = Vec::new();
            let inj = injections.get(i).unwrap_or(&empty);
            pair.replay([traces[2 * i], traces[2 * i + 1]], inj);
        }
    }

    /// Aggregate the fleet's metrics.
    pub fn report(&mut self) -> ClusterReport {
        let mut requests = 0u64;
        let mut weighted_ns = 0u128;
        let mut total_erases = 0u64;
        let mut replicated = 0u64;
        let mut unrecoverable = 0usize;
        for pair in &mut self.pairs {
            unrecoverable += pair.unrecoverable().len();
            for i in 0..2 {
                let erases = pair.server(i).ssd().erases_since_reset();
                let m = pair.server(i).metrics();
                let n = m.response.count();
                requests += n;
                weighted_ns += m.response.mean().as_nanos() as u128 * n as u128;
                total_erases += erases;
                replicated += m.replicated_pages;
            }
        }
        ClusterReport {
            servers: self.servers(),
            requests,
            avg_response: if requests == 0 {
                SimDuration::ZERO
            } else {
                SimDuration::from_nanos((weighted_ns / requests as u128) as u64)
            },
            total_erases,
            replicated_pages: replicated,
            unrecoverable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicyKind;
    use crate::pair::PairEvent;
    use crate::Scheme;
    use fc_simkit::{DetRng, SimTime};
    use fc_ssd::FtlKind;
    use fc_trace::{IoRequest, Op};

    fn cfg() -> FlashCoopConfig {
        let mut c = FlashCoopConfig::tiny(FtlKind::PageLevel, PolicyKind::Lar);
        c.buffer_pages = 32;
        c
    }

    fn trace(pages: u64, n: usize, seed: u64) -> Trace {
        let mut rng = DetRng::new(seed);
        let mut t = Trace::new(format!("t{seed}"));
        let mut now = SimTime::ZERO;
        for _ in 0..n {
            now += SimDuration::from_millis(10 + rng.below(10));
            let op = if rng.chance(0.8) { Op::Write } else { Op::Read };
            t.push(IoRequest {
                at: now,
                lpn: rng.below(pages - 2),
                pages: 1,
                op,
            });
        }
        t
    }

    fn device_pages() -> u64 {
        CoopServer::new(cfg(), Scheme::Baseline)
            .ssd()
            .logical_pages()
    }

    #[test]
    fn three_pair_cluster_serves_all_servers() {
        let pages = device_pages();
        let mut cluster = Cluster::homogeneous(cfg(), 3, false);
        assert_eq!(cluster.servers(), 6);
        let traces: Vec<Trace> = (0..6).map(|i| trace(pages, 200, i as u64)).collect();
        let refs: Vec<&Trace> = traces.iter().collect();
        cluster.replay(&refs, &[]);
        let report = cluster.report();
        assert_eq!(report.requests, 6 * 200);
        assert_eq!(report.unrecoverable, 0);
        assert!(report.replicated_pages > 0);
        assert!(report.avg_response > SimDuration::ZERO);
        for s in 0..6 {
            assert!(cluster.server(s).metrics().response.count() > 0);
        }
    }

    #[test]
    fn failures_stay_contained_to_their_pair() {
        let pages = device_pages();
        let mut cluster = Cluster::homogeneous(cfg(), 2, false);
        let traces: Vec<Trace> = (0..4).map(|i| trace(pages, 600, 10 + i as u64)).collect();
        let refs: Vec<&Trace> = traces.iter().collect();
        // Crash server 0 of pair 0 early enough that the survivor's 5 s
        // heartbeat timeout fires within the trace; pair 1 untouched.
        let crash_at = traces[0].requests[50].at;
        let injections = vec![
            vec![Injection {
                at: crash_at,
                event: PairEvent::Crash(0),
            }],
            vec![],
        ];
        cluster.replay(&refs, &injections);
        assert!(!cluster.pair(0).is_alive(0));
        assert!(cluster.pair(1).is_alive(0) && cluster.pair(1).is_alive(1));
        // The degraded pair still lost nothing, and pair 1 never degraded.
        assert_eq!(cluster.report().unrecoverable, 0);
        assert!(!cluster.pair(1).server(0).is_degraded());
        assert!(cluster.pair(0).server(1).is_degraded());
    }

    #[test]
    #[should_panic(expected = "need one trace per server")]
    fn trace_count_must_match_servers() {
        let pages = device_pages();
        let mut cluster = Cluster::homogeneous(cfg(), 2, false);
        let t = trace(pages, 10, 1);
        cluster.replay(&[&t], &[]);
    }

    #[test]
    fn heterogeneous_pairs_are_allowed() {
        let mut big = cfg();
        big.buffer_pages = 64;
        let cluster = Cluster::new(vec![(cfg(), big)], false);
        assert_eq!(cluster.pairs(), 1);
        // "the size of the remote buffer in each storage server can be
        // different" — construction alone must accept asymmetric pairs.
        assert_eq!(cluster.server(0).buffer().capacity() * 2, 32);
        assert_eq!(cluster.server(1).buffer().capacity() * 2, 64);
    }
}
