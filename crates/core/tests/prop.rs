//! Property-based tests for the cooperative buffer.
//!
//! Model-based checking: the buffer is driven with arbitrary operation
//! sequences while a shadow model tracks which pages *must* be dirty; after
//! every step the buffer and model agree, capacity holds, and flush runs are
//! well-formed (contiguous, within one logical block, dirty counts sane).

use flashcoop::policy::Eviction;
use flashcoop::{BufferManager, PolicyKind};
use proptest::prelude::*;
use std::collections::HashSet;

const PPB: u32 = 8;
const SPACE: u64 = 512;

#[derive(Debug, Clone, Copy)]
enum BufOp {
    Write { lpn: u64, pages: u32 },
    ReadAndFill { lpn: u64, pages: u32 },
    Drain,
    Resize { capacity: usize },
    Discard { lpn: u64, pages: u32 },
}

fn op_strategy() -> impl Strategy<Value = BufOp> {
    prop_oneof![
        4 => (0..SPACE - 8, 1u32..8).prop_map(|(lpn, pages)| BufOp::Write { lpn, pages }),
        2 => (0..SPACE - 8, 1u32..8).prop_map(|(lpn, pages)| BufOp::ReadAndFill { lpn, pages }),
        1 => Just(BufOp::Drain),
        1 => (4usize..96).prop_map(|capacity| BufOp::Resize { capacity }),
        1 => (0..SPACE - 8, 1u32..8).prop_map(|(lpn, pages)| BufOp::Discard { lpn, pages }),
    ]
}

/// Apply an eviction to the shadow dirty-set: flushed pages are no longer
/// required to be dirty in the buffer.
fn absorb_flush(model_dirty: &mut HashSet<u64>, ev: &Eviction) {
    for run in &ev.runs {
        for i in 0..run.pages as u64 {
            model_dirty.remove(&(run.lpn + i));
        }
    }
}

fn check_eviction_well_formed(ev: &Eviction) -> Result<(), TestCaseError> {
    for run in &ev.runs {
        prop_assert!(run.pages >= 1);
        prop_assert!(run.dirty <= run.pages);
        // A run never crosses a logical-block boundary (flushes are
        // per-block, Section III.B.1).
        let first_block = run.lpn / PPB as u64;
        let last_block = (run.end_lpn() - 1) / PPB as u64;
        prop_assert_eq!(
            first_block,
            last_block,
            "run crosses block boundary: {:?}",
            run
        );
    }
    Ok(())
}

fn run_model(policy: PolicyKind, capacity: usize, ops: &[BufOp]) -> Result<(), TestCaseError> {
    let mut buf = BufferManager::new(policy, capacity, PPB, true);
    let mut model_dirty: HashSet<u64> = HashSet::new();

    for op in ops {
        match *op {
            BufOp::Write { lpn, pages } => {
                for i in 0..pages as u64 {
                    model_dirty.insert(lpn + i);
                }
                let ev = buf.write(lpn, pages);
                check_eviction_well_formed(&ev)?;
                absorb_flush(&mut model_dirty, &ev);
            }
            BufOp::ReadAndFill { lpn, pages } => {
                let segments = buf.read(lpn, pages);
                // Segments must partition the request exactly.
                let mut cursor = lpn;
                for seg in &segments {
                    prop_assert_eq!(seg.lpn, cursor);
                    cursor += seg.pages as u64;
                }
                prop_assert_eq!(cursor, lpn + pages as u64);
                for seg in segments {
                    if !seg.hit {
                        let ev = buf.insert_clean(seg.lpn, seg.pages);
                        check_eviction_well_formed(&ev)?;
                        absorb_flush(&mut model_dirty, &ev);
                    }
                }
            }
            BufOp::Drain => {
                let ev = buf.drain_dirty();
                check_eviction_well_formed(&ev)?;
                absorb_flush(&mut model_dirty, &ev);
                prop_assert_eq!(buf.dirty(), 0);
            }
            BufOp::Resize { capacity } => {
                let ev = buf.set_capacity(capacity);
                check_eviction_well_formed(&ev)?;
                absorb_flush(&mut model_dirty, &ev);
            }
            BufOp::Discard { lpn, pages } => {
                buf.discard(lpn, pages);
                for i in 0..pages as u64 {
                    model_dirty.remove(&(lpn + i));
                }
            }
        }
        // Core invariants after every operation:
        prop_assert!(buf.resident() <= buf.capacity(), "over capacity");
        prop_assert!(buf.dirty() <= buf.resident());
        // Durability: every page the model still considers dirty *must* be
        // dirty-resident (it was never flushed) — the buffer may hold MORE
        // dirty pages than the model requires only if a flushed page was
        // rewritten, which the model tracks, so the sets match exactly.
        for &lpn in &model_dirty {
            prop_assert_eq!(
                buf.lookup(lpn),
                Some(true),
                "page {} should be dirty-resident",
                lpn
            );
        }
        prop_assert_eq!(buf.dirty(), model_dirty.len(), "dirty count mismatch");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn lar_buffer_never_loses_dirty_pages(
        capacity in 8usize..64,
        ops in prop::collection::vec(op_strategy(), 1..120),
    ) {
        run_model(PolicyKind::Lar, capacity, &ops)?;
    }

    #[test]
    fn lru_buffer_never_loses_dirty_pages(
        capacity in 8usize..64,
        ops in prop::collection::vec(op_strategy(), 1..120),
    ) {
        run_model(PolicyKind::Lru, capacity, &ops)?;
    }

    #[test]
    fn lfu_buffer_never_loses_dirty_pages(
        capacity in 8usize..64,
        ops in prop::collection::vec(op_strategy(), 1..120),
    ) {
        run_model(PolicyKind::Lfu, capacity, &ops)?;
    }

    /// Hit accounting is conserved: hits + misses == pages touched.
    #[test]
    fn hit_accounting_conserved(ops in prop::collection::vec((0..SPACE - 8, 1u32..8), 1..80)) {
        let mut buf = BufferManager::new(PolicyKind::Lar, 32, PPB, true);
        let mut touched = 0u64;
        for (lpn, pages) in ops {
            buf.write(lpn, pages);
            touched += pages as u64;
        }
        let s = buf.stats();
        prop_assert_eq!(s.page_hits + s.page_misses, touched);
    }
}
