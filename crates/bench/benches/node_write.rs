//! Hot-path microbench: `Node::write` (single page) and `Node::write_run`
//! (32-page run) over an in-memory pair, pipelined vs. the legacy
//! stop-and-wait replication path.
//!
//! Compile-checked in CI via `cargo bench --no-run`; run locally with
//! `cargo bench --bench node_write` to compare before touching the write
//! path. The interesting ratio is `write_run/legacy` over
//! `write_run/pipelined`: a run is O(runs) wire frames pipelined but
//! O(pages) blocking round trips legacy.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use fc_cluster::{mem_pair, shared_backend, MemBackend, Node, NodeConfig};

const RUN_PAGES: usize = 32;
const PAGE_BYTES: usize = 512;
/// Rotate writes through this many lpns — inside the buffer and credit
/// pools below, so the steady state replicates every page instead of
/// degrading to write-through.
const LPN_WINDOW: u64 = 2048;

fn pair(legacy: bool) -> (Node, Node) {
    let cfg = |id: u8| {
        let mut c = NodeConfig::test_profile(id);
        c.buffer_pages = 8192;
        c.remote_capacity = 16384;
        c.repl_batch_pages = RUN_PAGES;
        c.legacy_repl = legacy;
        c
    };
    let (ta, tb) = mem_pair();
    let backend = shared_backend(MemBackend::default());
    let a = Node::spawn(cfg(0), ta, backend.clone());
    let b = Node::spawn(cfg(1), tb, backend);
    (a, b)
}

fn page(i: u64) -> Bytes {
    let mut v = vec![0u8; PAGE_BYTES];
    v[..8].copy_from_slice(&i.to_le_bytes());
    Bytes::from(v)
}

fn bench_single_page(c: &mut Criterion) {
    let mut g = c.benchmark_group("node_write/single_page");
    g.sample_size(400);
    for (name, legacy) in [("pipelined", false), ("legacy", true)] {
        let (a, _b) = pair(legacy);
        let data = page(7);
        let mut lpn = 0u64;
        g.bench_function(name, |bench| {
            bench.iter(|| {
                lpn = (lpn + 1) % LPN_WINDOW;
                a.write(lpn, &data)
            })
        });
    }
    g.finish();
}

fn bench_write_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("node_write/run_32_pages");
    g.sample_size(100);
    for (name, legacy) in [("pipelined", false), ("legacy", true)] {
        let (a, _b) = pair(legacy);
        let pages: Vec<Bytes> = (0..RUN_PAGES as u64).map(page).collect();
        let mut base = 0u64;
        g.bench_function(name, |bench| {
            bench.iter(|| {
                base = (base + RUN_PAGES as u64) % LPN_WINDOW;
                a.write_run(0, base, &pages)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_single_page, bench_write_run);
criterion_main!(benches);
