//! Figure 6 bench: full trace replay per scheme on BAST (the figure's
//! headline panel). `repro fig6` prints the actual table.

mod common;

use common::{bench_cfg, bench_trace};
use criterion::{criterion_group, criterion_main, Criterion};
use fc_ssd::FtlKind;
use flashcoop::{replay, PolicyKind, Scheme};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_response_time");
    group.sample_size(10);
    let trace = bench_trace(1_500, 3);

    for scheme in Scheme::ALL {
        let policy = match scheme {
            Scheme::FlashCoop(p) => p,
            Scheme::Baseline => PolicyKind::Lar,
        };
        let cfg = bench_cfg(FtlKind::Bast, policy);
        group.bench_function(scheme.name().replace(' ', "_"), |b| {
            b.iter(|| black_box(replay(&trace, &cfg, scheme, None, 3)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
