//! Figure 8 bench: the buffer's flush-planning hot path — the machinery that
//! shapes the write-length distribution. Per policy: a write storm with
//! evictions and the resulting run construction. `repro fig8` prints the
//! actual CDFs.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use fc_simkit::DetRng;
use flashcoop::{BufferManager, PolicyKind};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_write_length");
    group.sample_size(10);

    for policy in PolicyKind::ALL {
        group.bench_function(format!("{}_eviction_storm", policy.name()), |b| {
            b.iter(|| {
                let mut buf = BufferManager::new(policy, 512, 64, true);
                let mut rng = DetRng::new(9);
                let mut flushed = 0u64;
                for _ in 0..2_000 {
                    let lpn = rng.below(16 * 1024);
                    let ev = buf.write(lpn, 1);
                    flushed += ev.flushed_pages();
                }
                black_box(flushed)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
