//! Table III bench: the buffer's hit/lookup path across policies and sizes.
//! `repro table3` prints the actual hit-ratio table.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use fc_simkit::rng::Zipf;
use fc_simkit::DetRng;
use flashcoop::{BufferManager, PolicyKind};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_hit_ratio");
    group.sample_size(10);

    for policy in PolicyKind::ALL {
        for capacity in [256usize, 1024] {
            group.bench_function(format!("{}_{}pages", policy.name(), capacity), |b| {
                b.iter(|| {
                    let mut buf = BufferManager::new(policy, capacity, 64, true);
                    let mut rng = DetRng::new(13);
                    let zipf = Zipf::new(256, 0.95);
                    for _ in 0..3_000 {
                        let block = zipf.sample(&mut rng);
                        let lpn = block * 64 + rng.below(64);
                        if rng.chance(0.9) {
                            buf.write(lpn, 1);
                        } else {
                            buf.read(lpn, 1);
                        }
                    }
                    black_box(buf.stats().hit_ratio())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
