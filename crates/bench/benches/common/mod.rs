//! Shared setup for the criterion benches: a reduced device and workload so
//! each iteration stays in the millisecond range. The benches measure the
//! simulator's throughput on each experiment's inner loop; the actual
//! figures/tables are produced by the `repro` binary at full scale.
#![allow(dead_code)]

use fc_ssd::{FtlConfig, FtlKind, Geometry, SsdConfig, TimingParams};
use fc_trace::{SyntheticSpec, Trace};
use flashcoop::{FlashCoopConfig, PolicyKind};

/// 32 MiB device with Table II page/block shape.
pub fn bench_device(ftl: FtlKind) -> SsdConfig {
    SsdConfig {
        geometry: Geometry {
            page_bytes: 4096,
            pages_per_block: 64,
            blocks_per_plane: 32,
            planes_per_die: 4,
            dies: 1,
        },
        timing: TimingParams::table2(),
        ftl,
        ftl_config: FtlConfig {
            log_blocks: 8,
            spare_fraction: 0.15,
            gc_high_watermark: 8,
            gc_low_watermark: 4,
            wear_aware_alloc: true,
            cmt_entries: 8192,
        },
    }
}

/// FlashCoop config over the bench device.
pub fn bench_cfg(ftl: FtlKind, policy: PolicyKind) -> FlashCoopConfig {
    let mut c = FlashCoopConfig::evaluation(ftl, policy);
    c.ssd = bench_device(ftl);
    c.buffer_pages = 512;
    c
}

/// A small Fin1-shaped trace fitting the bench device.
pub fn bench_trace(requests: usize, seed: u64) -> Trace {
    let mut spec = SyntheticSpec::fin1(4 * 1024);
    spec.requests = requests;
    spec.generate(seed)
}
