//! Figure 9 bench: a cooperative-pair replay with the dynamic allocation
//! loop enabled. `repro fig9` prints the actual θ sweep.

mod common;

use common::bench_cfg;
use criterion::{criterion_group, criterion_main, Criterion};
use fc_simkit::{DetRng, SimDuration, SimTime};
use fc_ssd::FtlKind;
use fc_trace::{IoRequest, Op, Trace};
use flashcoop::{CoopPair, PolicyKind};
use std::hint::black_box;

fn trace(n: usize, write_frac: f64, seed: u64) -> Trace {
    let mut rng = DetRng::new(seed);
    let mut t = Trace::new("bench");
    let mut now = SimTime::ZERO;
    for _ in 0..n {
        now += SimDuration::from_millis(5);
        let op = if rng.chance(write_frac) {
            Op::Write
        } else {
            Op::Read
        };
        t.push(IoRequest {
            at: now,
            lpn: rng.below(4 * 1024),
            pages: 1,
            op,
        });
    }
    t
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_dynamic_alloc");
    group.sample_size(10);

    let t0 = trace(800, 0.5, 1);
    let t1 = trace(800, 0.9, 2);
    group.bench_function("pair_replay_dynamic", |b| {
        b.iter(|| {
            let mut cfg = bench_cfg(FtlKind::PageLevel, PolicyKind::Lar);
            cfg.alloc.period = SimDuration::from_millis(500);
            let mut pair = CoopPair::new(cfg.clone(), cfg, true);
            pair.replay([&t0, &t1], &[]);
            black_box(pair.theta_now(0))
        })
    });
    group.bench_function("pair_replay_static", |b| {
        b.iter(|| {
            let cfg = bench_cfg(FtlKind::PageLevel, PolicyKind::Lar);
            let mut pair = CoopPair::new(cfg.clone(), cfg, false);
            pair.replay([&t0, &t1], &[]);
            black_box(pair.theta_now(0))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
