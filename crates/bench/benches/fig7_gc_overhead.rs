//! Figure 7 bench: the erase-count measurement loop — an aged device under
//! the raw vs LAR-filtered write stream, per FTL. `repro fig7` prints the
//! actual counts.

mod common;

use common::{bench_cfg, bench_device, bench_trace};
use criterion::{criterion_group, criterion_main, Criterion};
use fc_simkit::DetRng;
use fc_ssd::{FtlKind, Lpn, Ssd};
use flashcoop::{replay, PolicyKind, Scheme};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_gc_overhead");
    group.sample_size(10);

    for ftl in FtlKind::ALL {
        // Raw random-write GC churn on an aged device.
        group.bench_function(format!("{}_raw_churn", ftl.name()), |b| {
            let mut ssd = Ssd::new(bench_device(ftl));
            let mut rng = DetRng::new(5);
            ssd.precondition(0.9, 0.5, &mut rng);
            let logical = ssd.logical_pages();
            b.iter(|| {
                for _ in 0..128 {
                    ssd.write(Lpn(rng.below(logical)), 1);
                }
                black_box(ssd.erases_since_reset())
            });
        });
        // The same figure's FlashCoop cell: replay with LAR.
        let trace = bench_trace(800, 5);
        let cfg = bench_cfg(ftl, PolicyKind::Lar);
        group.bench_function(format!("{}_lar_replay", ftl.name()), |b| {
            b.iter(|| {
                black_box(replay(&trace, &cfg, Scheme::FlashCoop(PolicyKind::Lar), None, 5).erases)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
