//! Ablation benches for the design choices DESIGN.md §5 calls out:
//! clustering on/off, replication on/off, wear-aware allocation on/off.

mod common;

use common::{bench_cfg, bench_device, bench_trace};
use criterion::{criterion_group, criterion_main, Criterion};
use fc_simkit::DetRng;
use fc_ssd::{FtlKind, Lpn, Ssd};
use flashcoop::{replay, PolicyKind, Scheme};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    let trace = bench_trace(1_000, 17);

    // Clustering (Section III.B.3) on/off.
    for clustering in [true, false] {
        let mut cfg = bench_cfg(FtlKind::Bast, PolicyKind::Lar);
        cfg.clustering = clustering;
        group.bench_function(
            format!("clustering_{}", if clustering { "on" } else { "off" }),
            |b| {
                b.iter(|| {
                    black_box(
                        replay(&trace, &cfg, Scheme::FlashCoop(PolicyKind::Lar), None, 17)
                            .mean_write_pages,
                    )
                })
            },
        );
    }

    // Replication on/off (pure local write-back).
    for replication in [true, false] {
        let mut cfg = bench_cfg(FtlKind::Bast, PolicyKind::Lar);
        cfg.replication = replication;
        group.bench_function(
            format!("replication_{}", if replication { "on" } else { "off" }),
            |b| {
                b.iter(|| {
                    black_box(
                        replay(&trace, &cfg, Scheme::FlashCoop(PolicyKind::Lar), None, 17)
                            .avg_write_response,
                    )
                })
            },
        );
    }

    // Wear-aware free-block allocation on/off.
    for wear_aware in [true, false] {
        let mut dev = bench_device(FtlKind::PageLevel);
        dev.ftl_config.wear_aware_alloc = wear_aware;
        group.bench_function(
            format!("wear_aware_{}", if wear_aware { "on" } else { "off" }),
            |b| {
                b.iter(|| {
                    let mut ssd = Ssd::new(dev);
                    let mut rng = DetRng::new(23);
                    let logical = ssd.logical_pages();
                    for _ in 0..2_000 {
                        let lpn = if rng.chance(0.9) {
                            rng.below(logical / 10)
                        } else {
                            rng.below(logical)
                        };
                        ssd.write(Lpn(lpn), 1);
                    }
                    black_box(ssd.wear_report().imbalance())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
