//! `fctrace` — inspect, generate, and replay I/O traces from the shell.
//!
//! ```text
//! fctrace stats trace.spc
//! fctrace synth fin1 --requests 50000 --out fin1.spc
//! fctrace replay fin1.spc --ftl bast --scheme lar
//! ```
//!
//! All heavy lifting lives in `fc_bench::cli` (unit-tested); this binary
//! only parses arguments and touches the filesystem.

use fc_bench::cli::{self, USAGE};
use std::process::ExitCode;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_or<T: std::str::FromStr>(v: Option<String>, default: T) -> Result<T, String> {
    match v {
        None => Ok(default),
        Some(s) => s.parse().map_err(|_| format!("bad number {s:?}")),
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return Err(USAGE.to_string());
    };
    match cmd.as_str() {
        "stats" => {
            let path = args.get(1).ok_or("stats needs a file path")?;
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let all_asu = args.iter().any(|a| a == "--all-asu");
            let out = cli::stats_text(path, &text, all_asu).map_err(|e| e.to_string())?;
            print!("{out}");
            Ok(())
        }
        "synth" => {
            let workload = args.get(1).ok_or("synth needs a workload name")?;
            let requests = parse_or(flag_value(&args, "--requests"), 10_000usize)?;
            let seed = parse_or(flag_value(&args, "--seed"), 42u64)?;
            let pages = parse_or(flag_value(&args, "--pages"), 64 * 1024u64)?;
            let text =
                cli::synth_text(workload, pages, requests, seed).map_err(|e| e.to_string())?;
            match flag_value(&args, "--out") {
                Some(path) => {
                    std::fs::write(&path, &text).map_err(|e| format!("{path}: {e}"))?;
                    eprintln!("wrote {} requests to {path}", requests);
                }
                None => print!("{text}"),
            }
            Ok(())
        }
        "replay" => {
            let path = args.get(1).ok_or("replay needs a file path")?;
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let ftl = flag_value(&args, "--ftl").unwrap_or_else(|| "bast".into());
            let scheme = flag_value(&args, "--scheme").unwrap_or_else(|| "lar".into());
            let buffer = parse_or(flag_value(&args, "--buffer"), 4096usize)?;
            let seed = parse_or(flag_value(&args, "--seed"), 42u64)?;
            let obs = flag_value(&args, "--obs").map(std::path::PathBuf::from);
            let out = cli::replay_text_obs(&text, &ftl, &scheme, buffer, seed, obs.as_deref())
                .map_err(|e| e.to_string())?;
            print!("{out}");
            if let Some(p) = obs {
                eprintln!("wrote observability stream to {}", p.display());
            }
            Ok(())
        }
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
