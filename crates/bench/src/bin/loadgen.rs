//! `fc-loadgen` — drive a gateway-fronted FlashCoop pair and report tail
//! latency, throughput, and shed rate.
//!
//! ```text
//! loadgen --clients 8 --trace mix --seed 42
//! loadgen --clients 8 --trace fin1 --mode open --rate 50 --max-inflight 16
//! loadgen --clients 4 --transport mem --requests 500
//! loadgen --clients 8 --transport mem --shards 4
//! ```
//!
//! All driving logic lives in `fc_bench::loadgen` (unit-tested); this
//! binary only parses flags.

use fc_bench::loadgen::{self, LoadgenSpec, Mode, TransportKind, Workload};
use std::process::ExitCode;

const USAGE: &str = "\
fc-loadgen: drive a gateway-fronted FlashCoop pair

USAGE:
  loadgen [flags]

FLAGS:
  --clients N        concurrent client sessions        (default 8)
  --trace NAME       fin1 | fin2 | mix                 (default mix)
  --seed S           base RNG seed; client i uses S+i  (default 42)
  --requests R       requests per client               (default 2000)
  --mode M           closed | open                     (default closed)
  --transport T      tcp | mem                         (default tcp)
  --rate F           open-loop arrival-rate multiplier (default 1.0)
  --client-rate R    admission tokens/s per client     (default 10000)
  --client-burst B   admission bucket capacity         (default 256)
  --max-inflight Q   global queue-depth cap            (default 64)
  --pages P          lpn window per client             (default 16384)
  --page-bytes B     payload bytes per page            (default 512)
  --shards N         cooperative pairs behind the
                     gateway; >1 routes by hash ring
                     and reports per-shard lines       (default 1)
  --kill-primary-at N  crash the victim shard's primary
                     N ms after start (needs --shards
                     >= 2); adds per-phase lines       (default off)
  --restart-after M  restart the crashed primary M ms
                     after the kill; traffic then
                     drives failback                   (default off)
  --victim-shard S   shard whose primary is killed     (default 0)
  --add-pair-at N    live-attach a fresh pair N ms
                     after start and migrate its share
                     of blocks onto it (needs --shards
                     >= 2; excludes --kill-primary-at) (default off)
  --remove-pair-at N live-remove the newest pair N ms
                     after start (the added pair when
                     combined with --add-pair-at, else
                     the highest shard)                (default off)
  --repl-window N    in-flight replication batches per
                     node before the sender stalls     (default: node profile)
  --repl-batch-pages N  max pages coalesced into one
                     replication frame                 (default: node profile)
  --legacy-repl      use the pre-pipeline stop-and-wait
                     replication path (A/B baseline)   (default off)
  --req-pages F      override the workload's mean
                     request size in pages             (default: trace profile)
  --remote-capacity N  distinct peer pages each node
                     hosts (the replication credit
                     pool)                             (default: node profile)
  --buffer-pages N   local buffer capacity per node    (default: node profile)
  --pages-per-block N  gateway destage-block size; caps
                     the run length a write request is
                     coalesced into                    (default: gateway profile)
  --json             emit one JSON object instead of
                     the human-readable table          (default off)
";

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_or<T: std::str::FromStr>(v: Option<String>, default: T) -> Result<T, String> {
    match v {
        None => Ok(default),
        Some(s) => s.parse().map_err(|_| format!("bad number {s:?}")),
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return Ok(());
    }
    let defaults = LoadgenSpec::default();
    let mut spec = LoadgenSpec {
        clients: parse_or(flag_value(&args, "--clients"), defaults.clients)?,
        workload: match flag_value(&args, "--trace") {
            Some(s) => Workload::parse(&s)?,
            None => defaults.workload,
        },
        seed: parse_or(flag_value(&args, "--seed"), defaults.seed)?,
        requests: parse_or(flag_value(&args, "--requests"), defaults.requests)?,
        mode: match flag_value(&args, "--mode") {
            Some(s) => Mode::parse(&s)?,
            None => defaults.mode,
        },
        transport: match flag_value(&args, "--transport") {
            Some(s) => TransportKind::parse(&s)?,
            None => defaults.transport,
        },
        rate_factor: parse_or(flag_value(&args, "--rate"), defaults.rate_factor)?,
        pages_per_client: parse_or(flag_value(&args, "--pages"), defaults.pages_per_client)?,
        page_bytes: parse_or(flag_value(&args, "--page-bytes"), defaults.page_bytes)?,
        shards: parse_or(flag_value(&args, "--shards"), defaults.shards)?,
        kill_primary_at: flag_value(&args, "--kill-primary-at")
            .map(|s| s.parse::<u64>().map_err(|_| format!("bad number {s:?}")))
            .transpose()?
            .map(std::time::Duration::from_millis),
        restart_after: flag_value(&args, "--restart-after")
            .map(|s| s.parse::<u64>().map_err(|_| format!("bad number {s:?}")))
            .transpose()?
            .map(std::time::Duration::from_millis),
        victim_shard: parse_or(flag_value(&args, "--victim-shard"), defaults.victim_shard)?,
        add_pair_at: flag_value(&args, "--add-pair-at")
            .map(|s| s.parse::<u64>().map_err(|_| format!("bad number {s:?}")))
            .transpose()?
            .map(std::time::Duration::from_millis),
        remove_pair_at: flag_value(&args, "--remove-pair-at")
            .map(|s| s.parse::<u64>().map_err(|_| format!("bad number {s:?}")))
            .transpose()?
            .map(std::time::Duration::from_millis),
        repl_window: flag_value(&args, "--repl-window")
            .map(|s| s.parse::<usize>().map_err(|_| format!("bad number {s:?}")))
            .transpose()?,
        repl_batch_pages: flag_value(&args, "--repl-batch-pages")
            .map(|s| s.parse::<usize>().map_err(|_| format!("bad number {s:?}")))
            .transpose()?,
        legacy_repl: args.iter().any(|a| a == "--legacy-repl"),
        req_pages: flag_value(&args, "--req-pages")
            .map(|s| s.parse::<f64>().map_err(|_| format!("bad number {s:?}")))
            .transpose()?,
        remote_capacity: flag_value(&args, "--remote-capacity")
            .map(|s| s.parse::<usize>().map_err(|_| format!("bad number {s:?}")))
            .transpose()?,
        buffer_pages: flag_value(&args, "--buffer-pages")
            .map(|s| s.parse::<usize>().map_err(|_| format!("bad number {s:?}")))
            .transpose()?,
        pages_per_block: flag_value(&args, "--pages-per-block")
            .map(|s| s.parse::<u32>().map_err(|_| format!("bad number {s:?}")))
            .transpose()?,
        ..defaults
    };
    spec.admission.per_client_rate = parse_or(
        flag_value(&args, "--client-rate"),
        spec.admission.per_client_rate,
    )?;
    spec.admission.per_client_burst = parse_or(
        flag_value(&args, "--client-burst"),
        spec.admission.per_client_burst,
    )?;
    spec.admission.max_inflight = parse_or(
        flag_value(&args, "--max-inflight"),
        spec.admission.max_inflight,
    )?;

    let report = loadgen::run(&spec)?;
    if args.iter().any(|a| a == "--json") {
        print!("{}", loadgen::report_json(&report));
    } else {
        print!("{}", loadgen::report_text(&report));
    }
    if report.errors > 0 {
        return Err(format!("{} requests failed", report.errors));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
