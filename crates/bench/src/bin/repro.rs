//! Regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--quick] [all|fig1|table1|table3|fig6|fig7|fig8|fig9|headline]
//! ```
//!
//! `--quick` runs a reduced-scale configuration (fewer requests, smaller
//! buffer) for smoke testing; full scale is what EXPERIMENTS.md records.

use fc_bench::{ext, fig1, fig9, matrix, table1, ExperimentParams};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    let params = if quick {
        ExperimentParams::quick()
    } else {
        ExperimentParams::full()
    };

    let started = Instant::now();
    let mut matrix_cache: Option<Vec<flashcoop::RunReport>> = None;
    let need_matrix = |cache: &mut Option<Vec<flashcoop::RunReport>>| {
        if cache.is_none() {
            eprintln!("[repro] running the 4x3x3 evaluation matrix…");
            *cache = Some(matrix::run_matrix(&params));
        }
        cache.clone().unwrap()
    };

    let run_fig1 = |params: &ExperimentParams| {
        let requests = if quick { 400 } else { 2000 };
        eprintln!("[repro] running Figure 1 bandwidth sweep…");
        let rows = fig1::run(params, requests);
        println!("== Figure 1: SSD write bandwidth vs request size ==");
        println!("{}", fig1::table(&rows));
    };

    match what.as_str() {
        "fig1" => run_fig1(&params),
        "table1" => {
            println!("== Table I: workload statistics ==");
            println!("{}", table1(&params));
        }
        "table3" => {
            eprintln!("[repro] running Table III hit-ratio sweep…");
            println!("== Table III: cache hit ratio vs buffer size ==");
            let sizes: &[usize] = if quick {
                &[1024, 2048]
            } else {
                &[1024, 2048, 4096, 8192]
            };
            println!("{}", matrix::table3(&params, sizes));
        }
        "fig6" => {
            let m = need_matrix(&mut matrix_cache);
            println!("== Figure 6: average response time ==");
            println!("{}", matrix::fig6_table(&m));
        }
        "fig7" => {
            let m = need_matrix(&mut matrix_cache);
            println!("== Figure 7: garbage-collection overhead ==");
            println!("{}", matrix::fig7_table(&m));
        }
        "fig8" => {
            let m = need_matrix(&mut matrix_cache);
            println!("== Figure 8: write-length distribution ==");
            println!("{}", matrix::fig8_table(&m));
        }
        "fig9" => {
            eprintln!("[repro] running Figure 9 dynamic-allocation sweep…");
            let pts = fig9::run(&params);
            println!("== Figure 9: memory allocation vs workload ==");
            println!("{}", fig9::table(&pts));
        }
        "shortlived" => {
            eprintln!("[repro] running short-lived-files extension…");
            println!("== Extension: short-lived files (Section III.A) ==");
            println!("{}", ext::short_lived(&params));
        }
        "recovery" => {
            eprintln!("[repro] running recovery-time extension…");
            println!("== Extension: recovery time vs buffer size (Section III.D) ==");
            let rows = ext::recovery_time(&params, &[1024, 2048, 4096, 8192, 16384]);
            println!("{}", ext::recovery_table(&rows));
        }
        "lifetime" => {
            eprintln!("[repro] running lifetime extension…");
            println!("== Extension: projected SSD lifetime ==");
            println!("{}", ext::lifetime(&params));
        }
        "dftl" => {
            eprintln!("[repro] running DFTL extension…");
            println!("== Extension: DFTL translation overhead ==");
            println!("{}", ext::dftl_overhead(&params));
        }
        "ablations" => {
            eprintln!("[repro] running ablation matrix…");
            println!("== Extension: design ablations ==");
            println!("{}", ext::ablations(&params));
        }
        "headline" => {
            let m = need_matrix(&mut matrix_cache);
            println!("{}", matrix::headline(&m));
        }
        "all" => {
            println!("== Table I: workload statistics ==");
            println!("{}", table1(&params));
            run_fig1(&params);
            let m = need_matrix(&mut matrix_cache);
            println!("== Figure 6: average response time ==");
            println!("{}", matrix::fig6_table(&m));
            println!("== Figure 7: garbage-collection overhead ==");
            println!("{}", matrix::fig7_table(&m));
            println!("== Figure 8: write-length distribution ==");
            println!("{}", matrix::fig8_table(&m));
            println!("{}", matrix::headline(&m));
            println!();
            eprintln!("[repro] running Table III hit-ratio sweep…");
            println!("== Table III: cache hit ratio vs buffer size ==");
            let sizes: &[usize] = if quick {
                &[1024, 2048]
            } else {
                &[1024, 2048, 4096, 8192]
            };
            println!("{}", matrix::table3(&params, sizes));
            eprintln!("[repro] running Figure 9 dynamic-allocation sweep…");
            let pts = fig9::run(&params);
            println!("== Figure 9: memory allocation vs workload ==");
            println!("{}", fig9::table(&pts));
            eprintln!("[repro] running extensions…");
            println!("== Extension: short-lived files (Section III.A) ==");
            println!("{}", ext::short_lived(&params));
            println!("== Extension: recovery time vs buffer size (Section III.D) ==");
            let rows = ext::recovery_time(&params, &[1024, 2048, 4096, 8192, 16384]);
            println!("{}", ext::recovery_table(&rows));
            println!("== Extension: design ablations ==");
            println!("{}", ext::ablations(&params));
            println!("== Extension: DFTL translation overhead ==");
            println!("{}", ext::dftl_overhead(&params));
            println!("== Extension: projected SSD lifetime ==");
            println!("{}", ext::lifetime(&params));
        }
        other => {
            eprintln!(
                "unknown target {other:?}; expected one of \
                 all|fig1|table1|table3|fig6|fig7|fig8|fig9|headline|\
                 shortlived|recovery|ablations|dftl|lifetime"
            );
            std::process::exit(2);
        }
    }
    eprintln!(
        "[repro] done in {:.1}s ({} mode)",
        started.elapsed().as_secs_f64(),
        if quick { "quick" } else { "full" }
    );
}
