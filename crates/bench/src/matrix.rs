//! The main evaluation matrix — Figures 6, 7, 8 and Table III.
//!
//! One replay of (scheme, FTL, trace) yields all three device-facing
//! metrics, so [`run_matrix`] replays the full 4×3×3 grid once and the
//! formatting functions slice it per figure:
//!
//! * Figure 6 — average response time;
//! * Figure 7 — block erase counts (GC overhead);
//! * Figure 8 — write-length CDF at the SSD;
//! * Table III — buffer hit ratio vs buffer size (its own sweep on Fin1).

use crate::params::ExperimentParams;
use fc_ssd::FtlKind;
use fc_trace::Trace;
use flashcoop::{replay, PolicyKind, RunReport, Scheme};

/// Replay one cell of the matrix.
pub fn run_cell(
    params: &ExperimentParams,
    ftl: FtlKind,
    scheme: Scheme,
    trace: &Trace,
) -> RunReport {
    let policy = match scheme {
        Scheme::FlashCoop(p) => p,
        Scheme::Baseline => PolicyKind::Lar,
    };
    let cfg = params.flashcoop_config(ftl, policy);
    replay(trace, &cfg, scheme, Some(params.precondition), params.seed)
}

/// Replay the full grid. Traces are generated once and shared across cells.
pub fn run_matrix(params: &ExperimentParams) -> Vec<RunReport> {
    let traces: Vec<Trace> = params
        .traces()
        .iter()
        .map(|s| s.generate(params.seed))
        .collect();
    let mut out = Vec::new();
    for ftl in FtlKind::ALL {
        for trace in &traces {
            for scheme in Scheme::ALL {
                out.push(run_cell(params, ftl, scheme, trace));
            }
        }
    }
    out
}

/// Figure 6: average response time (ms) per (FTL, trace, scheme).
pub fn fig6_table(reports: &[RunReport]) -> String {
    metric_table(reports, "Avg. response time (ms)", |r| {
        format!("{:.3}", r.avg_response.as_millis_f64())
    })
}

/// Figure 7: block erases per (FTL, trace, scheme).
pub fn fig7_table(reports: &[RunReport]) -> String {
    metric_table(reports, "Block erases", |r| r.erases.to_string())
}

/// Figure 8: write-length CDF per (FTL = BAST slice is what the paper
/// discusses, but all FTLs are printed) and scheme.
pub fn fig8_table(reports: &[RunReport]) -> String {
    let mut out = String::new();
    out.push_str("Write-length CDF at the SSD (fraction of writes <= N pages)\n");
    for r in reports {
        if r.ftl != FtlKind::Bast {
            continue; // the buffer-side distribution is FTL-independent
        }
        out.push_str(&format!("{:<6} {:<18}", r.trace, r.scheme.name()));
        for (edge, frac) in &r.write_length_cdf {
            let label = if *edge == u64::MAX {
                ">64".to_string()
            } else {
                edge.to_string()
            };
            out.push_str(&format!(" {label}:{frac:.3}"));
        }
        out.push_str(&format!(
            "  [1pg {:.1}%, >8pg {:.1}%]\n",
            r.frac_single_page * 100.0,
            r.frac_gt8_pages * 100.0
        ));
    }
    out
}

fn metric_table(
    reports: &[RunReport],
    title: &str,
    metric: impl Fn(&RunReport) -> String,
) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!(
        "{:<11} {:<6} {:>18} {:>18} {:>18} {:>12}\n",
        "FTL", "Trace", "FlashCoop w. LAR", "FlashCoop w. LRU", "FlashCoop w. LFU", "Baseline"
    ));
    for ftl in FtlKind::ALL {
        for trace in ["Fin1", "Fin2", "Mix"] {
            let cell = |scheme: Scheme| -> String {
                reports
                    .iter()
                    .find(|r| r.ftl == ftl && r.trace == trace && r.scheme == scheme)
                    .map(&metric)
                    .unwrap_or_else(|| "-".into())
            };
            out.push_str(&format!(
                "{:<11} {:<6} {:>18} {:>18} {:>18} {:>12}\n",
                ftl.name(),
                trace,
                cell(Scheme::FlashCoop(PolicyKind::Lar)),
                cell(Scheme::FlashCoop(PolicyKind::Lru)),
                cell(Scheme::FlashCoop(PolicyKind::Lfu)),
                cell(Scheme::Baseline),
            ));
        }
    }
    out
}

/// Table III: hit ratio vs buffer size on Fin1, for the three policies.
pub fn table3(params: &ExperimentParams, buffer_sizes: &[usize]) -> String {
    let spec = &params.traces()[0]; // Fin1
    let trace = spec.generate(params.seed);
    let mut out = String::new();
    out.push_str("Cache hit ratio (%) vs buffer size (pages), workload Fin1\n");
    out.push_str(&format!("{:<8}", "Policy"));
    for b in buffer_sizes {
        out.push_str(&format!(" {b:>8}"));
    }
    out.push('\n');
    for policy in PolicyKind::ALL {
        out.push_str(&format!("{:<8}", policy.name()));
        for &b in buffer_sizes {
            let mut p = *params;
            p.buffer_pages = b;
            let r = run_cell(&p, FtlKind::Bast, Scheme::FlashCoop(policy), &trace);
            out.push_str(&format!(" {:>8.2}", r.hit_ratio * 100.0));
        }
        out.push('\n');
    }
    out
}

/// Headline numbers the paper's abstract quotes: best-case improvement of
/// FlashCoop w. LAR over Baseline in response time and erase count.
pub fn headline(reports: &[RunReport]) -> String {
    let mut best_perf = 0.0f64;
    let mut best_gc = 0.0f64;
    for ftl in FtlKind::ALL {
        for trace in ["Fin1", "Fin2", "Mix"] {
            let find = |s: Scheme| {
                reports
                    .iter()
                    .find(|r| r.ftl == ftl && r.trace == trace && r.scheme == s)
            };
            if let (Some(lar), Some(base)) = (
                find(Scheme::FlashCoop(PolicyKind::Lar)),
                find(Scheme::Baseline),
            ) {
                let b = base.avg_response.as_nanos() as f64;
                let l = lar.avg_response.as_nanos() as f64;
                if b > 0.0 {
                    best_perf = best_perf.max((b - l) / b * 100.0);
                }
                if base.erases > 0 {
                    best_gc = best_gc
                        .max((base.erases as f64 - lar.erases as f64) / base.erases as f64 * 100.0);
                }
            }
        }
    }
    format!(
        "Best-case FlashCoop w. LAR vs Baseline: {best_perf:.1}% response-time improvement, \
         {best_gc:.1}% erase reduction (paper: 52.3% / 56.5%)"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny matrix smoke test (kept very small; the full grid runs in the
    /// repro binary and integration tests).
    #[test]
    fn single_cell_runs_and_reports() {
        let mut p = ExperimentParams::quick();
        p.requests = 400;
        let trace = p.traces()[0].generate(p.seed);
        let r = run_cell(
            &p,
            FtlKind::Bast,
            Scheme::FlashCoop(PolicyKind::Lar),
            &trace,
        );
        assert_eq!(r.trace, "Fin1");
        assert_eq!(r.ftl, FtlKind::Bast);
        assert!(r.requests == 400);
    }

    #[test]
    fn tables_format_with_placeholder_for_missing_cells() {
        let t = fig6_table(&[]);
        assert!(t.contains("-"));
        assert!(t.contains("BAST"));
        let t7 = fig7_table(&[]);
        assert!(t7.contains("Block erases"));
    }
}
