//! # fc-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! FlashCoop paper's evaluation (Section IV):
//!
//! | Paper artifact | Module / function |
//! |---|---|
//! | Figure 1 (SSD write bandwidth vs request size) | [`fig1::run`] |
//! | Table I (workload statistics) | [`table1`] |
//! | Table III (hit ratio vs buffer size) | [`matrix::table3`] |
//! | Figure 6 (average response time) | [`matrix::fig6_table`] |
//! | Figure 7 (GC overhead / erase counts) | [`matrix::fig7_table`] |
//! | Figure 8 (write-length CDF) | [`matrix::fig8_table`] |
//! | Figure 9 (dynamic allocation θ) | [`fig9::run`] |
//! | Short-lived files (§III.A, extension) | [`ext::short_lived`] |
//! | Recovery-time trade-off (§III.D, extension) | [`ext::recovery_time`] |
//! | Design ablations (DESIGN.md §5) | [`ext::ablations`] |
//!
//! The `repro` binary drives everything: `cargo run --release -p fc-bench
//! --bin repro -- all` (add `--quick` for a smoke-scale run).

pub mod cli;
pub mod ext;
pub mod fig1;
pub mod fig9;
pub mod format;
pub mod loadgen;
pub mod matrix;
pub mod params;

pub use params::ExperimentParams;

use fc_trace::TraceStats;

/// Table I: generate the three workloads and recompute their statistics.
pub fn table1(params: &ExperimentParams) -> String {
    let mut out = String::new();
    out.push_str(&TraceStats::table1_header());
    out.push('\n');
    for spec in params.traces() {
        let trace = spec.generate(params.seed);
        out.push_str(&TraceStats::from_trace(&trace).table1_row());
        out.push('\n');
    }
    out.push_str(
        "(paper: Fin1 4.38KB/91%/2.0%/133.5ms, Fin2 4.84KB/10%/0.2%/64.5ms, \
         Mix 3.16KB/50%/50%/199.9ms; sizes quantise to whole 4KB pages)\n",
    );
    out
}
