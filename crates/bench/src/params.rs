//! Shared experiment parameters.
//!
//! Every experiment reads its sizing from [`ExperimentParams`] so the `repro`
//! binary, the criterion benches, and the integration tests agree on the
//! setup. The defaults mirror the paper's evaluation (Section IV.A): Table II
//! device (scaled capacity, identical page/block shape), 4096-page buffer,
//! aged device, Table I workloads.

use fc_ssd::FtlKind;
use fc_trace::SyntheticSpec;
use flashcoop::{FlashCoopConfig, PolicyKind, Preconditioning};

/// Sizing knobs for a full experiment run.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentParams {
    /// Requests per trace.
    pub requests: usize,
    /// Trace address space in pages (must fit the device's logical space).
    pub address_pages: u64,
    /// Cooperative buffer capacity in pages.
    pub buffer_pages: usize,
    /// Device aging before measurement.
    pub precondition: Preconditioning,
    /// Master seed.
    pub seed: u64,
}

impl ExperimentParams {
    /// Full-scale run (the EXPERIMENTS.md numbers).
    pub fn full() -> Self {
        ExperimentParams {
            requests: 50_000,
            address_pages: 64 * 1024,
            buffer_pages: 4096,
            precondition: Preconditioning {
                fill: 0.92,
                sequential: 0.5,
            },
            seed: 42,
        }
    }

    /// Reduced run for smoke tests and criterion iterations.
    pub fn quick() -> Self {
        ExperimentParams {
            requests: 4_000,
            address_pages: 64 * 1024,
            buffer_pages: 2048,
            precondition: Preconditioning {
                fill: 0.92,
                sequential: 0.5,
            },
            seed: 42,
        }
    }

    /// FlashCoop configuration for one cell of the matrix.
    pub fn flashcoop_config(&self, ftl: FtlKind, policy: PolicyKind) -> FlashCoopConfig {
        let mut cfg = FlashCoopConfig::evaluation(ftl, policy);
        cfg.buffer_pages = self.buffer_pages;
        cfg
    }

    /// The three Table I workloads sized for this run.
    pub fn traces(&self) -> [SyntheticSpec; 3] {
        let mut specs = SyntheticSpec::table1(self.address_pages);
        for s in &mut specs {
            s.requests = self.requests;
        }
        specs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashcoop::{CoopServer, Scheme};

    #[test]
    fn traces_fit_the_evaluation_device() {
        let p = ExperimentParams::full();
        let cfg = p.flashcoop_config(FtlKind::Bast, PolicyKind::Lar);
        let server = CoopServer::new(cfg, Scheme::Baseline);
        assert!(p.address_pages <= server.ssd().logical_pages());
    }

    #[test]
    fn quick_is_smaller_than_full() {
        let q = ExperimentParams::quick();
        let f = ExperimentParams::full();
        assert!(q.requests < f.requests);
        assert!(q.buffer_pages <= f.buffer_pages);
    }

    #[test]
    fn trace_specs_carry_request_count() {
        let p = ExperimentParams::quick();
        for spec in p.traces() {
            assert_eq!(spec.requests, p.requests);
            assert_eq!(spec.address_pages, p.address_pages);
        }
    }
}
