//! Library half of the `fctrace` command-line tool: inspect, generate, and
//! replay I/O traces. The binary (`src/bin/fctrace.rs`) is a thin argument
//! parser over these functions so everything here is unit-testable.

use fc_obs::Obs;
use fc_ssd::FtlKind;
use fc_trace::synth::ShortLivedSpec;
use fc_trace::{parse_spc, write_spc, SpcConfig, SyntheticSpec, Trace, TraceStats};
use flashcoop::{replay_with_obs, FlashCoopConfig, PolicyKind, Preconditioning, Scheme};
use std::path::Path;

/// Errors surfaced to the CLI user.
#[derive(Debug)]
pub enum CliError {
    /// Unknown workload / ftl / scheme name.
    BadName(String),
    /// Trace file failed to parse.
    Parse(String),
    /// Numeric argument failed to parse.
    BadNumber(String),
    /// Filesystem error (e.g. the `--obs` output file).
    Io(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::BadName(s) => write!(f, "unknown name: {s}"),
            CliError::Parse(s) => write!(f, "trace parse error: {s}"),
            CliError::BadNumber(s) => write!(f, "bad number: {s}"),
            CliError::Io(s) => write!(f, "io error: {s}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Resolve a workload name to a generated trace.
pub fn make_trace(
    name: &str,
    address_pages: u64,
    requests: usize,
    seed: u64,
) -> Result<Trace, CliError> {
    let spec = match name.to_ascii_lowercase().as_str() {
        "fin1" => SyntheticSpec::fin1(address_pages),
        "fin2" => SyntheticSpec::fin2(address_pages),
        "mix" => SyntheticSpec::mix(address_pages),
        "shortlived" => {
            let spec = ShortLivedSpec {
                files: requests,
                address_pages,
                ..ShortLivedSpec::default()
            };
            return Ok(spec.generate(seed));
        }
        other => return Err(CliError::BadName(other.to_string())),
    };
    Ok(spec.with_requests(requests).generate(seed))
}

/// Resolve an FTL name.
pub fn parse_ftl(name: &str) -> Result<FtlKind, CliError> {
    match name.to_ascii_lowercase().as_str() {
        "bast" => Ok(FtlKind::Bast),
        "fast" => Ok(FtlKind::Fast),
        "page" | "page-based" | "pagelevel" => Ok(FtlKind::PageLevel),
        "dftl" => Ok(FtlKind::Dftl),
        other => Err(CliError::BadName(other.to_string())),
    }
}

/// Resolve a scheme name.
pub fn parse_scheme(name: &str) -> Result<Scheme, CliError> {
    match name.to_ascii_lowercase().as_str() {
        "baseline" => Ok(Scheme::Baseline),
        "lar" => Ok(Scheme::FlashCoop(PolicyKind::Lar)),
        "lru" => Ok(Scheme::FlashCoop(PolicyKind::Lru)),
        "lfu" => Ok(Scheme::FlashCoop(PolicyKind::Lfu)),
        other => Err(CliError::BadName(other.to_string())),
    }
}

/// `fctrace stats`: Table-I-style statistics of an SPC-format text.
pub fn stats_text(name: &str, spc_text: &str, all_asu: bool) -> Result<String, CliError> {
    let cfg = SpcConfig {
        asu_filter: if all_asu { None } else { Some(0) },
        ..SpcConfig::default()
    };
    let trace = parse_spc(name, spc_text, cfg).map_err(|e| CliError::Parse(e.to_string()))?;
    let s = TraceStats::from_trace(&trace);
    let mut out = String::new();
    out.push_str(&TraceStats::table1_header());
    out.push('\n');
    out.push_str(&s.table1_row());
    out.push('\n');
    out.push_str(&format!(
        "unique pages: {}  footprint: {} pages ({:.1} MiB)  trims: {:.1}%\n",
        s.unique_pages,
        s.footprint_pages,
        s.footprint_pages as f64 * 4096.0 / (1 << 20) as f64,
        s.trim_pct,
    ));
    Ok(out)
}

/// `fctrace synth`: generate a workload and serialise it as SPC text.
pub fn synth_text(
    workload: &str,
    address_pages: u64,
    requests: usize,
    seed: u64,
) -> Result<String, CliError> {
    let trace = make_trace(workload, address_pages, requests, seed)?;
    Ok(write_spc(&trace, SpcConfig::default()))
}

/// `fctrace replay`: replay an SPC-format text on the evaluation device.
pub fn replay_text(
    spc_text: &str,
    ftl: &str,
    scheme: &str,
    buffer_pages: usize,
    seed: u64,
) -> Result<String, CliError> {
    replay_text_obs(spc_text, ftl, scheme, buffer_pages, seed, None)
}

/// [`replay_text`] with an optional observability stream: when `obs_path`
/// is given, every metric snapshot and trace event of the run is written
/// there as JSON lines (see `fc_obs::validate_jsonl` for the schema).
pub fn replay_text_obs(
    spc_text: &str,
    ftl: &str,
    scheme: &str,
    buffer_pages: usize,
    seed: u64,
    obs_path: Option<&Path>,
) -> Result<String, CliError> {
    let ftl = parse_ftl(ftl)?;
    let scheme = parse_scheme(scheme)?;
    let policy = match scheme {
        Scheme::FlashCoop(p) => p,
        Scheme::Baseline => PolicyKind::Lar,
    };
    let mut cfg = FlashCoopConfig::evaluation(ftl, policy);
    cfg.buffer_pages = buffer_pages;
    let mut trace = parse_spc("cli", spc_text, SpcConfig::default())
        .map_err(|e| CliError::Parse(e.to_string()))?;
    // Fit the device: real traces can exceed the simulated capacity.
    let logical = {
        use flashcoop::CoopServer;
        CoopServer::new(cfg.clone(), Scheme::Baseline)
            .ssd()
            .logical_pages()
    };
    if trace.address_span() > logical {
        trace.wrap_addresses(logical);
    }
    let obs = match obs_path {
        Some(p) => {
            Some(Obs::jsonl_file(p).map_err(|e| CliError::Io(format!("{}: {e}", p.display())))?)
        }
        None => None,
    };
    let report = replay_with_obs(
        &trace,
        &cfg,
        scheme,
        Some(Preconditioning::default()),
        seed,
        obs.as_ref(),
    );
    let mut out = String::new();
    out.push_str(&crate::format::report_header());
    out.push('\n');
    out.push_str(&crate::format::report_row(&report));
    out.push('\n');
    Ok(out)
}

/// Usage text for the binary.
pub const USAGE: &str = "\
fctrace — inspect, generate, and replay I/O traces

USAGE:
    fctrace stats <file.spc> [--all-asu]
    fctrace synth <fin1|fin2|mix|shortlived> [--requests N] [--seed S]
                  [--pages P] [--out file.spc]
    fctrace replay <file.spc> [--ftl bast|fast|page|dftl]
                   [--scheme lar|lru|lfu|baseline] [--buffer PAGES] [--seed S]
                   [--obs out.jsonl]
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn make_trace_resolves_all_presets() {
        for name in ["fin1", "Fin2", "MIX", "shortlived"] {
            let t = make_trace(name, 8192, 200, 1).unwrap();
            assert!(!t.is_empty(), "{name}");
        }
        assert!(make_trace("nope", 8192, 10, 1).is_err());
    }

    #[test]
    fn parse_names() {
        assert_eq!(parse_ftl("BAST").unwrap(), FtlKind::Bast);
        assert_eq!(parse_ftl("dftl").unwrap(), FtlKind::Dftl);
        assert!(parse_ftl("nand").is_err());
        assert_eq!(parse_scheme("baseline").unwrap(), Scheme::Baseline);
        assert_eq!(
            parse_scheme("LAR").unwrap(),
            Scheme::FlashCoop(PolicyKind::Lar)
        );
        assert!(parse_scheme("arc").is_err());
    }

    #[test]
    fn synth_then_stats_round_trip() {
        let text = synth_text("fin1", 8192, 500, 7).unwrap();
        let report = stats_text("fin1", &text, false).unwrap();
        assert!(report.contains("fin1"));
        assert!(report.contains("unique pages"));
        // Write-dominance survives the SPC round trip.
        let line = report.lines().nth(1).unwrap();
        let write_pct: f64 = line.split_whitespace().nth(3).unwrap().parse().unwrap();
        assert!(write_pct > 85.0, "write% {write_pct}");
    }

    #[test]
    fn replay_text_produces_a_report_row() {
        let text = synth_text("mix", 4096, 300, 9).unwrap();
        let out = replay_text(&text, "bast", "lar", 256, 9).unwrap();
        assert!(out.contains("FlashCoop w. LAR"));
        assert!(out.contains("BAST"));
    }

    #[test]
    fn obs_jsonl_recomputes_report_values() {
        // Acceptance: one fc-bench run with `--obs` emits a JSONL stream
        // from which the report's headline numbers — average and p99
        // response, erase count, and the destage run-length histogram —
        // can be recomputed independently.
        use fc_obs::{parse_jsonl, Value};
        use fc_trace::SyntheticSpec;
        use flashcoop::replay_with_obs;

        let dir = std::env::temp_dir().join(format!("fc-bench-obs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");

        let cfg = FlashCoopConfig::tiny(FtlKind::Bast, PolicyKind::Lar);
        let trace = SyntheticSpec::mix(128).with_requests(600).generate(11);
        let obs = fc_obs::Obs::jsonl_file(&path).unwrap();
        let report = replay_with_obs(
            &trace,
            &cfg,
            Scheme::FlashCoop(PolicyKind::Lar),
            None,
            11,
            Some(&obs),
        );
        obs.flush();

        let text = std::fs::read_to_string(&path).unwrap();
        let events = parse_jsonl(&text).unwrap();
        std::fs::remove_dir_all(&dir).ok();

        // Response times: every request leaves one core write/read/trim
        // event carrying resp_ns; the mean and the nearest-rank p99 must
        // reproduce the report.
        let mut resp: Vec<u64> = events
            .iter()
            .filter(|e| {
                e.component == "core" && matches!(e.kind.as_ref(), "write" | "read" | "trim")
            })
            .map(|e| e.get("resp_ns").and_then(Value::as_u64).unwrap())
            .collect();
        assert_eq!(resp.len(), report.requests);
        let mean = resp.iter().sum::<u64>() / resp.len() as u64;
        assert!(
            mean.abs_diff(report.avg_response.as_nanos()) <= 1,
            "recomputed mean {mean} vs report {}",
            report.avg_response.as_nanos()
        );
        resp.sort_unstable();
        let rank = ((0.99 * resp.len() as f64).ceil() as usize).clamp(1, resp.len());
        assert_eq!(resp[rank - 1], report.p99_response.as_nanos());

        // Erase count: the ssd host_write events carry the per-request
        // erase delta.
        let erases: u64 = events
            .iter()
            .filter(|e| e.component == "ssd" && e.kind == "host_write")
            .map(|e| e.get("erases").and_then(Value::as_u64).unwrap())
            .sum();
        assert_eq!(erases, report.erases);

        // Destage run-length histogram: rebuild it from the per-destage
        // run_pages arrays; it must agree with the registry's histogram in
        // the final snapshot (same count/sum/percentiles).
        let rebuilt = fc_obs::Histogram::new();
        for e in events.iter().filter(|e| e.kind == "destage") {
            for &pages in match e.get("run_pages") {
                Some(Value::U64s(v)) => v.as_slice(),
                other => panic!("destage without run_pages: {other:?}"),
            } {
                rebuilt.record(pages);
            }
        }
        let last_snapshot = events
            .iter()
            .rev()
            .find(|e| e.kind == "snapshot")
            .expect("run emits snapshots");
        let snap = |field: &str| {
            last_snapshot
                .get(&format!("core.destage.run_pages.{field}"))
                .and_then(Value::as_u64)
                .unwrap()
        };
        assert!(rebuilt.count() > 0, "run should destage something");
        assert_eq!(rebuilt.count(), snap("count"));
        assert_eq!(rebuilt.sum(), snap("sum"));
        assert_eq!(rebuilt.max(), snap("max"));
        assert_eq!(rebuilt.p50(), snap("p50"));
        assert_eq!(rebuilt.p99(), snap("p99"));
        assert_eq!(rebuilt.p999(), snap("p999"));
    }

    #[test]
    fn replay_text_obs_writes_valid_stream() {
        let dir = std::env::temp_dir().join(format!("fc-bench-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cli.jsonl");
        let text = synth_text("mix", 4096, 300, 9).unwrap();
        let out = replay_text_obs(&text, "bast", "lar", 256, 9, Some(&path)).unwrap();
        assert!(out.contains("FlashCoop w. LAR"));
        let stream = std::fs::read_to_string(&path).unwrap();
        let n = fc_obs::validate_jsonl(&stream).unwrap();
        assert!(n > 300, "expected a dense stream, got {n} events");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_rejects_bad_names() {
        assert!(replay_text("0,0,4096,w,0.0\n", "nope", "lar", 64, 1).is_err());
        assert!(replay_text("0,0,4096,w,0.0\n", "bast", "nope", 64, 1).is_err());
        assert!(replay_text("garbage", "bast", "lar", 64, 1).is_err());
    }
}
