//! Figure 1 — write bandwidth of the bare SSD vs request size.
//!
//! The paper's motivation figure: on an (aged) Intel X25-E, 4 KB random
//! writes reach ~0.87 MB/s while sequential writes reach ~30.7 MB/s, and a
//! 50:50 mix is *worse* than pure random (mixed streams break both the
//! drive's write coalescing and its sequential-stream detection). We
//! reproduce the shape on the simulated device: sequential ≫ random, both
//! rising with request size, mix at or below random.
//!
//! Sub-page requests (512 B – 2 KB) are modelled as read-modify-write at the
//! page level, which is what a page-granular FTL must do with them.

use crate::params::ExperimentParams;
use fc_simkit::{DetRng, SimDuration};
use fc_ssd::{FtlKind, Lpn, Ssd, SsdConfig};

/// One x-axis point of Figure 1.
#[derive(Debug, Clone, Copy)]
pub struct Fig1Row {
    /// Request size in bytes.
    pub size_bytes: u64,
    /// Pure sequential write bandwidth (MB/s).
    pub seq_mbps: f64,
    /// Pure random write bandwidth (MB/s).
    pub rnd_mbps: f64,
    /// 50:50 sequential/random mix bandwidth (MB/s).
    pub mix_mbps: f64,
}

/// The request sizes the paper sweeps.
pub const SIZES: [u64; 7] = [512, 1024, 2048, 4096, 8192, 16384, 32768];

/// Write `size` bytes at byte offset `off`, page-granular with RMW for
/// partial pages. Returns the service time.
fn write_bytes(ssd: &mut Ssd, off: u64, size: u64) -> SimDuration {
    let page = ssd.geometry().page_bytes as u64;
    let first = off / page;
    let last = (off + size - 1) / page;
    let pages = (last - first + 1) as u32;
    let mut t = SimDuration::ZERO;
    // Partial head/tail pages need the old contents first (read-modify-write).
    if !off.is_multiple_of(page) || !(off + size).is_multiple_of(page) {
        t += ssd.read(Lpn(first), pages.min(2));
    }
    t += ssd.write(Lpn(first), pages);
    t
}

/// Run the Figure 1 sweep. `requests_per_point` writes are issued per
/// (size, pattern) cell on a shared aged device.
pub fn run(params: &ExperimentParams, requests_per_point: usize) -> Vec<Fig1Row> {
    let mut rng = DetRng::new(params.seed);
    let mut rows = Vec::new();
    for &size in &SIZES {
        let cell = |pattern: Pattern, rng: &mut DetRng| -> f64 {
            // Fresh aged device per cell so cells don't contaminate each other.
            let mut ssd = Ssd::new(SsdConfig::evaluation(FtlKind::PageLevel));
            ssd.precondition(
                params.precondition.fill,
                params.precondition.sequential,
                rng,
            );
            bandwidth(&mut ssd, pattern, size, requests_per_point, rng)
        };
        let seq = cell(Pattern::Sequential, &mut rng);
        let rnd = cell(Pattern::Random, &mut rng);
        let mix = cell(Pattern::Mixed, &mut rng);
        rows.push(Fig1Row {
            size_bytes: size,
            seq_mbps: seq,
            rnd_mbps: rnd,
            mix_mbps: mix,
        });
    }
    rows
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pattern {
    Sequential,
    Random,
    Mixed,
}

fn bandwidth(ssd: &mut Ssd, pattern: Pattern, size: u64, requests: usize, rng: &mut DetRng) -> f64 {
    let page = ssd.geometry().page_bytes as u64;
    let logical_bytes = ssd.logical_pages() * page;
    let mut total = SimDuration::ZERO;
    let mut seq_off = 0u64;
    for i in 0..requests {
        let sequential = match pattern {
            Pattern::Sequential => true,
            Pattern::Random => false,
            Pattern::Mixed => i % 2 == 0,
        };
        let off = if sequential {
            let o = seq_off;
            seq_off = (seq_off + size) % (logical_bytes - size);
            o
        } else {
            // Size-aligned random offset.
            let slots = (logical_bytes / size).max(1);
            (rng.below(slots)) * size % (logical_bytes - size)
        };
        total += write_bytes(ssd, off, size);
    }
    let bytes = size * requests as u64;
    bytes as f64 / total.as_secs_f64() / 1e6
}

/// Format the rows as the Figure 1 table.
pub fn table(rows: &[Fig1Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>10} {:>16} {:>16} {:>16}\n",
        "Size(B)", "Seq(MB/s)", "Random(MB/s)", "Mix(MB/s)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>10} {:>16.2} {:>16.2} {:>16.2}\n",
            r.size_bytes, r.seq_mbps, r.rnd_mbps, r.mix_mbps
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_beats_random_at_4k_under_gc_pressure() {
        // A small aged device and enough writes that garbage collection is
        // on the critical path — where the paper's Figure 1 gap comes from.
        let mut rng = DetRng::new(1);
        let mut ssd = Ssd::new(SsdConfig::tiny(FtlKind::PageLevel));
        ssd.precondition(0.9, 0.5, &mut rng);
        let seq = bandwidth(&mut ssd, Pattern::Sequential, 4096, 3000, &mut rng);
        let mut ssd2 = Ssd::new(SsdConfig::tiny(FtlKind::PageLevel));
        ssd2.precondition(0.9, 0.5, &mut rng);
        let rnd = bandwidth(&mut ssd2, Pattern::Random, 4096, 3000, &mut rng);
        assert!(
            seq > rnd * 1.2,
            "sequential {seq:.2} MB/s should beat random {rnd:.2} MB/s"
        );
    }

    #[test]
    fn sub_page_writes_pay_rmw() {
        let mut ssd = Ssd::new(SsdConfig::tiny(FtlKind::PageLevel));
        ssd.write(Lpn(0), 1);
        let full = write_bytes(&mut ssd, 4096, 4096); // aligned full page
        let partial = write_bytes(&mut ssd, 512, 512); // unaligned sub-page
        assert!(partial > full / 2, "partial write must include RMW cost");
    }

    #[test]
    fn table_formats_all_sizes() {
        let rows: Vec<Fig1Row> = SIZES
            .iter()
            .map(|&s| Fig1Row {
                size_bytes: s,
                seq_mbps: 1.0,
                rnd_mbps: 0.5,
                mix_mbps: 0.4,
            })
            .collect();
        let t = table(&rows);
        assert_eq!(t.lines().count(), SIZES.len() + 1);
        assert!(t.contains("32768"));
    }
}
