//! `fc-loadgen`: drive a gateway-fronted FlashCoop pair from fc-trace
//! workloads and report tail latency, throughput, and shed rate.
//!
//! Deterministic by construction: each client derives its request stream
//! from `SyntheticSpec` with a per-client seed (`seed + client index`) and
//! owns a disjoint lpn window, so two runs with the same spec issue the
//! same requests — what varies between runs is only timing. Two modes:
//!
//! * **closed-loop** — each client issues, waits for the reply, issues the
//!   next: measures service latency with the client's own waiting
//!   throttling offered load.
//! * **open-loop** — each client fires requests at its trace's (scaled)
//!   arrival instants regardless of completions
//!   ([`fc_trace::ArrivalSchedule`]): the shape that actually saturates
//!   the admission gates and produces the hockey-stick p99.
//!
//! The loadgen counts its own `Busy` replies and cross-checks them against
//! the gateway's `gateway.shed_total` counter — the two are required to
//! agree exactly (asserted in `tests/gateway_e2e.rs`).

use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use fc_cluster::{mem_pair, shared_backend, MemBackend, Node, NodeConfig, ReplicationStats};
use fc_gateway::{
    AdmissionConfig, ClientError, Gateway, GatewayClient, GatewayConfig, GatewayStats, Reply,
    ShardStats, ShardStatsSum, ShardedGateway,
};
use fc_obs::{Counter, Histogram};
use fc_rebalance::RebalanceConfig;
use fc_ring::{Ring, RingConfig};
use fc_trace::{Op, SyntheticSpec, Trace};

/// Ring placement seed for loadgen-built clusters. Fixed (not derived from
/// the workload seed) so the shard layout is part of the tool's identity:
/// two runs of any spec agree on placement, and per-shard lines are
/// comparable across seeds.
pub const RING_SEED: u64 = 0x10AD_4E4E_F1A5_C009;

/// The ring a loadgen-built cluster of `shards` pairs routes by — exposed
/// so tests and reports can attribute lpns to shards exactly like the
/// gateway does.
pub fn cluster_ring(shards: u16, pages_per_block: u32) -> Ring {
    Ring::with_pairs(
        RingConfig {
            seed: RING_SEED,
            block_pages: pages_per_block,
            ..RingConfig::default()
        },
        shards,
    )
}

/// Which workload personality each client replays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    Fin1,
    Fin2,
    Mix,
}

impl Workload {
    pub fn parse(s: &str) -> Result<Workload, String> {
        match s.to_ascii_lowercase().as_str() {
            "fin1" => Ok(Workload::Fin1),
            "fin2" => Ok(Workload::Fin2),
            "mix" => Ok(Workload::Mix),
            other => Err(format!("unknown trace {other:?} (fin1|fin2|mix)")),
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Workload::Fin1 => "fin1",
            Workload::Fin2 => "fin2",
            Workload::Mix => "mix",
        }
    }

    fn spec(self, pages: u64) -> SyntheticSpec {
        match self {
            Workload::Fin1 => SyntheticSpec::fin1(pages),
            Workload::Fin2 => SyntheticSpec::fin2(pages),
            Workload::Mix => SyntheticSpec::mix(pages),
        }
    }
}

/// Closed-loop (issue → wait → issue) or open-loop (fire at trace arrival
/// instants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    Closed,
    Open,
}

impl Mode {
    pub fn parse(s: &str) -> Result<Mode, String> {
        match s.to_ascii_lowercase().as_str() {
            "closed" => Ok(Mode::Closed),
            "open" => Ok(Mode::Open),
            other => Err(format!("unknown mode {other:?} (closed|open)")),
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Mode::Closed => "closed",
            Mode::Open => "open",
        }
    }
}

/// Sessions over real TCP on localhost, or in-memory channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    Tcp,
    Mem,
}

impl TransportKind {
    pub fn parse(s: &str) -> Result<TransportKind, String> {
        match s.to_ascii_lowercase().as_str() {
            "tcp" => Ok(TransportKind::Tcp),
            "mem" => Ok(TransportKind::Mem),
            other => Err(format!("unknown transport {other:?} (tcp|mem)")),
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            TransportKind::Tcp => "tcp",
            TransportKind::Mem => "mem",
        }
    }
}

/// Full loadgen run description.
#[derive(Debug, Clone)]
pub struct LoadgenSpec {
    pub clients: usize,
    pub workload: Workload,
    pub seed: u64,
    /// Requests per client.
    pub requests: usize,
    pub mode: Mode,
    pub transport: TransportKind,
    /// Logical-page window per client (clients own disjoint windows).
    pub pages_per_client: u64,
    /// Open-loop arrival-rate multiplier (>1 compresses the schedule).
    pub rate_factor: f64,
    /// Admission gates on the gateway under test.
    pub admission: AdmissionConfig,
    /// Payload bytes per page.
    pub page_bytes: usize,
    /// Cooperative pairs behind the gateway. 1 = the classic single-pair
    /// front end; >1 spawns a [`ShardedGateway`] routing by
    /// [`cluster_ring`] and the report grows a per-shard breakdown.
    pub shards: u16,
    /// Fault schedule: crash the victim shard's primary this long after
    /// the clients start (sharded runs only — the gateway fails the shard
    /// over to its secondary and the report grows per-phase lines).
    pub kill_primary_at: Option<Duration>,
    /// Restart the crashed primary this long after the kill; traffic then
    /// drives failback. Requires `kill_primary_at`.
    pub restart_after: Option<Duration>,
    /// Which shard's primary the fault schedule targets.
    pub victim_shard: u16,
    /// Elastic schedule: attach a fresh pair this long after the clients
    /// start and live-migrate its share of occupied blocks onto it
    /// (sharded runs only; cannot combine with the fault schedule).
    pub add_pair_at: Option<Duration>,
    /// Elastic schedule: live-remove the newest pair this long after the
    /// clients start — the pair added by `add_pair_at` when both are set,
    /// otherwise the highest original shard. Must be later than
    /// `add_pair_at` when both are given.
    pub remove_pair_at: Option<Duration>,
    /// Override every node's replication pipeline window (in-flight
    /// batches); `None` keeps the profile default.
    pub repl_window: Option<usize>,
    /// Override every node's max pages per replication batch; `None`
    /// keeps the profile default.
    pub repl_batch_pages: Option<usize>,
    /// Run every node on the legacy stop-and-wait replication path
    /// (the pre-pipeline baseline, for A/B comparisons).
    pub legacy_repl: bool,
    /// Override the workload's mean request size in pages (>= 1) — larger
    /// requests make longer write runs, the shape the replication
    /// pipeline coalesces into single frames.
    pub req_pages: Option<f64>,
    /// Override every node's remote-buffer credit pool (distinct peer
    /// pages it will host); `None` keeps the profile default. Benchmarks
    /// size this above the working set so writes keep replicating instead
    /// of degrading to credit-stalled write-through.
    pub remote_capacity: Option<usize>,
    /// Override every node's local buffer capacity in pages; `None` keeps
    /// the (tiny, eviction-oriented) test profile. Benchmarks size this
    /// above the working set so writes stay buffer-resident and exercise
    /// the replication path instead of self-evicting to write-through.
    pub buffer_pages: Option<usize>,
    /// Override the gateway's destage-block size in pages (`None` keeps
    /// the gateway default). The gateway coalesces each write request into
    /// block-aligned runs, so this caps the run length handed to
    /// [`fc_cluster::Node::write_run`] — benchmarks raise it so whole
    /// requests reach the replication pipeline as single runs.
    pub pages_per_block: Option<u32>,
}

impl Default for LoadgenSpec {
    fn default() -> Self {
        LoadgenSpec {
            clients: 8,
            workload: Workload::Mix,
            seed: 42,
            requests: 2_000,
            mode: Mode::Closed,
            transport: TransportKind::Tcp,
            pages_per_client: 1 << 14,
            rate_factor: 1.0,
            admission: AdmissionConfig::default(),
            page_bytes: 512,
            shards: 1,
            kill_primary_at: None,
            restart_after: None,
            victim_shard: 0,
            add_pair_at: None,
            remove_pair_at: None,
            repl_window: None,
            repl_batch_pages: None,
            legacy_repl: false,
            req_pages: None,
            remote_capacity: None,
            buffer_pages: None,
            pages_per_block: None,
        }
    }
}

/// Aggregated outcome of a run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    pub spec_line: String,
    /// Requests issued by all clients.
    pub issued: u64,
    /// Requests acknowledged (non-Busy replies).
    pub acked: u64,
    /// `Busy` replies observed by clients.
    pub shed: u64,
    /// `Unavailable` replies observed by clients (shard had no live
    /// replica within the gateway's retry deadline; 0 without faults).
    pub unavailable: u64,
    /// Requests lost to disconnect/timeout (should be 0).
    pub errors: u64,
    pub wall: Duration,
    /// Client-observed request latency (issue → reply), nanoseconds.
    pub latency: Histogram,
    /// Gateway-side view at the end of the run.
    pub gateway: GatewayStats,
    /// FNV-1a digest over the cluster's final data state across every
    /// client window (routed reads in sharded mode) — two runs of the same
    /// spec must produce the same digest (the determinism contract of the
    /// in-memory variant).
    pub state_digest: u64,
    /// Client-side per-shard breakdown (empty when `shards == 1`):
    /// acked requests and latency attributed to the shard owning each
    /// request's head lpn, via the same ring the gateway routes by.
    pub shard_lines: Vec<ShardLine>,
    /// Gateway-side per-shard counters (empty when `shards == 1`).
    pub shard_stats: Vec<ShardStats>,
    /// Per-phase breakdown of a fault- or elastic-schedule run (empty
    /// without one): acked requests bucketed by the phase their reply
    /// arrived in — pre-kill/outage/post-restart for a fault schedule,
    /// pre-scale/post-add/post-remove for an elastic one.
    pub phase_lines: Vec<PhaseLine>,
    /// Replication-pipeline view of the run, summed over every node in
    /// the cluster (primaries and secondaries alike).
    pub repl: ReplLine,
}

/// Cluster-wide replication summary for a run: the fault-tolerance
/// counters summed across nodes plus the batch-size distribution of every
/// first-send `WriteReplBatch` frame. On the legacy stop-and-wait path
/// `batch_hist.count == 0` and `stats.batches_sent == 0`.
#[derive(Debug, Clone, Default)]
pub struct ReplLine {
    /// [`ReplicationStats`] summed over all nodes.
    pub stats: ReplicationStats,
    /// Pages-per-batch distribution merged across all senders.
    pub batch_hist: fc_obs::HistogramSummary,
}

/// One schedule phase's client-observed share of a run.
#[derive(Debug, Clone)]
pub struct PhaseLine {
    pub name: &'static str,
    /// Offset from client start at which the phase begins.
    pub start: Duration,
    /// Acked requests whose reply arrived during this phase.
    pub acked: u64,
    /// Latency of those requests (issue → reply), nanoseconds.
    pub latency: Histogram,
}

/// One shard's client-observed share of a sharded run.
#[derive(Debug, Clone)]
pub struct ShardLine {
    pub shard: u16,
    /// Acked requests whose head lpn this shard owns.
    pub acked: u64,
    /// Latency of those requests (issue → reply), nanoseconds.
    pub latency: Histogram,
}

impl LoadReport {
    /// Requests acknowledged per wall-clock second.
    pub fn throughput(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.acked as f64 / secs
        }
    }

    /// Fraction of issued requests shed by admission control.
    pub fn shed_rate(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.shed as f64 / self.issued as f64
        }
    }

    /// The counter-sum identity for a sharded run: every per-shard
    /// `gateway.shard.*` page counter must sum exactly to its aggregate
    /// `gateway.*` twin. Trivially `Ok` for a single-pair run.
    pub fn verify_shard_sums(&self) -> Result<(), String> {
        if self.shard_stats.is_empty() {
            return Ok(());
        }
        ShardStatsSum::of(&self.shard_stats)
            .matches(&self.gateway)
            .map_err(|(name, sum, total)| {
                format!("shard sum mismatch: Σ shard.{name} = {sum} != gateway.{name} = {total}")
            })
    }
}

/// Deterministic page payload: a recognisable header + client/lpn/seq tag,
/// so the e2e test can verify acked writes byte-for-byte.
pub fn payload(client: u64, lpn: u64, seq: u64, page_bytes: usize) -> Bytes {
    let mut v = Vec::with_capacity(page_bytes.max(24));
    v.extend_from_slice(&client.to_le_bytes());
    v.extend_from_slice(&lpn.to_le_bytes());
    v.extend_from_slice(&seq.to_le_bytes());
    let mut x = client
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(lpn)
        .wrapping_add(seq << 17)
        | 1;
    // Fill a whole xorshift word per step: payload generation runs once
    // per written page in every loadgen client, so the filler must not
    // rival the system under test for CPU.
    while v.len() < page_bytes.max(24) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        v.extend_from_slice(&x.to_le_bytes());
    }
    v.truncate(page_bytes.max(24));
    Bytes::from(v)
}

/// The per-client request stream: the trace, remapped into the client's
/// private lpn window.
pub fn client_trace(spec: &LoadgenSpec, client_idx: usize) -> Trace {
    let mut synth = spec
        .workload
        .spec(spec.pages_per_client)
        .with_requests(spec.requests);
    if let Some(p) = spec.req_pages {
        synth.mean_req_pages = p.max(1.0);
    }
    synth.generate(spec.seed + client_idx as u64)
}

fn lpn_window(spec: &LoadgenSpec, client_idx: usize) -> u64 {
    client_idx as u64 * spec.pages_per_client
}

/// Per-client tallies, merged into the [`LoadReport`].
#[derive(Debug, Default, Clone, Copy)]
struct ClientTally {
    issued: u64,
    acked: u64,
    shed: u64,
    unavailable: u64,
    errors: u64,
}

/// Shared per-shard attribution for client threads: each acked request is
/// credited to the shard owning its head lpn, resolved through the same
/// ring the gateway routes by (placement is deterministic, so client-side
/// and gateway-side attribution agree).
struct ShardAttr {
    ring: Ring,
    acked: Vec<Counter>,
    latency: Vec<Histogram>,
}

impl ShardAttr {
    fn new(shards: u16, pages_per_block: u32) -> ShardAttr {
        ShardAttr {
            ring: cluster_ring(shards, pages_per_block),
            acked: (0..shards).map(|_| Counter::new()).collect(),
            latency: (0..shards).map(|_| Histogram::new()).collect(),
        }
    }

    fn shard_of(&self, lpn: u64) -> usize {
        usize::from(self.ring.shard_of_lpn(lpn))
    }

    fn record(&self, shard: usize, ns: u64) {
        self.acked[shard].inc();
        self.latency[shard].record(ns);
    }

    fn lines(&self) -> Vec<ShardLine> {
        self.acked
            .iter()
            .zip(&self.latency)
            .enumerate()
            .map(|(i, (acked, latency))| ShardLine {
                shard: i as u16,
                acked: acked.get(),
                latency: latency.clone(),
            })
            .collect()
    }
}

/// Phase bucketing for fault- and elastic-schedule runs, shared across
/// client threads: each acked request is credited to the phase its reply
/// arrived in, measured against the same origin instant the controller's
/// schedule counts from.
struct PhaseAttr {
    origin: Instant,
    /// `(name, start offset)`, ascending by offset, first at zero.
    bounds: Vec<(&'static str, Duration)>,
    acked: Vec<Counter>,
    latency: Vec<Histogram>,
}

impl PhaseAttr {
    fn new(origin: Instant, bounds: Vec<(&'static str, Duration)>) -> PhaseAttr {
        let n = bounds.len();
        PhaseAttr {
            origin,
            bounds,
            acked: (0..n).map(|_| Counter::new()).collect(),
            latency: (0..n).map(|_| Histogram::new()).collect(),
        }
    }

    fn record(&self, ns: u64) {
        let elapsed = self.origin.elapsed();
        let idx = self
            .bounds
            .iter()
            .rposition(|(_, start)| elapsed >= *start)
            .unwrap_or(0);
        self.acked[idx].inc();
        self.latency[idx].record(ns);
    }

    fn lines(&self) -> Vec<PhaseLine> {
        self.bounds
            .iter()
            .zip(self.acked.iter().zip(&self.latency))
            .map(|(&(name, start), (acked, latency))| PhaseLine {
                name,
                start,
                acked: acked.get(),
                latency: latency.clone(),
            })
            .collect()
    }
}

/// Client-observed recording sinks shared across driver threads.
#[derive(Clone, Copy)]
struct Sinks<'a> {
    latency: &'a Histogram,
    attr: Option<&'a ShardAttr>,
    phases: Option<&'a PhaseAttr>,
}

impl Sinks<'_> {
    fn record(&self, lpn: u64, ns: u64) {
        let shard = self.attr.map_or(0, |a| a.shard_of(lpn));
        self.record_at_shard(shard, ns);
    }

    fn record_at_shard(&self, shard: usize, ns: u64) {
        self.latency.record(ns);
        if let Some(attr) = self.attr {
            attr.record(shard, ns);
        }
        if let Some(phases) = self.phases {
            phases.record(ns);
        }
    }
}

fn drive_closed(
    client: &mut GatewayClient,
    trace: &Trace,
    base: u64,
    page_bytes: usize,
    sinks: Sinks<'_>,
) -> ClientTally {
    let mut t = ClientTally::default();
    let cid = client.client_id();
    for (seq, req) in trace.requests.iter().enumerate() {
        let started = Instant::now();
        let pages = req.pages.max(1);
        t.issued += 1;
        let outcome = match req.op {
            Op::Write => {
                let payloads: Vec<Bytes> = (0..u64::from(pages))
                    .map(|i| payload(cid, base + req.lpn + i, seq as u64, page_bytes))
                    .collect();
                client.write(base + req.lpn, payloads).map(|_| ())
            }
            Op::Read => client.read(base + req.lpn, pages).map(|_| ()),
            Op::Trim => client.trim(base + req.lpn, pages).map(|_| ()),
        };
        match outcome {
            Ok(()) => {
                t.acked += 1;
                sinks.record(base + req.lpn, started.elapsed().as_nanos() as u64);
            }
            Err(ClientError::Busy) => t.shed += 1,
            // A shard with no live replica degrades to a typed reply, not
            // a hang — count it and keep driving the surviving shards.
            Err(ClientError::Unavailable { .. }) => t.unavailable += 1,
            Err(_) => {
                t.errors += 1;
                break;
            }
        }
    }
    t
}

fn drive_open(
    client: &mut GatewayClient,
    trace: &Trace,
    base: u64,
    page_bytes: usize,
    rate_factor: f64,
    sinks: Sinks<'_>,
) -> ClientTally {
    let mut t = ClientTally::default();
    let cid = client.client_id();
    let schedule = trace.arrival_schedule().scaled(rate_factor);
    let origin = Instant::now();
    // id → (send instant, owning shard), for latency + shard attribution
    // once the (in-order) reply arrives.
    let mut inflight: std::collections::VecDeque<(u64, Instant, usize)> =
        std::collections::VecDeque::new();

    for (seq, req) in trace.requests.iter().enumerate() {
        // Wait for this request's arrival instant, draining replies while
        // we wait instead of sleeping blind.
        if let Some(offset) = schedule.offset(seq) {
            let due = Duration::from_nanos(offset.as_nanos());
            loop {
                let elapsed = origin.elapsed();
                if elapsed >= due {
                    break;
                }
                let wait = (due - elapsed).min(Duration::from_micros(200));
                if !drain_replies(client, &mut inflight, &mut t, sinks, wait) {
                    return t;
                }
            }
        }
        if !drain_replies(client, &mut inflight, &mut t, sinks, Duration::ZERO) {
            return t;
        }
        let pages = req.pages.max(1);
        t.issued += 1;
        let shard = sinks.attr.map_or(0, |a| a.shard_of(base + req.lpn));
        let sent = Instant::now();
        let result = match req.op {
            Op::Write => {
                let payloads: Vec<Bytes> = (0..u64::from(pages))
                    .map(|i| payload(cid, base + req.lpn + i, seq as u64, page_bytes))
                    .collect();
                client.send_write(base + req.lpn, payloads)
            }
            Op::Read => client.send_read(base + req.lpn, pages),
            Op::Trim => client.send_trim(base + req.lpn, pages),
        };
        match result {
            Ok(id) => inflight.push_back((id, sent, shard)),
            Err(_) => {
                t.errors += 1;
                return t;
            }
        }
    }
    // Collect the tail.
    while !inflight.is_empty() {
        if !drain_replies(client, &mut inflight, &mut t, sinks, Duration::from_secs(5)) {
            break;
        }
    }
    t
}

/// Drain replies for up to `budget`; `Duration::ZERO` empties the queue
/// without waiting. Returns false on a protocol/transport failure.
fn drain_replies(
    client: &GatewayClient,
    inflight: &mut std::collections::VecDeque<(u64, Instant, usize)>,
    t: &mut ClientTally,
    sinks: Sinks<'_>,
    budget: Duration,
) -> bool {
    loop {
        match client_recv(client, budget) {
            RecvOutcome::Reply(reply) => {
                let Some((id, sent, shard)) = inflight.pop_front() else {
                    t.errors += 1;
                    return false;
                };
                if reply.id() != id {
                    t.errors += 1;
                    return false;
                }
                if matches!(reply, Reply::Error { .. }) {
                    t.shed += 1;
                } else if matches!(reply, Reply::Unavailable { .. }) {
                    t.unavailable += 1;
                } else {
                    t.acked += 1;
                    sinks.record_at_shard(shard, sent.elapsed().as_nanos() as u64);
                }
                if budget == Duration::ZERO {
                    continue;
                }
                return true;
            }
            RecvOutcome::Empty => return true,
            RecvOutcome::Dead => {
                t.errors += 1;
                return false;
            }
        }
    }
}

enum RecvOutcome {
    Reply(Reply),
    Empty,
    Dead,
}

fn client_recv(client: &GatewayClient, timeout: Duration) -> RecvOutcome {
    match client.recv_reply(timeout) {
        Ok(reply) => RecvOutcome::Reply(reply),
        Err(ClientError::TimedOut) => RecvOutcome::Empty,
        Err(_) => RecvOutcome::Dead,
    }
}

/// Build a gateway-fronted cluster — one pair, or `spec.shards` pairs
/// behind a consistent-hash ring — run the spec, and report.
pub fn run(spec: &LoadgenSpec) -> Result<LoadReport, String> {
    if spec.shards == 0 {
        return Err("shards must be >= 1".into());
    }
    if spec.kill_primary_at.is_some() {
        if spec.shards < 2 {
            return Err(
                "fault schedule requires --shards >= 2 (a single pair has no shard-level \
                 secondary to fail over to)"
                    .into(),
            );
        }
        if spec.victim_shard >= spec.shards {
            return Err(format!(
                "victim shard {} out of range (shards = {})",
                spec.victim_shard, spec.shards
            ));
        }
    } else if spec.restart_after.is_some() {
        return Err("--restart-after requires --kill-primary-at".into());
    }
    if spec.add_pair_at.is_some() || spec.remove_pair_at.is_some() {
        if spec.shards < 2 {
            return Err("elastic schedule requires --shards >= 2".into());
        }
        if spec.kill_primary_at.is_some() {
            return Err(
                "--add-pair-at/--remove-pair-at cannot combine with --kill-primary-at \
                 (a rebalance refuses degraded sources)"
                    .into(),
            );
        }
        if let (Some(add), Some(remove)) = (spec.add_pair_at, spec.remove_pair_at) {
            if remove <= add {
                return Err("--remove-pair-at must be later than --add-pair-at".into());
            }
        }
    }
    let mut gw_cfg = GatewayConfig {
        admission: spec.admission,
        ..GatewayConfig::default()
    };
    if let Some(ppb) = spec.pages_per_block {
        gw_cfg.pages_per_block = ppb;
    }
    let pages_per_block = gw_cfg.pages_per_block;

    // Keep-alive for whatever backs the gateway: the single pair's B side,
    // or the whole sharded cluster (pairs + secondaries). Arc so the scale
    // controller can drive rebalances while the clients run.
    enum Backing {
        Single(Node),
        Sharded(Arc<ShardedGateway>),
    }

    // Replication-pipeline knobs, applied uniformly to every node.
    let tune = |cfg: &mut NodeConfig| {
        if let Some(w) = spec.repl_window {
            cfg.repl_window = w;
        }
        if let Some(p) = spec.repl_batch_pages {
            cfg.repl_batch_pages = p;
        }
        if let Some(c) = spec.remote_capacity {
            cfg.remote_capacity = c;
        }
        if let Some(b) = spec.buffer_pages {
            cfg.buffer_pages = b;
        }
        cfg.legacy_repl = spec.legacy_repl;
    };

    let (gateway, backing): (Arc<Gateway>, Backing) = if spec.shards == 1 {
        let (ta, tb) = mem_pair();
        let backend = shared_backend(MemBackend::default());
        let mut cfg_a = NodeConfig::test_profile(0);
        tune(&mut cfg_a);
        let mut cfg_b = NodeConfig::test_profile(1);
        tune(&mut cfg_b);
        let node_a = Arc::new(Node::spawn(cfg_a, ta, backend.clone()));
        let node_b = Node::spawn(cfg_b, tb, backend);
        (Gateway::new(gw_cfg, node_a), Backing::Single(node_b))
    } else {
        let ring_cfg = RingConfig {
            seed: RING_SEED,
            block_pages: pages_per_block,
            ..RingConfig::default()
        };
        let sg = ShardedGateway::spawn_mem_with(gw_cfg, ring_cfg, spec.shards, tune);
        (Arc::clone(sg.gateway()), Backing::Sharded(Arc::new(sg)))
    };

    // Client-side shard attribution, shared across client threads.
    let attr: Option<Arc<ShardAttr>> =
        (spec.shards > 1).then(|| Arc::new(ShardAttr::new(spec.shards, pages_per_block)));

    let tcp_addr = match spec.transport {
        TransportKind::Tcp => Some(
            gateway
                .listen_tcp("127.0.0.1:0")
                .map_err(|e| format!("listen: {e}"))?,
        ),
        TransportKind::Mem => None,
    };

    let latency = Histogram::new();
    let started = Instant::now();

    // Phase buckets for schedule runs, counted from the same origin the
    // controller threads' schedules use.
    let phase_bounds: Option<Vec<(&'static str, Duration)>> =
        if let Some(kill_at) = spec.kill_primary_at {
            let mut bounds = vec![("pre-kill", Duration::ZERO), ("outage", kill_at)];
            if let Some(r) = spec.restart_after {
                bounds.push(("post-restart", kill_at + r));
            }
            Some(bounds)
        } else if spec.add_pair_at.is_some() || spec.remove_pair_at.is_some() {
            let mut bounds = vec![("pre-scale", Duration::ZERO)];
            if let Some(add_at) = spec.add_pair_at {
                bounds.push(("post-add", add_at));
            }
            if let Some(remove_at) = spec.remove_pair_at {
                bounds.push(("post-remove", remove_at));
            }
            Some(bounds)
        } else {
            None
        };
    let phases: Option<Arc<PhaseAttr>> =
        phase_bounds.map(|bounds| Arc::new(PhaseAttr::new(started, bounds)));

    fn sleep_until(t: Instant) {
        let now = Instant::now();
        if t > now {
            std::thread::sleep(t - now);
        }
    }

    // Fault controller: crash (and optionally restart) the victim shard's
    // primary on the spec's schedule.
    let fault = match (&backing, spec.kill_primary_at) {
        (Backing::Sharded(sg), Some(kill_at)) => {
            let victim = sg.primary(spec.victim_shard);
            let restart_after = spec.restart_after;
            Some(
                std::thread::Builder::new()
                    .name("fc-loadgen-fault".into())
                    .spawn(move || {
                        let kill_time = started + kill_at;
                        sleep_until(kill_time);
                        victim.fail();
                        if let Some(after) = restart_after {
                            sleep_until(kill_time + after);
                            victim.restart();
                        }
                    })
                    .map_err(|e| format!("spawn fault controller: {e}"))?,
            )
        }
        _ => None,
    };

    // Scale controller: live-attach a fresh pair and/or live-remove the
    // newest pair on the spec's schedule, using the fc-rebalance
    // epoch-fenced migration protocol while the clients keep driving.
    let scale = match (
        &backing,
        spec.add_pair_at.is_some() || spec.remove_pair_at.is_some(),
    ) {
        (Backing::Sharded(sg), true) => {
            let sg = Arc::clone(sg);
            let add_at = spec.add_pair_at;
            let remove_at = spec.remove_pair_at;
            let base_shards = spec.shards;
            Some(
                std::thread::Builder::new()
                    .name("fc-loadgen-scale".into())
                    .spawn(move || -> Result<(), String> {
                        let cfg = RebalanceConfig::default();
                        let mut newest = base_shards - 1;
                        if let Some(at) = add_at {
                            sleep_until(started + at);
                            let (p, s) = fc_rebalance::spawn_mem_pair(base_shards, pages_per_block);
                            newest = base_shards;
                            fc_rebalance::add_pair(&sg, p, s, &cfg)
                                .map_err(|e| format!("add-pair: {e}"))?;
                        }
                        if let Some(at) = remove_at {
                            sleep_until(started + at);
                            fc_rebalance::remove_pair(&sg, newest, &cfg)
                                .map_err(|e| format!("remove-pair {newest}: {e}"))?;
                        }
                        Ok(())
                    })
                    .map_err(|e| format!("spawn scale controller: {e}"))?,
            )
        }
        _ => None,
    };

    let mut handles = Vec::new();
    for idx in 0..spec.clients {
        let trace = client_trace(spec, idx);
        let base = lpn_window(spec, idx);
        let mut client = match spec.transport {
            TransportKind::Tcp => {
                let addr = tcp_addr.expect("tcp addr");
                GatewayClient::connect_tcp(addr, idx as u64 + 1)
                    .map_err(|e| format!("connect: {e}"))?
            }
            TransportKind::Mem => gateway.connect_mem_as(idx as u64 + 1),
        };
        let latency = latency.clone();
        let attr = attr.clone();
        let phases = phases.clone();
        let mode = spec.mode;
        let page_bytes = spec.page_bytes;
        let rate_factor = spec.rate_factor;
        handles.push(
            std::thread::Builder::new()
                .name(format!("fc-loadgen-{idx}"))
                .spawn(move || {
                    client.hello().map_err(|e| format!("hello: {e}"))?;
                    let sinks = Sinks {
                        latency: &latency,
                        attr: attr.as_deref(),
                        phases: phases.as_deref(),
                    };
                    Ok::<ClientTally, String>(match mode {
                        Mode::Closed => drive_closed(&mut client, &trace, base, page_bytes, sinks),
                        Mode::Open => {
                            drive_open(&mut client, &trace, base, page_bytes, rate_factor, sinks)
                        }
                    })
                })
                .map_err(|e| format!("spawn: {e}"))?,
        );
    }

    let mut total = ClientTally::default();
    for h in handles {
        let tally = h.join().map_err(|_| "client thread panicked")??;
        total.issued += tally.issued;
        total.acked += tally.acked;
        total.shed += tally.shed;
        total.unavailable += tally.unavailable;
        total.errors += tally.errors;
    }
    if let Some(fault) = fault {
        fault
            .join()
            .map_err(|_| "fault controller thread panicked")?;
    }
    if let Some(scale) = scale {
        scale
            .join()
            .map_err(|_| "scale controller thread panicked")??;
    }
    let wall = started.elapsed();
    // The final permit is released just *after* the last reply is sent;
    // wait for the session threads to drain so the snapshot sees a quiesced
    // gateway (residual in-flight 0).
    let drain_deadline = Instant::now() + Duration::from_secs(2);
    while gateway.stats().inflight != 0 && Instant::now() < drain_deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    let gateway_stats = gateway.stats();
    let shard_stats = if spec.shards > 1 {
        gateway.shard_stats()
    } else {
        Vec::new()
    };
    let shard_lines = attr.as_deref().map(ShardAttr::lines).unwrap_or_default();
    let digest = state_digest(&gateway, spec.clients as u64 * spec.pages_per_client);

    // Cluster-wide replication summary, snapshotted while the nodes are
    // still alive (both sides of every pair — secondaries count dedup and
    // integrity rejections the senders never see).
    let mut repl = ReplLine::default();
    {
        let mut absorb = |node: &Node| {
            repl.stats.absorb(&node.stats().repl);
            merge_hist_summary(&mut repl.batch_hist, &node.repl_batch_histogram());
        };
        match &backing {
            Backing::Single(node_b) => {
                absorb(gateway.node());
                absorb(node_b);
            }
            Backing::Sharded(sg) => {
                for shard in 0..sg.shards() {
                    absorb(&sg.primary(shard));
                    absorb(&sg.secondary(shard));
                }
            }
        }
    }

    gateway.shutdown();
    match backing {
        Backing::Single(node_b) => drop(node_b),
        Backing::Sharded(sg) => sg.shutdown(),
    }

    let mut spec_line = format!(
        "trace={} clients={} seed={} requests={} mode={} transport={} shards={}",
        spec.workload.name(),
        spec.clients,
        spec.seed,
        spec.requests,
        spec.mode.name(),
        spec.transport.name(),
        spec.shards,
    );
    if let Some(kill_at) = spec.kill_primary_at {
        spec_line.push_str(&format!(
            " kill-primary(shard {})@{}ms",
            spec.victim_shard,
            kill_at.as_millis()
        ));
        if let Some(after) = spec.restart_after {
            spec_line.push_str(&format!(" restart+{}ms", after.as_millis()));
        }
    }
    if let Some(add_at) = spec.add_pair_at {
        spec_line.push_str(&format!(" add-pair@{}ms", add_at.as_millis()));
    }
    if let Some(remove_at) = spec.remove_pair_at {
        spec_line.push_str(&format!(" remove-pair@{}ms", remove_at.as_millis()));
    }
    if let Some(p) = spec.req_pages {
        spec_line.push_str(&format!(" req-pages={p}"));
    }
    if let Some(c) = spec.remote_capacity {
        spec_line.push_str(&format!(" remote-capacity={c}"));
    }
    if let Some(b) = spec.buffer_pages {
        spec_line.push_str(&format!(" buffer-pages={b}"));
    }
    if let Some(ppb) = spec.pages_per_block {
        spec_line.push_str(&format!(" pages-per-block={ppb}"));
    }
    if spec.legacy_repl {
        spec_line.push_str(" repl=legacy");
    } else {
        spec_line.push_str(" repl=pipelined");
        if let Some(w) = spec.repl_window {
            spec_line.push_str(&format!(" repl-window={w}"));
        }
        if let Some(p) = spec.repl_batch_pages {
            spec_line.push_str(&format!(" repl-batch-pages={p}"));
        }
    }

    Ok(LoadReport {
        spec_line,
        issued: total.issued,
        acked: total.acked,
        shed: total.shed,
        unavailable: total.unavailable,
        errors: total.errors,
        wall,
        latency,
        gateway: gateway_stats,
        state_digest: digest,
        shard_lines,
        shard_stats,
        phase_lines: phases.as_deref().map(PhaseAttr::lines).unwrap_or_default(),
        repl,
    })
}

/// Merge histogram summary `other` into `into`: counts, sums, and buckets
/// add; max takes the larger; the percentiles are recomputed from the
/// merged buckets with the same nearest-rank rule
/// [`fc_obs::Histogram::percentile`] uses (every summary comes from the
/// same bucket layout, so upper bounds merge exactly).
fn merge_hist_summary(into: &mut fc_obs::HistogramSummary, other: &fc_obs::HistogramSummary) {
    into.count += other.count;
    into.sum = into.sum.wrapping_add(other.sum);
    into.max = into.max.max(other.max);
    for &(upper, n) in &other.buckets {
        match into.buckets.binary_search_by_key(&upper, |&(u, _)| u) {
            Ok(i) => into.buckets[i].1 += n,
            Err(i) => into.buckets.insert(i, (upper, n)),
        }
    }
    let pct = |p: f64| -> u64 {
        if into.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * into.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for &(upper, n) in &into.buckets {
            cum += n;
            if cum >= rank {
                return upper;
            }
        }
        into.buckets.last().map_or(0, |&(u, _)| u)
    };
    into.p50 = pct(50.0);
    into.p99 = pct(99.0);
    into.p999 = pct(99.9);
}

/// FNV-1a fold of every present page in `[0, total_pages)` — the
/// cluster's observable final state for determinism comparisons. Reads go
/// through the gateway's routing, so the digest covers every shard.
fn state_digest(gateway: &Gateway, total_pages: u64) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for lpn in 0..total_pages {
        if let Some(data) = gateway.read_page(lpn) {
            h ^= lpn.wrapping_add(1);
            h = h.wrapping_mul(PRIME);
            for &b in &data {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        }
    }
    h
}

/// Render the machine-readable report: one flat JSON object per run, the
/// shape `scripts/bench.sh` aggregates into `BENCH_10.json`. Hand-rolled —
/// the values are numbers plus one ASCII spec string, so no serializer
/// dependency is warranted.
pub fn report_json(r: &LoadReport) -> String {
    let spec = r.spec_line.replace('\\', "\\\\").replace('"', "\\\"");
    let h = &r.repl.batch_hist;
    let mean = if h.count == 0 {
        0.0
    } else {
        h.sum as f64 / h.count as f64
    };
    format!(
        concat!(
            "{{\"spec\": \"{spec}\", ",
            "\"issued\": {issued}, \"acked\": {acked}, \"shed\": {shed}, ",
            "\"unavailable\": {unavailable}, \"errors\": {errors}, ",
            "\"wall_secs\": {wall:.6}, \"throughput_rps\": {tput:.3}, ",
            "\"shed_rate\": {shed_rate:.6}, ",
            "\"latency_us\": {{\"p50\": {p50:.1}, \"p99\": {p99:.1}, ",
            "\"p999\": {p999:.1}, \"max\": {max:.1}}}, ",
            "\"replication\": {{\"batches_sent\": {bsent}, ",
            "\"batch_pages\": {bpages}, \"retries\": {retries}, ",
            "\"pages_per_batch\": {{\"mean\": {bmean:.2}, \"p50\": {bp50}, ",
            "\"p99\": {bp99}, \"max\": {bmax}}}}}, ",
            "\"state_digest\": \"{digest:#018x}\"}}\n",
        ),
        spec = spec,
        issued = r.issued,
        acked = r.acked,
        shed = r.shed,
        unavailable = r.unavailable,
        errors = r.errors,
        wall = r.wall.as_secs_f64(),
        tput = r.throughput(),
        shed_rate = r.shed_rate(),
        p50 = r.latency.p50() as f64 / 1_000.0,
        p99 = r.latency.p99() as f64 / 1_000.0,
        p999 = r.latency.p999() as f64 / 1_000.0,
        max = r.latency.max() as f64 / 1_000.0,
        bsent = r.repl.stats.batches_sent,
        bpages = r.repl.stats.batch_pages,
        retries = r.repl.stats.retries,
        bmean = mean,
        bp50 = h.p50,
        bp99 = h.p99,
        bmax = h.max,
        digest = r.state_digest,
    )
}

/// Render the human-readable report table.
pub fn report_text(r: &LoadReport) -> String {
    let us = |ns: u64| ns as f64 / 1_000.0;
    let mut out = String::new();
    out.push_str(&format!("fc-loadgen: {}\n", r.spec_line));
    out.push_str(&format!("  {:<12} {:>12}\n", "issued", r.issued));
    out.push_str(&format!("  {:<12} {:>12}\n", "acked", r.acked));
    out.push_str(&format!(
        "  {:<12} {:>12}   ({:.2}% of issued; gateway.shed_total={})\n",
        "shed",
        r.shed,
        100.0 * r.shed_rate(),
        r.gateway.shed_total
    ));
    if r.unavailable > 0 || !r.phase_lines.is_empty() {
        out.push_str(&format!(
            "  {:<12} {:>12}   (gateway.unavailable={})\n",
            "unavailable", r.unavailable, r.gateway.unavailable
        ));
    }
    out.push_str(&format!("  {:<12} {:>12}\n", "errors", r.errors));
    out.push_str(&format!(
        "  {:<12} {:>12.1} req/s over {:.3} s\n",
        "throughput",
        r.throughput(),
        r.wall.as_secs_f64()
    ));
    out.push_str(&format!(
        "  {:<12} p50 {:>9.1} µs   p99 {:>9.1} µs   p999 {:>9.1} µs   max {:>9.1} µs\n",
        "latency",
        us(r.latency.p50()),
        us(r.latency.p99()),
        us(r.latency.p999()),
        us(r.latency.max()),
    ));
    if r.repl.stats.batches_sent > 0 {
        let h = &r.repl.batch_hist;
        let mean = if h.count == 0 {
            0.0
        } else {
            h.sum as f64 / h.count as f64
        };
        out.push_str(&format!(
            "  {:<12} batches {}  pages {}  (pages/batch mean {:.1}  p50 {}  p99 {}  max {})  retries {}\n",
            "replication",
            r.repl.stats.batches_sent,
            r.repl.stats.batch_pages,
            mean,
            h.p50,
            h.p99,
            h.max,
            r.repl.stats.retries,
        ));
    } else {
        out.push_str(&format!(
            "  {:<12} legacy stop-and-wait  replicated-sends n/a  retries {}\n",
            "replication", r.repl.stats.retries,
        ));
    }
    out.push_str(&format!(
        "  {:<12} batches {}  runs {}  coalesced {}  peak-inflight {}  residual {}\n",
        "gateway",
        r.gateway.batches,
        r.gateway.runs,
        r.gateway.coalesced_pages,
        r.gateway.max_inflight_seen,
        r.gateway.inflight,
    ));
    if !r.phase_lines.is_empty() {
        out.push_str(&format!(
            "  {:<12} failovers {}  failbacks {}  retries {}  unavailable {}\n",
            "health",
            r.gateway.failovers,
            r.gateway.failbacks,
            r.gateway.retries,
            r.gateway.unavailable,
        ));
    }
    if r.gateway.rebalances_started > 0 {
        out.push_str(&format!(
            "  {:<12} started {}  completed {}  moved-blocks {}  moved-pages {}  batches {}\n",
            "rebalance",
            r.gateway.rebalances_started,
            r.gateway.rebalances_completed,
            r.gateway.rebalance_moved_blocks,
            r.gateway.rebalance_moved_pages,
            r.gateway.rebalance_batches,
        ));
    }
    for line in &r.phase_lines {
        out.push_str(&format!(
            "  phase {:<12} from {:>6} ms   acked {:>8}   p50 {:>9.1} µs   p99 {:>9.1} µs\n",
            line.name,
            line.start.as_millis(),
            line.acked,
            us(line.latency.p50()),
            us(line.latency.p99()),
        ));
    }
    for line in &r.shard_lines {
        let share = if r.acked == 0 {
            0.0
        } else {
            100.0 * line.acked as f64 / r.acked as f64
        };
        let mut row = format!(
            "  shard {:<6} acked {:>8} ({:>5.1}%)   p50 {:>9.1} µs   p99 {:>9.1} µs",
            line.shard,
            line.acked,
            share,
            us(line.latency.p50()),
            us(line.latency.p99()),
        );
        if let Some(s) = r.shard_stats.iter().find(|s| s.shard == line.shard) {
            row.push_str(&format!(
                "   node ops {}  runs {}  rd {}  wr {}",
                s.ops, s.runs, s.read_pages, s.write_pages
            ));
        }
        row.push('\n');
        out.push_str(&row);
    }
    out.push_str(&format!(
        "  {:<12} {:#018x}\n",
        "state-digest", r.state_digest
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payloads_are_deterministic_and_tagged() {
        let a = payload(3, 77, 5, 128);
        let b = payload(3, 77, 5, 128);
        assert_eq!(a, b);
        assert_eq!(a.len(), 128);
        assert_ne!(a, payload(4, 77, 5, 128));
        assert_ne!(a, payload(3, 78, 5, 128));
        // Header tags survive.
        assert_eq!(&a[0..8], &3u64.to_le_bytes());
        assert_eq!(&a[8..16], &77u64.to_le_bytes());
    }

    #[test]
    fn client_traces_are_deterministic_and_distinct() {
        let spec = LoadgenSpec {
            requests: 50,
            ..LoadgenSpec::default()
        };
        let t0a = client_trace(&spec, 0);
        let t0b = client_trace(&spec, 0);
        assert_eq!(t0a.requests, t0b.requests, "same seed ⇒ same stream");
        let t1 = client_trace(&spec, 1);
        assert_ne!(t0a.requests, t1.requests, "per-client seeds differ");
    }

    #[test]
    fn closed_loop_mem_run_is_clean() {
        let spec = LoadgenSpec {
            clients: 3,
            requests: 60,
            transport: TransportKind::Mem,
            admission: AdmissionConfig::unlimited(),
            pages_per_client: 1 << 10,
            ..LoadgenSpec::default()
        };
        let report = run(&spec).expect("run");
        assert_eq!(report.issued, 180);
        assert_eq!(report.acked, 180, "unlimited admission sheds nothing");
        assert_eq!(report.shed, 0);
        assert_eq!(report.errors, 0);
        assert_eq!(report.latency.count(), 180);
        assert_eq!(report.gateway.shed_total, 0);
        let text = report_text(&report);
        assert!(text.contains("p999"));
        assert!(text.contains("throughput"));
    }

    #[test]
    fn open_loop_mem_run_collects_every_reply() {
        let spec = LoadgenSpec {
            clients: 2,
            requests: 40,
            mode: Mode::Open,
            transport: TransportKind::Mem,
            rate_factor: 1_000_000.0, // fire as fast as the schedule allows
            admission: AdmissionConfig::unlimited(),
            pages_per_client: 1 << 10,
            ..LoadgenSpec::default()
        };
        let report = run(&spec).expect("run");
        assert_eq!(report.issued, 80);
        assert_eq!(report.acked + report.shed, 80, "every request answered");
        assert_eq!(report.errors, 0);
    }

    #[test]
    fn loadgen_shed_count_matches_gateway_counter() {
        // Starved token buckets: most requests are shed, and the client-
        // side Busy tally must agree exactly with the gateway's counter.
        let spec = LoadgenSpec {
            clients: 2,
            requests: 50,
            transport: TransportKind::Mem,
            admission: AdmissionConfig {
                per_client_rate: 0.0,
                per_client_burst: 5.0,
                max_inflight: u32::MAX,
            },
            pages_per_client: 1 << 10,
            ..LoadgenSpec::default()
        };
        let report = run(&spec).expect("run");
        assert_eq!(report.errors, 0);
        assert_eq!(report.acked, 10, "exactly the two bursts are admitted");
        assert_eq!(report.shed, 90);
        assert_eq!(
            report.shed, report.gateway.shed_total,
            "client view and gateway counter agree exactly"
        );
        assert!(report.shed_rate() > 0.8);
    }

    #[test]
    fn sharded_closed_loop_is_deterministic_and_sums_match() {
        let spec = LoadgenSpec {
            clients: 4,
            requests: 80,
            transport: TransportKind::Mem,
            admission: AdmissionConfig::unlimited(),
            pages_per_client: 1 << 10,
            shards: 4,
            ..LoadgenSpec::default()
        };
        let a = run(&spec).expect("run a");
        let b = run(&spec).expect("run b");

        assert_eq!(a.errors, 0);
        assert_eq!(a.issued, 320);
        assert_eq!(a.acked, 320, "unlimited admission sheds nothing");
        assert_eq!(
            a.state_digest, b.state_digest,
            "mem closed-loop sharded runs are bit-deterministic"
        );

        // Per-shard gateway counters sum exactly to the aggregates.
        a.verify_shard_sums().expect("counter-sum identity");
        b.verify_shard_sums().expect("counter-sum identity");

        // Client-side attribution covers every acked request.
        assert_eq!(a.shard_lines.len(), 4);
        let acked_sum: u64 = a.shard_lines.iter().map(|l| l.acked).sum();
        assert_eq!(acked_sum, a.acked);
        let samples: u64 = a.shard_lines.iter().map(|l| l.latency.count()).sum();
        assert_eq!(samples, a.latency.count());
        // With the default vnode count the 4 shards all see traffic.
        assert!(a.shard_lines.iter().all(|l| l.acked > 0));

        let text = report_text(&a);
        assert!(text.contains("shard 0"));
        assert!(text.contains("shard 3"));
        assert!(text.contains("shards=4"));
    }

    #[test]
    fn fault_schedule_fails_over_and_keeps_serving() {
        let spec = LoadgenSpec {
            clients: 4,
            requests: 1_500,
            transport: TransportKind::Mem,
            admission: AdmissionConfig::unlimited(),
            pages_per_client: 1 << 10,
            shards: 2,
            kill_primary_at: Some(Duration::from_millis(5)),
            restart_after: Some(Duration::from_millis(40)),
            ..LoadgenSpec::default()
        };
        let report = run(&spec).expect("run");
        assert_eq!(report.errors, 0, "no client saw a hang or disconnect");
        assert_eq!(report.issued, 6_000);
        assert_eq!(
            report.acked + report.shed + report.unavailable,
            report.issued,
            "every request got a typed answer"
        );
        assert!(
            report.gateway.failovers >= 1,
            "killing the primary mid-run forces a failover"
        );
        report.verify_shard_sums().expect("counter-sum identity");
        assert_eq!(report.phase_lines.len(), 3);
        assert_eq!(report.phase_lines[0].name, "pre-kill");
        assert_eq!(report.phase_lines[2].name, "post-restart");
        let acked_by_phase: u64 = report.phase_lines.iter().map(|p| p.acked).sum();
        assert_eq!(acked_by_phase, report.acked);
        let text = report_text(&report);
        assert!(text.contains("phase pre-kill"));
        assert!(text.contains("kill-primary(shard 0)@5ms"));
        assert!(text.contains("restart+40ms"));
        assert!(text.contains("failovers"));
    }

    #[test]
    fn fault_schedule_validation() {
        let single = LoadgenSpec {
            kill_primary_at: Some(Duration::from_millis(1)),
            ..LoadgenSpec::default()
        };
        assert!(run(&single).is_err(), "single pair has no shard failover");
        let bad_victim = LoadgenSpec {
            shards: 2,
            victim_shard: 5,
            kill_primary_at: Some(Duration::from_millis(1)),
            ..LoadgenSpec::default()
        };
        assert!(run(&bad_victim).is_err());
        let orphan_restart = LoadgenSpec {
            shards: 2,
            restart_after: Some(Duration::from_millis(1)),
            ..LoadgenSpec::default()
        };
        assert!(run(&orphan_restart).is_err());
    }

    #[test]
    fn elastic_schedule_scales_live_and_stays_deterministic() {
        let spec = LoadgenSpec {
            clients: 4,
            requests: 1_500,
            transport: TransportKind::Mem,
            admission: AdmissionConfig::unlimited(),
            pages_per_client: 1 << 10,
            shards: 2,
            add_pair_at: Some(Duration::from_millis(5)),
            remove_pair_at: Some(Duration::from_millis(30)),
            ..LoadgenSpec::default()
        };
        let a = run(&spec).expect("run a");
        let b = run(&spec).expect("run b");

        assert_eq!(a.errors, 0, "no client saw a hang or disconnect");
        assert_eq!(a.issued, 6_000);
        assert_eq!(a.acked, 6_000, "rebalancing never rejects admitted ops");
        assert_eq!(a.gateway.rebalances_started, 2, "one add + one remove");
        assert_eq!(a.gateway.rebalances_completed, 2);
        // What migrated is timing-dependent, but the final data state is
        // not: acked payloads survive both membership changes bit-exactly.
        assert_eq!(
            a.state_digest, b.state_digest,
            "mem closed-loop elastic runs are bit-deterministic"
        );
        // The counter-sum identity holds across attach + retire (the
        // retired pair's slot keeps its frozen counters).
        a.verify_shard_sums().expect("counter-sum identity");
        b.verify_shard_sums().expect("counter-sum identity");
        assert_eq!(a.phase_lines.len(), 3);
        assert_eq!(a.phase_lines[0].name, "pre-scale");
        assert_eq!(a.phase_lines[1].name, "post-add");
        assert_eq!(a.phase_lines[2].name, "post-remove");
        let acked_by_phase: u64 = a.phase_lines.iter().map(|p| p.acked).sum();
        assert_eq!(acked_by_phase, a.acked);
        let text = report_text(&a);
        assert!(text.contains("add-pair@5ms"));
        assert!(text.contains("remove-pair@30ms"));
        assert!(text.contains("rebalance"));
        assert!(text.contains("phase post-add"));
    }

    #[test]
    fn elastic_schedule_validation() {
        let single = LoadgenSpec {
            add_pair_at: Some(Duration::from_millis(1)),
            ..LoadgenSpec::default()
        };
        assert!(run(&single).is_err(), "elastic schedule needs >= 2 shards");
        let with_fault = LoadgenSpec {
            shards: 2,
            add_pair_at: Some(Duration::from_millis(1)),
            kill_primary_at: Some(Duration::from_millis(1)),
            ..LoadgenSpec::default()
        };
        assert!(run(&with_fault).is_err(), "schedules cannot combine");
        let backwards = LoadgenSpec {
            shards: 2,
            add_pair_at: Some(Duration::from_millis(10)),
            remove_pair_at: Some(Duration::from_millis(5)),
            ..LoadgenSpec::default()
        };
        assert!(run(&backwards).is_err(), "remove must follow add");
    }

    #[test]
    fn single_pair_report_has_no_shard_breakdown() {
        let spec = LoadgenSpec {
            clients: 2,
            requests: 30,
            transport: TransportKind::Mem,
            admission: AdmissionConfig::unlimited(),
            pages_per_client: 1 << 10,
            ..LoadgenSpec::default()
        };
        let report = run(&spec).expect("run");
        assert!(report.shard_lines.is_empty());
        assert!(report.shard_stats.is_empty());
        report.verify_shard_sums().expect("vacuously ok");
        assert!(!report_text(&report).contains("shard 0"));
    }
}
