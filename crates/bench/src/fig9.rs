//! Figure 9 — dynamic memory allocation: θ vs local arrival rate.
//!
//! The paper runs Fin1 (write-intensive) or Fin2 (read-intensive) on the
//! *remote* server, sweeps the *local* server's arrival rate from 0.1 to
//! 0.5 requests/ms, and plots the local server's remote-buffer ratio θ with
//! α = 0.4, β = 0.2, γ = 0.4. Expected shape: θ decreases with local load
//! and is much higher when the peer is write-intensive.

use crate::params::ExperimentParams;
use fc_simkit::SimDuration;
use fc_ssd::FtlKind;
use fc_trace::SyntheticSpec;
use flashcoop::{CoopPair, FlashCoopConfig, PolicyKind};

/// One x-axis point.
#[derive(Debug, Clone, Copy)]
pub struct Fig9Point {
    /// Local access arrival rate, requests per millisecond.
    pub rate: f64,
    /// Mean θ of the local server with Fin1 on the remote server.
    pub theta_fin1: f64,
    /// Mean θ of the local server with Fin2 on the remote server.
    pub theta_fin2: f64,
}

/// The paper's x-axis.
pub const RATES: [f64; 5] = [0.1, 0.2, 0.3, 0.4, 0.5];

/// Mean θ of server 0 (the "local" server) for a given local rate and
/// remote workload.
fn mean_theta(
    params: &ExperimentParams,
    rate_per_ms: f64,
    remote: &SyntheticSpec,
    seed: u64,
) -> f64 {
    let mut cfg0 = base_cfg(params);
    let cfg1 = base_cfg(params);
    cfg0.alloc.period = SimDuration::from_secs(2);

    // Local workload: the Mix pattern at the requested arrival rate.
    let mut local = SyntheticSpec::mix(params.address_pages);
    local.mean_interarrival = SimDuration::from_secs_f64(1e-3 / rate_per_ms);
    local.requests = params.requests.min(20_000);
    let local_trace = local.generate(seed);

    // Remote workload: accelerate the Table I arrival process so the remote
    // server is active for the whole local run.
    let local_secs = local_trace.duration().as_secs_f64().max(1.0);
    let mut remote = remote.clone();
    remote.mean_interarrival = SimDuration::from_millis(10);
    remote.requests = ((local_secs / 0.010) as usize).clamp(500, params.requests);
    let remote_trace = remote.generate(seed + 1);

    let mut pair = CoopPair::new(cfg0, cfg1, true);
    pair.replay([&local_trace, &remote_trace], &[]);
    let log = pair.theta_log(0);
    if log.is_empty() {
        return pair.theta_now(0);
    }
    log.iter().map(|s| s.theta).sum::<f64>() / log.len() as f64
}

fn base_cfg(params: &ExperimentParams) -> FlashCoopConfig {
    let mut cfg = FlashCoopConfig::evaluation(FtlKind::PageLevel, PolicyKind::Lar);
    cfg.buffer_pages = params.buffer_pages;
    // Realistic per-request CPU cost so the local-usage term b responds to
    // the arrival-rate sweep (storage-stack overhead on 2010-era servers).
    cfg.cpu_per_request = SimDuration::from_millis(2);
    cfg
}

/// Run the Figure 9 sweep.
pub fn run(params: &ExperimentParams) -> Vec<Fig9Point> {
    let specs = params.traces();
    RATES
        .iter()
        .map(|&rate| Fig9Point {
            rate,
            theta_fin1: mean_theta(params, rate, &specs[0], params.seed),
            theta_fin2: mean_theta(params, rate, &specs[1], params.seed),
        })
        .collect()
}

/// Format the sweep as the Figure 9 table.
pub fn table(points: &[Fig9Point]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>12} {:>22} {:>22}\n",
        "Rate(req/ms)", "theta%, Fin1 remote", "theta%, Fin2 remote"
    ));
    for p in points {
        out.push_str(&format!(
            "{:>12.1} {:>22.1} {:>22.1}\n",
            p.rate,
            p.theta_fin1 * 100.0,
            p.theta_fin2 * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theta_orders_by_peer_write_intensity() {
        let mut p = ExperimentParams::quick();
        p.requests = 2_000;
        let specs = p.traces();
        let t_fin1 = mean_theta(&p, 0.3, &specs[0], 7);
        let t_fin2 = mean_theta(&p, 0.3, &specs[1], 7);
        assert!(
            t_fin1 > t_fin2,
            "write-heavy peer must earn more: {t_fin1:.3} vs {t_fin2:.3}"
        );
    }

    #[test]
    fn table_formats() {
        let pts = vec![Fig9Point {
            rate: 0.1,
            theta_fin1: 0.3,
            theta_fin2: 0.05,
        }];
        let t = table(&pts);
        assert!(t.contains("0.1"));
        assert!(t.contains("30.0"));
    }
}
