//! Extension experiments beyond the paper's figures.
//!
//! Three studies the paper *argues* but does not measure:
//!
//! * [`short_lived`] — Section III.A claims short-lived files "are often
//!   never really written to SSD"; this quantifies the write traffic the
//!   cooperative buffer absorbs for a create→delete workload.
//! * [`recovery_time`] — Section III.D observes that "failure recovery time
//!   is a tradeoff between performance and reliability. Large remote buffer
//!   … requires long time to transfer during failure recovery"; this sweeps
//!   the buffer size and measures that recovery time.
//! * [`ablations`] — the design-choice ablations from DESIGN.md §5:
//!   clustering, the LAR dirty tie-break, replication, and the network tier.

use crate::params::ExperimentParams;
use fc_simkit::{DetRng, LinkModel, SimDuration, SimTime};
use fc_ssd::FtlKind;
use fc_trace::synth::ShortLivedSpec;
use flashcoop::{replay, CoopServer, FlashCoopConfig, PolicyKind, RemoteStore, Scheme};

/// Section III.A: short-lived files under FlashCoop vs Baseline.
///
/// Returns a table of (scheme, host pages written to SSD, erase count,
/// write-avoidance vs Baseline).
pub fn short_lived(params: &ExperimentParams) -> String {
    let spec = ShortLivedSpec {
        files: params.requests.min(10_000),
        address_pages: params.address_pages,
        ..ShortLivedSpec::default()
    };
    let trace = spec.generate(params.seed);
    let mut out = String::new();
    out.push_str("Short-lived files (write -> delete within the buffer's residency)\n");
    out.push_str(&format!(
        "{:<18} {:>16} {:>10} {:>18}\n",
        "Scheme", "SSD pages written", "erases", "write avoidance(%)"
    ));
    let cfg = params.flashcoop_config(FtlKind::Bast, PolicyKind::Lar);
    let mut base_pages = 0u64;
    for scheme in [Scheme::Baseline, Scheme::FlashCoop(PolicyKind::Lar)] {
        let mut server = CoopServer::new(cfg.clone(), scheme);
        let mut rng = DetRng::new(params.seed);
        server.ssd_mut().precondition(
            params.precondition.fill,
            params.precondition.sequential,
            &mut rng,
        );
        let mut remote = RemoteStore::new(cfg.buffer_pages);
        for req in &trace.requests {
            match req.op {
                fc_trace::Op::Write => {
                    server.handle_write(req.at, req.lpn, req.pages, Some(&mut remote));
                }
                fc_trace::Op::Read => {
                    server.handle_read(req.at, req.lpn, req.pages, Some(&mut remote));
                }
                fc_trace::Op::Trim => {
                    server.handle_trim(req.at, req.lpn, req.pages, Some(&mut remote));
                }
            }
        }
        let pages = server.ssd().stats().host_pages_written;
        if scheme == Scheme::Baseline {
            base_pages = pages.max(1);
        }
        let avoid = 100.0 * (1.0 - pages as f64 / base_pages as f64);
        out.push_str(&format!(
            "{:<18} {:>16} {:>10} {:>18.1}\n",
            scheme.name(),
            pages,
            server.ssd().erases_since_reset(),
            avoid.max(0.0),
        ));
    }
    out.push_str(
        "(Section III.A: files deleted while still buffered never reach the SSD at all)\n",
    );
    out
}

/// One row of the recovery-time sweep.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryRow {
    /// Total memory per server (pages).
    pub buffer_pages: usize,
    /// Dirty pages replicated at the peer when the crash hits.
    pub dirty_pages: usize,
    /// Time to pull the snapshot over the network.
    pub transfer: SimDuration,
    /// Time to replay the snapshot into the SSD.
    pub replay: SimDuration,
}

impl RecoveryRow {
    /// Total recovery time.
    pub fn total(&self) -> SimDuration {
        self.transfer + self.replay
    }
}

/// Section III.D's trade-off: recovery time vs remote-buffer size.
pub fn recovery_time(params: &ExperimentParams, buffer_sizes: &[usize]) -> Vec<RecoveryRow> {
    let mut rows = Vec::new();
    for &pages in buffer_sizes {
        let mut cfg = params.flashcoop_config(FtlKind::PageLevel, PolicyKind::Lar);
        cfg.buffer_pages = pages;
        let mut server = CoopServer::new(cfg.clone(), Scheme::FlashCoop(PolicyKind::Lar));
        let mut rng = DetRng::new(params.seed);
        server.ssd_mut().precondition(
            params.precondition.fill,
            params.precondition.sequential,
            &mut rng,
        );
        let mut remote = RemoteStore::new(pages);
        // Fill the buffer with scattered dirty pages (worst case: everything
        // replicated, nothing flushed).
        let mut now = SimTime::ZERO;
        let span = params.address_pages;
        for _ in 0..pages {
            server.handle_write(now, rng.below(span), 1, Some(&mut remote));
            now += SimDuration::from_millis(1);
        }
        let dirty = remote.len();
        // Crash + recovery: the snapshot crosses the network, then replays
        // into the SSD.
        server.crash();
        let snapshot = remote.snapshot();
        let bytes = snapshot.len() as u64 * cfg.ssd.geometry.page_bytes as u64;
        let transfer = cfg.link.transfer_time(bytes);
        let replay = server.recover_from_snapshot(now, &snapshot);
        rows.push(RecoveryRow {
            buffer_pages: pages,
            dirty_pages: dirty,
            transfer,
            replay,
        });
    }
    rows
}

/// Format the recovery sweep.
pub fn recovery_table(rows: &[RecoveryRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>14} {:>12} {:>14} {:>14} {:>14}\n",
        "Buffer(pages)", "Dirty pages", "Transfer(ms)", "Replay(ms)", "Total(ms)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>14} {:>12} {:>14.2} {:>14.2} {:>14.2}\n",
            r.buffer_pages,
            r.dirty_pages,
            r.transfer.as_millis_f64(),
            r.replay.as_millis_f64(),
            r.total().as_millis_f64(),
        ));
    }
    out.push_str("(Section III.D: larger remote buffers buy more write optimisation\n");
    out.push_str(" but lengthen recovery)\n");
    out
}

/// Lifetime projection: the paper claims FlashCoop "extends SSD lifetime";
/// this converts measured erase rates into projected device lifetime
/// (host data writable before the rated erase budget is exhausted).
pub fn lifetime(params: &ExperimentParams) -> String {
    let trace = params.traces()[0].generate(params.seed); // Fin1
    let mut out = String::new();
    out.push_str(
        "Projected lifetime under Fin1 (BAST, Table II endurance: 100K cycles)
",
    );
    out.push_str(&format!(
        "{:<18} {:>10} {:>16} {:>20} {:>14}
",
        "Scheme", "erases", "host GiB written", "erases per host GiB", "lifetime (x)"
    ));
    let cfg = params.flashcoop_config(FtlKind::Bast, PolicyKind::Lar);
    let mut baseline_rate = 0.0f64;
    for scheme in [Scheme::Baseline, Scheme::FlashCoop(PolicyKind::Lar)] {
        let r = replay(&trace, &cfg, scheme, Some(params.precondition), params.seed);
        // Host GiB the workload asked to write (same for both schemes).
        let host_pages: u64 = trace
            .requests
            .iter()
            .filter(|q| q.op == fc_trace::Op::Write)
            .map(|q| q.pages as u64)
            .sum();
        let gib = host_pages as f64 * 4096.0 / (1u64 << 30) as f64;
        let rate = r.erases as f64 / gib.max(1e-9);
        if scheme == Scheme::Baseline {
            baseline_rate = rate;
        }
        let extension = baseline_rate / rate.max(1e-9);
        out.push_str(&format!(
            "{:<18} {:>10} {:>16.2} {:>20.0} {:>13.2}x
",
            scheme.name(),
            r.erases,
            gib,
            rate,
            extension,
        ));
    }
    out.push_str(
        "(erase budget is fixed, so lifetime scales inversely with erases per          host byte; Section II.C.1)
",
    );
    out
}

/// DFTL extension: translation overhead vs CMT budget, bare device vs
/// behind the FlashCoop buffer. The buffer's filtering concentrates the
/// stream the FTL sees, which also helps the mapping cache.
pub fn dftl_overhead(params: &ExperimentParams) -> String {
    use fc_ssd::SsdConfig;
    let trace = params.traces()[0].generate(params.seed); // Fin1
    let mut out = String::new();
    out.push_str(
        "DFTL translation overhead vs CMT size (Fin1)
",
    );
    out.push_str(&format!(
        "{:<22} {:>12} {:>16} {:>16} {:>10}
",
        "Configuration", "CMT entries", "xlat reads", "xlat writes", "erases"
    ));
    for &cmt in &[4_096usize, 16_384, 65_536] {
        for scheme in [Scheme::Baseline, Scheme::FlashCoop(PolicyKind::Lar)] {
            let mut cfg = params.flashcoop_config(FtlKind::Dftl, PolicyKind::Lar);
            cfg.ssd = SsdConfig {
                ftl: FtlKind::Dftl,
                ..cfg.ssd
            };
            cfg.ssd.ftl_config.cmt_entries = cmt;
            let r = replay(&trace, &cfg, scheme, Some(params.precondition), params.seed);
            out.push_str(&format!(
                "{:<22} {:>12} {:>16} {:>16} {:>10}
",
                scheme.name(),
                cmt,
                r.ftl_stats.translation_reads,
                r.ftl_stats.translation_writes,
                r.erases,
            ));
        }
    }
    out.push_str(
        "(misses fall as the cached mapping table grows; the cooperative buffer
",
    );
    out.push_str(
        " also concentrates the stream the mapping cache sees)
",
    );
    out
}

/// The DESIGN.md §5 ablation table: each variant against the full system.
pub fn ablations(params: &ExperimentParams) -> String {
    let trace = params.traces()[0].generate(params.seed); // Fin1
    let base_cfg = params.flashcoop_config(FtlKind::Bast, PolicyKind::Lar);

    let mut variants: Vec<(String, FlashCoopConfig)> = vec![
        ("full LAR system".into(), base_cfg.clone()),
        (
            "no clustering".into(),
            FlashCoopConfig {
                clustering: false,
                ..base_cfg.clone()
            },
        ),
        (
            "popularity only".into(),
            FlashCoopConfig {
                lar_dirty_tiebreak: false,
                ..base_cfg.clone()
            },
        ),
        (
            "no replication".into(),
            FlashCoopConfig {
                replication: false,
                ..base_cfg.clone()
            },
        ),
        (
            "1 GbE link".into(),
            FlashCoopConfig {
                link: LinkModel::one_gbe(),
                ..base_cfg.clone()
            },
        ),
        (
            "watermark 0.7".into(),
            FlashCoopConfig {
                dirty_watermark: Some(0.7),
                ..base_cfg.clone()
            },
        ),
    ];

    let mut out = String::new();
    out.push_str("Ablations (FlashCoop w. LAR, BAST, Fin1)\n");
    out.push_str(&format!(
        "{:<18} {:>14} {:>14} {:>10} {:>14} {:>8}\n",
        "Variant", "AvgResp(ms)", "AvgWrite(us)", "Erases", "MeanWrite(pg)", "1pg(%)"
    ));
    for (name, cfg) in variants.drain(..) {
        let r = replay(
            &trace,
            &cfg,
            Scheme::FlashCoop(PolicyKind::Lar),
            Some(params.precondition),
            params.seed,
        );
        out.push_str(&format!(
            "{:<18} {:>14.3} {:>14.1} {:>10} {:>14.1} {:>8.2}\n",
            name,
            r.avg_response.as_millis_f64(),
            r.avg_write_response.as_micros_f64(),
            r.erases,
            r.mean_write_pages,
            r.frac_single_page * 100.0,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExperimentParams {
        let mut p = ExperimentParams::quick();
        p.requests = 1_500;
        p
    }

    #[test]
    fn short_lived_files_mostly_bypass_the_ssd() {
        let p = quick();
        let table = short_lived(&p);
        assert!(table.contains("Baseline"));
        assert!(table.contains("FlashCoop"));
        // Parse the avoidance column of the FlashCoop row.
        let line = table
            .lines()
            .find(|l| l.contains("FlashCoop"))
            .expect("row");
        let avoid: f64 = line
            .split_whitespace()
            .last()
            .unwrap()
            .parse()
            .expect("number");
        assert!(
            avoid > 50.0,
            "buffer should absorb most short-lived writes, got {avoid}%"
        );
    }

    #[test]
    fn recovery_time_grows_with_buffer_size() {
        let p = quick();
        let rows = recovery_time(&p, &[256, 1024, 4096]);
        assert_eq!(rows.len(), 3);
        assert!(rows[0].dirty_pages <= rows[2].dirty_pages);
        assert!(
            rows[2].total() > rows[0].total(),
            "bigger remote buffer must take longer to recover: {:?} vs {:?}",
            rows[2].total(),
            rows[0].total()
        );
        let _ = recovery_table(&rows);
    }

    #[test]
    fn lifetime_extension_exceeds_one() {
        let mut p = quick();
        p.requests = 1_200;
        let t = lifetime(&p);
        let line = t.lines().find(|l| l.contains("FlashCoop")).expect("row");
        let ext: f64 = line
            .split_whitespace()
            .last()
            .unwrap()
            .trim_end_matches('x')
            .parse()
            .expect("number");
        assert!(
            ext > 1.0,
            "FlashCoop must extend lifetime, got {ext}x
{t}"
        );
    }

    #[test]
    fn dftl_overhead_falls_with_cmt_size() {
        let mut p = quick();
        p.requests = 1_000;
        let t = dftl_overhead(&p);
        assert!(t.contains("4096"));
        assert!(t.contains("65536"));
        assert!(t.contains("DFTL translation overhead"));
    }

    #[test]
    fn ablation_table_has_all_variants() {
        let mut p = quick();
        p.requests = 800;
        let t = ablations(&p);
        for v in [
            "full LAR system",
            "no clustering",
            "popularity only",
            "no replication",
            "1 GbE link",
            "watermark 0.7",
        ] {
            assert!(t.contains(v), "missing variant {v}\n{t}");
        }
    }
}
