//! Presentation adapters for [`RunReport`].
//!
//! The report itself is plain serialisable data (`RunReport::header()/row()`
//! are deprecated); how it is rendered — the classic aligned table, CSV for
//! spreadsheets — is a bench-harness concern and lives here. The table
//! output is byte-identical to what the deprecated methods produced, so
//! existing scripts that scrape `fctrace replay` keep working.

use flashcoop::RunReport;

/// Column header of the aligned results table (byte-identical to the
/// deprecated `RunReport::header()`).
pub fn report_header() -> String {
    format!(
        "{:<18} {:<11} {:<5} {:>12} {:>12} {:>8} {:>10} {:>6} {:>8} {:>8}",
        "Scheme",
        "FTL",
        "Trace",
        "AvgResp(ms)",
        "p99(ms)",
        "Hit(%)",
        "Erases",
        "WA",
        "1pg(%)",
        ">8pg(%)"
    )
}

/// One aligned results row (byte-identical to the deprecated
/// `RunReport::row()`).
pub fn report_row(r: &RunReport) -> String {
    format!(
        "{:<18} {:<11} {:<5} {:>12.3} {:>12.3} {:>8.2} {:>10} {:>6.2} {:>8.2} {:>8.2}",
        r.scheme.name(),
        r.ftl.name(),
        r.trace,
        r.avg_response.as_millis_f64(),
        r.p99_response.as_millis_f64(),
        r.hit_ratio * 100.0,
        r.erases,
        r.write_amplification,
        r.frac_single_page * 100.0,
        r.frac_gt8_pages * 100.0,
    )
}

/// CSV column header matching [`csv_row`].
pub fn csv_header() -> String {
    "scheme,ftl,trace,requests,avg_response_ms,p99_response_ms,\
     avg_write_response_ms,avg_read_response_ms,hit_ratio,erases,\
     write_amplification,mean_write_pages,frac_single_page,frac_gt8_pages"
        .to_string()
}

/// One report as a CSV row. Names containing commas are quoted; numeric
/// fields are plain decimals so the file loads anywhere.
pub fn csv_row(r: &RunReport) -> String {
    fn cell(s: &str) -> String {
        if s.contains(',') || s.contains('"') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    }
    format!(
        "{},{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{},{:.6},{:.6},{:.6},{:.6}",
        cell(&r.scheme.name()),
        cell(r.ftl.name()),
        cell(&r.trace),
        r.requests,
        r.avg_response.as_millis_f64(),
        r.p99_response.as_millis_f64(),
        r.avg_write_response.as_millis_f64(),
        r.avg_read_response.as_millis_f64(),
        r.hit_ratio,
        r.erases,
        r.write_amplification,
        r.mean_write_pages,
        r.frac_single_page,
        r.frac_gt8_pages,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_simkit::SimDuration;
    use fc_ssd::{FtlKind, FtlStats};
    use flashcoop::{PolicyKind, Scheme};

    fn report() -> RunReport {
        RunReport {
            scheme: Scheme::FlashCoop(PolicyKind::Lar),
            ftl: FtlKind::Bast,
            trace: "Fin1".into(),
            requests: 1000,
            avg_response: SimDuration::from_micros(630),
            p99_response: SimDuration::from_millis(5),
            avg_write_response: SimDuration::from_micros(100),
            avg_read_response: SimDuration::from_micros(900),
            hit_ratio: 0.78,
            erases: 8700,
            write_amplification: 1.4,
            mean_write_pages: 12.0,
            frac_single_page: 0.03,
            frac_gt8_pages: 0.35,
            write_length_cdf: vec![(1, 0.03), (64, 1.0)],
            ftl_stats: FtlStats::default(),
        }
    }

    #[test]
    #[allow(deprecated)]
    fn table_output_is_byte_identical_to_deprecated_methods() {
        let r = report();
        assert_eq!(report_header(), RunReport::header());
        assert_eq!(report_row(&r), r.row());
    }

    #[test]
    fn csv_row_matches_header_arity_and_values() {
        let r = report();
        let header_cols = csv_header().split(',').count();
        let row = csv_row(&r);
        let cols: Vec<&str> = row.split(',').collect();
        assert_eq!(cols.len(), header_cols);
        assert_eq!(cols[0], "FlashCoop w. LAR");
        assert_eq!(cols[1], "BAST");
        assert_eq!(cols[2], "Fin1");
        assert_eq!(cols[3], "1000");
        let avg_ms: f64 = cols[4].parse().unwrap();
        assert!((avg_ms - 0.630).abs() < 1e-9);
        assert_eq!(cols[9], "8700");
    }

    #[test]
    fn csv_quotes_awkward_names() {
        let mut r = report();
        r.trace = "a,b".into();
        assert!(csv_row(&r).contains("\"a,b\""));
    }
}
