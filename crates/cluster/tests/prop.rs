//! Property-based tests for the wire protocol.
//!
//! Three properties the protocol layer must have: encode∘decode is the
//! identity for any message (including across fragmented delivery), the
//! decoder never panics on arbitrary bytes, and receive-side sequence
//! tracking classifies any delivery schedule correctly.

use bytes::{Bytes, BytesMut};
use fc_cluster::{decode, encode, Message, SeqStatus, SeqTracker};
use proptest::prelude::*;

fn message_strategy() -> impl Strategy<Value = Message> {
    let data = prop::collection::vec(any::<u8>(), 0..256).prop_map(Bytes::from);
    prop_oneof![
        (any::<u64>(), any::<u64>(), any::<u64>(), data.clone()).prop_map(
            |(seq, lpn, version, data)| Message::WriteRepl { seq, lpn, version, data }
        ),
        any::<u64>().prop_map(|seq| Message::ReplAck { seq }),
        (
            any::<u64>(),
            prop::collection::vec((any::<u64>(), any::<u64>()), 0..64)
        )
            .prop_map(|(seq, pages)| Message::Discard { seq, pages }),
        (any::<u8>(), any::<u64>()).prop_map(|(from, at_millis)| Message::Heartbeat {
            from,
            at_millis
        }),
        Just(Message::RctFetch),
        prop::collection::vec((any::<u64>(), any::<u64>(), data), 0..16)
            .prop_map(|entries| Message::RctSnapshot { entries }),
        Just(Message::Purge),
        Just(Message::PurgeAck),
    ]
}

proptest! {
    #[test]
    fn any_message_round_trips(msg in message_strategy()) {
        let mut buf = BytesMut::new();
        encode(&msg, &mut buf);
        let decoded = decode(&mut buf).unwrap();
        prop_assert_eq!(decoded, Some(msg));
        prop_assert!(buf.is_empty());
    }

    /// A stream of messages survives arbitrary fragmentation boundaries.
    #[test]
    fn fragmented_streams_decode_in_order(
        msgs in prop::collection::vec(message_strategy(), 1..12),
        cuts in prop::collection::vec(1usize..64, 0..32),
    ) {
        let mut wire = BytesMut::new();
        for m in &msgs {
            encode(m, &mut wire);
        }
        let wire = wire.freeze();
        // Feed the wire bytes chunk by chunk with arbitrary chunk sizes.
        let mut acc = BytesMut::new();
        let mut decoded = Vec::new();
        let mut pos = 0usize;
        let mut cut_iter = cuts.iter().copied().chain(std::iter::repeat(17));
        while pos < wire.len() {
            let n = cut_iter.next().unwrap().min(wire.len() - pos);
            acc.extend_from_slice(&wire[pos..pos + n]);
            pos += n;
            while let Some(m) = decode(&mut acc).unwrap() {
                decoded.push(m);
            }
        }
        prop_assert_eq!(decoded, msgs);
    }

    /// The decoder never panics on garbage; it either waits for more bytes,
    /// yields a message, or reports a structured error.
    #[test]
    fn decoder_total_on_garbage(noise in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut buf = BytesMut::from(&noise[..]);
        // Drive to quiescence: stop on error, empty, or starvation.
        for _ in 0..noise.len() + 1 {
            match decode(&mut buf) {
                Ok(Some(_)) => continue,
                Ok(None) | Err(_) => break,
            }
        }
    }

    /// SeqTracker agrees with a naive seen-set reference model for any
    /// delivery schedule (duplication + reordering in any mix), as long as
    /// the stream stays inside the exactness window.
    #[test]
    fn seq_tracker_matches_reference_model(
        stream in prop::collection::vec(1u64..=128, 1..256),
    ) {
        let mut tracker = SeqTracker::new();
        let mut seen = std::collections::HashSet::new();
        let mut highest = 0u64;
        for &s in &stream {
            let expected = if seen.contains(&s) {
                SeqStatus::Duplicate
            } else if s > highest {
                SeqStatus::New
            } else {
                SeqStatus::NewOutOfOrder
            };
            prop_assert_eq!(tracker.observe(s), expected);
            seen.insert(s);
            highest = highest.max(s);
            // The high-water mark is exactly the max seq seen (sequence
            // numbers ratchet monotonically, never rewind).
            prop_assert_eq!(tracker.highest(), highest);
        }
    }

    /// A strictly increasing stream — what a loss-free FIFO link delivers —
    /// is classified `New` at every step, regardless of starting point and
    /// step sizes.
    #[test]
    fn monotone_streams_are_always_new(
        start in 1u64..1_000_000,
        steps in prop::collection::vec(1u64..50, 1..128),
    ) {
        let mut tracker = SeqTracker::new();
        let mut s = start;
        for step in steps {
            prop_assert_eq!(tracker.observe(s), SeqStatus::New);
            prop_assert_eq!(tracker.highest(), s);
            s += step;
        }
    }
}
