//! Property-based tests for the wire protocol.
//!
//! Three properties the protocol layer must have: encode∘decode is the
//! identity for any message (including across fragmented delivery), the
//! decoder never panics on arbitrary bytes, and receive-side sequence
//! tracking classifies any delivery schedule correctly.

use bytes::{Bytes, BytesMut};
use fc_cluster::{decode, encode, resync_entry, Message, NackReason, SeqStatus, SeqTracker};
use proptest::prelude::*;

fn message_strategy() -> impl Strategy<Value = Message> {
    let data = prop::collection::vec(any::<u8>(), 0..256).prop_map(Bytes::from);
    prop_oneof![
        (any::<u64>(), any::<u64>(), any::<u64>(), data.clone())
            .prop_map(|(seq, lpn, version, data)| Message::write_repl(seq, lpn, version, data)),
        (any::<u64>(), any::<u32>()).prop_map(|(seq, credits)| Message::ReplAck { seq, credits }),
        (any::<u64>(), prop::bool::ANY).prop_map(|(seq, corrupt)| Message::ReplNack {
            seq,
            reason: if corrupt {
                NackReason::Corrupt
            } else {
                NackReason::NoCredit
            },
        }),
        (
            any::<u64>(),
            prop::collection::vec((any::<u64>(), any::<u64>()), 0..64)
        )
            .prop_map(|(seq, pages)| Message::Discard { seq, pages }),
        (any::<u8>(), any::<u64>(), any::<u32>()).prop_map(|(from, at_millis, credits)| {
            Message::Heartbeat {
                from,
                at_millis,
                credits,
            }
        }),
        Just(Message::RctFetch),
        prop::collection::vec((any::<u64>(), any::<u64>(), data.clone()), 0..16)
            .prop_map(|entries| Message::RctSnapshot { entries }),
        Just(Message::Purge),
        Just(Message::PurgeAck),
        (
            any::<u64>(),
            prop::collection::vec((any::<u64>(), any::<u64>(), data.clone()), 0..16)
        )
            .prop_map(|(seq, raw)| Message::ResyncBatch {
                seq,
                entries: raw
                    .into_iter()
                    .map(|(l, v, d)| resync_entry(l, v, d))
                    .collect(),
            }),
        any::<u64>().prop_map(|seq| Message::ResyncAck { seq }),
        any::<u64>().prop_map(|lpn| Message::PageFetch { lpn }),
        (any::<u64>(), any::<u64>(), data)
            .prop_map(|(lpn, version, data)| { Message::page_data(lpn, Some((version, data))) }),
        any::<u64>().prop_map(|lpn| Message::page_data(lpn, None)),
    ]
}

proptest! {
    #[test]
    fn any_message_round_trips(msg in message_strategy()) {
        let mut buf = BytesMut::new();
        encode(&msg, &mut buf);
        let decoded = decode(&mut buf).unwrap();
        prop_assert_eq!(decoded, Some(msg));
        prop_assert!(buf.is_empty());
    }

    /// A stream of messages survives arbitrary fragmentation boundaries.
    #[test]
    fn fragmented_streams_decode_in_order(
        msgs in prop::collection::vec(message_strategy(), 1..12),
        cuts in prop::collection::vec(1usize..64, 0..32),
    ) {
        let mut wire = BytesMut::new();
        for m in &msgs {
            encode(m, &mut wire);
        }
        let wire = wire.freeze();
        // Feed the wire bytes chunk by chunk with arbitrary chunk sizes.
        let mut acc = BytesMut::new();
        let mut decoded = Vec::new();
        let mut pos = 0usize;
        let mut cut_iter = cuts.iter().copied().chain(std::iter::repeat(17));
        while pos < wire.len() {
            let n = cut_iter.next().unwrap().min(wire.len() - pos);
            acc.extend_from_slice(&wire[pos..pos + n]);
            pos += n;
            while let Some(m) = decode(&mut acc).unwrap() {
                decoded.push(m);
            }
        }
        prop_assert_eq!(decoded, msgs);
    }

    /// End-to-end integrity: flipping ANY single byte of an encoded frame
    /// must prevent it from decoding as a valid message. Either the frame
    /// CRC rejects it, or (for a flip in the length prefix that enlarges the
    /// frame) the decoder keeps waiting for bytes that never come — but a
    /// damaged frame is never delivered.
    #[test]
    fn any_single_flipped_byte_is_rejected(
        msg in message_strategy(),
        pos_seed in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let mut wire = BytesMut::new();
        encode(&msg, &mut wire);
        // Every frame is at least 9 bytes (len + crc + tag), so the modulo
        // is well-defined and covers every byte position.
        let pos = (pos_seed % wire.len() as u64) as usize;
        wire[pos] ^= flip;
        if let Ok(Some(m)) = decode(&mut wire) {
            prop_assert!(false, "damaged frame decoded as {m:?}");
        }
    }

    /// The decoder never panics on garbage; it either waits for more bytes,
    /// yields a message, or reports a structured error.
    #[test]
    fn decoder_total_on_garbage(noise in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut buf = BytesMut::from(&noise[..]);
        // Drive to quiescence: stop on error, empty, or starvation.
        for _ in 0..noise.len() + 1 {
            match decode(&mut buf) {
                Ok(Some(_)) => continue,
                Ok(None) | Err(_) => break,
            }
        }
    }

    /// SeqTracker agrees with a naive seen-set reference model for any
    /// delivery schedule (duplication + reordering in any mix), as long as
    /// the stream stays inside the exactness window.
    #[test]
    fn seq_tracker_matches_reference_model(
        stream in prop::collection::vec(1u64..=128, 1..256),
    ) {
        let mut tracker = SeqTracker::new();
        let mut seen = std::collections::HashSet::new();
        let mut highest = 0u64;
        for &s in &stream {
            let expected = if seen.contains(&s) {
                SeqStatus::Duplicate
            } else if s > highest {
                SeqStatus::New
            } else {
                SeqStatus::NewOutOfOrder
            };
            prop_assert_eq!(tracker.observe(s), expected);
            seen.insert(s);
            highest = highest.max(s);
            // The high-water mark is exactly the max seq seen (sequence
            // numbers ratchet monotonically, never rewind).
            prop_assert_eq!(tracker.highest(), highest);
        }
    }

    /// A strictly increasing stream — what a loss-free FIFO link delivers —
    /// is classified `New` at every step, regardless of starting point and
    /// step sizes.
    #[test]
    fn monotone_streams_are_always_new(
        start in 1u64..1_000_000,
        steps in prop::collection::vec(1u64..50, 1..128),
    ) {
        let mut tracker = SeqTracker::new();
        let mut s = start;
        for step in steps {
            prop_assert_eq!(tracker.observe(s), SeqStatus::New);
            prop_assert_eq!(tracker.highest(), s);
            s += step;
        }
    }
}
