//! Peer transports.
//!
//! The node talks to its cooperative partner through the [`Transport`]
//! trait. Two implementations:
//!
//! * [`mem_pair`] — crossbeam channels, for tests and single-process demos;
//!   supports deliberate severing (network-partition injection).
//! * [`TcpTransport`] — real sockets via `std::net`, one reader thread per
//!   connection; this is the "high speed data center network" path.

use crate::wire::{decode, encode, Message};
use bytes::BytesMut;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Transport failures. A disconnected transport stays disconnected; a timed
/// out operation may be retried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The peer is unreachable (socket closed, channel dropped, or severed).
    Disconnected,
    /// The operation did not complete in time (the link may still be up —
    /// e.g. a reply lost to a lossy network). Retryable.
    Timeout,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Disconnected => f.write_str("peer transport disconnected"),
            TransportError::Timeout => f.write_str("peer transport operation timed out"),
        }
    }
}

impl std::error::Error for TransportError {}

/// A bidirectional, message-oriented link to the peer.
pub trait Transport: Send {
    /// Send one message.
    fn send(&self, msg: Message) -> Result<(), TransportError>;

    /// Receive the next message, waiting up to `timeout`. `Ok(None)` on
    /// timeout.
    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Message>, TransportError>;

    /// True if the link is known dead.
    fn is_connected(&self) -> bool;
}

/// Sharing a transport: a node can own one handle while the caller keeps
/// another for inspection (e.g. reading a `FaultTransport`'s decision trace
/// while the node runs).
impl<T: Transport + Send + Sync + ?Sized> Transport for Arc<T> {
    fn send(&self, msg: Message) -> Result<(), TransportError> {
        (**self).send(msg)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Message>, TransportError> {
        (**self).recv_timeout(timeout)
    }

    fn is_connected(&self) -> bool {
        (**self).is_connected()
    }
}

// ---------------------------------------------------------------------------
// In-memory transport
// ---------------------------------------------------------------------------

/// One endpoint of an in-memory duplex link.
pub struct MemTransport {
    tx: Sender<Message>,
    rx: Receiver<Message>,
    severed: Arc<AtomicBool>,
}

impl MemTransport {
    /// Cut the link (both directions); used to inject network partitions.
    pub fn sever(&self) {
        self.severed.store(true, Ordering::SeqCst);
    }
}

/// Create a connected pair of in-memory endpoints. Severing either endpoint
/// kills the link for both.
pub fn mem_pair() -> (MemTransport, MemTransport) {
    let (a_tx, b_rx) = unbounded();
    let (b_tx, a_rx) = unbounded();
    let severed = Arc::new(AtomicBool::new(false));
    (
        MemTransport {
            tx: a_tx,
            rx: a_rx,
            severed: severed.clone(),
        },
        MemTransport {
            tx: b_tx,
            rx: b_rx,
            severed,
        },
    )
}

impl Transport for MemTransport {
    fn send(&self, msg: Message) -> Result<(), TransportError> {
        if self.severed.load(Ordering::SeqCst) {
            return Err(TransportError::Disconnected);
        }
        self.tx.send(msg).map_err(|_| TransportError::Disconnected)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Message>, TransportError> {
        if self.severed.load(Ordering::SeqCst) {
            return Err(TransportError::Disconnected);
        }
        match self.rx.recv_timeout(timeout) {
            Ok(m) => {
                // A message already in flight when the link was severed is
                // dropped, like packets in a real partition.
                if self.severed.load(Ordering::SeqCst) {
                    Err(TransportError::Disconnected)
                } else {
                    Ok(Some(m))
                }
            }
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::Disconnected),
        }
    }

    fn is_connected(&self) -> bool {
        !self.severed.load(Ordering::SeqCst)
    }
}

// ---------------------------------------------------------------------------
// TCP transport
// ---------------------------------------------------------------------------

/// A TCP link: writes go straight to the socket; a reader thread decodes
/// frames into a channel.
pub struct TcpTransport {
    stream: Mutex<TcpStream>,
    rx: Receiver<Message>,
    dead: Arc<AtomicBool>,
}

impl TcpTransport {
    /// Wrap an established stream, spawning the reader thread.
    pub fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nodelay(true)?;
        let reader = stream.try_clone()?;
        let (tx, rx) = unbounded();
        let dead = Arc::new(AtomicBool::new(false));
        let dead2 = dead.clone();
        std::thread::Builder::new()
            .name("fc-cluster-rx".into())
            .spawn(move || read_loop(reader, tx, dead2))
            .expect("spawn reader thread");
        Ok(TcpTransport {
            stream: Mutex::new(stream),
            rx,
            dead,
        })
    }

    /// Connect to a listening peer.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        TcpTransport::new(TcpStream::connect(addr)?)
    }

    /// Accept one peer connection on `listener`.
    pub fn accept(listener: &TcpListener) -> std::io::Result<Self> {
        let (stream, _) = listener.accept()?;
        TcpTransport::new(stream)
    }
}

fn read_loop(mut stream: TcpStream, tx: Sender<Message>, dead: Arc<AtomicBool>) {
    let mut buf = BytesMut::with_capacity(64 * 1024);
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match decode(&mut buf) {
            Ok(Some(msg)) => {
                if tx.send(msg).is_err() {
                    break;
                }
                continue;
            }
            Ok(None) => {}
            Err(_) => break, // protocol corruption: drop the link
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    dead.store(true, Ordering::SeqCst);
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        // Shut the connection down so the reader thread (which holds a
        // cloned handle) unblocks and the peer observes EOF.
        let _ = self.stream.lock().shutdown(std::net::Shutdown::Both);
        self.dead.store(true, Ordering::SeqCst);
    }
}

impl Transport for TcpTransport {
    fn send(&self, msg: Message) -> Result<(), TransportError> {
        if self.dead.load(Ordering::SeqCst) {
            return Err(TransportError::Disconnected);
        }
        let mut buf = BytesMut::new();
        encode(&msg, &mut buf);
        let mut stream = self.stream.lock();
        stream.write_all(&buf).map_err(|_| {
            self.dead.store(true, Ordering::SeqCst);
            TransportError::Disconnected
        })
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Message>, TransportError> {
        match self.rx.recv_timeout(timeout) {
            Ok(m) => Ok(Some(m)),
            Err(RecvTimeoutError::Timeout) => {
                if self.dead.load(Ordering::SeqCst) {
                    Err(TransportError::Disconnected)
                } else {
                    Ok(None)
                }
            }
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::Disconnected),
        }
    }

    fn is_connected(&self) -> bool {
        !self.dead.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    const SHORT: Duration = Duration::from_millis(200);

    #[test]
    fn mem_pair_delivers_both_directions() {
        let (a, b) = mem_pair();
        a.send(Message::RctFetch).unwrap();
        assert_eq!(b.recv_timeout(SHORT).unwrap(), Some(Message::RctFetch));
        b.send(Message::PurgeAck).unwrap();
        assert_eq!(a.recv_timeout(SHORT).unwrap(), Some(Message::PurgeAck));
    }

    #[test]
    fn mem_recv_times_out_quietly() {
        let (a, _b) = mem_pair();
        assert_eq!(a.recv_timeout(Duration::from_millis(10)).unwrap(), None);
    }

    #[test]
    fn severed_mem_link_errors_for_both_ends() {
        let (a, b) = mem_pair();
        a.sever();
        assert_eq!(a.send(Message::Purge), Err(TransportError::Disconnected));
        assert_eq!(b.send(Message::Purge), Err(TransportError::Disconnected));
        assert!(!a.is_connected());
        assert!(!b.is_connected());
        assert_eq!(b.recv_timeout(SHORT), Err(TransportError::Disconnected));
    }

    #[test]
    fn dropped_endpoint_disconnects_peer() {
        let (a, b) = mem_pair();
        drop(a);
        assert_eq!(b.send(Message::Purge), Err(TransportError::Disconnected));
    }

    #[test]
    fn tcp_round_trip_on_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || TcpTransport::connect(addr).unwrap());
        let server = TcpTransport::accept(&listener).unwrap();
        let client = client.join().unwrap();

        let msg = Message::write_repl(1, 99, 5, Bytes::from_static(b"hello-flash"));
        client.send(msg.clone()).unwrap();
        let got = server.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(got, Some(msg));
        server
            .send(Message::ReplAck { seq: 1, credits: 7 })
            .unwrap();
        assert_eq!(
            client.recv_timeout(Duration::from_secs(2)).unwrap(),
            Some(Message::ReplAck { seq: 1, credits: 7 })
        );
    }

    #[test]
    fn tcp_peer_close_is_detected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || TcpTransport::connect(addr).unwrap());
        let server = TcpTransport::accept(&listener).unwrap();
        let client = client.join().unwrap();
        drop(server);
        // Eventually the reader thread notices EOF and recv errors out.
        let mut disconnected = false;
        for _ in 0..50 {
            match client.recv_timeout(Duration::from_millis(50)) {
                Err(TransportError::Disconnected) => {
                    disconnected = true;
                    break;
                }
                Err(TransportError::Timeout) | Ok(None) => continue,
                Ok(Some(m)) => panic!("unexpected message {m:?}"),
            }
        }
        assert!(disconnected, "EOF not detected");
    }

    #[test]
    fn tcp_handles_large_batched_frames() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || TcpTransport::connect(addr).unwrap());
        let server = TcpTransport::accept(&listener).unwrap();
        let client = client.join().unwrap();

        let page = Bytes::from(vec![0xAB; 4096]);
        for seq in 0..64u64 {
            client
                .send(Message::write_repl(seq, seq, 1, page.clone()))
                .unwrap();
        }
        for seq in 0..64u64 {
            let m = server
                .recv_timeout(Duration::from_secs(2))
                .unwrap()
                .unwrap();
            match m {
                Message::WriteRepl { seq: s, data, .. } => {
                    assert_eq!(s, seq);
                    assert_eq!(data.len(), 4096);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}
