//! Wire protocol between cooperative peers.
//!
//! A hand-rolled, length-prefixed binary framing over [`bytes`] — no external
//! serialisation dependency. Every frame is
//!
//! ```text
//! [u32 LE: payload length][u32 LE: CRC-32 of payload][u8: message tag][payload…]
//! ```
//!
//! The frame checksum rejects link-level corruption: any single flipped byte
//! lands in the length, the CRC, or the CRC-covered body, so a tampered
//! frame decodes to an error (or stays incomplete) — never to a *different*
//! valid message. Data-carrying messages additionally embed a payload CRC
//! computed at construction ([`Message::write_repl`], [`resync_entry`]) and
//! checked end-to-end with [`Message::payload_ok`]; that second layer
//! survives transports that pass `Message` values without re-framing (the
//! in-memory channel pair and the fault injector's corruption hook).
//!
//! The message set implements Figure 3's arrows: write replication with
//! acks, NACKs and credit grants, discards after local flushes, heartbeats
//! (Section III.D), the recovery handshake (RCT fetch → snapshot → purge),
//! the incremental resync stream (batch → ack), and single-page fetches for
//! scrub repair.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Maximum frame payload accepted by the decoder (16 MiB): protects against
/// corrupted length prefixes.
pub const MAX_FRAME: usize = 16 << 20;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven, dependency-free
// ---------------------------------------------------------------------------

/// Slicing-by-8 lookup tables: `CRC32_TABLES[0]` is the classic byte-at-a-
/// time table; `CRC32_TABLES[k][b]` folds byte `b` positioned `k` bytes
/// ahead of the CRC register, letting the hot loop consume 8 bytes per
/// step. Every replicated page is checksummed at least three times (write
/// stamp, frame encode, receive verify), so this runs on the data plane's
/// critical path.
const fn crc32_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

static CRC32_TABLES: [[u32; 256]; 8] = crc32_tables();

/// CRC-32 (IEEE) of `data` — the checksum used for both frame integrity and
/// per-page payload integrity. Slicing-by-8: 8 bytes per table step.
pub fn crc32(data: &[u8]) -> u32 {
    let t = &CRC32_TABLES;
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(8);
    for ch in &mut chunks {
        let lo = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]) ^ c;
        let hi = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
        c = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Why a replication message was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NackReason {
    /// Payload checksum mismatch — the bytes were damaged in flight; the
    /// sender should resend.
    Corrupt,
    /// The remote buffer is out of credits (full); the sender should write
    /// through locally instead of queueing.
    NoCredit,
}

impl NackReason {
    fn to_u8(self) -> u8 {
        match self {
            NackReason::Corrupt => 0,
            NackReason::NoCredit => 1,
        }
    }

    fn from_u8(b: u8) -> Result<Self, WireError> {
        match b {
            0 => Ok(NackReason::Corrupt),
            1 => Ok(NackReason::NoCredit),
            other => Err(WireError::BadTag(other)),
        }
    }

    /// Static label used in obs events.
    pub fn name(self) -> &'static str {
        match self {
            NackReason::Corrupt => "corrupt",
            NackReason::NoCredit => "no_credit",
        }
    }
}

/// One page of a [`Message::ResyncBatch`]: `(lpn, version, payload crc,
/// data)`. Build with [`resync_entry`] so the CRC is always consistent.
pub type ResyncEntry = (u64, u64, u32, Bytes);

/// Build a [`ResyncEntry`] with its payload CRC computed.
pub fn resync_entry(lpn: u64, version: u64, data: Bytes) -> ResyncEntry {
    let crc = crc32(&data);
    (lpn, version, crc, data)
}

/// Protocol messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Replicate one dirty page into the peer's remote buffer.
    WriteRepl {
        /// Sender-local sequence number, echoed in the ack.
        seq: u64,
        /// Logical page.
        lpn: u64,
        /// Page version (monotone per owner).
        version: u64,
        /// CRC-32 of `data`, computed at construction. Carried end-to-end so
        /// corruption is caught even on transports that skip re-framing.
        crc: u32,
        /// Page contents.
        data: Bytes,
    },
    /// Acknowledge a replicated write.
    ReplAck {
        /// The `seq` of the acknowledged [`Message::WriteRepl`].
        seq: u64,
        /// Remote-buffer credits (free page slots) the receiver still
        /// advertises after applying the write — the backpressure signal.
        credits: u32,
    },
    /// Refuse a replication message ([`Message::WriteRepl`] or
    /// [`Message::ResyncBatch`]).
    ReplNack {
        /// The refused message's sequence number.
        seq: u64,
        /// Why it was refused.
        reason: NackReason,
    },
    /// The owner flushed these pages to its SSD; the peer drops its copies.
    Discard {
        /// Sender-local sequence number (shared counter with
        /// [`Message::WriteRepl`], so the receiver can dedup and detect
        /// reordering across the whole data plane).
        seq: u64,
        /// `(lpn, version)` of each flushed page. The version bounds the
        /// discard: the peer only drops its copy if it is not newer, so a
        /// Discard delayed past a fresher replication of the same page
        /// cannot delete the only surviving copy of an acknowledged write.
        pages: Vec<(u64, u64)>,
    },
    /// Liveness beat.
    Heartbeat {
        /// Sender's node id.
        from: u8,
        /// Sender's monotonic clock, milliseconds.
        at_millis: u64,
        /// Remote-buffer credits the sender currently advertises, so an
        /// out-of-credit peer learns about freed space even with no
        /// replication traffic flowing.
        credits: u32,
    },
    /// Rebooted owner asks for everything the peer holds for it.
    RctFetch,
    /// Reply to [`Message::RctFetch`]: the remote-buffer contents.
    RctSnapshot {
        /// (lpn, version, data) triples.
        entries: Vec<(u64, u64, Bytes)>,
    },
    /// Owner finished recovery; peer clears its remote buffer.
    Purge,
    /// Acknowledge a [`Message::Purge`].
    PurgeAck,
    /// One batch of the catch-up stream a rejoining pair member sends: pages
    /// written while the pair was apart, in ascending LPN order.
    ResyncBatch {
        /// Data-plane sequence number (shared counter with
        /// [`Message::WriteRepl`] for receive-side dedup).
        seq: u64,
        /// The pages, each carrying its payload CRC.
        entries: Vec<ResyncEntry>,
    },
    /// Acknowledge a [`Message::ResyncBatch`].
    ResyncAck {
        /// The `seq` of the acknowledged batch.
        seq: u64,
    },
    /// Replicate a batch of dirty pages into the peer's remote buffer in
    /// one frame — the pipelined replacement for per-page
    /// [`Message::WriteRepl`]. Batches live in their own contiguous
    /// sequence space (`1, 2, 3, …` per epoch) so the receiver can
    /// acknowledge cumulatively with [`Message::ReplAckBatch`].
    WriteReplBatch {
        /// Pipeline epoch. Bumped by the sender whenever it abandons
        /// un-acked in-flight state (solo entry, restart); a frame with a
        /// higher epoch resets the receiver's cumulative tracker.
        epoch: u32,
        /// Batch sequence number, contiguous from 1 within `epoch`.
        seq: u64,
        /// The pages, each carrying its own payload CRC (same shape as a
        /// resync entry). May be empty: an emptied batch retransmission
        /// still advances the cumulative ack past a refused sequence.
        entries: Vec<ResyncEntry>,
    },
    /// Cumulative acknowledgement of [`Message::WriteReplBatch`] frames:
    /// every batch with `seq <= up_to` in `epoch` has been applied.
    ReplAckBatch {
        /// Epoch the ack belongs to; stale-epoch acks are ignored.
        epoch: u32,
        /// Highest contiguously applied batch sequence (0 = none yet).
        up_to: u64,
        /// Remote-buffer credits the receiver still advertises.
        credits: u32,
    },
    /// Refuse one [`Message::WriteReplBatch`] (the cumulative ack cannot
    /// advance past it until the sender retransmits or empties it).
    ReplNackBatch {
        /// Epoch of the refused batch.
        epoch: u32,
        /// The refused batch's sequence number.
        seq: u64,
        /// Why it was refused.
        reason: NackReason,
    },
    /// Ask the peer for its replica of one page (scrub repair).
    PageFetch {
        /// Logical page wanted.
        lpn: u64,
    },
    /// Reply to [`Message::PageFetch`].
    PageData {
        /// Logical page.
        lpn: u64,
        /// Replica version held (0 when `found` is false).
        version: u64,
        /// CRC-32 of `data`.
        crc: u32,
        /// Whether the peer held a replica at all.
        found: bool,
        /// Replica contents (empty when `found` is false).
        data: Bytes,
    },
}

/// Decoder errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Frame advertised more than [`MAX_FRAME`] bytes.
    FrameTooLarge(usize),
    /// Unknown message tag.
    BadTag(u8),
    /// Payload ended before the message was complete.
    Truncated,
    /// Frame checksum mismatch: the bytes were damaged in flight.
    Checksum {
        /// CRC the frame header claimed.
        expected: u32,
        /// CRC of the bytes actually received.
        found: u32,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds limit"),
            WireError::BadTag(t) => write!(f, "unknown message tag {t}"),
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::Checksum { expected, found } => {
                write!(
                    f,
                    "frame checksum mismatch: header {expected:#10x}, body {found:#10x}"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

const TAG_WRITE_REPL: u8 = 1;
const TAG_REPL_ACK: u8 = 2;
const TAG_DISCARD: u8 = 3;
const TAG_HEARTBEAT: u8 = 4;
const TAG_RCT_FETCH: u8 = 5;
const TAG_RCT_SNAPSHOT: u8 = 6;
const TAG_PURGE: u8 = 7;
const TAG_PURGE_ACK: u8 = 8;
const TAG_REPL_NACK: u8 = 9;
const TAG_RESYNC_BATCH: u8 = 10;
const TAG_RESYNC_ACK: u8 = 11;
const TAG_PAGE_FETCH: u8 = 12;
const TAG_PAGE_DATA: u8 = 13;
const TAG_WRITE_REPL_BATCH: u8 = 14;
const TAG_REPL_ACK_BATCH: u8 = 15;
const TAG_REPL_NACK_BATCH: u8 = 16;

/// Append one framed message to `out`.
pub fn encode(msg: &Message, out: &mut BytesMut) {
    // Reserve the length and checksum slots, fill after writing the body.
    let len_pos = out.len();
    out.put_u32_le(0); // length
    out.put_u32_le(0); // CRC-32 of the body
    let body_start = out.len();
    match msg {
        Message::WriteRepl {
            seq,
            lpn,
            version,
            crc,
            data,
        } => {
            out.put_u8(TAG_WRITE_REPL);
            out.put_u64_le(*seq);
            out.put_u64_le(*lpn);
            out.put_u64_le(*version);
            out.put_u32_le(*crc);
            out.put_u32_le(data.len() as u32);
            out.put_slice(data);
        }
        Message::ReplAck { seq, credits } => {
            out.put_u8(TAG_REPL_ACK);
            out.put_u64_le(*seq);
            out.put_u32_le(*credits);
        }
        Message::ReplNack { seq, reason } => {
            out.put_u8(TAG_REPL_NACK);
            out.put_u64_le(*seq);
            out.put_u8(reason.to_u8());
        }
        Message::Discard { seq, pages } => {
            out.put_u8(TAG_DISCARD);
            out.put_u64_le(*seq);
            out.put_u32_le(pages.len() as u32);
            for (lpn, ver) in pages {
                out.put_u64_le(*lpn);
                out.put_u64_le(*ver);
            }
        }
        Message::Heartbeat {
            from,
            at_millis,
            credits,
        } => {
            out.put_u8(TAG_HEARTBEAT);
            out.put_u8(*from);
            out.put_u64_le(*at_millis);
            out.put_u32_le(*credits);
        }
        Message::RctFetch => out.put_u8(TAG_RCT_FETCH),
        Message::RctSnapshot { entries } => {
            out.put_u8(TAG_RCT_SNAPSHOT);
            out.put_u32_le(entries.len() as u32);
            for (lpn, ver, data) in entries {
                out.put_u64_le(*lpn);
                out.put_u64_le(*ver);
                out.put_u32_le(data.len() as u32);
                out.put_slice(data);
            }
        }
        Message::Purge => out.put_u8(TAG_PURGE),
        Message::PurgeAck => out.put_u8(TAG_PURGE_ACK),
        Message::ResyncBatch { seq, entries } => {
            out.put_u8(TAG_RESYNC_BATCH);
            out.put_u64_le(*seq);
            out.put_u32_le(entries.len() as u32);
            for (lpn, ver, crc, data) in entries {
                out.put_u64_le(*lpn);
                out.put_u64_le(*ver);
                out.put_u32_le(*crc);
                out.put_u32_le(data.len() as u32);
                out.put_slice(data);
            }
        }
        Message::ResyncAck { seq } => {
            out.put_u8(TAG_RESYNC_ACK);
            out.put_u64_le(*seq);
        }
        Message::WriteReplBatch {
            epoch,
            seq,
            entries,
        } => {
            out.put_u8(TAG_WRITE_REPL_BATCH);
            out.put_u32_le(*epoch);
            out.put_u64_le(*seq);
            out.put_u32_le(entries.len() as u32);
            for (lpn, ver, crc, data) in entries {
                out.put_u64_le(*lpn);
                out.put_u64_le(*ver);
                out.put_u32_le(*crc);
                out.put_u32_le(data.len() as u32);
                out.put_slice(data);
            }
        }
        Message::ReplAckBatch {
            epoch,
            up_to,
            credits,
        } => {
            out.put_u8(TAG_REPL_ACK_BATCH);
            out.put_u32_le(*epoch);
            out.put_u64_le(*up_to);
            out.put_u32_le(*credits);
        }
        Message::ReplNackBatch { epoch, seq, reason } => {
            out.put_u8(TAG_REPL_NACK_BATCH);
            out.put_u32_le(*epoch);
            out.put_u64_le(*seq);
            out.put_u8(reason.to_u8());
        }
        Message::PageFetch { lpn } => {
            out.put_u8(TAG_PAGE_FETCH);
            out.put_u64_le(*lpn);
        }
        Message::PageData {
            lpn,
            version,
            crc,
            found,
            data,
        } => {
            out.put_u8(TAG_PAGE_DATA);
            out.put_u64_le(*lpn);
            out.put_u64_le(*version);
            out.put_u32_le(*crc);
            out.put_u8(u8::from(*found));
            out.put_u32_le(data.len() as u32);
            out.put_slice(data);
        }
    }
    let body_len = (out.len() - body_start) as u32;
    let body_crc = crc32(&out[body_start..]);
    out[len_pos..len_pos + 4].copy_from_slice(&body_len.to_le_bytes());
    out[len_pos + 4..len_pos + 8].copy_from_slice(&body_crc.to_le_bytes());
}

/// Try to decode one framed message from the front of `buf`. Returns
/// `Ok(None)` when more bytes are needed; consumed bytes are removed.
pub fn decode(buf: &mut BytesMut) -> Result<Option<Message>, WireError> {
    if buf.len() < 8 {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME {
        return Err(WireError::FrameTooLarge(len));
    }
    if buf.len() < 8 + len {
        return Ok(None);
    }
    let expected = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    buf.advance(8);
    let mut body = buf.split_to(len).freeze();
    let found = crc32(&body);
    if found != expected {
        return Err(WireError::Checksum { expected, found });
    }
    let msg = parse_body(&mut body)?;
    Ok(Some(msg))
}

fn parse_body(body: &mut Bytes) -> Result<Message, WireError> {
    fn need(body: &Bytes, n: usize) -> Result<(), WireError> {
        if body.remaining() < n {
            Err(WireError::Truncated)
        } else {
            Ok(())
        }
    }
    need(body, 1)?;
    let tag = body.get_u8();
    let msg = match tag {
        TAG_WRITE_REPL => {
            need(body, 8 + 8 + 8 + 4 + 4)?;
            let seq = body.get_u64_le();
            let lpn = body.get_u64_le();
            let version = body.get_u64_le();
            let crc = body.get_u32_le();
            let dl = body.get_u32_le() as usize;
            need(body, dl)?;
            let data = body.split_to(dl);
            Message::WriteRepl {
                seq,
                lpn,
                version,
                crc,
                data,
            }
        }
        TAG_REPL_ACK => {
            need(body, 8 + 4)?;
            Message::ReplAck {
                seq: body.get_u64_le(),
                credits: body.get_u32_le(),
            }
        }
        TAG_REPL_NACK => {
            need(body, 8 + 1)?;
            Message::ReplNack {
                seq: body.get_u64_le(),
                reason: NackReason::from_u8(body.get_u8())?,
            }
        }
        TAG_DISCARD => {
            need(body, 8 + 4)?;
            let seq = body.get_u64_le();
            let n = body.get_u32_le() as usize;
            need(body, n * 16)?;
            let pages = (0..n)
                .map(|_| (body.get_u64_le(), body.get_u64_le()))
                .collect();
            Message::Discard { seq, pages }
        }
        TAG_HEARTBEAT => {
            need(body, 1 + 8 + 4)?;
            Message::Heartbeat {
                from: body.get_u8(),
                at_millis: body.get_u64_le(),
                credits: body.get_u32_le(),
            }
        }
        TAG_RCT_FETCH => Message::RctFetch,
        TAG_RCT_SNAPSHOT => {
            need(body, 4)?;
            let n = body.get_u32_le() as usize;
            let mut entries = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                need(body, 8 + 8 + 4)?;
                let lpn = body.get_u64_le();
                let ver = body.get_u64_le();
                let dl = body.get_u32_le() as usize;
                need(body, dl)?;
                entries.push((lpn, ver, body.split_to(dl)));
            }
            Message::RctSnapshot { entries }
        }
        TAG_PURGE => Message::Purge,
        TAG_PURGE_ACK => Message::PurgeAck,
        TAG_RESYNC_BATCH => {
            need(body, 8 + 4)?;
            let seq = body.get_u64_le();
            let n = body.get_u32_le() as usize;
            let mut entries = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                need(body, 8 + 8 + 4 + 4)?;
                let lpn = body.get_u64_le();
                let ver = body.get_u64_le();
                let crc = body.get_u32_le();
                let dl = body.get_u32_le() as usize;
                need(body, dl)?;
                entries.push((lpn, ver, crc, body.split_to(dl)));
            }
            Message::ResyncBatch { seq, entries }
        }
        TAG_RESYNC_ACK => {
            need(body, 8)?;
            Message::ResyncAck {
                seq: body.get_u64_le(),
            }
        }
        TAG_WRITE_REPL_BATCH => {
            need(body, 4 + 8 + 4)?;
            let epoch = body.get_u32_le();
            let seq = body.get_u64_le();
            let n = body.get_u32_le() as usize;
            let mut entries = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                need(body, 8 + 8 + 4 + 4)?;
                let lpn = body.get_u64_le();
                let ver = body.get_u64_le();
                let crc = body.get_u32_le();
                let dl = body.get_u32_le() as usize;
                need(body, dl)?;
                entries.push((lpn, ver, crc, body.split_to(dl)));
            }
            Message::WriteReplBatch {
                epoch,
                seq,
                entries,
            }
        }
        TAG_REPL_ACK_BATCH => {
            need(body, 4 + 8 + 4)?;
            Message::ReplAckBatch {
                epoch: body.get_u32_le(),
                up_to: body.get_u64_le(),
                credits: body.get_u32_le(),
            }
        }
        TAG_REPL_NACK_BATCH => {
            need(body, 4 + 8 + 1)?;
            Message::ReplNackBatch {
                epoch: body.get_u32_le(),
                seq: body.get_u64_le(),
                reason: NackReason::from_u8(body.get_u8())?,
            }
        }
        TAG_PAGE_FETCH => {
            need(body, 8)?;
            Message::PageFetch {
                lpn: body.get_u64_le(),
            }
        }
        TAG_PAGE_DATA => {
            need(body, 8 + 8 + 4 + 1 + 4)?;
            let lpn = body.get_u64_le();
            let version = body.get_u64_le();
            let crc = body.get_u32_le();
            let found = body.get_u8() != 0;
            let dl = body.get_u32_le() as usize;
            need(body, dl)?;
            Message::PageData {
                lpn,
                version,
                crc,
                found,
                data: body.split_to(dl),
            }
        }
        other => return Err(WireError::BadTag(other)),
    };
    Ok(msg)
}

impl Message {
    /// Build a [`Message::WriteRepl`] with its payload CRC computed.
    pub fn write_repl(seq: u64, lpn: u64, version: u64, data: Bytes) -> Message {
        let crc = crc32(&data);
        Message::WriteRepl {
            seq,
            lpn,
            version,
            crc,
            data,
        }
    }

    /// Build a [`Message::PageData`] reply, computing the payload CRC. Pass
    /// `None` for a miss.
    pub fn page_data(lpn: u64, hit: Option<(u64, Bytes)>) -> Message {
        match hit {
            Some((version, data)) => {
                let crc = crc32(&data);
                Message::PageData {
                    lpn,
                    version,
                    crc,
                    found: true,
                    data,
                }
            }
            None => Message::PageData {
                lpn,
                version: 0,
                crc: crc32(&[]),
                found: false,
                data: Bytes::new(),
            },
        }
    }

    /// Verify the embedded payload CRC of a data-carrying message. Control
    /// messages trivially pass. The receive path calls this *before*
    /// recording the sequence number, so a damaged message can be NACKed
    /// and its retransmission still applied.
    pub fn payload_ok(&self) -> bool {
        match self {
            Message::WriteRepl { crc, data, .. } => crc32(data) == *crc,
            Message::ResyncBatch { entries, .. } | Message::WriteReplBatch { entries, .. } => {
                entries.iter().all(|(_, _, crc, data)| crc32(data) == *crc)
            }
            Message::PageData {
                crc, data, found, ..
            } => !found || crc32(data) == *crc,
            _ => true,
        }
    }

    /// Data-plane sequence number of this message, if it carries one.
    /// `WriteRepl`, `Discard`, `ResyncBatch` and `WriteReplBatch` are the
    /// data plane (they mutate the peer's remote buffer); everything else
    /// is control traffic. Note that `WriteReplBatch` sequences live in
    /// their own per-epoch space, disjoint from the shared
    /// `WriteRepl`/`Discard`/`ResyncBatch` counter.
    pub fn data_seq(&self) -> Option<u64> {
        match self {
            Message::WriteRepl { seq, .. }
            | Message::Discard { seq, .. }
            | Message::ResyncBatch { seq, .. }
            | Message::WriteReplBatch { seq, .. } => Some(*seq),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Receive-side sequence tracking
// ---------------------------------------------------------------------------

/// Classification of an incoming sequence number by [`SeqTracker::observe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqStatus {
    /// First sighting, in order (above everything seen so far).
    New,
    /// First sighting, but a higher sequence number already arrived — the
    /// network reordered delivery. The message is still safe to apply
    /// (page versions guard against stale overwrites).
    NewOutOfOrder,
    /// Already seen (retransmission or network duplication) — or so far
    /// behind the high-water mark it must be presumed seen. Skip it.
    Duplicate,
}

/// Tracks data-plane sequence numbers on the receive side so duplicated and
/// reordered deliveries are detected. Exact within a sliding window of
/// [`SeqTracker::WINDOW`] below the high-water mark; anything older is
/// conservatively treated as a duplicate (a sender would have retried or
/// write-through-ed such a message aeons ago).
#[derive(Debug, Clone, Default)]
pub struct SeqTracker {
    highest: u64,
    seen: std::collections::BTreeSet<u64>,
}

impl SeqTracker {
    /// Sliding-window width: sequence numbers more than this far below the
    /// high-water mark are presumed already seen.
    pub const WINDOW: u64 = 4096;

    /// Fresh tracker: nothing observed.
    pub fn new() -> Self {
        SeqTracker::default()
    }

    /// Classify `seq` and record it. Sequence numbers start at 1; 0 never
    /// appears on the wire.
    pub fn observe(&mut self, seq: u64) -> SeqStatus {
        let floor = self.highest.saturating_sub(Self::WINDOW);
        if seq <= floor && self.highest > 0 {
            return SeqStatus::Duplicate;
        }
        if !self.seen.insert(seq) {
            return SeqStatus::Duplicate;
        }
        if seq > self.highest {
            self.highest = seq;
            // Prune entries that fell out of the window.
            let floor = self.highest.saturating_sub(Self::WINDOW);
            while let Some(&lo) = self.seen.iter().next() {
                if lo > floor {
                    break;
                }
                self.seen.remove(&lo);
            }
            SeqStatus::New
        } else {
            SeqStatus::NewOutOfOrder
        }
    }

    /// Highest sequence number observed so far (0 = none).
    pub fn highest(&self) -> u64 {
        self.highest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: Message) {
        let mut buf = BytesMut::new();
        encode(&msg, &mut buf);
        let decoded = decode(&mut buf).unwrap().expect("complete frame");
        assert_eq!(decoded, msg);
        assert!(buf.is_empty(), "no leftover bytes");
    }

    #[test]
    fn all_messages_round_trip() {
        round_trip(Message::write_repl(
            42,
            7,
            3,
            Bytes::from_static(b"page-contents"),
        ));
        round_trip(Message::ReplAck {
            seq: 42,
            credits: 17,
        });
        round_trip(Message::ReplNack {
            seq: 42,
            reason: NackReason::Corrupt,
        });
        round_trip(Message::ReplNack {
            seq: 43,
            reason: NackReason::NoCredit,
        });
        round_trip(Message::Discard {
            seq: 43,
            pages: vec![(1, 10), (2, 11), (3, 12), (1 << 40, 1 << 50)],
        });
        round_trip(Message::Heartbeat {
            from: 1,
            at_millis: 123_456,
            credits: 64,
        });
        round_trip(Message::RctFetch);
        round_trip(Message::RctSnapshot {
            entries: vec![
                (1, 1, Bytes::from_static(b"a")),
                (9, 4, Bytes::from_static(b"")),
            ],
        });
        round_trip(Message::Purge);
        round_trip(Message::PurgeAck);
        round_trip(Message::ResyncBatch {
            seq: 77,
            entries: vec![
                resync_entry(1, 9, Bytes::from_static(b"solo-write")),
                resync_entry(2, 10, Bytes::new()),
            ],
        });
        round_trip(Message::ResyncAck { seq: 77 });
        round_trip(Message::WriteReplBatch {
            epoch: 3,
            seq: 88,
            entries: vec![
                resync_entry(4, 20, Bytes::from_static(b"batched-page")),
                resync_entry(9, 21, Bytes::new()),
            ],
        });
        round_trip(Message::WriteReplBatch {
            epoch: 0,
            seq: 1,
            entries: vec![],
        });
        round_trip(Message::ReplAckBatch {
            epoch: 3,
            up_to: 88,
            credits: 12,
        });
        round_trip(Message::ReplNackBatch {
            epoch: 3,
            seq: 89,
            reason: NackReason::NoCredit,
        });
        round_trip(Message::PageFetch { lpn: 12 });
        round_trip(Message::page_data(
            12,
            Some((5, Bytes::from_static(b"replica"))),
        ));
        round_trip(Message::page_data(13, None));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let mut full = BytesMut::new();
        encode(&Message::ReplAck { seq: 9, credits: 3 }, &mut full);
        // Feed one byte at a time; decode must return None until complete.
        let mut acc = BytesMut::new();
        let total = full.len();
        for (i, b) in full.iter().enumerate() {
            acc.put_u8(*b);
            let r = decode(&mut acc).unwrap();
            if i + 1 < total {
                assert!(r.is_none(), "premature decode at byte {i}");
            } else {
                assert_eq!(r, Some(Message::ReplAck { seq: 9, credits: 3 }));
            }
        }
    }

    #[test]
    fn multiple_frames_decode_in_order() {
        let mut buf = BytesMut::new();
        encode(&Message::Purge, &mut buf);
        encode(&Message::PurgeAck, &mut buf);
        encode(&Message::RctFetch, &mut buf);
        assert_eq!(decode(&mut buf).unwrap(), Some(Message::Purge));
        assert_eq!(decode(&mut buf).unwrap(), Some(Message::PurgeAck));
        assert_eq!(decode(&mut buf).unwrap(), Some(Message::RctFetch));
        assert_eq!(decode(&mut buf).unwrap(), None);
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le((MAX_FRAME + 1) as u32);
        buf.put_u32_le(0); // checksum slot
        buf.put_u8(TAG_PURGE);
        assert_eq!(
            decode(&mut buf),
            Err(WireError::FrameTooLarge(MAX_FRAME + 1))
        );
    }

    #[test]
    fn bad_tag_is_rejected() {
        let mut buf = BytesMut::new();
        let body = [99u8];
        buf.put_u32_le(1);
        buf.put_u32_le(crc32(&body));
        buf.put_slice(&body);
        assert_eq!(decode(&mut buf), Err(WireError::BadTag(99)));
    }

    #[test]
    fn truncated_body_is_rejected() {
        // A frame claiming to be a ReplAck but with a 3-byte body; the frame
        // checksum is valid, so the failure is the body parse.
        let mut buf = BytesMut::new();
        let mut body = BytesMut::new();
        body.put_u8(TAG_REPL_ACK);
        body.put_u16_le(7);
        buf.put_u32_le(body.len() as u32);
        buf.put_u32_le(crc32(&body));
        buf.put_slice(&body);
        assert_eq!(decode(&mut buf), Err(WireError::Truncated));
    }

    #[test]
    fn frame_checksum_mismatch_is_rejected() {
        let mut buf = BytesMut::new();
        encode(
            &Message::write_repl(1, 2, 3, Bytes::from_static(b"abcd")),
            &mut buf,
        );
        // Flip one payload byte; the frame checksum no longer matches.
        let last = buf.len() - 1;
        buf[last] ^= 0xFF;
        assert!(matches!(decode(&mut buf), Err(WireError::Checksum { .. })));
    }

    #[test]
    fn payload_crc_travels_with_the_message() {
        let msg = Message::write_repl(1, 2, 3, Bytes::from_static(b"payload"));
        assert!(msg.payload_ok());
        // Tamper with the data while keeping the stored CRC: payload_ok
        // must notice (this models a transport that hands over Message
        // values without re-framing).
        if let Message::WriteRepl {
            seq,
            lpn,
            version,
            crc,
            ..
        } = msg
        {
            let tampered = Message::WriteRepl {
                seq,
                lpn,
                version,
                crc,
                data: Bytes::from_static(b"pAyload"),
            };
            assert!(!tampered.payload_ok());
        }
        // Batches verify every entry.
        let good = Message::ResyncBatch {
            seq: 5,
            entries: vec![resync_entry(1, 1, Bytes::from_static(b"x"))],
        };
        assert!(good.payload_ok());
        let bad = Message::ResyncBatch {
            seq: 5,
            entries: vec![(1, 1, 0xDEAD_BEEF, Bytes::from_static(b"x"))],
        };
        assert!(!bad.payload_ok());
        // Pipelined batches verify every entry too.
        let good_batch = Message::WriteReplBatch {
            epoch: 1,
            seq: 5,
            entries: vec![resync_entry(1, 1, Bytes::from_static(b"x"))],
        };
        assert!(good_batch.payload_ok());
        let bad_batch = Message::WriteReplBatch {
            epoch: 1,
            seq: 5,
            entries: vec![
                resync_entry(1, 1, Bytes::from_static(b"x")),
                (2, 2, 0xDEAD_BEEF, Bytes::from_static(b"y")),
            ],
        };
        assert!(!bad_batch.payload_ok());
        // Control traffic trivially passes.
        assert!(Message::Purge.payload_ok());
        assert!(Message::ReplAck { seq: 1, credits: 0 }.payload_ok());
    }

    #[test]
    fn seq_tracker_in_order_stream() {
        let mut t = SeqTracker::new();
        for s in 1..=100u64 {
            assert_eq!(t.observe(s), SeqStatus::New, "seq {s}");
        }
        assert_eq!(t.highest(), 100);
    }

    #[test]
    fn seq_tracker_flags_duplicates_and_reorders() {
        let mut t = SeqTracker::new();
        assert_eq!(t.observe(1), SeqStatus::New);
        assert_eq!(t.observe(3), SeqStatus::New);
        assert_eq!(t.observe(2), SeqStatus::NewOutOfOrder);
        assert_eq!(t.observe(2), SeqStatus::Duplicate);
        assert_eq!(t.observe(3), SeqStatus::Duplicate);
        assert_eq!(t.observe(4), SeqStatus::New);
        assert_eq!(t.highest(), 4);
    }

    #[test]
    fn seq_tracker_presumes_ancient_seqs_seen() {
        let mut t = SeqTracker::new();
        let high = SeqTracker::WINDOW + 50;
        assert_eq!(t.observe(high), SeqStatus::New);
        // Inside the window: genuinely new, just very late.
        assert_eq!(
            t.observe(high - SeqTracker::WINDOW + 1),
            SeqStatus::NewOutOfOrder
        );
        // At or below the floor: presumed duplicate.
        assert_eq!(t.observe(high - SeqTracker::WINDOW), SeqStatus::Duplicate);
        assert_eq!(t.observe(1), SeqStatus::Duplicate);
    }

    #[test]
    fn data_seq_covers_exactly_the_data_plane() {
        assert_eq!(
            Message::write_repl(9, 1, 1, Bytes::new()).data_seq(),
            Some(9)
        );
        assert_eq!(
            Message::Discard {
                seq: 4,
                pages: vec![]
            }
            .data_seq(),
            Some(4)
        );
        assert_eq!(
            Message::ResyncBatch {
                seq: 6,
                entries: vec![]
            }
            .data_seq(),
            Some(6)
        );
        assert_eq!(
            Message::WriteReplBatch {
                epoch: 2,
                seq: 8,
                entries: vec![]
            }
            .data_seq(),
            Some(8)
        );
        assert_eq!(Message::ReplAck { seq: 9, credits: 0 }.data_seq(), None);
        assert_eq!(Message::ResyncAck { seq: 9 }.data_seq(), None);
        assert_eq!(
            Message::ReplAckBatch {
                epoch: 1,
                up_to: 9,
                credits: 0
            }
            .data_seq(),
            None
        );
        assert_eq!(
            Message::ReplNackBatch {
                epoch: 1,
                seq: 9,
                reason: NackReason::Corrupt
            }
            .data_seq(),
            None
        );
        assert_eq!(
            Message::ReplNack {
                seq: 9,
                reason: NackReason::Corrupt
            }
            .data_seq(),
            None
        );
        assert_eq!(
            Message::Heartbeat {
                from: 0,
                at_millis: 0,
                credits: 0,
            }
            .data_seq(),
            None
        );
        assert_eq!(Message::RctFetch.data_seq(), None);
        assert_eq!(Message::PageFetch { lpn: 0 }.data_seq(), None);
    }

    #[test]
    fn empty_page_data_is_fine() {
        round_trip(Message::write_repl(0, 0, 0, Bytes::new()));
        round_trip(Message::Discard {
            seq: 0,
            pages: vec![],
        });
        round_trip(Message::RctSnapshot { entries: vec![] });
        round_trip(Message::ResyncBatch {
            seq: 0,
            entries: vec![],
        });
    }
}
