//! Wire protocol between cooperative peers.
//!
//! A hand-rolled, length-prefixed binary framing over [`bytes`] — no external
//! serialisation dependency. Every frame is
//!
//! ```text
//! [u32 LE: payload length][u8: message tag][payload…]
//! ```
//!
//! The message set implements Figure 3's arrows: write replication and acks,
//! discards after local flushes, heartbeats (Section III.D), and the
//! recovery handshake (RCT fetch → snapshot → purge).

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Maximum frame payload accepted by the decoder (16 MiB): protects against
/// corrupted length prefixes.
pub const MAX_FRAME: usize = 16 << 20;

/// Protocol messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Replicate one dirty page into the peer's remote buffer.
    WriteRepl {
        /// Sender-local sequence number, echoed in the ack.
        seq: u64,
        /// Logical page.
        lpn: u64,
        /// Page version (monotone per owner).
        version: u64,
        /// Page contents.
        data: Bytes,
    },
    /// Acknowledge a replicated write.
    ReplAck {
        /// The `seq` of the acknowledged [`Message::WriteRepl`].
        seq: u64,
    },
    /// The owner flushed these pages to its SSD; the peer drops its copies.
    Discard {
        /// Sender-local sequence number (shared counter with
        /// [`Message::WriteRepl`], so the receiver can dedup and detect
        /// reordering across the whole data plane).
        seq: u64,
        /// `(lpn, version)` of each flushed page. The version bounds the
        /// discard: the peer only drops its copy if it is not newer, so a
        /// Discard delayed past a fresher replication of the same page
        /// cannot delete the only surviving copy of an acknowledged write.
        pages: Vec<(u64, u64)>,
    },
    /// Liveness beat.
    Heartbeat {
        /// Sender's node id.
        from: u8,
        /// Sender's monotonic clock, milliseconds.
        at_millis: u64,
    },
    /// Rebooted owner asks for everything the peer holds for it.
    RctFetch,
    /// Reply to [`Message::RctFetch`]: the remote-buffer contents.
    RctSnapshot {
        /// (lpn, version, data) triples.
        entries: Vec<(u64, u64, Bytes)>,
    },
    /// Owner finished recovery; peer clears its remote buffer.
    Purge,
    /// Acknowledge a [`Message::Purge`].
    PurgeAck,
}

/// Decoder errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Frame advertised more than [`MAX_FRAME`] bytes.
    FrameTooLarge(usize),
    /// Unknown message tag.
    BadTag(u8),
    /// Payload ended before the message was complete.
    Truncated,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds limit"),
            WireError::BadTag(t) => write!(f, "unknown message tag {t}"),
            WireError::Truncated => write!(f, "truncated frame"),
        }
    }
}

impl std::error::Error for WireError {}

const TAG_WRITE_REPL: u8 = 1;
const TAG_REPL_ACK: u8 = 2;
const TAG_DISCARD: u8 = 3;
const TAG_HEARTBEAT: u8 = 4;
const TAG_RCT_FETCH: u8 = 5;
const TAG_RCT_SNAPSHOT: u8 = 6;
const TAG_PURGE: u8 = 7;
const TAG_PURGE_ACK: u8 = 8;

/// Append one framed message to `out`.
pub fn encode(msg: &Message, out: &mut BytesMut) {
    // Reserve the length slot, fill after writing the body.
    let len_pos = out.len();
    out.put_u32_le(0);
    let body_start = out.len();
    match msg {
        Message::WriteRepl {
            seq,
            lpn,
            version,
            data,
        } => {
            out.put_u8(TAG_WRITE_REPL);
            out.put_u64_le(*seq);
            out.put_u64_le(*lpn);
            out.put_u64_le(*version);
            out.put_u32_le(data.len() as u32);
            out.put_slice(data);
        }
        Message::ReplAck { seq } => {
            out.put_u8(TAG_REPL_ACK);
            out.put_u64_le(*seq);
        }
        Message::Discard { seq, pages } => {
            out.put_u8(TAG_DISCARD);
            out.put_u64_le(*seq);
            out.put_u32_le(pages.len() as u32);
            for (lpn, ver) in pages {
                out.put_u64_le(*lpn);
                out.put_u64_le(*ver);
            }
        }
        Message::Heartbeat { from, at_millis } => {
            out.put_u8(TAG_HEARTBEAT);
            out.put_u8(*from);
            out.put_u64_le(*at_millis);
        }
        Message::RctFetch => out.put_u8(TAG_RCT_FETCH),
        Message::RctSnapshot { entries } => {
            out.put_u8(TAG_RCT_SNAPSHOT);
            out.put_u32_le(entries.len() as u32);
            for (lpn, ver, data) in entries {
                out.put_u64_le(*lpn);
                out.put_u64_le(*ver);
                out.put_u32_le(data.len() as u32);
                out.put_slice(data);
            }
        }
        Message::Purge => out.put_u8(TAG_PURGE),
        Message::PurgeAck => out.put_u8(TAG_PURGE_ACK),
    }
    let body_len = (out.len() - body_start) as u32;
    out[len_pos..len_pos + 4].copy_from_slice(&body_len.to_le_bytes());
}

/// Try to decode one framed message from the front of `buf`. Returns
/// `Ok(None)` when more bytes are needed; consumed bytes are removed.
pub fn decode(buf: &mut BytesMut) -> Result<Option<Message>, WireError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME {
        return Err(WireError::FrameTooLarge(len));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    buf.advance(4);
    let mut body = buf.split_to(len).freeze();
    let msg = parse_body(&mut body)?;
    Ok(Some(msg))
}

fn parse_body(body: &mut Bytes) -> Result<Message, WireError> {
    fn need(body: &Bytes, n: usize) -> Result<(), WireError> {
        if body.remaining() < n {
            Err(WireError::Truncated)
        } else {
            Ok(())
        }
    }
    need(body, 1)?;
    let tag = body.get_u8();
    let msg = match tag {
        TAG_WRITE_REPL => {
            need(body, 8 + 8 + 8 + 4)?;
            let seq = body.get_u64_le();
            let lpn = body.get_u64_le();
            let version = body.get_u64_le();
            let dl = body.get_u32_le() as usize;
            need(body, dl)?;
            let data = body.split_to(dl);
            Message::WriteRepl {
                seq,
                lpn,
                version,
                data,
            }
        }
        TAG_REPL_ACK => {
            need(body, 8)?;
            Message::ReplAck {
                seq: body.get_u64_le(),
            }
        }
        TAG_DISCARD => {
            need(body, 8 + 4)?;
            let seq = body.get_u64_le();
            let n = body.get_u32_le() as usize;
            need(body, n * 16)?;
            let pages = (0..n)
                .map(|_| (body.get_u64_le(), body.get_u64_le()))
                .collect();
            Message::Discard { seq, pages }
        }
        TAG_HEARTBEAT => {
            need(body, 1 + 8)?;
            Message::Heartbeat {
                from: body.get_u8(),
                at_millis: body.get_u64_le(),
            }
        }
        TAG_RCT_FETCH => Message::RctFetch,
        TAG_RCT_SNAPSHOT => {
            need(body, 4)?;
            let n = body.get_u32_le() as usize;
            let mut entries = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                need(body, 8 + 8 + 4)?;
                let lpn = body.get_u64_le();
                let ver = body.get_u64_le();
                let dl = body.get_u32_le() as usize;
                need(body, dl)?;
                entries.push((lpn, ver, body.split_to(dl)));
            }
            Message::RctSnapshot { entries }
        }
        TAG_PURGE => Message::Purge,
        TAG_PURGE_ACK => Message::PurgeAck,
        other => return Err(WireError::BadTag(other)),
    };
    Ok(msg)
}

impl Message {
    /// Data-plane sequence number of this message, if it carries one.
    /// `WriteRepl` and `Discard` are the data plane (they mutate the peer's
    /// remote buffer); everything else is control traffic.
    pub fn data_seq(&self) -> Option<u64> {
        match self {
            Message::WriteRepl { seq, .. } | Message::Discard { seq, .. } => Some(*seq),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Receive-side sequence tracking
// ---------------------------------------------------------------------------

/// Classification of an incoming sequence number by [`SeqTracker::observe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqStatus {
    /// First sighting, in order (above everything seen so far).
    New,
    /// First sighting, but a higher sequence number already arrived — the
    /// network reordered delivery. The message is still safe to apply
    /// (page versions guard against stale overwrites).
    NewOutOfOrder,
    /// Already seen (retransmission or network duplication) — or so far
    /// behind the high-water mark it must be presumed seen. Skip it.
    Duplicate,
}

/// Tracks data-plane sequence numbers on the receive side so duplicated and
/// reordered deliveries are detected. Exact within a sliding window of
/// [`SeqTracker::WINDOW`] below the high-water mark; anything older is
/// conservatively treated as a duplicate (a sender would have retried or
/// write-through-ed such a message aeons ago).
#[derive(Debug, Clone, Default)]
pub struct SeqTracker {
    highest: u64,
    seen: std::collections::BTreeSet<u64>,
}

impl SeqTracker {
    /// Sliding-window width: sequence numbers more than this far below the
    /// high-water mark are presumed already seen.
    pub const WINDOW: u64 = 4096;

    /// Fresh tracker: nothing observed.
    pub fn new() -> Self {
        SeqTracker::default()
    }

    /// Classify `seq` and record it. Sequence numbers start at 1; 0 never
    /// appears on the wire.
    pub fn observe(&mut self, seq: u64) -> SeqStatus {
        let floor = self.highest.saturating_sub(Self::WINDOW);
        if seq <= floor && self.highest > 0 {
            return SeqStatus::Duplicate;
        }
        if !self.seen.insert(seq) {
            return SeqStatus::Duplicate;
        }
        if seq > self.highest {
            self.highest = seq;
            // Prune entries that fell out of the window.
            let floor = self.highest.saturating_sub(Self::WINDOW);
            while let Some(&lo) = self.seen.iter().next() {
                if lo > floor {
                    break;
                }
                self.seen.remove(&lo);
            }
            SeqStatus::New
        } else {
            SeqStatus::NewOutOfOrder
        }
    }

    /// Highest sequence number observed so far (0 = none).
    pub fn highest(&self) -> u64 {
        self.highest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: Message) {
        let mut buf = BytesMut::new();
        encode(&msg, &mut buf);
        let decoded = decode(&mut buf).unwrap().expect("complete frame");
        assert_eq!(decoded, msg);
        assert!(buf.is_empty(), "no leftover bytes");
    }

    #[test]
    fn all_messages_round_trip() {
        round_trip(Message::WriteRepl {
            seq: 42,
            lpn: 7,
            version: 3,
            data: Bytes::from_static(b"page-contents"),
        });
        round_trip(Message::ReplAck { seq: 42 });
        round_trip(Message::Discard {
            seq: 43,
            pages: vec![(1, 10), (2, 11), (3, 12), (1 << 40, 1 << 50)],
        });
        round_trip(Message::Heartbeat {
            from: 1,
            at_millis: 123_456,
        });
        round_trip(Message::RctFetch);
        round_trip(Message::RctSnapshot {
            entries: vec![
                (1, 1, Bytes::from_static(b"a")),
                (9, 4, Bytes::from_static(b"")),
            ],
        });
        round_trip(Message::Purge);
        round_trip(Message::PurgeAck);
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let mut full = BytesMut::new();
        encode(&Message::ReplAck { seq: 9 }, &mut full);
        // Feed one byte at a time; decode must return None until complete.
        let mut acc = BytesMut::new();
        let total = full.len();
        for (i, b) in full.iter().enumerate() {
            acc.put_u8(*b);
            let r = decode(&mut acc).unwrap();
            if i + 1 < total {
                assert!(r.is_none(), "premature decode at byte {i}");
            } else {
                assert_eq!(r, Some(Message::ReplAck { seq: 9 }));
            }
        }
    }

    #[test]
    fn multiple_frames_decode_in_order() {
        let mut buf = BytesMut::new();
        encode(&Message::Purge, &mut buf);
        encode(&Message::PurgeAck, &mut buf);
        encode(&Message::RctFetch, &mut buf);
        assert_eq!(decode(&mut buf).unwrap(), Some(Message::Purge));
        assert_eq!(decode(&mut buf).unwrap(), Some(Message::PurgeAck));
        assert_eq!(decode(&mut buf).unwrap(), Some(Message::RctFetch));
        assert_eq!(decode(&mut buf).unwrap(), None);
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le((MAX_FRAME + 1) as u32);
        buf.put_u8(TAG_PURGE);
        assert_eq!(
            decode(&mut buf),
            Err(WireError::FrameTooLarge(MAX_FRAME + 1))
        );
    }

    #[test]
    fn bad_tag_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(1);
        buf.put_u8(99);
        assert_eq!(decode(&mut buf), Err(WireError::BadTag(99)));
    }

    #[test]
    fn truncated_body_is_rejected() {
        // A frame claiming to be a ReplAck but with a 2-byte body.
        let mut buf = BytesMut::new();
        buf.put_u32_le(3);
        buf.put_u8(TAG_REPL_ACK);
        buf.put_u16_le(7);
        assert_eq!(decode(&mut buf), Err(WireError::Truncated));
    }

    #[test]
    fn seq_tracker_in_order_stream() {
        let mut t = SeqTracker::new();
        for s in 1..=100u64 {
            assert_eq!(t.observe(s), SeqStatus::New, "seq {s}");
        }
        assert_eq!(t.highest(), 100);
    }

    #[test]
    fn seq_tracker_flags_duplicates_and_reorders() {
        let mut t = SeqTracker::new();
        assert_eq!(t.observe(1), SeqStatus::New);
        assert_eq!(t.observe(3), SeqStatus::New);
        assert_eq!(t.observe(2), SeqStatus::NewOutOfOrder);
        assert_eq!(t.observe(2), SeqStatus::Duplicate);
        assert_eq!(t.observe(3), SeqStatus::Duplicate);
        assert_eq!(t.observe(4), SeqStatus::New);
        assert_eq!(t.highest(), 4);
    }

    #[test]
    fn seq_tracker_presumes_ancient_seqs_seen() {
        let mut t = SeqTracker::new();
        let high = SeqTracker::WINDOW + 50;
        assert_eq!(t.observe(high), SeqStatus::New);
        // Inside the window: genuinely new, just very late.
        assert_eq!(t.observe(high - SeqTracker::WINDOW + 1), SeqStatus::NewOutOfOrder);
        // At or below the floor: presumed duplicate.
        assert_eq!(t.observe(high - SeqTracker::WINDOW), SeqStatus::Duplicate);
        assert_eq!(t.observe(1), SeqStatus::Duplicate);
    }

    #[test]
    fn data_seq_covers_exactly_the_data_plane() {
        assert_eq!(
            Message::WriteRepl {
                seq: 9,
                lpn: 1,
                version: 1,
                data: Bytes::new()
            }
            .data_seq(),
            Some(9)
        );
        assert_eq!(
            Message::Discard {
                seq: 4,
                pages: vec![]
            }
            .data_seq(),
            Some(4)
        );
        assert_eq!(Message::ReplAck { seq: 9 }.data_seq(), None);
        assert_eq!(
            Message::Heartbeat {
                from: 0,
                at_millis: 0
            }
            .data_seq(),
            None
        );
        assert_eq!(Message::RctFetch.data_seq(), None);
    }

    #[test]
    fn empty_page_data_is_fine() {
        round_trip(Message::WriteRepl {
            seq: 0,
            lpn: 0,
            version: 0,
            data: Bytes::new(),
        });
        round_trip(Message::Discard {
            seq: 0,
            pages: vec![],
        });
        round_trip(Message::RctSnapshot { entries: vec![] });
    }
}
