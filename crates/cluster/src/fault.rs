//! Deterministic fault injection for transports.
//!
//! [`FaultTransport`] wraps any [`Transport`] and misbehaves on purpose:
//! messages are dropped, delayed, duplicated, reordered, payload-corrupted,
//! or swallowed by one-way partitions (index-span or timed), all according
//! to a seeded [`FaultPlan`]. Every fault
//! decision is drawn from a [`DetRng`] keyed only by the plan's seed and the
//! position of the message in the send sequence, so a given (seed, plan,
//! message sequence) always produces the *same decision trace* — the chaos
//! suite asserts this literally, and a failing chaos run can be replayed
//! from its printed seed.
//!
//! Faults apply to outbound traffic of the wrapped endpoint. By default only
//! the data plane ([`Message::WriteRepl`] / [`Message::Discard`] and their
//! [`Message::ReplAck`]s) is disturbed; control traffic (heartbeats, the
//! recovery handshake) passes through untouched so a lossy-but-alive link
//! does not masquerade as a dead peer. Set [`FaultPlan::all_traffic`] to
//! disturb everything.
//!
//! Time-based effects (added latency, the slow-peer gap) necessarily depend
//! on wall-clock scheduling; the *decisions* — what is dropped, how long
//! each delay is, what is duplicated — stay deterministic regardless.

use crate::transport::{Transport, TransportError};
use crate::wire::Message;
use fc_obs::Obs;
use fc_simkit::DetRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A seeded schedule of network misbehaviour.
///
/// Partition spans and the drop/dup/reorder probabilities are evaluated
/// against the *eligible-send index*: the count of faultable messages sent
/// so far. Indexing by send count instead of wall time keeps every decision
/// reproducible under arbitrary thread scheduling.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed for all fault decisions.
    pub seed: u64,
    /// Probability an eligible message is silently dropped.
    pub drop_prob: f64,
    /// Deterministically drop the first `drop_first` eligible messages
    /// (before any probabilistic decision). Drives exact retry tests.
    pub drop_first: u64,
    /// Probability a delivered message is sent twice.
    pub dup_prob: f64,
    /// Fixed latency added to every delivered message.
    pub base_delay: Duration,
    /// Additional uniformly-jittered latency in `[0, jitter)`.
    pub jitter: Duration,
    /// Probability an eligible message is held back and released only after
    /// `reorder_window` further eligible sends (bounded reordering).
    pub reorder_prob: f64,
    /// How many later sends overtake a held-back message.
    pub reorder_window: u64,
    /// One-way partitions as half-open `[start, end)` spans over the
    /// eligible-send index: messages inside a span vanish. The partition
    /// "heals" once the send index passes `end`.
    pub partitions: Vec<(u64, u64)>,
    /// One-way partitions as half-open `[start, end)` wall-clock windows
    /// measured from the transport's creation. Unlike index spans these
    /// model a real timed outage, so they swallow *all* traffic — control
    /// messages included, regardless of `data_only` — which is what lets
    /// heartbeat-based failure detection actually fire in chaos tests.
    /// Window membership depends on wall-clock scheduling; the rest of the
    /// decision trace stays deterministic.
    pub timed_partitions: Vec<(Duration, Duration)>,
    /// Probability a delivered data-carrying message has one payload byte
    /// flipped in flight (the embedded payload CRC goes stale, so the
    /// receiver detects it).
    pub corrupt_prob: f64,
    /// Slow-peer throttle: minimum spacing between deliveries that go
    /// through the delivery worker.
    pub min_gap: Duration,
    /// When true (the default) only data-plane messages are disturbed;
    /// heartbeats and the recovery handshake always pass through.
    pub data_only: bool,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            drop_prob: 0.0,
            drop_first: 0,
            dup_prob: 0.0,
            base_delay: Duration::ZERO,
            jitter: Duration::ZERO,
            reorder_prob: 0.0,
            reorder_window: 0,
            partitions: Vec::new(),
            timed_partitions: Vec::new(),
            corrupt_prob: 0.0,
            min_gap: Duration::ZERO,
            data_only: true,
        }
    }
}

impl FaultPlan {
    /// A fault-free plan with the given seed (builder starting point).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Drop each eligible message with probability `p`.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop_prob = p;
        self
    }

    /// Deterministically drop the first `n` eligible messages.
    pub fn with_drop_first(mut self, n: u64) -> Self {
        self.drop_first = n;
        self
    }

    /// Duplicate each delivered message with probability `p`.
    pub fn with_dup(mut self, p: f64) -> Self {
        self.dup_prob = p;
        self
    }

    /// Add `base` latency plus uniform jitter in `[0, jitter)`.
    pub fn with_delay(mut self, base: Duration, jitter: Duration) -> Self {
        self.base_delay = base;
        self.jitter = jitter;
        self
    }

    /// Hold back each eligible message with probability `p` until `window`
    /// further eligible messages have been sent.
    pub fn with_reorder(mut self, p: f64, window: u64) -> Self {
        self.reorder_prob = p;
        self.reorder_window = window;
        self
    }

    /// Add a one-way partition over eligible-send indices `[start, end)`.
    pub fn with_partition(mut self, start: u64, end: u64) -> Self {
        assert!(start <= end, "partition span must be ordered");
        self.partitions.push((start, end));
        self
    }

    /// Add a one-way partition lasting `len`, starting `start` after the
    /// transport is created. Timed partitions swallow *all* traffic (control
    /// included), so the peer's heartbeat monitor sees real silence.
    pub fn with_partition_for(mut self, start: Duration, len: Duration) -> Self {
        self.timed_partitions.push((start, start + len));
        self
    }

    /// Flip one payload byte of each delivered data-carrying message with
    /// probability `p` (wire corruption; the payload CRC catches it).
    pub fn with_corrupt(mut self, p: f64) -> Self {
        self.corrupt_prob = p;
        self
    }

    /// Throttle deliveries to at most one per `gap` (slow peer).
    pub fn with_min_gap(mut self, gap: Duration) -> Self {
        self.min_gap = gap;
        self
    }

    /// Disturb control traffic (heartbeats, recovery) too, not just the
    /// data plane.
    pub fn all_traffic(mut self) -> Self {
        self.data_only = false;
        self
    }

    fn partitioned(&self, index: u64) -> bool {
        self.partitions
            .iter()
            .any(|&(start, end)| index >= start && index < end)
    }

    fn timed_partitioned(&self, elapsed: Duration) -> bool {
        self.timed_partitions
            .iter()
            .any(|&(start, end)| elapsed >= start && elapsed < end)
    }

    fn eligible(&self, msg: &Message) -> bool {
        !self.data_only
            || matches!(
                msg,
                Message::WriteRepl { .. }
                    | Message::Discard { .. }
                    | Message::ReplAck { .. }
                    | Message::ReplNack { .. }
                    | Message::ResyncBatch { .. }
                    | Message::ResyncAck { .. }
                    | Message::WriteReplBatch { .. }
                    | Message::ReplAckBatch { .. }
                    | Message::ReplNackBatch { .. }
            )
    }

    /// True when every delivery can bypass the delivery worker (no latency
    /// or throttling configured), which preserves synchronous FIFO order.
    fn synchronous(&self) -> bool {
        self.base_delay.is_zero() && self.jitter.is_zero() && self.min_gap.is_zero()
    }
}

/// What the fault layer decided to do with one eligible message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Forwarded (possibly late, possibly twice, possibly damaged).
    Deliver {
        /// Added latency in nanoseconds.
        delay_nanos: u64,
        /// A duplicate copy was also sent (the duplicate is always clean).
        dup: bool,
        /// One payload byte of the primary copy was flipped in flight.
        corrupt: bool,
    },
    /// Silently dropped.
    Drop,
    /// Swallowed by an active partition span.
    Partitioned,
    /// Held back for reordering; released after the eligible-send index
    /// reaches `release_at`.
    Held {
        /// Index at which the message is re-injected.
        release_at: u64,
    },
}

/// The sequence number recorded in the decision trace: data-plane seq, or
/// the echoed seq of an ack/nack.
fn fault_seq(msg: &Message) -> Option<u64> {
    match msg {
        Message::ReplAck { seq, .. }
        | Message::ReplNack { seq, .. }
        | Message::ReplNackBatch { seq, .. }
        | Message::ResyncAck { seq } => Some(*seq),
        Message::ReplAckBatch { up_to, .. } => Some(*up_to),
        m => m.data_seq(),
    }
}

/// One entry of the decision trace: what happened to eligible send `index`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// Eligible-send index the decision applies to.
    pub index: u64,
    /// Data-plane sequence number of the message, if it carries one.
    pub seq: Option<u64>,
    /// The decision.
    pub action: FaultAction,
}

/// Aggregate fault counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages subject to fault decisions.
    pub eligible: u64,
    /// Eligible messages forwarded (excluding duplicates).
    pub delivered: u64,
    /// Eligible messages dropped (probabilistic + `drop_first`).
    pub dropped: u64,
    /// Extra copies sent by duplication.
    pub duplicated: u64,
    /// Messages held back for reordering.
    pub held: u64,
    /// Messages swallowed by partition spans (index-based and timed).
    pub partitioned: u64,
    /// Delivered messages whose payload was corrupted in flight.
    pub corrupted: u64,
    /// Control messages passed through untouched (`data_only` plans).
    pub passthrough: u64,
}

/// Dumps the fault counters under `cluster.fault.*`.
impl fc_obs::StatSource for FaultStats {
    fn emit(&self, reg: &mut fc_obs::Registry) {
        reg.counter("cluster.fault.eligible").store(self.eligible);
        reg.counter("cluster.fault.delivered").store(self.delivered);
        reg.counter("cluster.fault.dropped").store(self.dropped);
        reg.counter("cluster.fault.duplicated")
            .store(self.duplicated);
        reg.counter("cluster.fault.held").store(self.held);
        reg.counter("cluster.fault.partitioned")
            .store(self.partitioned);
        reg.counter("cluster.fault.corrupted").store(self.corrupted);
        reg.counter("cluster.fault.passthrough")
            .store(self.passthrough);
    }
}

struct FaultState {
    rng: DetRng,
    /// Count of eligible sends so far (the decision index).
    index: u64,
    /// Held-back messages: (release-at index, message).
    held: Vec<(u64, Message)>,
    trace: Vec<FaultRecord>,
    stats: FaultStats,
    /// Tiebreak counter so equal-due deliveries stay FIFO.
    next_order: u64,
}

struct Delivery {
    due: Instant,
    order: u64,
    msg: Message,
}

impl PartialEq for Delivery {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.order == other.order
    }
}
impl Eq for Delivery {}
impl PartialOrd for Delivery {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Delivery {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.order).cmp(&(other.due, other.order))
    }
}

struct DeliveryQueue {
    heap: Mutex<BinaryHeap<Reverse<Delivery>>>,
    ready: Condvar,
    shutdown: AtomicBool,
}

/// A [`Transport`] decorator that injects the faults described by a
/// [`FaultPlan`] into outbound traffic. Receiving and connectivity are
/// delegated to the wrapped transport untouched (wrap both endpoints to
/// disturb both directions).
pub struct FaultTransport<T: Transport + Sync + 'static> {
    inner: Arc<T>,
    plan: FaultPlan,
    state: Mutex<FaultState>,
    queue: Arc<DeliveryQueue>,
    worker: Option<JoinHandle<()>>,
    obs: Option<Obs>,
    /// Reference point for [`FaultPlan::timed_partitions`].
    epoch: Instant,
}

impl<T: Transport + Sync + 'static> FaultTransport<T> {
    /// Wrap `inner`, disturbing its outbound messages per `plan`.
    pub fn new(inner: T, plan: FaultPlan) -> Self {
        let inner = Arc::new(inner);
        let queue = Arc::new(DeliveryQueue {
            heap: Mutex::new(BinaryHeap::new()),
            ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let worker = {
            let inner = inner.clone();
            let queue = queue.clone();
            let min_gap = plan.min_gap;
            std::thread::Builder::new()
                .name("fc-fault-delivery".into())
                .spawn(move || delivery_loop(inner, queue, min_gap))
                .expect("spawn fault delivery thread")
        };
        let rng = DetRng::new(plan.seed);
        FaultTransport {
            inner,
            plan,
            state: Mutex::new(FaultState {
                rng,
                index: 0,
                held: Vec::new(),
                trace: Vec::new(),
                stats: FaultStats::default(),
                next_order: 0,
            }),
            queue,
            worker: Some(worker),
            obs: None,
            epoch: Instant::now(),
        }
    }

    /// Attach observability before handing the transport to a node: every
    /// fault decision is mirrored as a wall-stamped `cluster.fault`/
    /// `decision` event tagged with the plan's seed and the eligible-send
    /// index — exactly one event per [`FaultRecord`], in trace order.
    /// To keep a queryable handle while a [`crate::Node`] owns the
    /// transport, wrap it in an [`Arc`] and spawn the node over a clone.
    pub fn attach_obs(&mut self, obs: &Obs) {
        self.obs = Some(obs.clone());
    }

    /// Mirror one decision into the obs stream.
    fn emit_decision(&self, index: u64, seq: Option<u64>, action: FaultAction) {
        let Some(o) = &self.obs else { return };
        let mut ev = o
            .wall_event("cluster.fault", "decision")
            .u64_field("seed", self.plan.seed)
            .u64_field("index", index);
        if let Some(s) = seq {
            ev = ev.u64_field("seq", s);
        }
        ev = match action {
            FaultAction::Deliver {
                delay_nanos,
                dup,
                corrupt,
            } => ev
                .str_field("action", "deliver")
                .u64_field("delay_ns", delay_nanos)
                .bool_field("dup", dup)
                .bool_field("corrupt", corrupt),
            FaultAction::Drop => ev.str_field("action", "drop"),
            FaultAction::Partitioned => ev.str_field("action", "partitioned"),
            FaultAction::Held { release_at } => ev
                .str_field("action", "held")
                .u64_field("release_at", release_at),
        };
        o.emit(ev);
    }

    /// The decision trace so far (one record per eligible send).
    pub fn fault_trace(&self) -> Vec<FaultRecord> {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .trace
            .clone()
    }

    /// Aggregate fault counters so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).stats
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Forward now (synchronously when the plan allows it) or enqueue for
    /// the delivery worker.
    fn forward(
        &self,
        state: &mut FaultState,
        msg: Message,
        delay: Duration,
    ) -> Result<(), TransportError> {
        if delay.is_zero() && self.plan.synchronous() {
            return self.inner.send(msg);
        }
        let order = state.next_order;
        state.next_order += 1;
        let mut heap = self.queue.heap.lock().unwrap_or_else(|e| e.into_inner());
        heap.push(Reverse(Delivery {
            due: Instant::now() + delay,
            order,
            msg,
        }));
        drop(heap);
        self.queue.ready.notify_one();
        Ok(())
    }

    /// Draw the added latency for one delivery.
    fn draw_delay(&self, rng: &mut DetRng) -> Duration {
        let mut d = self.plan.base_delay;
        if !self.plan.jitter.is_zero() {
            let j = self.plan.jitter.as_nanos() as f64 * rng.unit();
            d += Duration::from_nanos(j as u64);
        }
        d
    }

    /// Flip one payload byte of a data-carrying message (the embedded
    /// payload CRC is left stale on purpose — that is the corruption the
    /// receiver detects). Returns `None` when the message carries no
    /// corruptible payload.
    fn corrupt_copy(msg: &Message, rng: &mut fc_simkit::DetRng) -> Option<Message> {
        fn flip(data: &bytes::Bytes, rng: &mut fc_simkit::DetRng) -> bytes::Bytes {
            let mut v = data.to_vec();
            let i = rng.below(v.len() as u64) as usize;
            v[i] ^= 0xFF;
            bytes::Bytes::from(v)
        }
        fn flip_one_entry(
            entries: &[crate::wire::ResyncEntry],
            rng: &mut fc_simkit::DetRng,
        ) -> Vec<crate::wire::ResyncEntry> {
            let candidates: Vec<usize> = entries
                .iter()
                .enumerate()
                .filter(|(_, (_, _, _, d))| !d.is_empty())
                .map(|(i, _)| i)
                .collect();
            let pick = candidates[rng.below(candidates.len() as u64) as usize];
            let mut entries = entries.to_vec();
            let (lpn, ver, crc, data) = &entries[pick];
            entries[pick] = (*lpn, *ver, *crc, flip(data, rng));
            entries
        }
        match msg {
            Message::WriteRepl {
                seq,
                lpn,
                version,
                crc,
                data,
            } if !data.is_empty() => Some(Message::WriteRepl {
                seq: *seq,
                lpn: *lpn,
                version: *version,
                crc: *crc,
                data: flip(data, rng),
            }),
            Message::ResyncBatch { seq, entries }
                if entries.iter().any(|(_, _, _, d)| !d.is_empty()) =>
            {
                let entries = flip_one_entry(entries, rng);
                Some(Message::ResyncBatch { seq: *seq, entries })
            }
            Message::WriteReplBatch {
                epoch,
                seq,
                entries,
            } if entries.iter().any(|(_, _, _, d)| !d.is_empty()) => {
                let entries = flip_one_entry(entries, rng);
                Some(Message::WriteReplBatch {
                    epoch: *epoch,
                    seq: *seq,
                    entries,
                })
            }
            _ => None,
        }
    }

    /// Release every held-back message whose window has expired.
    fn release_due(&self, state: &mut FaultState) -> Result<(), TransportError> {
        let index = state.index;
        let mut i = 0;
        while i < state.held.len() {
            if state.held[i].0 <= index {
                let (_, msg) = state.held.remove(i);
                self.forward(state, msg, Duration::ZERO)?;
            } else {
                i += 1;
            }
        }
        Ok(())
    }
}

impl<T: Transport + Sync + 'static> Transport for FaultTransport<T> {
    fn send(&self, msg: Message) -> Result<(), TransportError> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());

        // Timed partitions model a real outage: they swallow everything,
        // control traffic included, regardless of `data_only`. Eligible
        // messages still consume an index and a trace entry so the decision
        // trace stays aligned with the eligible-send sequence.
        if self.plan.timed_partitioned(self.epoch.elapsed()) {
            state.stats.partitioned += 1;
            if self.plan.eligible(&msg) {
                let index = state.index;
                state.index += 1;
                state.stats.eligible += 1;
                let seq = fault_seq(&msg);
                state.trace.push(FaultRecord {
                    index,
                    seq,
                    action: FaultAction::Partitioned,
                });
                self.emit_decision(index, seq, FaultAction::Partitioned);
            }
            return Ok(());
        }

        if !self.plan.eligible(&msg) {
            state.stats.passthrough += 1;
            drop(state);
            return self.inner.send(msg);
        }

        let index = state.index;
        state.index += 1;
        state.stats.eligible += 1;
        let seq = fault_seq(&msg);
        let record = |state: &mut FaultState, action: FaultAction| {
            state.trace.push(FaultRecord { index, seq, action });
            self.emit_decision(index, seq, action);
        };

        let result = if self.plan.partitioned(index) {
            state.stats.partitioned += 1;
            record(&mut state, FaultAction::Partitioned);
            Ok(())
        } else if index < self.plan.drop_first
            || (self.plan.drop_prob > 0.0 && state.rng.chance(self.plan.drop_prob))
        {
            state.stats.dropped += 1;
            record(&mut state, FaultAction::Drop);
            Ok(())
        } else if self.plan.reorder_window > 0
            && self.plan.reorder_prob > 0.0
            && state.rng.chance(self.plan.reorder_prob)
        {
            let release_at = index + self.plan.reorder_window;
            state.stats.held += 1;
            record(&mut state, FaultAction::Held { release_at });
            state.held.push((release_at, msg));
            Ok(())
        } else {
            let dup = self.plan.dup_prob > 0.0 && state.rng.chance(self.plan.dup_prob);
            let delay = self.draw_delay(&mut state.rng);
            let dup_delay = if dup {
                self.draw_delay(&mut state.rng)
            } else {
                Duration::ZERO
            };
            // Corruption damages the primary copy only; a duplicate (like a
            // retransmission) is an independent transmission and goes clean.
            let damaged =
                if self.plan.corrupt_prob > 0.0 && state.rng.chance(self.plan.corrupt_prob) {
                    Self::corrupt_copy(&msg, &mut state.rng)
                } else {
                    None
                };
            let corrupt = damaged.is_some();
            state.stats.delivered += 1;
            if dup {
                state.stats.duplicated += 1;
            }
            if corrupt {
                state.stats.corrupted += 1;
            }
            record(
                &mut state,
                FaultAction::Deliver {
                    delay_nanos: delay.as_nanos() as u64,
                    dup,
                    corrupt,
                },
            );
            let primary = damaged.unwrap_or_else(|| msg.clone());
            let first = self.forward(&mut state, primary, delay);
            if dup {
                let _ = self.forward(&mut state, msg, dup_delay);
            }
            first
        };

        // Held-back messages whose window expired re-enter the stream.
        let released = self.release_due(&mut state);
        result.and(released)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Message>, TransportError> {
        self.inner.recv_timeout(timeout)
    }

    fn is_connected(&self) -> bool {
        self.inner.is_connected()
    }
}

impl<T: Transport + Sync + 'static> Drop for FaultTransport<T> {
    fn drop(&mut self) {
        self.queue.shutdown.store(true, Ordering::SeqCst);
        self.queue.ready.notify_all();
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

/// Delivery worker: forwards queued messages when they fall due, keeping at
/// least `min_gap` between consecutive sends (messages still in the queue at
/// shutdown were "in flight" and are lost, like a real crash).
fn delivery_loop<T: Transport + Sync>(inner: Arc<T>, queue: Arc<DeliveryQueue>, min_gap: Duration) {
    let mut last_send: Option<Instant> = None;
    let mut heap = queue.heap.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        if queue.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let now = Instant::now();
        let next_due = heap.peek().map(|Reverse(d)| {
            let throttle = last_send.map(|t| t + min_gap).unwrap_or(now);
            d.due.max(throttle)
        });
        match next_due {
            Some(due) if due <= now => {
                let Reverse(d) = heap.pop().expect("peeked entry");
                drop(heap);
                let _ = inner.send(d.msg);
                last_send = Some(Instant::now());
                heap = queue.heap.lock().unwrap_or_else(|e| e.into_inner());
            }
            Some(due) => {
                let (g, _) = queue
                    .ready
                    .wait_timeout(heap, due - now)
                    .unwrap_or_else(|e| e.into_inner());
                heap = g;
            }
            None => {
                let (g, _) = queue
                    .ready
                    .wait_timeout(heap, Duration::from_millis(50))
                    .unwrap_or_else(|e| e.into_inner());
                heap = g;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::mem_pair;
    use bytes::Bytes;

    const SHORT: Duration = Duration::from_millis(300);

    fn write_repl(seq: u64) -> Message {
        Message::write_repl(seq, seq, 1, Bytes::from_static(b"xyzw"))
    }

    fn drain(t: &impl Transport, window: Duration) -> Vec<Message> {
        let deadline = Instant::now() + window;
        let mut got = Vec::new();
        while Instant::now() < deadline {
            match t.recv_timeout(Duration::from_millis(20)) {
                Ok(Some(m)) => got.push(m),
                Ok(None) => {}
                Err(_) => break,
            }
        }
        got
    }

    #[test]
    fn clean_plan_is_transparent() {
        let (a, b) = mem_pair();
        let f = FaultTransport::new(a, FaultPlan::new(1));
        for s in 1..=5 {
            f.send(write_repl(s)).unwrap();
        }
        let got = drain(&b, Duration::from_millis(100));
        assert_eq!(got.len(), 5);
        assert_eq!(got[0].data_seq(), Some(1));
        assert_eq!(got[4].data_seq(), Some(5));
        let st = f.fault_stats();
        assert_eq!(st.delivered, 5);
        assert_eq!(st.dropped + st.duplicated + st.held + st.partitioned, 0);
    }

    #[test]
    fn drop_first_drops_exactly_n() {
        let (a, b) = mem_pair();
        let f = FaultTransport::new(a, FaultPlan::new(1).with_drop_first(3));
        for s in 1..=5 {
            f.send(write_repl(s)).unwrap();
        }
        let got = drain(&b, Duration::from_millis(100));
        assert_eq!(
            got.iter()
                .map(|m| m.data_seq().unwrap())
                .collect::<Vec<_>>(),
            vec![4, 5]
        );
        assert_eq!(f.fault_stats().dropped, 3);
    }

    #[test]
    fn control_traffic_bypasses_data_only_faults() {
        let (a, b) = mem_pair();
        // Drop *everything* eligible; heartbeats must still flow.
        let f = FaultTransport::new(a, FaultPlan::new(7).with_drop(1.0));
        f.send(write_repl(1)).unwrap();
        f.send(Message::Heartbeat {
            from: 0,
            at_millis: 1,
            credits: 0,
        })
        .unwrap();
        let got = drain(&b, Duration::from_millis(100));
        assert_eq!(
            got,
            vec![Message::Heartbeat {
                from: 0,
                at_millis: 1,
                credits: 0,
            }]
        );
        assert_eq!(f.fault_stats().passthrough, 1);
        assert_eq!(f.fault_stats().dropped, 1);
    }

    #[test]
    fn duplication_sends_two_copies() {
        let (a, b) = mem_pair();
        let f = FaultTransport::new(a, FaultPlan::new(3).with_dup(1.0));
        f.send(write_repl(9)).unwrap();
        let got = drain(&b, Duration::from_millis(100));
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], got[1]);
        assert_eq!(f.fault_stats().duplicated, 1);
    }

    #[test]
    fn reordering_holds_within_bounded_window() {
        let (a, b) = mem_pair();
        let f = FaultTransport::new(a, FaultPlan::new(5).with_reorder(0.5, 2));
        for s in 1..=40 {
            f.send(write_repl(s)).unwrap();
        }
        let got = drain(&b, Duration::from_millis(200));
        let seqs: Vec<u64> = got.iter().map(|m| m.data_seq().unwrap()).collect();
        let held = f.fault_stats().held;
        assert!(held > 0, "plan should have held something");
        // Bounded reordering: every message arrives, none displaced by more
        // than the window (+ concurrent helds).
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        for (pos, &s) in seqs.iter().enumerate() {
            let natural = (s - 1) as i64;
            assert!(
                (pos as i64 - natural).abs() <= 2 + held as i64,
                "seq {s} displaced too far (pos {pos})"
            );
        }
        assert_ne!(seqs, sorted, "seed 5 should reorder at least one pair");
    }

    #[test]
    fn partition_swallows_span_then_heals() {
        let (a, b) = mem_pair();
        let f = FaultTransport::new(a, FaultPlan::new(2).with_partition(1, 3));
        for s in 1..=5 {
            f.send(write_repl(s)).unwrap();
        }
        let got = drain(&b, Duration::from_millis(100));
        assert_eq!(
            got.iter()
                .map(|m| m.data_seq().unwrap())
                .collect::<Vec<_>>(),
            vec![1, 4, 5]
        );
        assert_eq!(f.fault_stats().partitioned, 2);
    }

    #[test]
    fn delayed_delivery_arrives_late_but_arrives() {
        let (a, b) = mem_pair();
        let f = FaultTransport::new(
            a,
            FaultPlan::new(4).with_delay(Duration::from_millis(50), Duration::ZERO),
        );
        let t0 = Instant::now();
        f.send(write_repl(1)).unwrap();
        assert_eq!(b.recv_timeout(Duration::from_millis(5)).unwrap(), None);
        let got = b.recv_timeout(SHORT).unwrap();
        assert_eq!(got, Some(write_repl(1)));
        assert!(t0.elapsed() >= Duration::from_millis(45));
    }

    #[test]
    fn min_gap_throttles_throughput() {
        let (a, b) = mem_pair();
        let f = FaultTransport::new(a, FaultPlan::new(4).with_min_gap(Duration::from_millis(20)));
        let t0 = Instant::now();
        for s in 1..=4 {
            f.send(write_repl(s)).unwrap();
        }
        let got = drain(&b, Duration::from_millis(300));
        assert_eq!(got.len(), 4);
        // Three gaps of >= 20ms between four deliveries.
        assert!(t0.elapsed() >= Duration::from_millis(55));
    }

    #[test]
    fn same_seed_same_plan_identical_trace() {
        let run = || {
            let (a, _b) = mem_pair();
            let f = FaultTransport::new(
                a,
                FaultPlan::new(0xFEED)
                    .with_drop(0.2)
                    .with_dup(0.2)
                    .with_reorder(0.2, 3),
            );
            for s in 1..=64 {
                f.send(write_repl(s)).unwrap();
            }
            (f.fault_trace(), f.fault_stats())
        };
        let (t1, s1) = run();
        let (t2, s2) = run();
        assert_eq!(t1, t2, "decision trace must be reproducible");
        assert_eq!(s1, s2);
        assert!(!t1.is_empty());
    }

    #[test]
    fn obs_decision_events_match_byte_identical_trace() {
        // The chaos suite's reproducibility contract extended to the obs
        // stream: the `cluster.fault` decision events must reconstruct the
        // FaultRecord trace exactly — same order, same indices, same seqs,
        // same actions — for a seeded plan exercising every action kind.
        use fc_obs::Value;
        let plan = FaultPlan::new(0xFEED)
            .with_drop(0.2)
            .with_dup(0.2)
            .with_reorder(0.2, 3)
            .with_partition(10, 14);
        let (a, _b) = mem_pair();
        let (obs, ring) = Obs::ring(256);
        let mut f = FaultTransport::new(a, plan.clone());
        f.attach_obs(&obs);
        for s in 1..=64 {
            f.send(write_repl(s)).unwrap();
        }
        let trace = f.fault_trace();
        assert!(!trace.is_empty());
        let events = ring.events();
        let decisions: Vec<_> = events
            .iter()
            .filter(|e| e.component == "cluster.fault" && e.kind == "decision")
            .collect();
        assert_eq!(decisions.len(), trace.len());

        let rebuilt: Vec<FaultRecord> = decisions
            .iter()
            .map(|e| {
                let g = |n: &str| e.get(n).and_then(Value::as_u64);
                assert_eq!(g("seed"), Some(plan.seed));
                let action = match e.get("action").and_then(Value::as_str).unwrap() {
                    "deliver" => FaultAction::Deliver {
                        delay_nanos: g("delay_ns").unwrap(),
                        dup: e.get("dup").and_then(Value::as_bool).unwrap(),
                        corrupt: e.get("corrupt").and_then(Value::as_bool).unwrap(),
                    },
                    "drop" => FaultAction::Drop,
                    "partitioned" => FaultAction::Partitioned,
                    "held" => FaultAction::Held {
                        release_at: g("release_at").unwrap(),
                    },
                    other => panic!("unknown action {other}"),
                };
                FaultRecord {
                    index: g("index").unwrap(),
                    seq: g("seq"),
                    action,
                }
            })
            .collect();
        assert_eq!(rebuilt, trace, "obs stream must mirror the decision trace");
        // Every action kind actually occurred, so the mapping is exercised.
        assert!(trace
            .iter()
            .any(|r| matches!(r.action, FaultAction::Deliver { .. })));
        assert!(trace.iter().any(|r| r.action == FaultAction::Drop));
        assert!(trace.iter().any(|r| r.action == FaultAction::Partitioned));
        assert!(trace
            .iter()
            .any(|r| matches!(r.action, FaultAction::Held { .. })));
    }

    #[test]
    fn different_seeds_diverge() {
        let run = |seed| {
            let (a, _b) = mem_pair();
            let f = FaultTransport::new(a, FaultPlan::new(seed).with_drop(0.5));
            for s in 1..=64 {
                f.send(write_repl(s)).unwrap();
            }
            f.fault_trace()
        };
        assert_ne!(run(1), run(2), "seeds should matter");
    }

    #[test]
    fn corruption_damages_exactly_the_traced_copies() {
        let (a, b) = mem_pair();
        let f = FaultTransport::new(a, FaultPlan::new(11).with_corrupt(0.5));
        let n = 64;
        for s in 1..=n {
            f.send(write_repl(s)).unwrap();
        }
        let corrupted: u64 = f
            .fault_trace()
            .iter()
            .filter(|r| matches!(r.action, FaultAction::Deliver { corrupt: true, .. }))
            .count() as u64;
        assert!(corrupted > 0, "p=0.5 over 64 sends must corrupt something");
        assert!(corrupted < n, "and must leave something clean");
        assert_eq!(f.fault_stats().corrupted, corrupted);
        // Every delivered message either verifies or is one of the damaged ones.
        let got = drain(&b, Duration::from_millis(200));
        assert_eq!(got.len() as u64, n);
        let bad = got.iter().filter(|m| !m.payload_ok()).count() as u64;
        assert_eq!(bad, corrupted, "stale payload CRC must expose each flip");
    }

    #[test]
    fn corruption_is_deterministic_per_seed() {
        let run = || {
            let (a, b) = mem_pair();
            let f = FaultTransport::new(a, FaultPlan::new(5).with_corrupt(0.3));
            for s in 1..=32 {
                f.send(write_repl(s)).unwrap();
            }
            (f.fault_trace(), drain(&b, Duration::from_millis(200)))
        };
        assert_eq!(run(), run(), "same seed, same flips, same bytes");
    }

    #[test]
    fn duplicate_copy_stays_clean_when_primary_is_corrupted() {
        let (a, b) = mem_pair();
        // Force both dup and corrupt on every send.
        let f = FaultTransport::new(a, FaultPlan::new(3).with_dup(1.0).with_corrupt(1.0));
        f.send(write_repl(7)).unwrap();
        let got = drain(&b, Duration::from_millis(200));
        assert_eq!(got.len(), 2, "primary + duplicate");
        let clean = got.iter().filter(|m| m.payload_ok()).count();
        let bad = got.len() - clean;
        assert_eq!((clean, bad), (1, 1), "exactly one copy is damaged");
    }

    #[test]
    fn timed_partition_swallows_all_traffic_then_heals() {
        let (a, b) = mem_pair();
        let f = FaultTransport::new(
            a,
            FaultPlan::new(1).with_partition_for(Duration::ZERO, Duration::from_millis(80)),
        );
        // Inside the window: both data and control vanish.
        f.send(write_repl(1)).unwrap();
        f.send(Message::Heartbeat {
            from: 0,
            at_millis: 1,
            credits: 0,
        })
        .unwrap();
        assert!(drain(&b, Duration::from_millis(40)).is_empty());
        assert_eq!(f.fault_stats().partitioned, 2);
        // After the window closes the link heals.
        std::thread::sleep(Duration::from_millis(100));
        f.send(write_repl(2)).unwrap();
        let got = drain(&b, Duration::from_millis(100));
        assert_eq!(got, vec![write_repl(2)]);
    }

    #[test]
    fn corrupt_zero_prob_keeps_legacy_traces_identical() {
        let run = |plan: FaultPlan| {
            let (a, _b) = mem_pair();
            let f = FaultTransport::new(a, plan);
            for s in 1..=64 {
                f.send(write_repl(s)).unwrap();
            }
            f.fault_trace()
        };
        let legacy = run(FaultPlan::new(9).with_drop(0.2).with_dup(0.2));
        let gated = run(FaultPlan::new(9)
            .with_drop(0.2)
            .with_dup(0.2)
            .with_corrupt(0.0));
        assert_eq!(legacy, gated, "p=0 must not consume RNG draws");
    }
}
