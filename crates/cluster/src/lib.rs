//! # fc-cluster
//!
//! The *real* (threaded) FlashCoop cooperative pair, complementing the
//! trace-replay simulation in the `flashcoop` crate:
//!
//! * [`wire`] — hand-rolled, length-prefixed binary protocol (replication,
//!   acks, discards, heartbeats, the recovery handshake).
//! * [`transport`] — in-memory (crossbeam) and TCP (`std::net`) links.
//! * [`fault`] — deterministic fault injection: [`FaultTransport`] wraps any
//!   transport and drops/delays/duplicates/reorders/partitions traffic per a
//!   seeded [`FaultPlan`], recording a reproducible decision trace.
//! * [`backend`] — where flushed pages land: a plain map or the `fc-ssd`
//!   simulator (for device statistics).
//! * [`node`] — a runnable node: same buffer manager and policies as the
//!   simulation, plus real threads, heartbeats, the pair-lifecycle state
//!   machine (takeover destage, incremental resync/rejoin), end-to-end
//!   CRC-32 integrity with NACK/resend and scrub repair, credit-based
//!   backpressure, and the Section III.D recovery protocol.
//!
//! ```
//! use fc_cluster::{mem_pair, shared_backend, MemBackend, Node, NodeConfig, WriteOutcome};
//!
//! let (ta, tb) = mem_pair();
//! let a = Node::spawn(NodeConfig::test_profile(0), ta, shared_backend(MemBackend::new()));
//! let b = Node::spawn(NodeConfig::test_profile(1), tb, shared_backend(MemBackend::new()));
//! assert_eq!(a.write(1, b"page"), WriteOutcome::Replicated);
//! assert_eq!(a.read(1), Some(b"page".to_vec()));
//! a.shutdown();
//! b.shutdown();
//! ```

pub mod backend;
pub mod fault;
pub mod node;
pub mod transport;
pub mod wire;

pub use backend::{MemBackend, SimSsdBackend, StorageBackend};
pub use fault::{FaultAction, FaultPlan, FaultRecord, FaultStats, FaultTransport};
pub use flashcoop::{LifecycleTransition, PairLifecycle, PairState, ReplicationStats, RetryPolicy};
pub use node::{
    shared_backend, MigrateError, Node, NodeConfig, NodeConfigBuilder, NodeDown, NodeStats,
    PerClientStats, RunOutcome, SharedBackend, WriteOutcome, PEER_NS,
};
pub use transport::{mem_pair, MemTransport, TcpTransport, Transport, TransportError};
pub use wire::{
    crc32, decode, encode, resync_entry, Message, NackReason, ResyncEntry, SeqStatus, SeqTracker,
    WireError,
};
