//! Storage backends for the cluster node.
//!
//! The node persists flushed pages through a [`StorageBackend`]. Two
//! implementations:
//!
//! * [`MemBackend`] — a plain map, for tests and examples; "durable" for the
//!   node's purposes (it survives node restarts, standing in for the SSD).
//! * [`SimSsdBackend`] — routes writes through the `fc-ssd` simulator so the
//!   real node produces the same device-level statistics (erase counts,
//!   write-length histogram) as the trace-replay experiments, while storing
//!   page contents alongside.

use fc_ssd::{Lpn, Ssd, SsdConfig};
use std::collections::HashMap;

/// Where flushed pages go.
pub trait StorageBackend: Send {
    /// Persist one page.
    fn write_page(&mut self, lpn: u64, version: u64, data: &[u8]);

    /// Read one page, if present.
    fn read_page(&self, lpn: u64) -> Option<(u64, Vec<u8>)>;

    /// Discard one page (TRIM).
    fn trim_page(&mut self, lpn: u64);

    /// Number of distinct pages stored.
    fn pages(&self) -> usize;

    /// Version of the stored copy of `lpn`, if present. Used by recovery
    /// and the chaos suite to compare durability against acked writes.
    fn version_of(&self, lpn: u64) -> Option<u64> {
        self.read_page(lpn).map(|(v, _)| v)
    }

    /// Every stored lpn, unordered (callers sort). Drives elastic-
    /// membership migration planning: which pages does this pair actually
    /// hold durable, and therefore which blocks must move when the ring
    /// changes.
    fn lpns(&self) -> Vec<u64>;
}

/// In-memory "SSD".
#[derive(Debug, Default)]
pub struct MemBackend {
    pages: HashMap<u64, (u64, Vec<u8>)>,
    writes: u64,
}

impl MemBackend {
    /// Empty backend.
    pub fn new() -> Self {
        MemBackend::default()
    }

    /// Total page writes accepted.
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

impl StorageBackend for MemBackend {
    fn write_page(&mut self, lpn: u64, version: u64, data: &[u8]) {
        self.writes += 1;
        let e = self.pages.entry(lpn).or_insert((0, Vec::new()));
        // Never roll a page back to an older version (recovery may replay).
        if version >= e.0 {
            *e = (version, data.to_vec());
        }
    }

    fn read_page(&self, lpn: u64) -> Option<(u64, Vec<u8>)> {
        self.pages.get(&lpn).cloned()
    }

    fn trim_page(&mut self, lpn: u64) {
        self.pages.remove(&lpn);
    }

    fn pages(&self) -> usize {
        self.pages.len()
    }

    fn version_of(&self, lpn: u64) -> Option<u64> {
        // Hot path for the node's version clock: no page-content clone.
        self.pages.get(&lpn).map(|(v, _)| *v)
    }

    fn lpns(&self) -> Vec<u64> {
        self.pages.keys().copied().collect()
    }
}

/// A backend that stores contents in memory but drives the `fc-ssd`
/// simulator for every write, so device statistics are meaningful.
pub struct SimSsdBackend {
    mem: MemBackend,
    ssd: Ssd,
}

impl SimSsdBackend {
    /// Build over a simulated device.
    pub fn new(cfg: SsdConfig) -> Self {
        SimSsdBackend {
            mem: MemBackend::new(),
            ssd: Ssd::new(cfg),
        }
    }

    /// The simulated device (stats inspection).
    pub fn ssd(&self) -> &Ssd {
        &self.ssd
    }
}

impl StorageBackend for SimSsdBackend {
    fn write_page(&mut self, lpn: u64, version: u64, data: &[u8]) {
        let logical = self.ssd.logical_pages();
        self.ssd.write(Lpn(lpn % logical), 1);
        self.mem.write_page(lpn, version, data);
    }

    fn read_page(&self, lpn: u64) -> Option<(u64, Vec<u8>)> {
        self.mem.read_page(lpn)
    }

    fn trim_page(&mut self, lpn: u64) {
        let logical = self.ssd.logical_pages();
        self.ssd.trim(Lpn(lpn % logical), 1);
        self.mem.trim_page(lpn);
    }

    fn pages(&self) -> usize {
        self.mem.pages()
    }

    fn version_of(&self, lpn: u64) -> Option<u64> {
        self.mem.version_of(lpn)
    }

    fn lpns(&self) -> Vec<u64> {
        self.mem.lpns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_ssd::FtlKind;

    #[test]
    fn mem_backend_stores_and_reads() {
        let mut b = MemBackend::new();
        b.write_page(5, 1, b"abc");
        assert_eq!(b.read_page(5), Some((1, b"abc".to_vec())));
        assert_eq!(b.read_page(6), None);
        assert_eq!(b.version_of(5), Some(1));
        assert_eq!(b.version_of(6), None);
        assert_eq!(b.pages(), 1);
        assert_eq!(b.writes(), 1);
        assert_eq!(b.lpns(), vec![5]);
    }

    #[test]
    fn mem_backend_rejects_version_rollback() {
        let mut b = MemBackend::new();
        b.write_page(1, 5, b"new");
        b.write_page(1, 3, b"old");
        assert_eq!(b.read_page(1), Some((5, b"new".to_vec())));
        // Same version overwrites (idempotent replay).
        b.write_page(1, 5, b"new2");
        assert_eq!(b.read_page(1), Some((5, b"new2".to_vec())));
    }

    #[test]
    fn sim_backend_drives_the_device() {
        let mut b = SimSsdBackend::new(SsdConfig::tiny(FtlKind::PageLevel));
        for i in 0..10 {
            b.write_page(i, 1, b"x");
        }
        assert_eq!(b.pages(), 10);
        assert_eq!(b.ssd().stats().host_pages_written, 10);
        assert_eq!(b.read_page(3).unwrap().1, b"x".to_vec());
    }
}
