//! A runnable FlashCoop node.
//!
//! [`Node`] is the real (threaded) counterpart of the simulation's
//! `CoopServer`: it buffers writes locally through the *same*
//! [`flashcoop::BufferManager`] and policies, replicates dirty pages to its
//! peer over a [`Transport`], flushes evicted blocks to a
//! [`StorageBackend`], sends and monitors heartbeats, and runs the
//! Section III.D recovery protocol (RCT fetch → replay → purge).
//!
//! Durability contract: a [`WriteOutcome::Replicated`] write is held in two
//! memories (local buffer + peer remote buffer); a
//! [`WriteOutcome::WriteThrough`] write is on the backend before the call
//! returns. Either way an acknowledged write survives a single failure.
//!
//! # Pair lifecycle
//!
//! The node shares the [`PairLifecycle`] state machine with the simulation:
//!
//! ```text
//! Paired → Suspect → Solo → Resyncing → Paired
//! ```
//!
//! * **Solo entry** (`peer_failed` / `ack_timeout` / `disconnected`): every
//!   dirty local page is flushed, and the pages hosted for the peer are
//!   *taken over* — destaged sequentially to this node's backend under the
//!   [`PEER_NS`] namespace so the peer's replicated data survives until its
//!   recovery handshake collects it.
//! * **Solo writes** go write-through and are recorded in a bounded
//!   catch-up journal (latest version per page).
//! * **Rejoin**: when the peer's heartbeats return, the journal is streamed
//!   back in [`Message::ResyncBatch`] chunks while new writes keep landing
//!   in the journal; once it drains with no batch in flight the node cuts
//!   over to `Paired`. A journal overflow downgrades to a full-buffer
//!   resync.
//! * **Integrity**: every data payload carries a CRC-32; a receiver that
//!   sees a damaged page NACKs it ([`NackReason::Corrupt`]) and the sender
//!   retransmits the clean copy. [`Node::scrub`] repairs silently-corrupted
//!   *local* pages from the peer's replica.
//! * **Backpressure**: the remote buffer is bounded; acks and heartbeats
//!   advertise the remaining credits and a sender that runs out writes
//!   through locally instead of replicating.

use crate::backend::StorageBackend;
use crate::transport::{Transport, TransportError};
use crate::wire::{crc32, resync_entry, Message, NackReason, ResyncEntry, SeqStatus, SeqTracker};
use bytes::Bytes;
use crossbeam::channel::{bounded, RecvTimeoutError, Sender};
use fc_obs::{Counter, Obs};
use fc_simkit::{SimDuration, SimTime};
use flashcoop::policy::Eviction;
use flashcoop::{
    BufferManager, HeartbeatMonitor, LifecycleTransition, PairLifecycle, PairState, PeerEvent,
    PeerState, PolicyKind, ReplicationStats, RetryPolicy,
};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Backend namespace for pages destaged on behalf of a failed peer. Bit 63
/// keeps them disjoint from the node's own logical pages, so a takeover
/// never clobbers local data and a later Purge can trim exactly the
/// taken-over set.
pub const PEER_NS: u64 = 1 << 63;

/// A backend shared between node incarnations (it is the durable medium, so
/// it must survive a node crash/restart in tests and demos).
pub type SharedBackend = Arc<Mutex<Box<dyn StorageBackend>>>;

/// Wrap a backend for use by a node.
pub fn shared_backend(b: impl StorageBackend + 'static) -> SharedBackend {
    Arc::new(Mutex::new(Box::new(b)))
}

/// Node tunables.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Node id (appears in heartbeats).
    pub id: u8,
    /// Buffer replacement policy.
    pub policy: PolicyKind,
    /// Local buffer capacity in pages.
    pub buffer_pages: usize,
    /// Pages per logical block (LAR granularity).
    pub pages_per_block: u32,
    /// Heartbeat period.
    pub heartbeat: Duration,
    /// Silence after which the peer is declared failed.
    pub failure_timeout: Duration,
    /// How long a write waits for its replication ack before retrying (and,
    /// with retries exhausted, going solo).
    pub ack_timeout: Duration,
    /// Bounded retry-with-backoff for the replication ack path. A lossy
    /// network drops the occasional Replicate or ack; retrying (the receiver
    /// dedups by sequence number and re-acks) keeps such writes on the
    /// replicated fast path instead of silently falling back to
    /// write-through on the first loss.
    pub retry: RetryPolicy,
    /// Catch-up journal capacity (distinct pages). Overflow falls back to a
    /// full-buffer resync on rejoin.
    pub journal_entries: usize,
    /// Pages per resync batch.
    pub resync_batch: usize,
    /// Pages this node will host for its peer (the credit pool it
    /// advertises in acks and heartbeats).
    pub remote_capacity: usize,
    /// Per-client exactly-once window: how many recent tagged write runs
    /// ([`Node::try_write_run`]) are remembered per client so a gateway
    /// retry of an already-applied run returns the cached outcome instead
    /// of applying twice.
    pub dedup_window: usize,
    /// Maximum pages carried by one pipelined [`Message::WriteReplBatch`]
    /// frame. The sender cuts whatever is queued (up to this many pages)
    /// into each batch, so lightly loaded nodes still see one-page batches
    /// while a gateway write run amortises the wire to O(runs) frames.
    pub repl_batch_pages: usize,
    /// Maximum unacknowledged batches in flight before the replication
    /// sender stops cutting new ones (the pipeline window).
    pub repl_window: usize,
    /// Force the pre-pipeline stop-and-wait replication path: one
    /// [`Message::WriteRepl`] frame and one blocking ack round trip per
    /// page. Kept for A/B benchmarking against the batched pipeline.
    pub legacy_repl: bool,
}

impl Default for NodeConfig {
    /// Production-shaped defaults (the paper's block geometry; relaxed
    /// timers). Tests usually start from [`NodeConfig::test_profile`].
    fn default() -> Self {
        NodeConfig {
            id: 0,
            policy: PolicyKind::Lar,
            buffer_pages: 4096,
            pages_per_block: 64,
            heartbeat: Duration::from_millis(100),
            failure_timeout: Duration::from_millis(500),
            ack_timeout: Duration::from_millis(500),
            retry: RetryPolicy::default(),
            journal_entries: 4096,
            resync_batch: 64,
            remote_capacity: 8192,
            dedup_window: 1024,
            repl_batch_pages: 32,
            repl_window: 32,
            legacy_repl: false,
        }
    }
}

impl NodeConfig {
    /// Fast timings for tests and demos.
    pub fn test_profile(id: u8) -> Self {
        NodeConfig {
            id,
            policy: PolicyKind::Lar,
            buffer_pages: 64,
            pages_per_block: 4,
            heartbeat: Duration::from_millis(25),
            failure_timeout: Duration::from_millis(200),
            ack_timeout: Duration::from_millis(500),
            retry: RetryPolicy::default(),
            journal_entries: 256,
            resync_batch: 8,
            remote_capacity: 512,
            dedup_window: 64,
            repl_batch_pages: 16,
            repl_window: 32,
            legacy_repl: false,
        }
    }

    /// Start a builder from the defaults:
    ///
    /// ```
    /// use fc_cluster::NodeConfig;
    /// use flashcoop::RetryPolicy;
    ///
    /// let cfg = NodeConfig::builder()
    ///     .id(1)
    ///     .buffer_pages(128)
    ///     .remote_capacity(32)
    ///     .retry(RetryPolicy::no_retries())
    ///     .build();
    /// assert_eq!(cfg.id, 1);
    /// assert_eq!(cfg.remote_capacity, 32);
    /// assert_eq!(cfg.retry.attempts, 1);
    /// ```
    pub fn builder() -> NodeConfigBuilder {
        NodeConfigBuilder {
            cfg: NodeConfig::default(),
        }
    }
}

/// Builder for [`NodeConfig`].
#[derive(Debug, Clone)]
pub struct NodeConfigBuilder {
    cfg: NodeConfig,
}

impl NodeConfigBuilder {
    /// Node id (appears in heartbeats).
    pub fn id(mut self, id: u8) -> Self {
        self.cfg.id = id;
        self
    }

    /// Buffer replacement policy.
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.cfg.policy = policy;
        self
    }

    /// Local buffer capacity in pages.
    pub fn buffer_pages(mut self, pages: usize) -> Self {
        self.cfg.buffer_pages = pages;
        self
    }

    /// Pages per logical block.
    pub fn pages_per_block(mut self, ppb: u32) -> Self {
        self.cfg.pages_per_block = ppb;
        self
    }

    /// Heartbeat period.
    pub fn heartbeat(mut self, period: Duration) -> Self {
        self.cfg.heartbeat = period;
        self
    }

    /// Silence after which the peer is declared failed.
    pub fn failure_timeout(mut self, timeout: Duration) -> Self {
        self.cfg.failure_timeout = timeout;
        self
    }

    /// Replication-ack wait per attempt.
    pub fn ack_timeout(mut self, timeout: Duration) -> Self {
        self.cfg.ack_timeout = timeout;
        self
    }

    /// Bounded retry-with-backoff policy for the replication path.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.cfg.retry = retry;
        self
    }

    /// Catch-up journal capacity (distinct pages).
    pub fn journal_entries(mut self, entries: usize) -> Self {
        self.cfg.journal_entries = entries;
        self
    }

    /// Pages per resync batch.
    pub fn resync_batch(mut self, pages: usize) -> Self {
        self.cfg.resync_batch = pages.max(1);
        self
    }

    /// Pages this node will host for its peer.
    pub fn remote_capacity(mut self, pages: usize) -> Self {
        self.cfg.remote_capacity = pages;
        self
    }

    /// Per-client exactly-once window (tagged write runs remembered).
    pub fn dedup_window(mut self, runs: usize) -> Self {
        self.cfg.dedup_window = runs.max(1);
        self
    }

    /// Maximum pages per pipelined replication batch frame.
    pub fn repl_batch_pages(mut self, pages: usize) -> Self {
        self.cfg.repl_batch_pages = pages.max(1);
        self
    }

    /// Maximum unacknowledged replication batches in flight.
    pub fn repl_window(mut self, batches: usize) -> Self {
        self.cfg.repl_window = batches.max(1);
        self
    }

    /// Force the stop-and-wait replication path (A/B benchmarking).
    pub fn legacy_repl(mut self, legacy: bool) -> Self {
        self.cfg.legacy_repl = legacy;
        self
    }

    /// Finish the configuration.
    pub fn build(self) -> NodeConfig {
        self.cfg
    }
}

/// The node is halted ([`Node::fail`]) and cannot serve the request. The
/// fallible gateway entry points (`try_*`) return this instead of touching
/// a dead node's state, so a front end can fail the shard over to the
/// surviving replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeDown;

impl std::fmt::Display for NodeDown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node is down")
    }
}

impl std::error::Error for NodeDown {}

/// Why an elastic-membership page import was refused
/// ([`Node::try_import_pages`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrateError {
    /// The destination node is halted; the coordinator should abort the
    /// batch (the fence keeps the blocks routed to their old owner).
    Down,
    /// A CRC-framed entry failed verification; nothing from the batch was
    /// applied. The coordinator re-exports and resends, same discipline as
    /// a `ReplNack(Corrupt)` on the resync wire.
    Corrupt {
        /// The first lpn whose payload did not match its frame CRC.
        lpn: u64,
    },
}

impl std::fmt::Display for MigrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrateError::Down => write!(f, "destination node is down"),
            MigrateError::Corrupt { lpn } => {
                write!(f, "migration entry for lpn {lpn} failed CRC verification")
            }
        }
    }
}

impl std::error::Error for MigrateError {}

impl From<NodeDown> for MigrateError {
    fn from(_: NodeDown) -> MigrateError {
        MigrateError::Down
    }
}

/// How a write was made durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// Buffered locally and acknowledged by the peer's remote buffer.
    Replicated,
    /// Written synchronously to the backend (solo mode, backpressure, or
    /// replication failure).
    WriteThrough,
}

/// Observable node counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Writes handled.
    pub writes: u64,
    /// Reads handled.
    pub reads: u64,
    /// Reads served from the local buffer.
    pub read_hits: u64,
    /// Pages acknowledged by the peer.
    pub replicated_pages: u64,
    /// Writes that fell back to write-through.
    pub write_through: u64,
    /// Pages flushed to the backend by evictions.
    pub flushed_pages: u64,
    /// Page deletions (short-lived files).
    pub deletes: u64,
    /// Remote (peer) pages currently hosted (including taken-over pages).
    pub remote_pages: u64,
    /// Pages currently waiting in the catch-up journal.
    pub journal_pages: u64,
    /// Tagged write runs answered from the exactly-once window instead of
    /// re-applying (gateway retries of already-applied runs).
    pub dedup_hits: u64,
    /// Pages accepted from another pair by an elastic-membership migration
    /// ([`Node::try_import_pages`]).
    pub migrated_in_pages: u64,
    /// Pages handed off to another pair and fenced out locally
    /// ([`Node::try_release_pages`]).
    pub migrated_out_pages: u64,
    /// Fault-tolerance counters (retries, dedup, reorders, destages,
    /// takeover, resync, integrity, backpressure).
    pub repl: ReplicationStats,
}

impl NodeStats {
    /// Durability invariant: every counted write finished either replicated
    /// or written through. Holds under any single [`Node::stats`] snapshot
    /// (the counters are committed together, under one lock).
    pub fn writes_balance(&self) -> bool {
        self.writes == self.replicated_pages + self.write_through
    }
}

/// Dumps the node counters under `cluster.node.*` and delegates the
/// fault-tolerance counters to [`ReplicationStats`]'s own source
/// (`cluster.replication.*`).
impl fc_obs::StatSource for NodeStats {
    fn emit(&self, reg: &mut fc_obs::Registry) {
        reg.counter("cluster.node.writes").store(self.writes);
        reg.counter("cluster.node.reads").store(self.reads);
        reg.counter("cluster.node.read_hits").store(self.read_hits);
        reg.counter("cluster.node.replicated_pages")
            .store(self.replicated_pages);
        reg.counter("cluster.node.write_through")
            .store(self.write_through);
        reg.counter("cluster.node.flushed_pages")
            .store(self.flushed_pages);
        reg.counter("cluster.node.deletes").store(self.deletes);
        reg.counter("cluster.node.dedup_hits")
            .store(self.dedup_hits);
        reg.counter("cluster.node.migrated_in_pages")
            .store(self.migrated_in_pages);
        reg.counter("cluster.node.migrated_out_pages")
            .store(self.migrated_out_pages);
        reg.gauge("cluster.node.remote_pages")
            .set_u64(self.remote_pages);
        reg.gauge("cluster.node.journal_pages")
            .set_u64(self.journal_pages);
        self.repl.emit(reg);
    }
}

/// Per-origin counters for requests entering through the gateway (or any
/// caller that identifies itself via the `*_from` entry points). One row per
/// client id; snapshot with [`Node::client_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerClientStats {
    /// Write requests handled for this client.
    pub writes: u64,
    /// Pages written for this client.
    pub pages_written: u64,
    /// Writes that fell back to write-through.
    pub write_through: u64,
    /// Read requests handled for this client.
    pub reads: u64,
    /// Reads served from the local buffer.
    pub read_hits: u64,
    /// Page deletions (TRIMs) for this client.
    pub trims: u64,
}

/// Aggregate outcome of a batched multi-page write ([`Node::write_run`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunOutcome {
    /// Pages acknowledged by the peer's remote buffer.
    pub replicated: u64,
    /// Pages that fell back to write-through.
    pub write_through: u64,
}

impl RunOutcome {
    /// True when every page of the run took the replicated fast path.
    pub fn all_replicated(&self) -> bool {
        self.write_through == 0
    }

    /// Pages in the run.
    pub fn pages(&self) -> u64 {
        self.replicated + self.write_through
    }
}

/// The signal a blocked writer receives for its in-flight replication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AckSignal {
    /// The peer applied (or deduped) the page; `credits` is its remaining
    /// hosting capacity.
    Ack { credits: u32 },
    /// The peer refused the page.
    Nack(NackReason),
}

/// Cached obs handles for the hot replication path: counters resolved once
/// at attach time, event emission via the shared [`Obs`] handle.
#[derive(Debug, Clone)]
struct NodeObs {
    obs: Obs,
    id: u64,
    replicated: Counter,
    write_through: Counter,
    retries: Counter,
    dedups: Counter,
}

impl NodeObs {
    /// Start a wall-stamped `cluster.node` event tagged with the node id.
    fn ev(&self, kind: &'static str) -> fc_obs::Event {
        self.obs
            .wall_event("cluster.node", kind)
            .u64_field("id", self.id)
    }
}

/// Resolution of one pipelined page replication, delivered to the writer
/// blocked in [`Node::write`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PageOutcome {
    /// The peer acknowledged the batch carrying this page.
    Replicated,
    /// The peer refused the batch for lack of hosting credits; the writer
    /// falls back to local write-through.
    NoCredit,
    /// Retries exhausted or the transport died; the writer makes the page
    /// durable itself and journals it for the next resync.
    Failed,
}

/// A write split across the pipeline: either resolved at enqueue time
/// (degraded / no-credit / self-evicted paths) or waiting for its batch.
/// [`Node::write_run`] enqueues a whole run before resolving any of it,
/// which is what turns a gateway run into O(runs) wire frames.
enum WritePending {
    /// Fully resolved and accounted at enqueue time.
    Immediate(WriteOutcome),
    /// In the pipeline; [`Node::resolve_write`] blocks on `done`.
    Pipelined {
        lpn: u64,
        version: u64,
        bytes: Bytes,
        done: crossbeam::channel::Receiver<PageOutcome>,
    },
}

/// One page handed to the pipeline by a writer: payload plus the channel
/// that unblocks that writer once the page's batch resolves.
struct PipePage {
    lpn: u64,
    version: u64,
    data: Bytes,
    done: Sender<PageOutcome>,
}

/// Commands consumed by the replication pipeline sender thread.
enum PipeCmd {
    /// A writer enqueued a run of pages for replication — one command per
    /// `enqueue_pages` call, so a whole write run crosses the channel in a
    /// single send.
    Pages(Vec<PipePage>),
    /// The peer cumulatively acknowledged every batch up to `up_to`.
    Ack { epoch: u32, up_to: u64 },
    /// The peer refused one batch.
    Nack {
        epoch: u32,
        seq: u64,
        reason: NackReason,
    },
    /// Abandon the pipeline (solo entry / crash fault): fail everything
    /// queued or in flight and start a fresh epoch at seq 1.
    Reset,
    /// Resolve outstanding work as failed and exit the sender thread.
    Shutdown,
}

/// One unacknowledged batch in the sender's window.
struct PipeBatch {
    seq: u64,
    entries: Vec<PipePage>,
    sent_at: Instant,
    /// Transmissions so far (1 after the first send).
    attempts: u32,
    /// Corrupt NACKs absorbed by this batch — each one a corruption that
    /// counts as repaired once the clean resend finally acks.
    corrupt_resends: u64,
}

impl PipeBatch {
    /// The wire frame for this batch (clean copy; used for first sends and
    /// every retransmission).
    fn frame(&self, epoch: u32) -> Message {
        Message::WriteReplBatch {
            epoch,
            seq: self.seq,
            entries: self
                .entries
                .iter()
                .map(|p| resync_entry(p.lpn, p.version, p.data.clone()))
                .collect(),
        }
    }
}

/// Handles shared between the node front end and its pipeline sender
/// thread. `stats` and `obs` are leaf locks in the documented order (see
/// [`Inner`]); the histogram and gauge are lock-free.
#[derive(Clone)]
struct PipeShared {
    stats: Arc<Mutex<NodeStats>>,
    obs: Arc<Mutex<Option<NodeObs>>>,
    /// Pages per first-send batch (always on; feeds the loadgen report and
    /// [`Node::repl_batch_histogram`]).
    batch_hist: fc_obs::Histogram,
    /// In-flight window depth, sampled after every fill pass.
    window_depth: fc_obs::Gauge,
}

/// Receiver-side state for the pipelined replication stream: one
/// contiguous per-epoch sequence space, acknowledged cumulatively. Lives in
/// [`Inner`]; reset when the sender abandons an epoch ([`PipeCmd::Reset`])
/// and a higher-epoch frame arrives.
#[derive(Debug, Default)]
struct BatchRx {
    epoch: u32,
    /// Highest contiguously applied batch seq this epoch.
    cum: u64,
    /// Applied-but-not-yet-contiguous seqs (reordered arrivals waiting for
    /// the gap below them to fill).
    seen: std::collections::BTreeSet<u64>,
}

/// Fail every queued and in-flight page (writers fall back to
/// write-through) — the pipeline's abandon path.
fn pipe_fail_all(window: &mut VecDeque<PipeBatch>, queue: &mut VecDeque<PipePage>) {
    for mut b in window.drain(..) {
        for p in b.entries.drain(..) {
            let _ = p.done.send(PageOutcome::Failed);
        }
    }
    for p in queue.drain(..) {
        let _ = p.done.send(PageOutcome::Failed);
    }
}

/// The replication pipeline sender: drains the per-node page queue into
/// [`Message::WriteReplBatch`] frames, keeps up to `repl_window` of them in
/// flight, retransmits on timeout or Corrupt NACK (same seq, so the
/// receiver dedups late deliveries), and resolves writers on cumulative
/// acks. Runs on its own thread so the request path never blocks on the
/// wire; it takes no node lock other than the `stats`/`obs` leaves.
fn pipe_loop(
    cfg: Arc<NodeConfig>,
    rx: crossbeam::channel::Receiver<PipeCmd>,
    transport: Arc<dyn Transport + Sync>,
    shared: PipeShared,
) {
    let mut epoch: u32 = 1;
    let mut next_seq: u64 = 1;
    let mut queue: VecDeque<PipePage> = VecDeque::new();
    let mut window: VecDeque<PipeBatch> = VecDeque::new();
    let backoff = |attempts: u32| {
        Duration::from_nanos(cfg.retry.backoff_for(attempts.saturating_sub(1)).as_nanos())
    };
    // When a batch times out, a further attempt waits out the backoff
    // first; an exhausted batch abandons at the bare ack timeout (exactly
    // the legacy stop-and-wait schedule).
    let due_at = |b: &PipeBatch| {
        let wait = if b.attempts >= cfg.retry.attempts {
            Duration::ZERO
        } else {
            backoff(b.attempts)
        };
        b.sent_at + cfg.ack_timeout + wait
    };
    let note =
        |shared: &PipeShared, kind: &'static str, f: &dyn Fn(fc_obs::Event) -> fc_obs::Event| {
            if let Some(o) = &*shared.obs.lock() {
                o.obs.emit(f(o.ev(kind)));
            }
        };
    loop {
        // Wait for work: block when fully idle, otherwise wake at the
        // oldest in-flight batch's retransmit deadline (or immediately if
        // the queue has pages to cut).
        let cmd = if window.is_empty() && queue.is_empty() {
            match rx.recv() {
                Ok(c) => Some(c),
                Err(_) => break,
            }
        } else if let Some(b) = window.front() {
            let deadline = due_at(b);
            let now = Instant::now();
            if deadline <= now {
                None
            } else {
                match rx.recv_timeout(deadline - now) {
                    Ok(c) => Some(c),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        } else {
            rx.try_recv().ok()
        };
        let mut shutdown = false;
        let mut abandon = false;
        if let Some(first) = cmd {
            // Drain whatever else is already queued so one fill pass sees
            // the largest batch it can cut.
            let mut pending = vec![first];
            while let Ok(c) = rx.try_recv() {
                pending.push(c);
            }
            for cmd in pending {
                match cmd {
                    PipeCmd::Pages(ps) => queue.extend(ps),
                    PipeCmd::Ack { epoch: e, up_to } if e == epoch => {
                        let mut acked = Vec::new();
                        while window.front().is_some_and(|b| b.seq <= up_to) {
                            let b = window.pop_front().expect("front checked");
                            if b.corrupt_resends > 0 {
                                shared.stats.lock().repl.corruptions_repaired += b.corrupt_resends;
                                note(&shared, "corrupt_repaired", &|e| {
                                    e.u64_field("seq", b.seq)
                                        .u64_field("resends", b.corrupt_resends)
                                });
                            }
                            acked.push(b);
                        }
                        if !acked.is_empty() {
                            // Emit the span *before* resolving the waiters:
                            // a writer unblocked by `done` may immediately
                            // snapshot the event ring and must see this ack.
                            note(&shared, "repl_batch_ack", &|e| {
                                e.u64_field("up_to", up_to)
                                    .u64_field("batches", acked.len() as u64)
                            });
                        }
                        for mut b in acked {
                            for p in b.entries.drain(..) {
                                let _ = p.done.send(PageOutcome::Replicated);
                            }
                        }
                    }
                    PipeCmd::Ack { .. } => {}
                    PipeCmd::Nack {
                        epoch: e,
                        seq,
                        reason,
                    } if e == epoch => {
                        let Some(pos) = window.iter().position(|b| b.seq == seq) else {
                            continue;
                        };
                        match reason {
                            NackReason::Corrupt => {
                                // Damaged in flight; resend the clean copy
                                // at once (same seq, receiver dedups).
                                if window[pos].attempts >= cfg.retry.attempts {
                                    abandon = true;
                                } else {
                                    let b = &mut window[pos];
                                    b.attempts += 1;
                                    b.corrupt_resends += 1;
                                    b.sent_at = Instant::now();
                                    shared.stats.lock().repl.retries += 1;
                                    if let Some(o) = &*shared.obs.lock() {
                                        o.retries.inc();
                                        o.obs.emit(
                                            o.ev("repl_retry")
                                                .u64_field("seq", seq)
                                                .u64_field("attempt", b.attempts as u64)
                                                .str_field("reason", "corrupt_nack"),
                                        );
                                    }
                                    let frame = window[pos].frame(epoch);
                                    if transport.send(frame) == Err(TransportError::Disconnected) {
                                        abandon = true;
                                    }
                                }
                            }
                            NackReason::NoCredit => {
                                // The peer is out of hosting space: resolve
                                // the writers (they write through locally)
                                // and resend the batch *empty* under the
                                // same seq so the cumulative ack space
                                // stays contiguous.
                                let b = &mut window[pos];
                                for p in b.entries.drain(..) {
                                    let _ = p.done.send(PageOutcome::NoCredit);
                                }
                                b.sent_at = Instant::now();
                                let frame = window[pos].frame(epoch);
                                if transport.send(frame) == Err(TransportError::Disconnected) {
                                    abandon = true;
                                }
                            }
                        }
                    }
                    PipeCmd::Nack { .. } => {}
                    PipeCmd::Reset => abandon = true,
                    PipeCmd::Shutdown => shutdown = true,
                }
                if abandon || shutdown {
                    break;
                }
            }
        } else if let Some(b) = window.front_mut() {
            // Retransmit deadline for the oldest unacked batch (selective
            // repeat: later batches stay put, the receiver stashes them).
            if Instant::now() >= due_at(b) {
                if b.attempts >= cfg.retry.attempts {
                    abandon = true;
                } else {
                    b.attempts += 1;
                    b.sent_at = Instant::now();
                    shared.stats.lock().repl.retries += 1;
                    if let Some(o) = &*shared.obs.lock() {
                        o.retries.inc();
                        o.obs.emit(
                            o.ev("repl_retry")
                                .u64_field("seq", b.seq)
                                .u64_field("attempt", b.attempts as u64)
                                .str_field("reason", "ack_timeout"),
                        );
                    }
                    let frame = b.frame(epoch);
                    if transport.send(frame) == Err(TransportError::Disconnected) {
                        abandon = true;
                    }
                }
            }
        }
        if abandon {
            // Writers make their pages durable themselves (write-through +
            // journal); the next epoch starts clean at seq 1 and the
            // receiver adopts it on the first higher-epoch frame.
            pipe_fail_all(&mut window, &mut queue);
            epoch = epoch.wrapping_add(1);
            next_seq = 1;
        }
        if shutdown {
            pipe_fail_all(&mut window, &mut queue);
            break;
        }
        // Fill: cut queued pages into batches while the window has room.
        while window.len() < cfg.repl_window.max(1) && !queue.is_empty() {
            let n = queue.len().min(cfg.repl_batch_pages.max(1));
            let entries: Vec<PipePage> = queue.drain(..n).collect();
            let seq = next_seq;
            next_seq += 1;
            let b = PipeBatch {
                seq,
                entries,
                sent_at: Instant::now(),
                attempts: 1,
                corrupt_resends: 0,
            };
            {
                let mut s = shared.stats.lock();
                s.repl.batches_sent += 1;
                s.repl.batch_pages += n as u64;
            }
            shared.batch_hist.record(n as u64);
            note(&shared, "repl_batch_send", &|e| {
                e.u64_field("seq", seq)
                    .u64_field("epoch", epoch as u64)
                    .u64_field("pages", n as u64)
            });
            let sent = transport.send(b.frame(epoch));
            window.push_back(b);
            if sent == Err(TransportError::Disconnected) {
                pipe_fail_all(&mut window, &mut queue);
                epoch = epoch.wrapping_add(1);
                next_seq = 1;
                break;
            }
        }
        shared.window_depth.set_u64(window.len() as u64);
    }
    // Receiver gone or shutdown: nothing may leave a writer blocked.
    pipe_fail_all(&mut window, &mut queue);
}

/// A batch of journal pages awaiting its [`Message::ResyncAck`].
struct InFlight {
    seq: u64,
    /// `(lpn, version, data)` — kept so a timeout can resend or a failure
    /// can return them to the journal.
    entries: Vec<(u64, u64, Bytes)>,
    sent_at: Instant,
    attempts: u32,
    /// Set when the peer NACKed the batch (corrupted in flight): resend
    /// immediately instead of waiting out the ack timeout.
    resend_now: bool,
}

/// Progress of one incremental resync towards the cut-over barrier.
struct ResyncRun {
    in_flight: Option<InFlight>,
    batches: u64,
    pages: u64,
}

/// One client's exactly-once window: outcomes of its most recent tagged
/// write runs, evicted FIFO at `cfg.dedup_window` entries.
#[derive(Default)]
struct DedupWindow {
    /// Insertion order, oldest first (drives eviction).
    order: std::collections::VecDeque<u64>,
    /// tag → outcome of the run when it was first applied.
    seen: HashMap<u64, RunOutcome>,
}

impl DedupWindow {
    fn record(&mut self, tag: u64, outcome: RunOutcome, cap: usize) {
        if self.seen.insert(tag, outcome).is_none() {
            self.order.push_back(tag);
        }
        while self.order.len() > cap.max(1) {
            if let Some(old) = self.order.pop_front() {
                self.seen.remove(&old);
            }
        }
    }
}

/// The node's mutable heart, behind one mutex.
///
/// # Lock order
///
/// `Inner` ≺ { `backend`, `stats` }: the backend and stats mutexes are
/// *leaf* locks — they may be acquired while holding `Inner`, but nothing
/// that holds a leaf lock may acquire `Inner` (or the other leaf). Hot
/// paths additionally hoist backend reads *out* of the `Inner` critical
/// section entirely (see [`Node::write`] / [`Node::read`]); the nested
/// acquisitions that remain are rare paths (degraded writes, takeover,
/// resync, migration).
struct Inner {
    cfg: Arc<NodeConfig>,
    buffer: BufferManager,
    /// Contents of every resident page (the buffer tracks metadata only).
    data: HashMap<u64, Bytes>,
    versions: HashMap<u64, u64>,
    /// CRC-32 of each resident page at write/fill time — the reference a
    /// scrub compares against to spot silent local corruption.
    page_crc: HashMap<u64, u32>,
    next_version: u64,
    backend: SharedBackend,
    /// Pages hosted for the peer: lpn → (version, data). Bounded by
    /// `cfg.remote_capacity`.
    remote: HashMap<u64, (u64, Bytes)>,
    /// Peer pages destaged to our backend (under [`PEER_NS`]) by a
    /// takeover: lpn → version. Still served by RctFetch, trimmed by Purge.
    taken_over: HashMap<u64, u64>,
    /// Data-plane sequence numbers seen from the peer (dedup/reorder
    /// detection for retransmitted or duplicated deliveries).
    peer_seqs: SeqTracker,
    lifecycle: PairLifecycle,
    monitor: HeartbeatMonitor,
    /// Solo-mode writes awaiting the next resync: lpn → (version, data),
    /// latest version only. Cleared (and flagged) on overflow.
    journal: HashMap<u64, (u64, Bytes)>,
    journal_overflowed: bool,
    resync: Option<ResyncRun>,
    /// Earliest instant a Solo node may (re)attempt a resync when the
    /// monitor still considers the peer healthy (data-plane-only failures).
    resync_retry_at: Option<Instant>,
    /// Last peer-advertised hosting credits; `None` until the peer has
    /// spoken (optimistic) or after going solo.
    credits: Option<u32>,
    pending_acks: HashMap<u64, Sender<AckSignal>>,
    snapshot_waiters: Vec<Sender<Vec<(u64, u64, Bytes)>>>,
    purge_waiters: Vec<Sender<()>>,
    scrub_waiters: HashMap<u64, Sender<Option<(u64, Bytes)>>>,
    next_seq: u64,
    /// Receiver-side cumulative-ack state for the peer's pipelined batches.
    batch_rx: BatchRx,
    /// Refcount of pages currently in the replication pipeline (enqueued,
    /// unresolved). [`Inner::enter_solo`] still flushes these for safety
    /// but leaves their durability accounting to the writer that owns
    /// them — exactly what the legacy inline path did.
    inflight: HashMap<u64, u32>,
    /// Commands to this node's own pipeline sender thread (unbounded, so a
    /// send under the `Inner` lock never blocks).
    pipe_tx: Sender<PipeCmd>,
    /// Node counters — a leaf lock shared with [`Node`] and the pipeline
    /// sender, so `Node::stats` snapshots and pipeline accounting never
    /// contend with writers holding `Inner`.
    stats: Arc<Mutex<NodeStats>>,
    /// Per-origin counters, keyed by the client id the gateway passed to a
    /// `*_from` entry point.
    clients: HashMap<u64, PerClientStats>,
    /// Per-client exactly-once windows for tagged write runs.
    dedup: HashMap<u64, DedupWindow>,
    obs: Option<NodeObs>,
}

impl Inner {
    /// Emit a wall-stamped `cluster.node` event if obs is attached.
    fn note(&self, kind: &'static str, f: impl FnOnce(fc_obs::Event) -> fc_obs::Event) {
        if let Some(o) = &self.obs {
            o.obs.emit(f(o.ev(kind)));
        }
    }

    /// Record a lifecycle edge in the obs stream.
    fn emit_lifecycle(&self, tr: LifecycleTransition) {
        self.note("lifecycle", |e| {
            e.str_field("from", tr.from.name())
                .str_field("to", tr.to.name())
                .str_field("cause", tr.cause)
        });
    }

    /// Advance the version clock past a version observed from the peer (a
    /// hosted replica, a resync entry, a discard bound, a recovered
    /// snapshot) or from the shared backend. Both halves of a pair stamp
    /// writes from their own counter; with every observation folded in,
    /// any *new* write gets a version above every version of that page the
    /// pair has produced so far — which is what lets the backend's
    /// `version >= stored` guard arbitrate correctly when a failover
    /// makes both nodes write the same lpn space.
    fn observe_version(&mut self, v: u64) {
        if v >= self.next_version {
            self.next_version = v + 1;
        }
    }

    /// Remaining hosting credits this node would advertise right now.
    fn advertised_credits(&self) -> u32 {
        self.cfg.remote_capacity.saturating_sub(self.remote.len()) as u32
    }

    /// Flush an eviction's runs to the backend; returns the flushed
    /// `(lpn, version)` pairs so the caller can send a version-bounded
    /// Discard.
    fn apply_eviction(&mut self, ev: &Eviction) -> Vec<(u64, u64)> {
        let mut flushed = Vec::new();
        for run in &ev.runs {
            for i in 0..run.pages as u64 {
                let lpn = run.lpn + i;
                if let Some(bytes) = self.data.get(&lpn) {
                    let ver = self.versions.get(&lpn).copied().unwrap_or(0);
                    self.backend.lock().write_page(lpn, ver, bytes);
                    self.stats.lock().flushed_pages += 1;
                    flushed.push((lpn, ver));
                }
            }
        }
        // Drop contents of pages no longer resident.
        if !ev.runs.is_empty() || ev.clean_dropped > 0 {
            let buffer = &self.buffer;
            self.data.retain(|l, _| buffer.lookup(*l).is_some());
            let data = &self.data;
            self.page_crc.retain(|l, _| data.contains_key(l));
        }
        flushed
    }

    /// Record a solo-mode write for the next resync. Latest version per
    /// page; an overflow clears the journal and flags a full resync.
    fn journal_record(&mut self, lpn: u64, version: u64, data: Bytes) {
        if self.journal_overflowed {
            return;
        }
        self.journal.insert(lpn, (version, data));
        if self.journal.len() > self.cfg.journal_entries {
            self.journal.clear();
            self.journal_overflowed = true;
            self.note("journal_overflow", |e| {
                e.u64_field("cap", self.cfg.journal_entries as u64)
            });
        }
    }

    /// Remote failure handling: flush every dirty page, take over the
    /// peer's replicated pages, and stop forwarding until a resync.
    /// Drop one pipeline reference for `lpn` (its write resolved).
    fn inflight_done(&mut self, lpn: u64) {
        if let Some(n) = self.inflight.get_mut(&lpn) {
            *n -= 1;
            if *n == 0 {
                self.inflight.remove(&lpn);
            }
        }
    }

    fn enter_solo(&mut self, cause: &'static str) {
        if self.lifecycle.state() == PairState::Solo {
            return;
        }
        // Abandon the replication pipeline: blocked writers resolve as
        // failed and write through themselves; the next epoch starts clean.
        let _ = self.pipe_tx.send(PipeCmd::Reset);
        // Abort any resync in flight: its unacked pages go back to the
        // journal so the next attempt re-sends them.
        if let Some(run) = self.resync.take() {
            if let Some(inf) = run.in_flight {
                for (lpn, ver, data) in inf.entries {
                    let newer = self.journal.get(&lpn).is_some_and(|(v, _)| *v >= ver);
                    if !newer {
                        self.journal_record(lpn, ver, data);
                    }
                }
            }
        }
        if let Some(tr) = self.lifecycle.force_solo(cause) {
            self.emit_lifecycle(tr);
        }
        // Flush every dirty local page: the peer replica is no longer a
        // second memory.
        let ev = self.buffer.drain_dirty();
        for run in &ev.runs {
            for i in 0..run.pages as u64 {
                let lpn = run.lpn + i;
                if let Some(bytes) = self.data.get(&lpn) {
                    let ver = self.versions.get(&lpn).copied().unwrap_or(0);
                    self.backend.lock().write_page(lpn, ver, bytes);
                    // A page still in the pipeline is flushed here for
                    // safety (the ack may already be in flight) but its
                    // writer does the accounting when it resolves.
                    if !self.inflight.contains_key(&lpn) {
                        let mut s = self.stats.lock();
                        s.flushed_pages += 1;
                        s.repl.partition_destages += 1;
                    }
                }
            }
        }
        self.takeover_destage();
        self.credits = None;
        self.resync_retry_at = Some(Instant::now() + self.cfg.failure_timeout);
        // Writers waiting on acks will time out and take the write-through
        // path themselves.
    }

    /// Destage the pages hosted for the (failed) peer to our own backend,
    /// sequentially by lpn, then reclaim the remote buffer's memory. The
    /// pages remain reachable for the peer's recovery handshake through
    /// [`Inner::peer_snapshot`].
    fn takeover_destage(&mut self) {
        if self.remote.is_empty() {
            return;
        }
        let mut lpns: Vec<u64> = self.remote.keys().copied().collect();
        lpns.sort_unstable();
        let pages = lpns.len() as u64;
        {
            let mut backend = self.backend.lock();
            for lpn in &lpns {
                let (ver, data) = &self.remote[lpn];
                backend.write_page(PEER_NS | lpn, *ver, data);
                self.taken_over.insert(*lpn, *ver);
            }
        }
        self.remote.clear();
        self.stats.lock().repl.takeover_destages += pages;
        self.note("takeover_destage", |e| e.u64_field("pages", pages));
    }

    /// Everything this node holds on behalf of its peer: the in-memory
    /// remote buffer plus any taken-over pages re-read from the backend.
    fn peer_snapshot(&self) -> Vec<(u64, u64, Bytes)> {
        let mut v: Vec<(u64, u64, Bytes)> = self
            .remote
            .iter()
            .map(|(&l, (ver, d))| (l, *ver, d.clone()))
            .collect();
        if !self.taken_over.is_empty() {
            let backend = self.backend.lock();
            for (&lpn, &ver) in &self.taken_over {
                if self.remote.contains_key(&lpn) {
                    continue;
                }
                if let Some((bver, data)) = backend.read_page(PEER_NS | lpn) {
                    v.push((lpn, bver.max(ver), Bytes::from(data)));
                }
            }
        }
        v.sort_unstable_by_key(|e| e.0);
        v
    }

    /// Start (or restart) an incremental resync. No-op unless Solo.
    fn begin_resync(&mut self, cause: &'static str) {
        if self.lifecycle.state() != PairState::Solo {
            return;
        }
        if self.journal_overflowed {
            // The journal lost track of what the peer missed; fall back to
            // re-sending every resident page.
            self.journal.clear();
            for lpn in self.buffer.resident_pages() {
                if let Some(d) = self.data.get(&lpn) {
                    let ver = self.versions.get(&lpn).copied().unwrap_or(0);
                    self.journal.insert(lpn, (ver, d.clone()));
                }
            }
            self.journal_overflowed = false;
            self.stats.lock().repl.full_resyncs += 1;
        }
        if let Some(tr) = self.lifecycle.begin_resync(cause) {
            self.emit_lifecycle(tr);
        }
        self.resync = Some(ResyncRun {
            in_flight: None,
            batches: 0,
            pages: 0,
        });
        self.resync_retry_at = None;
        self.note("resync_start", |e| {
            e.u64_field("journal", self.journal.len() as u64)
                .str_field("cause", cause)
        });
    }

    /// Advance the resync state machine: resend or abandon a timed-out
    /// batch, cut over to Paired when the journal drains, or cut the next
    /// batch. Returns the messages to put on the wire (send them *after*
    /// dropping the lock).
    fn drive_resync(&mut self, now: Instant) -> Vec<Message> {
        if self.lifecycle.state() != PairState::Resyncing || self.resync.is_none() {
            return Vec::new();
        }
        // A batch is outstanding: wait, resend, or give up.
        let mut gave_up = false;
        let mut resend: Option<Message> = None;
        {
            let ack_timeout = self.cfg.ack_timeout;
            let max_retries = self.cfg.retry.max_retries();
            let run = self.resync.as_mut().expect("resync run");
            if let Some(inf) = &mut run.in_flight {
                let due = inf.resend_now || now.duration_since(inf.sent_at) >= ack_timeout;
                if !due {
                    return Vec::new();
                }
                if inf.attempts > max_retries {
                    gave_up = true;
                } else {
                    inf.attempts += 1;
                    inf.sent_at = now;
                    inf.resend_now = false;
                    let entries = inf
                        .entries
                        .iter()
                        .map(|(l, v, d)| resync_entry(*l, *v, d.clone()))
                        .collect();
                    resend = Some(Message::ResyncBatch {
                        seq: inf.seq,
                        entries,
                    });
                }
            }
        }
        if gave_up {
            if let Some(run) = self.resync.take() {
                if let Some(inf) = run.in_flight {
                    for (lpn, ver, data) in inf.entries {
                        let newer = self.journal.get(&lpn).is_some_and(|(v, _)| *v >= ver);
                        if !newer {
                            self.journal_record(lpn, ver, data);
                        }
                    }
                }
            }
            if let Some(tr) = self.lifecycle.resync_failed("resync_timeout") {
                self.emit_lifecycle(tr);
            }
            self.resync_retry_at = Some(now + self.cfg.failure_timeout);
            self.note("resync_failed", |e| {
                e.u64_field("journal", self.journal.len() as u64)
            });
            return Vec::new();
        }
        if let Some(m) = resend {
            self.stats.lock().repl.retries += 1;
            self.note("resync_batch", |e| e.str_field("kind", "resend"));
            return vec![m];
        }
        if self.journal.is_empty() {
            // Cut-over barrier: the journal drained and nothing is in
            // flight — the peer holds every page we wrote solo.
            let run = self.resync.take().expect("resync run");
            if let Some(tr) = self.lifecycle.resync_complete() {
                self.emit_lifecycle(tr);
            }
            self.note("resync_complete", |e| {
                e.u64_field("batches", run.batches)
                    .u64_field("pages", run.pages)
            });
            return Vec::new();
        }
        // Cut the next batch: smallest lpns first (sequential, like the
        // destage path).
        let mut lpns: Vec<u64> = self.journal.keys().copied().collect();
        lpns.sort_unstable();
        lpns.truncate(self.cfg.resync_batch.max(1));
        let mut raw = Vec::with_capacity(lpns.len());
        for lpn in lpns {
            let (ver, data) = self.journal.remove(&lpn).expect("journal entry");
            raw.push((lpn, ver, data));
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let pages = raw.len() as u64;
        let entries = raw
            .iter()
            .map(|(l, v, d)| resync_entry(*l, *v, d.clone()))
            .collect();
        let run = self.resync.as_mut().expect("resync run");
        run.in_flight = Some(InFlight {
            seq,
            entries: raw,
            sent_at: now,
            attempts: 1,
            resend_now: false,
        });
        run.batches += 1;
        run.pages += pages;
        {
            let mut s = self.stats.lock();
            s.repl.resync_batches += 1;
            s.repl.resync_pages += pages;
        }
        self.note("resync_batch", |e| {
            e.u64_field("seq", seq).u64_field("pages", pages)
        });
        vec![Message::ResyncBatch { seq, entries }]
    }
}

/// A live FlashCoop node: background pump + pipeline threads and a
/// synchronous API.
pub struct Node {
    inner: Arc<Mutex<Inner>>,
    /// Immutable tunables, readable without any lock.
    cfg: Arc<NodeConfig>,
    /// Node counters (leaf lock; see the [`Inner`] lock-order rule).
    stats: Arc<Mutex<NodeStats>>,
    /// The durable medium, reachable without going through `Inner` so hot
    /// paths can hoist backend reads out of the critical section.
    backend: SharedBackend,
    transport: Arc<dyn Transport + Sync>,
    /// Commands to the replication pipeline sender thread.
    pipe_tx: Sender<PipeCmd>,
    /// Obs handles shared with the pipeline thread (set by
    /// [`Node::attach_obs`]).
    pipe_obs: Arc<Mutex<Option<NodeObs>>>,
    /// Always-on pages-per-batch distribution.
    batch_hist: fc_obs::Histogram,
    /// Always-on in-flight window depth.
    window_depth: fc_obs::Gauge,
    shutdown: Arc<AtomicBool>,
    /// Crash-fault injection ([`Node::fail`] / [`Node::restart`]): while
    /// set, the pump neither heartbeats nor processes messages, and the
    /// `try_*` entry points refuse with [`NodeDown`].
    halted: Arc<AtomicBool>,
    pump: Option<JoinHandle<()>>,
    pipe: Option<JoinHandle<()>>,
}

impl Node {
    /// Start a node over an established transport and backend.
    pub fn spawn(
        cfg: NodeConfig,
        transport: impl Transport + Sync + 'static,
        backend: SharedBackend,
    ) -> Node {
        let monitor = HeartbeatMonitor::new(
            SimDuration::from_nanos(cfg.heartbeat.as_nanos() as u64),
            SimDuration::from_nanos(cfg.failure_timeout.as_nanos() as u64),
        );
        let buffer = BufferManager::new(cfg.policy, cfg.buffer_pages, cfg.pages_per_block, true);
        let cfg = Arc::new(cfg);
        let stats = Arc::new(Mutex::new(NodeStats::default()));
        let (pipe_tx, pipe_rx) = crossbeam::channel::unbounded();
        let inner = Arc::new(Mutex::new(Inner {
            cfg: cfg.clone(),
            buffer,
            data: HashMap::new(),
            versions: HashMap::new(),
            page_crc: HashMap::new(),
            next_version: 1,
            backend: backend.clone(),
            remote: HashMap::new(),
            taken_over: HashMap::new(),
            peer_seqs: SeqTracker::new(),
            lifecycle: PairLifecycle::new(),
            monitor,
            journal: HashMap::new(),
            journal_overflowed: false,
            resync: None,
            resync_retry_at: None,
            credits: None,
            pending_acks: HashMap::new(),
            snapshot_waiters: Vec::new(),
            purge_waiters: Vec::new(),
            scrub_waiters: HashMap::new(),
            next_seq: 1,
            batch_rx: BatchRx::default(),
            inflight: HashMap::new(),
            pipe_tx: pipe_tx.clone(),
            stats: stats.clone(),
            clients: HashMap::new(),
            dedup: HashMap::new(),
            obs: None,
        }));
        let transport: Arc<dyn Transport + Sync> = Arc::new(transport);
        let shutdown = Arc::new(AtomicBool::new(false));
        let halted = Arc::new(AtomicBool::new(false));
        let pipe_obs: Arc<Mutex<Option<NodeObs>>> = Arc::new(Mutex::new(None));
        let batch_hist = fc_obs::Histogram::new();
        let window_depth = fc_obs::Gauge::new();
        let pipe = {
            let cfg = cfg.clone();
            let transport = transport.clone();
            let shared = PipeShared {
                stats: stats.clone(),
                obs: pipe_obs.clone(),
                batch_hist: batch_hist.clone(),
                window_depth: window_depth.clone(),
            };
            std::thread::Builder::new()
                .name(format!("fc-pipe-{}", cfg.id))
                .spawn(move || pipe_loop(cfg, pipe_rx, transport, shared))
                .expect("spawn node pipeline")
        };
        let pump = {
            let cfg = cfg.clone();
            let inner = inner.clone();
            let transport = transport.clone();
            let shutdown = shutdown.clone();
            let halted = halted.clone();
            std::thread::Builder::new()
                .name(format!("fc-node-{}", cfg.id))
                .spawn(move || pump_loop(cfg, inner, transport, shutdown, halted))
                .expect("spawn node pump")
        };
        Node {
            inner,
            cfg,
            stats,
            backend,
            transport,
            pipe_tx,
            pipe_obs,
            batch_hist,
            window_depth,
            shutdown,
            halted,
            pump: Some(pump),
            pipe: Some(pipe),
        }
    }

    /// Write one page. Blocks until the page is durable (replicated or
    /// written through).
    ///
    /// Stats contract: `writes` is committed together with its outcome
    /// counter (`replicated_pages` or `write_through`), under the same lock
    /// acquisition — a concurrent [`Node::stats`] snapshot always satisfies
    /// [`NodeStats::writes_balance`], never observing a write that is
    /// counted but not yet resolved.
    pub fn write(&self, lpn: u64, data: &[u8]) -> WriteOutcome {
        let bytes = Bytes::copy_from_slice(data);
        if self.cfg.legacy_repl {
            return self.write_legacy(lpn, bytes);
        }
        let pending = self
            .enqueue_pages(lpn, vec![bytes])
            .pop()
            .expect("one page in, one pending out");
        match pending {
            WritePending::Immediate(out) => out,
            pending => self.resolve_write(pending),
        }
    }

    /// Pipeline front half for a run of consecutive pages (`lpn..lpn+n`):
    /// stamp versions, land the pages in the local buffer, and hand the
    /// whole run to the replication pipeline in one command — or resolve
    /// individual pages on the spot for the degraded / no-credit /
    /// self-evicted paths. Never waits on the wire, so [`Node::write_run`]
    /// enqueues a whole run before resolving any of it, and pays one
    /// backend lock, one `Inner` lock, and one channel send per run rather
    /// than per page.
    fn enqueue_pages(&self, lpn: u64, pages: Vec<Bytes>) -> Vec<WritePending> {
        // Payload checksums are pure CPU — computed before any lock is
        // taken so they never extend a critical section.
        let crcs: Vec<u32> = pages.iter().map(|b| crc32(b)).collect();
        // Hoisted out of the `Inner` critical section (lock-order rule):
        // never stamp below the shared backend's copy — after a failover
        // the peer may have written these lpns with its own counter, and a
        // lower version here would lose to the backend's version guard.
        // The reads are benignly racy: the stamp itself happens under
        // `Inner`, and the backend's own `version >= stored` guard
        // arbitrates any concurrent bump. One backend acquisition covers
        // the whole run.
        let backend_vers: Vec<Option<u64>> = {
            let be = self.backend.lock();
            (0..pages.len() as u64)
                .map(|i| be.version_of(lpn + i))
                .collect()
        };
        let mut pending = Vec::with_capacity(pages.len());
        let mut pipe_pages: Vec<PipePage> = Vec::new();
        let mut all_flushed = Vec::new();
        {
            // One `Inner` acquisition for the whole run: stamping,
            // buffer inserts, and credit debits are memory-only work, so
            // a 32-page run costs one lock round trip instead of 32.
            let mut inner = self.inner.lock();
            for (i, bytes) in pages.into_iter().enumerate() {
                let lpn = lpn + i as u64;
                if let Some(bv) = backend_vers[i] {
                    inner.observe_version(bv);
                }
                let version = inner.next_version;
                inner.next_version += 1;
                inner.versions.insert(lpn, version);
                inner.page_crc.insert(lpn, crcs[i]);

                if inner.lifecycle.is_degraded() {
                    // Solo or resyncing: write through, journal for catch-up.
                    inner.backend.lock().write_page(lpn, version, &bytes);
                    let ev = inner.buffer.insert_clean(lpn, 1);
                    inner.data.insert(lpn, bytes.clone());
                    all_flushed.extend(inner.apply_eviction(&ev));
                    inner.journal_record(lpn, version, bytes);
                    {
                        let mut s = inner.stats.lock();
                        s.writes += 1;
                        s.write_through += 1;
                    }
                    if let Some(o) = &inner.obs {
                        o.write_through.inc();
                        o.obs.emit(
                            o.ev("write_through")
                                .u64_field("lpn", lpn)
                                .str_field("reason", "degraded"),
                        );
                    }
                    pending.push(WritePending::Immediate(WriteOutcome::WriteThrough));
                } else if inner.credits == Some(0) {
                    // The peer's remote buffer is full: keep durability local
                    // instead of stalling on a NACK round trip.
                    inner.backend.lock().write_page(lpn, version, &bytes);
                    let ev = inner.buffer.insert_clean(lpn, 1);
                    inner.data.insert(lpn, bytes.clone());
                    all_flushed.extend(inner.apply_eviction(&ev));
                    {
                        let mut s = inner.stats.lock();
                        s.writes += 1;
                        s.write_through += 1;
                        s.repl.credit_stalls += 1;
                    }
                    inner.note("credit_stall", |e| e.u64_field("lpn", lpn));
                    if let Some(o) = &inner.obs {
                        o.write_through.inc();
                        o.obs.emit(
                            o.ev("write_through")
                                .u64_field("lpn", lpn)
                                .str_field("reason", "no_credits"),
                        );
                    }
                    pending.push(WritePending::Immediate(WriteOutcome::WriteThrough));
                } else {
                    // Contents must be in place *before* the buffer insert:
                    // the insert can evict the very block being written, and
                    // the flush needs the data.
                    inner.data.insert(lpn, bytes.clone());
                    let ev = inner.buffer.write(lpn, 1);
                    let flushed = inner.apply_eviction(&ev);
                    let self_evicted = flushed.iter().any(|&(l, _)| l == lpn);
                    all_flushed.extend(flushed);
                    if self_evicted {
                        // The new page was evicted (and flushed) synchronously
                        // by its own insertion — it is already durable on the
                        // backend, so replicating it would only leave a stale
                        // orphan at the peer.
                        {
                            let mut s = inner.stats.lock();
                            s.writes += 1;
                            s.write_through += 1;
                        }
                        if let Some(o) = &inner.obs {
                            o.write_through.inc();
                            o.obs.emit(
                                o.ev("write_through")
                                    .u64_field("lpn", lpn)
                                    .str_field("reason", "self_evicted"),
                            );
                        }
                        pending.push(WritePending::Immediate(WriteOutcome::WriteThrough));
                    } else {
                        if let Some(c) = &mut inner.credits {
                            // Debited at enqueue; every ack re-advertises the
                            // peer's true remaining pool.
                            *c = c.saturating_sub(1);
                        }
                        *inner.inflight.entry(lpn).or_insert(0) += 1;
                        let (tx, rx) = bounded(1);
                        pending.push(WritePending::Pipelined {
                            lpn,
                            version,
                            bytes: bytes.clone(),
                            done: rx,
                        });
                        pipe_pages.push(PipePage {
                            lpn,
                            version,
                            data: bytes,
                            done: tx,
                        });
                    }
                }
            }
        }
        if !all_flushed.is_empty() {
            self.send_discard(all_flushed);
        }
        if !pipe_pages.is_empty() {
            let _ = self.pipe_tx.send(PipeCmd::Pages(pipe_pages));
        }
        pending
    }

    /// Pipeline back half: block until the page's batch resolves, then
    /// commit the outcome. `writes` lands together with its outcome counter
    /// under one `stats` lock acquisition, preserving
    /// [`NodeStats::writes_balance`] at every snapshot.
    fn resolve_write(&self, pending: WritePending) -> WriteOutcome {
        let WritePending::Pipelined {
            lpn,
            version,
            bytes,
            done,
        } = pending
        else {
            let WritePending::Immediate(out) = pending else {
                unreachable!()
            };
            return out;
        };
        // A dropped channel (sender thread gone) reads as a failure; the
        // fallback below keeps the page durable either way.
        let outcome = done.recv().unwrap_or(PageOutcome::Failed);
        match outcome {
            PageOutcome::Replicated => {
                self.inner.lock().inflight_done(lpn);
                {
                    let mut s = self.stats.lock();
                    s.writes += 1;
                    s.replicated_pages += 1;
                }
                if let Some(o) = &*self.pipe_obs.lock() {
                    o.replicated.inc();
                }
                WriteOutcome::Replicated
            }
            PageOutcome::NoCredit => {
                // Our credit view was stale; the page stays durable
                // locally. The backend's version guard keeps a newer
                // concurrent copy.
                self.backend.lock().write_page(lpn, version, &bytes);
                {
                    let mut inner = self.inner.lock();
                    inner.inflight_done(lpn);
                    if inner.versions.get(&lpn) == Some(&version) {
                        inner.buffer.mark_clean(lpn);
                    }
                    inner.credits = Some(0);
                    inner.note("credit_stall", |e| e.u64_field("lpn", lpn));
                }
                {
                    let mut s = self.stats.lock();
                    s.writes += 1;
                    s.write_through += 1;
                    s.repl.credit_stalls += 1;
                }
                if let Some(o) = &*self.pipe_obs.lock() {
                    o.write_through.inc();
                    o.obs.emit(
                        o.ev("write_through")
                            .u64_field("lpn", lpn)
                            .str_field("reason", "no_credits"),
                    );
                }
                WriteOutcome::WriteThrough
            }
            PageOutcome::Failed => {
                // Peer unreachable: make the page durable ourselves and go
                // solo; a future resync must carry it.
                self.backend.lock().write_page(lpn, version, &bytes);
                {
                    let mut inner = self.inner.lock();
                    inner.inflight_done(lpn);
                    if inner.versions.get(&lpn) == Some(&version) {
                        inner.buffer.mark_clean(lpn);
                    }
                    inner.enter_solo("ack_timeout");
                    let newer = inner.journal.get(&lpn).is_some_and(|(v, _)| *v >= version);
                    if !newer {
                        inner.journal_record(lpn, version, bytes);
                    }
                }
                {
                    let mut s = self.stats.lock();
                    s.writes += 1;
                    s.write_through += 1;
                }
                if let Some(o) = &*self.pipe_obs.lock() {
                    o.write_through.inc();
                    o.obs.emit(
                        o.ev("write_through")
                            .u64_field("lpn", lpn)
                            .str_field("reason", "ack_timeout"),
                    );
                }
                WriteOutcome::WriteThrough
            }
        }
    }

    /// The pre-pipeline stop-and-wait path ([`NodeConfig::legacy_repl`]):
    /// one `WriteRepl` frame and one blocking ack round trip per page.
    /// Kept verbatim for A/B benchmarking against the pipeline.
    fn write_legacy(&self, lpn: u64, bytes: Bytes) -> WriteOutcome {
        // Hoisted backend version read — same rationale as
        // [`Node::enqueue_pages`].
        let backend_ver = self.backend.lock().version_of(lpn);
        let (seq, version, ack_rx, flushed, nobs) = {
            let mut inner = self.inner.lock();
            if let Some(bv) = backend_ver {
                inner.observe_version(bv);
            }
            let version = inner.next_version;
            inner.next_version += 1;
            inner.versions.insert(lpn, version);
            inner.page_crc.insert(lpn, crc32(&bytes));

            if inner.lifecycle.is_degraded() {
                // Solo or resyncing: write through, journal for catch-up.
                inner.backend.lock().write_page(lpn, version, &bytes);
                let ev = inner.buffer.insert_clean(lpn, 1);
                inner.data.insert(lpn, bytes.clone());
                inner.apply_eviction(&ev);
                inner.journal_record(lpn, version, bytes);
                {
                    let mut s = inner.stats.lock();
                    s.writes += 1;
                    s.write_through += 1;
                }
                if let Some(o) = &inner.obs {
                    o.write_through.inc();
                    o.obs.emit(
                        o.ev("write_through")
                            .u64_field("lpn", lpn)
                            .str_field("reason", "degraded"),
                    );
                }
                return WriteOutcome::WriteThrough;
            }

            if inner.credits == Some(0) {
                // The peer's remote buffer is full: keep durability local
                // instead of stalling on a NACK round trip.
                inner.backend.lock().write_page(lpn, version, &bytes);
                let ev = inner.buffer.insert_clean(lpn, 1);
                inner.data.insert(lpn, bytes.clone());
                inner.apply_eviction(&ev);
                {
                    let mut s = inner.stats.lock();
                    s.writes += 1;
                    s.write_through += 1;
                    s.repl.credit_stalls += 1;
                }
                inner.note("credit_stall", |e| e.u64_field("lpn", lpn));
                if let Some(o) = &inner.obs {
                    o.write_through.inc();
                    o.obs.emit(
                        o.ev("write_through")
                            .u64_field("lpn", lpn)
                            .str_field("reason", "no_credits"),
                    );
                }
                return WriteOutcome::WriteThrough;
            }

            // Contents must be in place *before* the buffer insert: the
            // insert can evict the very block being written, and the flush
            // needs the data.
            inner.data.insert(lpn, bytes.clone());
            let ev = inner.buffer.write(lpn, 1);
            let flushed = inner.apply_eviction(&ev);
            if flushed.iter().any(|&(l, _)| l == lpn) {
                // The new page was evicted (and flushed) synchronously by
                // its own insertion — it is already durable on the backend,
                // so replicating it would only leave a stale orphan at the
                // peer.
                {
                    let mut s = inner.stats.lock();
                    s.writes += 1;
                    s.write_through += 1;
                }
                if let Some(o) = &inner.obs {
                    o.write_through.inc();
                    o.obs.emit(
                        o.ev("write_through")
                            .u64_field("lpn", lpn)
                            .str_field("reason", "self_evicted"),
                    );
                }
                drop(inner);
                self.send_discard(flushed);
                return WriteOutcome::WriteThrough;
            }
            let seq = inner.next_seq;
            inner.next_seq += 1;
            // Capacity 2: a Corrupt NACK and the subsequent clean-resend ack
            // may both be queued before the writer wakes.
            let (tx, rx) = bounded(2);
            inner.pending_acks.insert(seq, tx);
            if let Some(c) = &mut inner.credits {
                *c = c.saturating_sub(1);
            }
            let nobs = inner.obs.clone();
            (seq, version, rx, flushed, nobs)
        };

        if !flushed.is_empty() {
            self.send_discard(flushed);
        }
        let (ack_timeout, retry) = (self.cfg.ack_timeout, self.cfg.retry);
        // Bounded retry-with-backoff: resend the *same* sequence number on
        // every attempt, so the receiver can dedup a retransmission whose
        // predecessor (or whose ack) was merely late, and re-ack it.
        let mut acked = false;
        let mut no_credit = false;
        let mut corrupt_resends = 0u64;
        let mut retries_used: u32 = 0;
        loop {
            if let Some(o) = &nobs {
                o.obs.emit(
                    o.ev("repl_send")
                        .u64_field("seq", seq)
                        .u64_field("lpn", lpn)
                        .u64_field("attempt", retries_used as u64),
                );
            }
            let sent = self
                .transport
                .send(Message::write_repl(seq, lpn, version, bytes.clone()));
            if sent == Err(TransportError::Disconnected) {
                // A disconnected transport stays disconnected; retrying
                // cannot help.
                break;
            }
            match ack_rx.recv_timeout(ack_timeout) {
                Ok(AckSignal::Ack { .. }) => {
                    acked = true;
                    break;
                }
                Ok(AckSignal::Nack(NackReason::NoCredit)) => {
                    no_credit = true;
                    break;
                }
                Ok(AckSignal::Nack(NackReason::Corrupt)) => {
                    // Damaged in flight; resend the clean copy at once.
                    if retries_used >= retry.max_retries() {
                        break;
                    }
                    retries_used += 1;
                    corrupt_resends += 1;
                    self.stats.lock().repl.retries += 1;
                    if let Some(o) = &nobs {
                        o.retries.inc();
                        o.obs.emit(
                            o.ev("repl_retry")
                                .u64_field("seq", seq)
                                .u64_field("lpn", lpn)
                                .u64_field("attempt", retries_used as u64)
                                .str_field("reason", "corrupt_nack"),
                        );
                    }
                    continue;
                }
                Err(_) => {
                    if retries_used >= retry.max_retries() {
                        break;
                    }
                    let backoff = retry.backoff_for(retries_used);
                    retries_used += 1;
                    self.stats.lock().repl.retries += 1;
                    if let Some(o) = &nobs {
                        o.retries.inc();
                        o.obs.emit(
                            o.ev("repl_retry")
                                .u64_field("seq", seq)
                                .u64_field("lpn", lpn)
                                .u64_field("attempt", retries_used as u64)
                                .u64_field("backoff_ns", backoff.as_nanos()),
                        );
                    }
                    std::thread::sleep(Duration::from_nanos(backoff.as_nanos()));
                }
            }
        }

        let mut inner = self.inner.lock();
        inner.pending_acks.remove(&seq);
        if acked {
            {
                let mut s = inner.stats.lock();
                s.writes += 1;
                s.replicated_pages += 1;
                // Each NACKed transmission was one detected corruption,
                // repaired by the clean resend that eventually acked.
                s.repl.corruptions_repaired += corrupt_resends;
            }
            if corrupt_resends > 0 {
                inner.note("corrupt_repaired", |e| {
                    e.u64_field("seq", seq)
                        .u64_field("lpn", lpn)
                        .u64_field("resends", corrupt_resends)
                });
            }
            if let Some(o) = &nobs {
                o.replicated.inc();
                o.obs.emit(
                    o.ev("repl_ack")
                        .u64_field("seq", seq)
                        .u64_field("lpn", lpn)
                        .u64_field("attempts", retries_used as u64 + 1),
                );
            }
            WriteOutcome::Replicated
        } else if no_credit {
            // Our credit view was stale; the page stays durable locally.
            inner.backend.lock().write_page(lpn, version, &bytes);
            inner.buffer.mark_clean(lpn);
            inner.credits = Some(0);
            {
                let mut s = inner.stats.lock();
                s.writes += 1;
                s.write_through += 1;
                s.repl.credit_stalls += 1;
            }
            inner.note("credit_stall", |e| e.u64_field("lpn", lpn));
            if let Some(o) = &nobs {
                o.write_through.inc();
                o.obs.emit(
                    o.ev("write_through")
                        .u64_field("seq", seq)
                        .u64_field("lpn", lpn)
                        .str_field("reason", "no_credits"),
                );
            }
            WriteOutcome::WriteThrough
        } else {
            // Peer unreachable: make the page durable ourselves and go solo.
            inner.backend.lock().write_page(lpn, version, &bytes);
            inner.buffer.mark_clean(lpn);
            {
                let mut s = inner.stats.lock();
                s.writes += 1;
                s.write_through += 1;
            }
            inner.enter_solo("ack_timeout");
            // The peer never acked this page, so a future resync must
            // carry it.
            inner.journal_record(lpn, version, bytes);
            if let Some(o) = &nobs {
                o.write_through.inc();
                o.obs.emit(
                    o.ev("write_through")
                        .u64_field("seq", seq)
                        .u64_field("lpn", lpn)
                        .str_field("reason", "ack_timeout"),
                );
            }
            WriteOutcome::WriteThrough
        }
    }

    /// Attach observability: registers the node's hot counters
    /// (`cluster.node.replicated_pages`, `cluster.node.write_through`,
    /// `cluster.replication.retries`, `cluster.replication.dups_dropped`)
    /// seeded with the current stats, and starts emitting wall-stamped
    /// `cluster.node` events (`repl_send` / `repl_ack` / `repl_retry` /
    /// `repl_dedup` / `write_through` / `lifecycle` / `takeover_destage` /
    /// `resync_start` / `resync_batch` / `resync_complete` /
    /// `resync_failed` / `corrupt_detected` / `corrupt_repaired` /
    /// `scrub_corrupt` / `scrub_repair` / `credit_stall` / `credit_reject`
    /// / `journal_overflow`).
    pub fn attach_obs(&self, obs: &Obs) {
        let mut inner = self.inner.lock();
        let snap = *inner.stats.lock();
        let reg = obs.registry();
        let replicated = reg.counter("cluster.node.replicated_pages");
        replicated.store(snap.replicated_pages);
        let write_through = reg.counter("cluster.node.write_through");
        write_through.store(snap.write_through);
        let retries = reg.counter("cluster.replication.retries");
        retries.store(snap.repl.retries);
        let dedups = reg.counter("cluster.replication.dups_dropped");
        dedups.store(snap.repl.dups_dropped);
        inner.obs = Some(NodeObs {
            obs: obs.clone(),
            id: inner.cfg.id as u64,
            replicated,
            write_through,
            retries,
            dedups,
        });
        // The pipeline sender and the resolve path emit through their own
        // handle (they never hold `Inner`).
        *self.pipe_obs.lock() = inner.obs.clone();
    }

    /// Send a seq-stamped, version-bounded Discard (fire-and-forget: a lost
    /// Discard only leaves stale — version-guarded — copies at the peer).
    fn send_discard(&self, pages: Vec<(u64, u64)>) {
        if pages.is_empty() {
            return;
        }
        let seq = {
            let mut inner = self.inner.lock();
            let seq = inner.next_seq;
            inner.next_seq += 1;
            seq
        };
        let _ = self.transport.send(Message::Discard { seq, pages });
    }

    /// Read one page: local buffer first, then the backend (caching the
    /// result).
    pub fn read(&self, lpn: u64) -> Option<Vec<u8>> {
        self.read_tracked(None, lpn)
    }

    /// [`Node::read`] on behalf of an identified client (gateway sessions);
    /// the per-client read/hit counters are updated under the same lock as
    /// the node-wide ones.
    pub fn read_from(&self, client: u64, lpn: u64) -> Option<Vec<u8>> {
        self.read_tracked(Some(client), lpn)
    }

    fn read_tracked(&self, client: Option<u64>, lpn: u64) -> Option<Vec<u8>> {
        {
            let mut inner = self.inner.lock();
            inner.stats.lock().reads += 1;
            if let Some(c) = client {
                inner.clients.entry(c).or_default().reads += 1;
            }
            if inner.buffer.lookup(lpn).is_some() {
                inner.buffer.read(lpn, 1);
                inner.stats.lock().read_hits += 1;
                if let Some(c) = client {
                    inner.clients.entry(c).or_default().read_hits += 1;
                }
                return inner.data.get(&lpn).map(|b| b.to_vec());
            }
            inner.buffer.read(lpn, 1);
        }
        // Miss: the backend fetch (the slow leaf) runs without `Inner`
        // held, so concurrent writers are not serialized behind this I/O.
        let fetched = self.backend.lock().read_page(lpn);
        match fetched {
            Some((ver, data)) => {
                let mut inner = self.inner.lock();
                inner.observe_version(ver);
                if inner.buffer.lookup(lpn).is_some() {
                    // A concurrent write landed while we were off the lock;
                    // its buffered copy supersedes the backend's.
                    return inner.data.get(&lpn).map(|b| b.to_vec());
                }
                let bytes = Bytes::from(data.clone());
                inner.page_crc.insert(lpn, crc32(&bytes));
                inner.data.insert(lpn, bytes);
                let ev = inner.buffer.insert_clean(lpn, 1);
                let flushed = inner.apply_eviction(&ev);
                drop(inner);
                self.send_discard(flushed);
                Some(data)
            }
            None => None,
        }
    }

    /// Delete one page (a short-lived file dies): the buffered copy, the
    /// peer's replica, the backend copy, and any journaled catch-up entry
    /// all go away without a flush.
    pub fn delete(&self, lpn: u64) {
        let version = {
            let mut inner = self.inner.lock();
            inner.buffer.discard(lpn, 1);
            inner.data.remove(&lpn);
            inner.page_crc.remove(&lpn);
            inner.journal.remove(&lpn);
            let version = inner.versions.remove(&lpn).unwrap_or(u64::MAX);
            inner.backend.lock().trim_page(lpn);
            inner.stats.lock().deletes += 1;
            version
        };
        // Every replica of this page carries a version <= the one current at
        // delete time, so the bound removes them all.
        self.send_discard(vec![(lpn, version)]);
    }

    /// [`Node::write`] on behalf of an identified client (gateway sessions):
    /// the write takes the normal durability path, then the client's row in
    /// the per-origin table is updated.
    pub fn write_from(&self, client: u64, lpn: u64, data: &[u8]) -> WriteOutcome {
        let outcome = self.write(lpn, data);
        let mut inner = self.inner.lock();
        let row = inner.clients.entry(client).or_default();
        row.writes += 1;
        row.pages_written += 1;
        if outcome == WriteOutcome::WriteThrough {
            row.write_through += 1;
        }
        outcome
    }

    /// Write a contiguous run of pages starting at `lpn` on behalf of a
    /// client — the gateway's batched submission path. Pages are written in
    /// address order (the sequential shape the cooperative buffer and the
    /// SSD both prefer); each page is individually durable when this
    /// returns.
    pub fn write_run(&self, client: u64, lpn: u64, pages: &[impl AsRef<[u8]>]) -> RunOutcome {
        if self.cfg.legacy_repl {
            let mut out = RunOutcome::default();
            for (i, page) in pages.iter().enumerate() {
                match self.write_from(client, lpn + i as u64, page.as_ref()) {
                    WriteOutcome::Replicated => out.replicated += 1,
                    WriteOutcome::WriteThrough => out.write_through += 1,
                }
            }
            return out;
        }
        let out = self.run_pipelined(lpn, pages);
        let mut inner = self.inner.lock();
        let row = inner.clients.entry(client).or_default();
        row.writes += pages.len() as u64;
        row.pages_written += pages.len() as u64;
        row.write_through += out.write_through;
        out
    }

    /// Batched write path: enqueue the whole run into the replication
    /// pipeline before resolving any page, so a gateway write-run costs
    /// O(runs) wire frames (the sender coalesces queued pages into
    /// [`NodeConfig::repl_batch_pages`]-sized batches) instead of O(pages)
    /// stop-and-wait round trips.
    fn run_pipelined(&self, lpn: u64, pages: &[impl AsRef<[u8]>]) -> RunOutcome {
        let bytes: Vec<Bytes> = pages
            .iter()
            .map(|p| Bytes::copy_from_slice(p.as_ref()))
            .collect();
        let pending = self.enqueue_pages(lpn, bytes);
        let mut out = RunOutcome::default();
        for p in pending {
            match self.resolve_write(p) {
                WriteOutcome::Replicated => out.replicated += 1,
                WriteOutcome::WriteThrough => out.write_through += 1,
            }
        }
        out
    }

    /// [`Node::delete`] on behalf of an identified client.
    pub fn delete_from(&self, client: u64, lpn: u64) {
        self.delete(lpn);
        self.inner.lock().clients.entry(client).or_default().trims += 1;
    }

    // -- crash-fault injection and the fallible front-end API ---------------

    /// Inject a crash fault *in place*: the pump stops heartbeating and
    /// processing messages (so the peer's failure detector walks the pair
    /// to Solo/takeover), volatile state is dropped exactly like
    /// [`Node::crash`], and every `try_*` entry point refuses with
    /// [`NodeDown`] until [`Node::restart`]. Unlike `crash`, the node
    /// object survives — a gateway holding an `Arc<Node>` can route around
    /// it and later route back.
    pub fn fail(&self) {
        self.halted.store(true, Ordering::SeqCst);
        let mut inner = self.inner.lock();
        inner.buffer.clear();
        inner.data.clear();
        inner.page_crc.clear();
        inner.remote.clear();
        inner.taken_over.clear();
        inner.journal.clear();
        inner.journal_overflowed = false;
        inner.resync = None;
        inner.scrub_waiters.clear();
        inner.dedup.clear();
        // Blocked writers fail fast (their ack channel drops) instead of
        // waiting out the full ack timeout against a dead node.
        inner.pending_acks.clear();
        // Same for pipelined writers: the sender abandons its window (their
        // `done` channels resolve Failed) and opens a fresh batch epoch.
        inner.batch_rx = BatchRx::default();
        let _ = inner.pipe_tx.send(PipeCmd::Reset);
        inner.note("fail", |e| e);
    }

    /// Undo [`Node::fail`]: the pump resumes. The node's own heartbeat
    /// monitor then observes the outage gap and walks it Solo; the peer's
    /// returning heartbeats drive the normal resync/rejoin machinery until
    /// the pair re-forms.
    pub fn restart(&self) {
        {
            let mut inner = self.inner.lock();
            inner.credits = None;
            inner.note("restart", |e| e);
        }
        self.halted.store(false, Ordering::SeqCst);
    }

    /// True while crash-faulted ([`Node::fail`] without [`Node::restart`]).
    pub fn is_halted(&self) -> bool {
        self.halted.load(Ordering::SeqCst)
    }

    /// In-place clean stop for nodes held behind an `Arc`: flush dirty
    /// pages and destage hosted peer pages (same data guarantees as
    /// [`Node::shutdown`]), and tell the pump to exit. The pump thread is
    /// joined later by `Drop`.
    pub fn quiesce(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.inner.lock().enter_solo("shutdown");
    }

    /// [`Node::read_from`], refusing with [`NodeDown`] while halted.
    pub fn try_read_from(&self, client: u64, lpn: u64) -> Result<Option<Vec<u8>>, NodeDown> {
        if self.is_halted() {
            return Err(NodeDown);
        }
        Ok(self.read_tracked(Some(client), lpn))
    }

    /// [`Node::delete_from`], refusing with [`NodeDown`] while halted.
    pub fn try_delete_from(&self, client: u64, lpn: u64) -> Result<(), NodeDown> {
        if self.is_halted() {
            return Err(NodeDown);
        }
        self.delete_from(client, lpn);
        Ok(())
    }

    /// [`Node::flush_dirty`], refusing with [`NodeDown`] while halted.
    pub fn try_flush_dirty(&self) -> Result<u64, NodeDown> {
        if self.is_halted() {
            return Err(NodeDown);
        }
        Ok(self.flush_dirty())
    }

    /// Exactly-once batched write: like [`Node::write_run`], but stamped
    /// with a caller-chosen `tag` that is stable across retries. If this
    /// node already applied a run with the same `(client, tag)` within the
    /// dedup window, the cached [`RunOutcome`] is returned without writing
    /// anything — so a front end may resend after an ambiguous failure
    /// (timeout, failover probe) without double-applying.
    ///
    /// Refuses with [`NodeDown`] while halted, including when the node is
    /// failed mid-run (pages already applied are either on the shared
    /// durable backend or dropped with the dead buffer; the caller's retry
    /// re-applies the whole run on whichever replica answers).
    ///
    /// Concurrency: duplicates are detected for *sequential* retries (the
    /// gateway resends from the same session thread). Two racing first
    /// sends of one tag may both apply.
    pub fn try_write_run(
        &self,
        client: u64,
        tag: u64,
        lpn: u64,
        pages: &[impl AsRef<[u8]>],
    ) -> Result<RunOutcome, NodeDown> {
        if self.is_halted() {
            return Err(NodeDown);
        }
        {
            let inner = self.inner.lock();
            if let Some(prev) = inner.dedup.get(&client).and_then(|w| w.seen.get(&tag)) {
                let prev = *prev;
                inner.stats.lock().dedup_hits += 1;
                inner.note("run_dedup", |e| {
                    e.u64_field("client", client)
                        .u64_field("tag", tag)
                        .u64_field("lpn", lpn)
                });
                return Ok(prev);
            }
        }
        let out = if self.cfg.legacy_repl {
            let mut out = RunOutcome::default();
            for (i, page) in pages.iter().enumerate() {
                if self.is_halted() {
                    return Err(NodeDown);
                }
                match self.write_from(client, lpn + i as u64, page.as_ref()) {
                    WriteOutcome::Replicated => out.replicated += 1,
                    WriteOutcome::WriteThrough => out.write_through += 1,
                }
            }
            out
        } else {
            let out = self.run_pipelined(lpn, pages);
            {
                let mut inner = self.inner.lock();
                let row = inner.clients.entry(client).or_default();
                row.writes += pages.len() as u64;
                row.pages_written += pages.len() as u64;
                row.write_through += out.write_through;
            }
            if self.is_halted() {
                return Err(NodeDown);
            }
            out
        };
        let mut inner = self.inner.lock();
        let cap = inner.cfg.dedup_window;
        inner.dedup.entry(client).or_default().record(tag, out, cap);
        Ok(out)
    }

    /// Flush every dirty page in the local buffer to the backend (the
    /// client-visible `Flush` barrier): after this returns, all previously
    /// acknowledged writes are on this node's durable medium, independent of
    /// the peer. Returns the number of pages flushed. The peer's
    /// now-redundant replicas are discarded (version-bounded, so an
    /// in-flight newer write is never lost).
    pub fn flush_dirty(&self) -> u64 {
        let flushed = {
            let mut inner = self.inner.lock();
            let ev = inner.buffer.drain_dirty();
            let flushed = inner.apply_eviction(&ev);
            let n = flushed.len() as u64;
            inner.note("flush_barrier", |e| e.u64_field("pages", n));
            drop(inner);
            flushed
        };
        let n = flushed.len() as u64;
        self.send_discard(flushed);
        n
    }

    /// Snapshot of the per-client counters, sorted by client id.
    pub fn client_stats(&self) -> Vec<(u64, PerClientStats)> {
        let inner = self.inner.lock();
        let mut v: Vec<(u64, PerClientStats)> =
            inner.clients.iter().map(|(&c, &s)| (c, s)).collect();
        v.sort_unstable_by_key(|e| e.0);
        v
    }

    /// Run the local-failure recovery protocol: fetch the peer's snapshot of
    /// our replicated pages, replay it into the backend, then ask the peer
    /// to purge. Returns the number of pages recovered.
    pub fn recover_from_peer(&self, timeout: Duration) -> Result<usize, TransportError> {
        let (tx, rx) = bounded(1);
        self.inner.lock().snapshot_waiters.push(tx);
        self.transport.send(Message::RctFetch)?;
        let entries = rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => TransportError::Timeout,
            RecvTimeoutError::Disconnected => TransportError::Disconnected,
        })?;
        let n = entries.len();
        {
            let mut inner = self.inner.lock();
            for (_, ver, _) in &entries {
                inner.observe_version(*ver);
            }
            let backend = inner.backend.clone();
            let mut backend = backend.lock();
            // Version-guarded replay: a page the peer rewrote (with a higher
            // pair-clock version) while we were down keeps its newer copy.
            for (lpn, ver, data) in &entries {
                backend.write_page(*lpn, *ver, data);
            }
        }
        let (ptx, prx) = bounded(1);
        self.inner.lock().purge_waiters.push(ptx);
        self.transport.send(Message::Purge)?;
        let _ = prx.recv_timeout(timeout);
        Ok(n)
    }

    /// Scrub the local buffer: detect resident pages whose contents no
    /// longer match their recorded CRC-32 (bit rot, DMA error) and repair
    /// each from the peer's replica. Returns `(detected, repaired)`.
    pub fn scrub(&self, timeout: Duration) -> (u64, u64) {
        let bad: Vec<u64> = {
            let g = self.inner.lock();
            let mut v: Vec<u64> = g
                .data
                .iter()
                .filter(|(l, d)| g.page_crc.get(l).is_some_and(|&c| crc32(d) != c))
                .map(|(&l, _)| l)
                .collect();
            v.sort_unstable();
            v
        };
        let mut detected = 0u64;
        let mut repaired = 0u64;
        for lpn in bad {
            detected += 1;
            let rx = {
                let mut g = self.inner.lock();
                g.stats.lock().repl.corruptions_detected += 1;
                g.note("scrub_corrupt", |e| e.u64_field("lpn", lpn));
                let (tx, rx) = bounded(1);
                g.scrub_waiters.insert(lpn, tx);
                rx
            };
            if self.transport.send(Message::PageFetch { lpn }).is_err() {
                self.inner.lock().scrub_waiters.remove(&lpn);
                continue;
            }
            match rx.recv_timeout(timeout) {
                Ok(Some((ver, data))) => {
                    let mut g = self.inner.lock();
                    let local_ver = g.versions.get(&lpn).copied().unwrap_or(0);
                    // Only a replica at least as new as our metadata can
                    // stand in for the damaged copy.
                    if ver >= local_ver {
                        g.page_crc.insert(lpn, crc32(&data));
                        g.data.insert(lpn, data.clone());
                        g.versions.insert(lpn, ver);
                        g.backend.lock().write_page(lpn, ver, &data);
                        {
                            let mut s = g.stats.lock();
                            s.repl.corruptions_repaired += 1;
                            s.repl.scrub_repairs += 1;
                        }
                        g.note("scrub_repair", |e| {
                            e.u64_field("lpn", lpn).u64_field("version", ver)
                        });
                        repaired += 1;
                    }
                }
                _ => {
                    self.inner.lock().scrub_waiters.remove(&lpn);
                }
            }
        }
        (detected, repaired)
    }

    /// Test hook: silently flip one byte of a resident page *without*
    /// updating its recorded CRC, simulating local media corruption for
    /// [`Node::scrub`] to find. Returns false if the page is not resident.
    pub fn corrupt_local_page(&self, lpn: u64) -> bool {
        let mut g = self.inner.lock();
        match g.data.get(&lpn) {
            Some(d) if !d.is_empty() => {
                let mut v = d.to_vec();
                v[0] ^= 0xFF;
                g.data.insert(lpn, Bytes::from(v));
                true
            }
            _ => false,
        }
    }

    /// Current counters.
    pub fn stats(&self) -> NodeStats {
        let inner = self.inner.lock();
        // `stats` is a leaf under `Inner` (see the lock-order rule), so the
        // snapshot is taken with both held — writers commit their counter
        // pairs under one `stats` guard, keeping the balance identities
        // exact in this snapshot.
        let mut s = *inner.stats.lock();
        s.remote_pages = (inner.remote.len() + inner.taken_over.len()) as u64;
        s.journal_pages = inner.journal.len() as u64;
        s.repl.lifecycle_transitions = inner.lifecycle.transitions();
        s
    }

    /// Summary of the replication batch-size histogram (pages per
    /// first-send `WriteReplBatch`); empty in legacy mode.
    pub fn repl_batch_histogram(&self) -> fc_obs::HistogramSummary {
        self.batch_hist.summary()
    }

    /// Current replication-pipeline window depth (in-flight batches).
    pub fn repl_window_depth(&self) -> u64 {
        self.window_depth.get() as u64
    }

    /// Dirty pages in the local buffer.
    pub fn dirty_pages(&self) -> usize {
        self.inner.lock().buffer.dirty()
    }

    /// True while the pair is not fully joined (Solo or Resyncing).
    pub fn is_degraded(&self) -> bool {
        self.inner.lock().lifecycle.is_degraded()
    }

    /// Current pair-lifecycle state.
    pub fn lifecycle_state(&self) -> PairState {
        self.inner.lock().lifecycle.state()
    }

    /// Lifecycle edges taken since spawn.
    pub fn lifecycle_transitions(&self) -> u64 {
        self.inner.lock().lifecycle.transitions()
    }

    /// Pages currently waiting in the catch-up journal.
    pub fn journal_len(&self) -> usize {
        self.inner.lock().journal.len()
    }

    /// Last peer-advertised hosting credits (None until the peer spoke, or
    /// after going solo).
    pub fn peer_credits(&self) -> Option<u32> {
        self.inner.lock().credits
    }

    /// Snapshot of the pages this node holds for its peer — hosted in
    /// memory or taken over onto the backend (diagnostics).
    pub fn hosted_remote_pages(&self) -> Vec<u64> {
        let inner = self.inner.lock();
        let mut v: Vec<u64> = inner
            .remote
            .keys()
            .chain(inner.taken_over.keys())
            .copied()
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Export the pages held for the peer, e.g. to re-home them onto a
    /// replacement node after this node's network link died (the peer's
    /// data must survive *our* reconnects). Includes taken-over pages.
    pub fn export_remote(&self) -> Vec<(u64, u64, Vec<u8>)> {
        self.inner
            .lock()
            .peer_snapshot()
            .into_iter()
            .map(|(l, v, d)| (l, v, d.to_vec()))
            .collect()
    }

    /// Import hosted pages exported from a previous incarnation.
    pub fn import_remote(&self, entries: &[(u64, u64, Vec<u8>)]) {
        let mut inner = self.inner.lock();
        for (lpn, ver, data) in entries {
            inner.observe_version(*ver);
            let e = inner
                .remote
                .entry(*lpn)
                .or_insert((*ver, Bytes::copy_from_slice(data)));
            if *ver >= e.0 {
                *e = (*ver, Bytes::copy_from_slice(data));
            }
        }
    }

    // -- elastic-membership migration (block export/import/fence-out) -------

    /// Every lpn this node holds as the pair's *own* data — buffer-resident
    /// pages plus durable backend pages, excluding the [`PEER_NS`]
    /// namespace (pages hosted for the peer move with the peer, not with
    /// this pair's blocks). Sorted ascending. This is the occupancy set a
    /// rebalance coordinator intersects with the ring diff to plan the
    /// minimal moved-block set.
    pub fn try_migration_lpns(&self) -> Result<Vec<u64>, NodeDown> {
        if self.is_halted() {
            return Err(NodeDown);
        }
        let inner = self.inner.lock();
        let mut lpns = inner.buffer.resident_pages();
        lpns.extend(
            inner
                .backend
                .lock()
                .lpns()
                .into_iter()
                .filter(|lpn| lpn & PEER_NS == 0),
        );
        lpns.sort_unstable();
        lpns.dedup();
        Ok(lpns)
    }

    /// Export the newest acked copy of each requested page as CRC-framed
    /// [`ResyncEntry`]s — the same `(lpn, version, crc, data)` framing the
    /// pair resync wire uses, so the importer verifies integrity before
    /// applying. Absent pages are skipped (a trim may race the plan); the
    /// node's own state is untouched. Call under the gateway's migration
    /// fence so no client write to these pages is in flight.
    pub fn try_export_pages(&self, lpns: &[u64]) -> Result<Vec<ResyncEntry>, NodeDown> {
        if self.is_halted() {
            return Err(NodeDown);
        }
        let inner = self.inner.lock();
        let mut out = Vec::with_capacity(lpns.len());
        for &lpn in lpns {
            if let Some(bytes) = inner.data.get(&lpn) {
                let ver = inner.versions.get(&lpn).copied().unwrap_or(0);
                out.push(resync_entry(lpn, ver, bytes.clone()));
            } else if let Some((ver, data)) = inner.backend.lock().read_page(lpn) {
                out.push(resync_entry(lpn, ver, Bytes::from(data)));
            }
        }
        Ok(out)
    }

    /// Import migrated pages from another pair. Every frame CRC is
    /// verified *before* anything is applied — a torn batch changes
    /// nothing and the coordinator resends. Accepted pages land durable on
    /// the backend (version-guarded, so a newer local copy is never rolled
    /// back) and clean in the buffer; they are not replicated to the peer
    /// (the next client write replicates normally). Returns the pages
    /// applied.
    pub fn try_import_pages(&self, entries: &[ResyncEntry]) -> Result<u64, MigrateError> {
        if self.is_halted() {
            return Err(MigrateError::Down);
        }
        for (lpn, _ver, crc, data) in entries {
            if crc32(data) != *crc {
                return Err(MigrateError::Corrupt { lpn: *lpn });
            }
        }
        let mut imported = 0u64;
        let mut flushed = Vec::new();
        {
            let mut inner = self.inner.lock();
            for (lpn, ver, crc, data) in entries {
                inner.observe_version(*ver);
                let stale = {
                    let mut backend = inner.backend.lock();
                    backend.write_page(*lpn, *ver, data);
                    // The guard kept a newer durable copy; don't shadow it
                    // with an older buffered one.
                    backend.version_of(*lpn).is_some_and(|bv| bv > *ver)
                };
                if stale || inner.versions.get(lpn).copied().unwrap_or(0) > *ver {
                    continue;
                }
                inner.versions.insert(*lpn, *ver);
                inner.page_crc.insert(*lpn, *crc);
                inner.data.insert(*lpn, data.clone());
                let ev = inner.buffer.insert_clean(*lpn, 1);
                flushed.extend(inner.apply_eviction(&ev));
                imported += 1;
            }
            inner.stats.lock().migrated_in_pages += imported;
            inner.note("migrate_in", |e| e.u64_field("pages", imported));
        }
        if !flushed.is_empty() {
            self.send_discard(flushed);
        }
        Ok(imported)
    }

    /// Fence migrated pages out of this pair: drop the buffered copy, the
    /// journal entry, and the backend copy, and send the peer a version-
    /// bounded discard for its replicas — after this returns, nothing on
    /// either node of the pair can resurrect the page (the node-side half
    /// of migration fencing; the gateway's routing fence is the other).
    /// Returns the pages that existed here. Call only after the
    /// destination acked the import.
    pub fn try_release_pages(&self, lpns: &[u64]) -> Result<u64, NodeDown> {
        if self.is_halted() {
            return Err(NodeDown);
        }
        let (discards, released) = {
            let mut inner = self.inner.lock();
            let mut discards = Vec::new();
            let mut released = 0u64;
            for &lpn in lpns {
                let held = inner.buffer.lookup(lpn).is_some()
                    || inner.versions.contains_key(&lpn)
                    || inner.backend.lock().version_of(lpn).is_some();
                if !held {
                    continue;
                }
                inner.buffer.discard(lpn, 1);
                inner.data.remove(&lpn);
                inner.page_crc.remove(&lpn);
                inner.journal.remove(&lpn);
                // Same bound as `delete`: every replica carries a version
                // <= the one current at fence time.
                let version = inner.versions.remove(&lpn).unwrap_or(u64::MAX);
                inner.backend.lock().trim_page(lpn);
                discards.push((lpn, version));
                released += 1;
            }
            inner.stats.lock().migrated_out_pages += released;
            inner.note("migrate_out", |e| e.u64_field("pages", released));
            (discards, released)
        };
        if !discards.is_empty() {
            self.send_discard(discards);
        }
        Ok(released)
    }

    /// Stop the pump thread and flush all dirty pages to the backend
    /// (a clean shutdown never loses data — ours or the peer's).
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.pump.take() {
            let _ = h.join();
        }
        if let Some(h) = self.pipe.take() {
            let _ = self.pipe_tx.send(PipeCmd::Shutdown);
            let _ = h.join();
        }
        let mut inner = self.inner.lock();
        inner.enter_solo("shutdown"); // flushes dirty pages, destages hosted
    }

    /// Simulate a crash: stop the pump *without* flushing. Volatile state
    /// (buffer, hosted remote pages, journal, resync progress) is dropped;
    /// only the backend survives.
    pub fn crash(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.pump.take() {
            let _ = h.join();
        }
        if let Some(h) = self.pipe.take() {
            let _ = self.pipe_tx.send(PipeCmd::Shutdown);
            let _ = h.join();
        }
        let mut inner = self.inner.lock();
        inner.buffer.clear();
        inner.data.clear();
        inner.page_crc.clear();
        inner.remote.clear();
        inner.taken_over.clear();
        inner.journal.clear();
        inner.journal_overflowed = false;
        inner.resync = None;
        inner.scrub_waiters.clear();
    }
}

impl Drop for Node {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.pump.take() {
            let _ = h.join();
        }
        if let Some(h) = self.pipe.take() {
            let _ = self.pipe_tx.send(PipeCmd::Shutdown);
            let _ = h.join();
        }
    }
}

/// Background loop: receive messages, send heartbeats, watch the monitor,
/// and drive the resync state machine.
fn pump_loop(
    cfg: Arc<NodeConfig>,
    inner: Arc<Mutex<Inner>>,
    transport: Arc<dyn Transport + Sync>,
    shutdown: Arc<AtomicBool>,
    halted: Arc<AtomicBool>,
) {
    let epoch = Instant::now();
    let now_sim = |at: Instant| SimTime::from_nanos(at.duration_since(epoch).as_nanos() as u64);
    let mut last_beat = Instant::now() - cfg.heartbeat;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        if halted.load(Ordering::SeqCst) {
            // Crash-faulted: dead nodes send no heartbeats and process no
            // messages. Drain (and drop) inbound traffic so a later restart
            // does not replay a backlog from its outage.
            match transport.recv_timeout(cfg.heartbeat / 2) {
                Ok(_) => {}
                Err(TransportError::Timeout) => {}
                Err(TransportError::Disconnected) => std::thread::sleep(cfg.heartbeat),
            }
            continue;
        }
        // Periodic heartbeat, advertising our remaining hosting credits.
        if last_beat.elapsed() >= cfg.heartbeat {
            last_beat = Instant::now();
            let credits = inner.lock().advertised_credits();
            let _ = transport.send(Message::Heartbeat {
                from: cfg.id,
                at_millis: epoch.elapsed().as_millis() as u64,
                credits,
            });
        }
        // Receive with a short timeout so beats and polls stay timely.
        let msg = transport.recv_timeout(cfg.heartbeat / 2);
        let now = now_sim(Instant::now());
        match msg {
            Ok(Some(m)) => handle_message(&inner, &transport, m, now),
            Ok(None) => {}
            Err(TransportError::Disconnected) => {
                inner.lock().enter_solo("disconnected");
                // Keep looping: the caller may replace nothing, but shutdown
                // still needs to be honoured; back off a little.
                std::thread::sleep(cfg.heartbeat);
            }
            // A timed-out receive is not a verdict on the link; the
            // heartbeat monitor decides.
            Err(TransportError::Timeout) => {}
        }
        // Failure detection, rejoin, and resync progress.
        let outbound = {
            let mut g = inner.lock();
            match g.monitor.poll(now) {
                Some(PeerEvent::Failed) => g.enter_solo("peer_failed"),
                Some(PeerEvent::Suspected) => {
                    if let Some(tr) = g.lifecycle.on_peer_event(PeerEvent::Suspected) {
                        g.emit_lifecycle(tr);
                    }
                }
                _ => {}
            }
            // A data-plane-only failure (ack timeouts with heartbeats still
            // flowing) leaves the monitor Healthy and thus never fires
            // Recovered; retry the resync on a timer instead.
            if g.lifecycle.state() == PairState::Solo
                && g.monitor.state() == PeerState::Healthy
                && g.resync_retry_at.is_some_and(|t| Instant::now() >= t)
            {
                g.begin_resync("peer_alive");
            }
            g.drive_resync(Instant::now())
        };
        for m in outbound {
            let _ = transport.send(m);
        }
    }
}

fn handle_message(
    inner: &Arc<Mutex<Inner>>,
    transport: &Arc<dyn Transport + Sync>,
    msg: Message,
    now: SimTime,
) {
    match msg {
        Message::WriteRepl {
            seq,
            lpn,
            version,
            crc,
            data,
        } => {
            let reply = {
                let mut g = inner.lock();
                if crc32(&data) != crc {
                    // Damaged in flight. Reject *before* recording the
                    // sequence number, so the clean retransmission is not
                    // mistaken for a duplicate.
                    g.stats.lock().repl.corruptions_detected += 1;
                    g.note("corrupt_detected", |e| {
                        e.u64_field("seq", seq)
                            .u64_field("lpn", lpn)
                            .str_field("msg", "write_repl")
                    });
                    Message::ReplNack {
                        seq,
                        reason: NackReason::Corrupt,
                    }
                } else if !g.remote.contains_key(&lpn) && g.remote.len() >= g.cfg.remote_capacity {
                    // Out of hosting credits; also before observe() so a
                    // retransmission after space frees can still apply.
                    g.stats.lock().repl.credit_rejections += 1;
                    g.note("credit_reject", |e| {
                        e.u64_field("seq", seq).u64_field("lpn", lpn)
                    });
                    Message::ReplNack {
                        seq,
                        reason: NackReason::NoCredit,
                    }
                } else {
                    g.observe_version(version);
                    match g.peer_seqs.observe(seq) {
                        SeqStatus::Duplicate => {
                            // Retransmission or network duplication: already
                            // applied, just re-ack below (the first ack may
                            // have been the casualty).
                            g.stats.lock().repl.dups_dropped += 1;
                            if let Some(o) = &g.obs {
                                o.dedups.inc();
                                o.obs.emit(
                                    o.ev("repl_dedup")
                                        .u64_field("seq", seq)
                                        .u64_field("lpn", lpn)
                                        .str_field("msg", "write_repl"),
                                );
                            }
                        }
                        status => {
                            if status == SeqStatus::NewOutOfOrder {
                                g.stats.lock().repl.reorders_healed += 1;
                            }
                            let e = g.remote.entry(lpn).or_insert((version, data.clone()));
                            if version >= e.0 {
                                *e = (version, data);
                            }
                        }
                    }
                    let credits = g.advertised_credits();
                    Message::ReplAck { seq, credits }
                }
            };
            let _ = transport.send(reply);
        }
        Message::ReplAck { seq, credits } => {
            let waiter = {
                let mut g = inner.lock();
                g.credits = Some(credits);
                g.pending_acks.remove(&seq)
            };
            if let Some(tx) = waiter {
                let _ = tx.send(AckSignal::Ack { credits });
            }
        }
        Message::ReplNack { seq, reason } => {
            let mut g = inner.lock();
            let resync_seq = g
                .resync
                .as_ref()
                .and_then(|r| r.in_flight.as_ref())
                .map(|i| i.seq);
            if resync_seq == Some(seq) {
                // A NACKed resync batch: the pump's drive loop resends it.
                if let Some(inf) = g.resync.as_mut().and_then(|r| r.in_flight.as_mut()) {
                    inf.resend_now = true;
                }
            } else if let Some(tx) = g.pending_acks.get(&seq) {
                // Keep the waiter registered: a Corrupt NACK is followed by
                // a resend whose ack must still find it.
                let _ = tx.send(AckSignal::Nack(reason));
            }
        }
        Message::WriteReplBatch {
            epoch,
            seq,
            entries,
        } => {
            let reply = {
                let mut g = inner.lock();
                if epoch < g.batch_rx.epoch {
                    // Stale epoch: the sender already abandoned that window
                    // and restarted its seq space; replying would corrupt
                    // the new epoch's cumulative-ack stream.
                    None
                } else {
                    if epoch > g.batch_rx.epoch {
                        // The sender reset its pipeline (abandon after
                        // exhausted retries, or a node restart): adopt the
                        // fresh contiguous seq space from 1.
                        g.batch_rx = BatchRx {
                            epoch,
                            cum: 0,
                            seen: Default::default(),
                        };
                    }
                    let bad = entries
                        .iter()
                        .filter(|(_, _, crc, data)| crc32(data) != *crc)
                        .count() as u64;
                    if bad > 0 {
                        // Reject before recording the seq, so the clean
                        // retransmission is not mistaken for a duplicate.
                        g.stats.lock().repl.corruptions_detected += bad;
                        g.note("corrupt_detected", |e| {
                            e.u64_field("seq", seq)
                                .u64_field("entries", bad)
                                .str_field("msg", "write_repl_batch")
                        });
                        Some(Message::ReplNackBatch {
                            epoch,
                            seq,
                            reason: NackReason::Corrupt,
                        })
                    } else if seq <= g.batch_rx.cum || g.batch_rx.seen.contains(&seq) {
                        // Retransmission whose ack was the casualty:
                        // already applied, re-advertise the cumulative
                        // frontier.
                        g.stats.lock().repl.dups_dropped += 1;
                        if let Some(o) = &g.obs {
                            o.dedups.inc();
                            o.obs.emit(
                                o.ev("repl_dedup")
                                    .u64_field("seq", seq)
                                    .str_field("msg", "write_repl_batch"),
                            );
                        }
                        let credits = g.advertised_credits();
                        Some(Message::ReplAckBatch {
                            epoch,
                            up_to: g.batch_rx.cum,
                            credits,
                        })
                    } else {
                        // Whole-batch credit check: hosting is all-or-
                        // nothing per batch so the cumulative ack never
                        // covers a partially applied frame.
                        let new_pages = entries
                            .iter()
                            .filter(|(lpn, ..)| !g.remote.contains_key(lpn))
                            .map(|(lpn, ..)| *lpn)
                            .collect::<std::collections::BTreeSet<u64>>()
                            .len();
                        if g.remote.len() + new_pages > g.cfg.remote_capacity {
                            g.stats.lock().repl.credit_rejections += 1;
                            g.note("credit_reject", |e| {
                                e.u64_field("seq", seq).u64_field("pages", new_pages as u64)
                            });
                            Some(Message::ReplNackBatch {
                                epoch,
                                seq,
                                reason: NackReason::NoCredit,
                            })
                        } else {
                            if seq == g.batch_rx.cum + 1 {
                                g.batch_rx.cum = seq;
                                // Absorb any batches that arrived ahead of
                                // this gap.
                                loop {
                                    let next = g.batch_rx.cum + 1;
                                    if !g.batch_rx.seen.remove(&next) {
                                        break;
                                    }
                                    g.batch_rx.cum = next;
                                }
                            } else {
                                g.batch_rx.seen.insert(seq);
                                g.stats.lock().repl.reorders_healed += 1;
                            }
                            for (lpn, ver, _crc, data) in entries {
                                g.observe_version(ver);
                                let e = g.remote.entry(lpn).or_insert((ver, data.clone()));
                                if ver >= e.0 {
                                    *e = (ver, data);
                                }
                            }
                            let credits = g.advertised_credits();
                            Some(Message::ReplAckBatch {
                                epoch,
                                up_to: g.batch_rx.cum,
                                credits,
                            })
                        }
                    }
                }
            };
            if let Some(reply) = reply {
                let _ = transport.send(reply);
            }
        }
        Message::ReplAckBatch {
            epoch,
            up_to,
            credits,
        } => {
            let pipe = {
                let mut g = inner.lock();
                g.credits = Some(credits);
                g.pipe_tx.clone()
            };
            let _ = pipe.send(PipeCmd::Ack { epoch, up_to });
        }
        Message::ReplNackBatch { epoch, seq, reason } => {
            let pipe = {
                let mut g = inner.lock();
                if matches!(reason, NackReason::NoCredit) {
                    g.credits = Some(0);
                }
                g.pipe_tx.clone()
            };
            let _ = pipe.send(PipeCmd::Nack { epoch, seq, reason });
        }
        Message::Discard { seq, pages } => {
            let mut g = inner.lock();
            match g.peer_seqs.observe(seq) {
                SeqStatus::Duplicate => {
                    g.stats.lock().repl.dups_dropped += 1;
                    if let Some(o) = &g.obs {
                        o.dedups.inc();
                        o.obs.emit(
                            o.ev("repl_dedup")
                                .u64_field("seq", seq)
                                .str_field("msg", "discard"),
                        );
                    }
                }
                status => {
                    if status == SeqStatus::NewOutOfOrder {
                        g.stats.lock().repl.reorders_healed += 1;
                    }
                    for (lpn, ver) in pages {
                        if ver != u64::MAX {
                            g.observe_version(ver);
                        }
                        // Version-bounded: a reordered Discard must not
                        // delete a copy newer than the flush it refers to.
                        if g.remote.get(&lpn).is_some_and(|(v, _)| *v <= ver) {
                            g.remote.remove(&lpn);
                        }
                    }
                }
            }
        }
        Message::Heartbeat { credits, .. } => {
            let mut g = inner.lock();
            g.credits = Some(credits);
            match g.monitor.on_beat(now) {
                Some(PeerEvent::Recovered) => g.begin_resync("peer_recovered"),
                _ => {
                    if g.lifecycle.state() == PairState::Suspect {
                        if let Some(tr) = g.lifecycle.on_peer_healthy() {
                            g.emit_lifecycle(tr);
                        }
                    }
                }
            }
        }
        Message::ResyncBatch { seq, entries } => {
            let reply = {
                let mut g = inner.lock();
                let bad = entries
                    .iter()
                    .filter(|(_, _, crc, data)| crc32(data) != *crc)
                    .count() as u64;
                if bad > 0 {
                    g.stats.lock().repl.corruptions_detected += bad;
                    g.note("corrupt_detected", |e| {
                        e.u64_field("seq", seq)
                            .u64_field("entries", bad)
                            .str_field("msg", "resync_batch")
                    });
                    Message::ReplNack {
                        seq,
                        reason: NackReason::Corrupt,
                    }
                } else {
                    match g.peer_seqs.observe(seq) {
                        SeqStatus::Duplicate => {
                            g.stats.lock().repl.dups_dropped += 1;
                            if let Some(o) = &g.obs {
                                o.dedups.inc();
                                o.obs.emit(
                                    o.ev("repl_dedup")
                                        .u64_field("seq", seq)
                                        .str_field("msg", "resync_batch"),
                                );
                            }
                        }
                        status => {
                            if status == SeqStatus::NewOutOfOrder {
                                g.stats.lock().repl.reorders_healed += 1;
                            }
                            for (lpn, ver, _crc, data) in entries {
                                g.observe_version(ver);
                                let fits = g.remote.contains_key(&lpn)
                                    || g.remote.len() < g.cfg.remote_capacity;
                                if !fits {
                                    // The sender wrote this page through
                                    // while solo, so it is durable there;
                                    // dropping the replica costs only the
                                    // second memory, not the data.
                                    g.stats.lock().repl.credit_rejections += 1;
                                    continue;
                                }
                                let e = g.remote.entry(lpn).or_insert((ver, data.clone()));
                                if ver >= e.0 {
                                    *e = (ver, data);
                                }
                            }
                        }
                    }
                    Message::ResyncAck { seq }
                }
            };
            let _ = transport.send(reply);
        }
        Message::ResyncAck { seq } => {
            let mut g = inner.lock();
            if let Some(run) = &mut g.resync {
                if run.in_flight.as_ref().map(|i| i.seq) == Some(seq) {
                    run.in_flight = None;
                }
            }
        }
        Message::RctFetch => {
            let entries = inner.lock().peer_snapshot();
            let _ = transport.send(Message::RctSnapshot { entries });
        }
        Message::RctSnapshot { entries } => {
            let waiters: Vec<_> = std::mem::take(&mut inner.lock().snapshot_waiters);
            for w in waiters {
                let _ = w.send(entries.clone());
            }
        }
        Message::Purge => {
            {
                let mut g = inner.lock();
                g.remote.clear();
                let lpns: Vec<u64> = g.taken_over.keys().copied().collect();
                {
                    let mut backend = g.backend.lock();
                    for lpn in &lpns {
                        backend.trim_page(PEER_NS | lpn);
                    }
                }
                g.taken_over.clear();
            }
            let _ = transport.send(Message::PurgeAck);
        }
        Message::PurgeAck => {
            let waiters: Vec<_> = std::mem::take(&mut inner.lock().purge_waiters);
            for w in waiters {
                let _ = w.send(());
            }
        }
        Message::PageFetch { lpn } => {
            let reply = {
                let g = inner.lock();
                let hit = g
                    .remote
                    .get(&lpn)
                    .map(|(v, d)| (*v, d.clone()))
                    .or_else(|| {
                        g.taken_over.get(&lpn).and_then(|&tv| {
                            g.backend
                                .lock()
                                .read_page(PEER_NS | lpn)
                                .map(|(bv, data)| (bv.max(tv), Bytes::from(data)))
                        })
                    });
                Message::page_data(lpn, hit)
            };
            let _ = transport.send(reply);
        }
        Message::PageData {
            lpn,
            version,
            crc,
            found,
            data,
        } => {
            let waiter = inner.lock().scrub_waiters.remove(&lpn);
            if let Some(tx) = waiter {
                // A repair sourced from a damaged replica would be worse
                // than no repair; verify before handing it to the scrubber.
                let hit = if found && crc32(&data) == crc {
                    Some((version, data))
                } else {
                    None
                };
                let _ = tx.send(hit);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::fault::{FaultPlan, FaultTransport};
    use crate::transport::mem_pair;

    fn pair() -> (Node, Node, SharedBackend, SharedBackend) {
        let (ta, tb) = mem_pair();
        let ba = shared_backend(MemBackend::new());
        let bb = shared_backend(MemBackend::new());
        let a = Node::spawn(NodeConfig::test_profile(0), ta, ba.clone());
        let b = Node::spawn(NodeConfig::test_profile(1), tb, bb.clone());
        (a, b, ba, bb)
    }

    fn wait_until(mut cond: impl FnMut() -> bool, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        cond()
    }

    #[test]
    fn replicated_write_lands_in_peer_remote_buffer() {
        let (a, b, _ba, _bb) = pair();
        assert_eq!(a.write(7, b"hello"), WriteOutcome::Replicated);
        assert!(wait_until(
            || b.hosted_remote_pages() == vec![7],
            Duration::from_millis(500)
        ));
        assert_eq!(a.stats().replicated_pages, 1);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn read_your_writes_from_buffer() {
        let (a, b, _ba, _bb) = pair();
        a.write(3, b"abc");
        assert_eq!(a.read(3), Some(b"abc".to_vec()));
        assert_eq!(a.stats().read_hits, 1);
        assert_eq!(a.read(99), None);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn per_client_stats_track_each_origin_separately() {
        let (a, b, _ba, _bb) = pair();
        a.write_from(1, 10, b"one");
        a.write_from(1, 11, b"one-b");
        a.write_from(2, 20, b"two");
        assert_eq!(a.read_from(1, 10), Some(b"one".to_vec()));
        assert_eq!(a.read_from(2, 99), None); // miss
        a.delete_from(2, 20);
        let rows = a.client_stats();
        assert_eq!(rows.len(), 2);
        let (c1, s1) = rows[0];
        let (c2, s2) = rows[1];
        assert_eq!((c1, c2), (1, 2));
        assert_eq!(s1.writes, 2);
        assert_eq!(s1.pages_written, 2);
        assert_eq!(s1.reads, 1);
        assert_eq!(s1.read_hits, 1);
        assert_eq!(s1.trims, 0);
        assert_eq!(s2.writes, 1);
        assert_eq!(s2.reads, 1);
        assert_eq!(s2.read_hits, 0);
        assert_eq!(s2.trims, 1);
        // The node-wide counters still see everything.
        let total = a.stats();
        assert_eq!(total.writes, 3);
        assert_eq!(total.reads, 2);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn write_run_is_durable_and_counted() {
        let (a, b, _ba, _bb) = pair();
        let pages: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 8]).collect();
        let out = a.write_run(7, 40, &pages);
        assert_eq!(out.pages(), 4);
        assert!(out.all_replicated(), "{out:?}");
        for (i, page) in pages.iter().enumerate() {
            assert_eq!(a.read(40 + i as u64), Some(page.clone()));
        }
        let rows = a.client_stats();
        assert_eq!(rows[0].0, 7);
        assert_eq!(rows[0].1.pages_written, 4);
        assert!(a.stats().writes_balance());
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn flush_dirty_is_a_durability_barrier() {
        let (a, b, ba, _bb) = pair();
        for i in 0..10u64 {
            a.write(i, format!("d{i}").as_bytes());
        }
        assert!(a.dirty_pages() > 0);
        let flushed = a.flush_dirty();
        assert_eq!(flushed, 10);
        assert_eq!(a.dirty_pages(), 0);
        // Every page is now on the backend, independent of the peer.
        for i in 0..10u64 {
            assert!(ba.lock().read_page(i).is_some(), "page {i} not flushed");
        }
        // A second flush has nothing to do.
        assert_eq!(a.flush_dirty(), 0);
        // Reads still hit the (clean) buffered copies.
        assert_eq!(a.read(3), Some(b"d3".to_vec()));
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn eviction_flushes_to_backend_and_discards_remote() {
        let (a, b, ba, _bb) = pair();
        // Buffer is 64 pages; write 80 distinct pages to force evictions.
        for i in 0..80u64 {
            a.write(i, format!("p{i}").as_bytes());
        }
        assert!(a.stats().flushed_pages > 0);
        assert!(ba.lock().pages() > 0);
        // Discards propagate: the peer hosts fewer pages than were written.
        assert!(
            wait_until(
                || b.hosted_remote_pages().len() <= 64,
                Duration::from_secs(1)
            ),
            "peer still hosts {} pages",
            b.hosted_remote_pages().len()
        );
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn severed_link_degrades_but_stays_durable() {
        let (ta, tb) = mem_pair();
        let ba = shared_backend(MemBackend::new());
        let bb = shared_backend(MemBackend::new());
        let a = Node::spawn(NodeConfig::test_profile(0), ta, ba.clone());
        let b = Node::spawn(NodeConfig::test_profile(1), tb, bb);
        a.write(1, b"before");
        // Cut the network; node A can't reach its peer any more. We sever
        // via a fresh handle is not possible — MemTransport::sever is on the
        // endpoint we moved into the node. Crash B instead (drops its
        // endpoint, disconnecting the channel).
        b.crash();
        let outcome = a.write(2, b"after");
        assert_eq!(outcome, WriteOutcome::WriteThrough);
        assert!(a.is_degraded());
        assert_eq!(a.lifecycle_state(), PairState::Solo);
        // Both pages durable: page 2 written through, page 1 flushed by
        // solo-mode entry.
        let backend = ba.lock();
        assert!(backend.read_page(2).is_some());
        assert!(backend.read_page(1).is_some());
        drop(backend);
        a.shutdown();
    }

    #[test]
    fn survivor_takes_over_peer_pages_on_failure() {
        let (ta, tb) = mem_pair();
        let ba = shared_backend(MemBackend::new());
        let bb = shared_backend(MemBackend::new());
        let a = Node::spawn(NodeConfig::test_profile(0), ta, ba);
        let b = Node::spawn(NodeConfig::test_profile(1), tb, bb.clone());
        for i in 0..10u64 {
            assert_eq!(
                a.write(i, format!("v{i}").as_bytes()),
                WriteOutcome::Replicated
            );
        }
        assert_eq!(b.hosted_remote_pages().len(), 10);
        // A dies; B notices via heartbeat silence and destages the hosted
        // pages sequentially onto its own backend.
        a.crash();
        assert!(
            wait_until(
                || b.lifecycle_state() == PairState::Solo,
                Duration::from_secs(2)
            ),
            "survivor never went solo"
        );
        let s = b.stats();
        assert_eq!(s.repl.takeover_destages, 10);
        // Still reachable for A's recovery handshake…
        assert_eq!(b.hosted_remote_pages().len(), 10);
        assert_eq!(b.export_remote().len(), 10);
        // …and durably on B's backend, in the peer namespace.
        for i in 0..10u64 {
            let (_, data) = bb.lock().read_page(PEER_NS | i).expect("destaged page");
            assert_eq!(data, format!("v{i}").into_bytes());
        }
        b.shutdown();
    }

    #[test]
    fn clean_shutdown_flushes_everything() {
        let (a, b, ba, _bb) = pair();
        for i in 0..5u64 {
            a.write(i, b"data");
        }
        assert!(a.dirty_pages() > 0);
        a.shutdown();
        assert_eq!(ba.lock().pages(), 5);
        b.shutdown();
    }

    #[test]
    fn delete_removes_page_everywhere() {
        let (a, b, ba, _bb) = pair();
        a.write(3, b"ephemeral");
        assert!(wait_until(
            || b.hosted_remote_pages() == vec![3],
            Duration::from_millis(500)
        ));
        a.delete(3);
        assert_eq!(a.read(3), None);
        assert_eq!(ba.lock().read_page(3), None);
        assert_eq!(a.stats().deletes, 1);
        assert!(
            wait_until(
                || b.hosted_remote_pages().is_empty(),
                Duration::from_millis(500)
            ),
            "peer replica survived"
        );
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn peer_heartbeats_keep_link_healthy() {
        let (a, b, _ba, _bb) = pair();
        std::thread::sleep(Duration::from_millis(400)); // >> failure_timeout
        assert!(!a.is_degraded(), "beats should prevent degradation");
        assert!(!b.is_degraded());
        assert_eq!(a.lifecycle_state(), PairState::Paired);
        // Heartbeats advertise credits, so each side has learned the
        // other's capacity.
        assert!(a.peer_credits().is_some());
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn credit_backpressure_writes_through_when_peer_is_full() {
        let (ta, tb) = mem_pair();
        let ba = shared_backend(MemBackend::new());
        let bb = shared_backend(MemBackend::new());
        let cfg_a = NodeConfig::test_profile(0);
        let mut cfg_b = NodeConfig::test_profile(1);
        cfg_b.remote_capacity = 4; // B will host at most 4 pages for A
        let a = Node::spawn(cfg_a, ta, ba.clone());
        let b = Node::spawn(cfg_b, tb, bb);
        let mut replicated = 0u64;
        let mut through = 0u64;
        for i in 0..10u64 {
            match a.write(i, b"page") {
                WriteOutcome::Replicated => replicated += 1,
                WriteOutcome::WriteThrough => through += 1,
            }
        }
        assert_eq!(replicated, 4, "exactly the credit pool replicates");
        assert_eq!(through, 6);
        assert_eq!(b.hosted_remote_pages().len(), 4);
        let s = a.stats();
        assert!(
            s.repl.credit_stalls >= 6 - 1,
            "stalls counted (first refusal may be a NACK)"
        );
        assert!(s.writes_balance());
        // Backpressure is not a failure: the pair stays joined.
        assert_eq!(a.lifecycle_state(), PairState::Paired);
        // Every write durable *somewhere* right now: replicated in B's
        // remote buffer, or written through to A's backend.
        for i in 4..10u64 {
            assert!(ba.lock().read_page(i).is_some());
        }
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn corrupted_replication_is_nacked_and_repaired_by_resend() {
        let (ta, tb) = mem_pair();
        // Corrupt A→B data traffic with p=0.5; acks (B→A) are clean.
        let fa = Arc::new(FaultTransport::new(
            ta,
            FaultPlan::new(42).with_corrupt(0.5),
        ));
        let ba = shared_backend(MemBackend::new());
        let bb = shared_backend(MemBackend::new());
        let a = Node::spawn(NodeConfig::test_profile(0), fa.clone(), ba);
        let b = Node::spawn(NodeConfig::test_profile(1), tb, bb);
        for i in 0..20u64 {
            // Every write must end replicated: a corrupted copy is NACKed
            // and the clean resend lands within the retry budget.
            assert_eq!(
                a.write(i, format!("payload-{i}").as_bytes()),
                WriteOutcome::Replicated
            );
        }
        let injected = fa.fault_stats().corrupted;
        assert!(injected > 0, "p=0.5 over 20 writes should corrupt some");
        // Every injected corruption was detected at B and repaired by A's
        // resend — wait for the last NACK/ack exchange to settle.
        assert!(wait_until(
            || b.stats().repl.corruptions_detected == injected,
            Duration::from_secs(2)
        ));
        assert_eq!(a.stats().repl.corruptions_repaired, injected);
        // No corrupted payload was ever applied.
        assert_eq!(b.hosted_remote_pages().len(), 20);
        for (lpn, _ver, data) in b.export_remote() {
            assert_eq!(data, format!("payload-{lpn}").into_bytes());
        }
        assert_eq!(a.lifecycle_state(), PairState::Paired);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn scrub_repairs_local_corruption_from_peer_replica() {
        let (a, b, ba, _bb) = pair();
        assert_eq!(a.write(5, b"precious"), WriteOutcome::Replicated);
        assert!(wait_until(
            || b.hosted_remote_pages() == vec![5],
            Duration::from_millis(500)
        ));
        // Bit rot on A's resident copy.
        assert!(a.corrupt_local_page(5));
        let (detected, repaired) = a.scrub(Duration::from_secs(1));
        assert_eq!((detected, repaired), (1, 1));
        let s = a.stats();
        assert_eq!(s.repl.scrub_repairs, 1);
        assert_eq!(s.repl.corruptions_detected, 1);
        assert_eq!(s.repl.corruptions_repaired, 1);
        // The repaired bytes are back, in memory and on the backend.
        assert_eq!(a.read(5), Some(b"precious".to_vec()));
        assert_eq!(ba.lock().read_page(5).unwrap().1, b"precious".to_vec());
        // A clean follow-up scrub finds nothing.
        assert_eq!(a.scrub(Duration::from_secs(1)), (0, 0));
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn solo_writes_resync_and_rejoin_to_paired() {
        // Partition both directions long enough for failure detection, then
        // heal; the pair must walk Solo → Resyncing → Paired and the solo
        // writes must reach the peer's remote buffer.
        let (ta, tb) = mem_pair();
        let window = Duration::from_millis(400);
        let fa = Arc::new(FaultTransport::new(
            ta,
            FaultPlan::new(1).with_partition_for(Duration::ZERO, window),
        ));
        let fb = Arc::new(FaultTransport::new(
            tb,
            FaultPlan::new(2).with_partition_for(Duration::ZERO, window),
        ));
        let ba = shared_backend(MemBackend::new());
        let bb = shared_backend(MemBackend::new());
        let a = Node::spawn(NodeConfig::test_profile(0), fa.clone(), ba.clone());
        let b = Node::spawn(NodeConfig::test_profile(1), fb.clone(), bb);
        // Both sides notice the silence and go solo.
        assert!(wait_until(
            || a.lifecycle_state() == PairState::Solo && b.lifecycle_state() == PairState::Solo,
            Duration::from_secs(2)
        ));
        // Writes during the partition: write-through + journal.
        for i in 0..12u64 {
            assert_eq!(
                a.write(i, format!("solo-{i}").as_bytes()),
                WriteOutcome::WriteThrough
            );
        }
        assert!(a.journal_len() > 0);
        // The partition heals; heartbeats resume; both sides rejoin.
        assert!(
            wait_until(
                || a.lifecycle_state() == PairState::Paired
                    && b.lifecycle_state() == PairState::Paired,
                Duration::from_secs(3)
            ),
            "pair never re-formed: a={:?} b={:?}",
            a.lifecycle_state(),
            b.lifecycle_state()
        );
        // The journal drained into B's remote buffer.
        assert_eq!(a.journal_len(), 0);
        assert!(wait_until(
            || b.hosted_remote_pages().len() == 12,
            Duration::from_secs(1)
        ));
        for (lpn, _ver, data) in b.export_remote() {
            assert_eq!(data, format!("solo-{lpn}").into_bytes());
        }
        let s = a.stats();
        assert!(s.repl.resync_batches >= 1);
        assert_eq!(s.repl.resync_pages, 12);
        assert!(
            s.repl.lifecycle_transitions >= 2,
            "solo + resync + paired edges"
        );
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn journal_overflow_falls_back_to_full_resync() {
        let (ta, tb) = mem_pair();
        let window = Duration::from_millis(400);
        let fa = Arc::new(FaultTransport::new(
            ta,
            FaultPlan::new(3).with_partition_for(Duration::ZERO, window),
        ));
        let fb = Arc::new(FaultTransport::new(
            tb,
            FaultPlan::new(4).with_partition_for(Duration::ZERO, window),
        ));
        let ba = shared_backend(MemBackend::new());
        let bb = shared_backend(MemBackend::new());
        let mut cfg_a = NodeConfig::test_profile(0);
        cfg_a.journal_entries = 4; // overflow quickly
        let a = Node::spawn(cfg_a, fa, ba);
        let b = Node::spawn(NodeConfig::test_profile(1), fb, bb);
        assert!(wait_until(
            || a.lifecycle_state() == PairState::Solo,
            Duration::from_secs(2)
        ));
        for i in 0..10u64 {
            a.write(i, format!("x{i}").as_bytes());
        }
        assert_eq!(a.journal_len(), 0, "overflow clears the journal");
        assert!(wait_until(
            || a.lifecycle_state() == PairState::Paired,
            Duration::from_secs(3)
        ));
        let s = a.stats();
        assert_eq!(s.repl.full_resyncs, 1);
        // The full resync pushed every resident page, so the solo writes
        // all made it to the peer.
        assert!(wait_until(
            || b.hosted_remote_pages().len() >= 10,
            Duration::from_secs(1)
        ));
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn stats_snapshot_is_consistent_while_writes_run() {
        // Regression: `writes` used to be bumped at the top of Node::write,
        // with the outcome counter (`replicated_pages`/`write_through`)
        // only landing after the unlocked retry loop — so a concurrent
        // stats() call could observe writes > replicated + write_through.
        let (a, b, _ba, _bb) = pair();
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let stop = stop.clone();
            let a = Arc::new(a);
            let a2 = a.clone();
            let h = std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    a2.write(i % 256, b"payload");
                    i += 1;
                }
            });
            (a, h)
        };
        let (a, h) = writer;
        let deadline = Instant::now() + Duration::from_millis(500);
        let mut snapshots = 0u32;
        while Instant::now() < deadline {
            let s = a.stats();
            assert!(
                s.writes_balance(),
                "inconsistent snapshot: writes={} replicated={} write_through={}",
                s.writes,
                s.replicated_pages,
                s.write_through
            );
            snapshots += 1;
        }
        stop.store(true, Ordering::SeqCst);
        h.join().unwrap();
        assert!(snapshots > 100, "sampler barely ran");
        let s = a.stats();
        assert!(s.writes > 0 && s.writes_balance());
        Arc::try_unwrap(a)
            .ok()
            .expect("writer released node")
            .shutdown();
        b.shutdown();
    }

    #[test]
    fn obs_events_and_counters_mirror_node_stats() {
        let (a, b, _ba, _bb) = pair();
        let (obs, ring) = Obs::ring(1024);
        a.attach_obs(&obs);
        for i in 0..8u64 {
            assert_eq!(a.write(i, b"data"), WriteOutcome::Replicated);
        }
        let s = a.stats();
        assert_eq!(s.replicated_pages, 8);
        // Cached counters track live.
        assert_eq!(
            obs.registry()
                .counter("cluster.node.replicated_pages")
                .get(),
            8
        );
        assert_eq!(
            obs.registry().counter("cluster.node.write_through").get(),
            0
        );
        let events = ring.events();
        // Sequential writes each travel as their own single-page batch.
        let sends = events
            .iter()
            .filter(|e| e.kind == "repl_batch_send")
            .count();
        let acks = events.iter().filter(|e| e.kind == "repl_batch_ack").count();
        assert_eq!(acks, 8);
        assert!(sends >= 8, "every replication has at least one send span");
        assert_eq!(s.repl.batches_sent, 8);
        assert_eq!(s.repl.batch_pages, 8);
        let hist = a.repl_batch_histogram();
        assert_eq!(hist.count, 8);
        for e in &events {
            assert_eq!(e.component, "cluster.node");
            assert_eq!(e.get("id").and_then(fc_obs::Value::as_u64), Some(0));
            assert!(matches!(e.t, fc_obs::Stamp::Wall(_)));
        }
        // StatSource retrofit: a registry dump agrees with the snapshot.
        use fc_obs::StatSource;
        let mut reg = fc_obs::Registry::new();
        s.emit(&mut reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("cluster.node.writes"), Some(s.writes));
        assert_eq!(
            snap.counter("cluster.node.replicated_pages"),
            Some(s.replicated_pages)
        );
        assert_eq!(
            snap.counter("cluster.replication.retries"),
            Some(s.repl.retries)
        );
        assert_eq!(
            snap.counter("cluster.replication.takeover_destages"),
            Some(s.repl.takeover_destages)
        );
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn stale_version_does_not_overwrite_newer_remote_copy() {
        let (a, b, _ba, _bb) = pair();
        a.write(1, b"v1");
        a.write(1, b"v2");
        // Wait for both replications to land.
        std::thread::sleep(Duration::from_millis(100));
        let g = b.hosted_remote_pages();
        assert_eq!(g, vec![1]);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn duplicate_tagged_run_applies_once() {
        let (a, b, _ba, _bb) = pair();
        let pages: Vec<Vec<u8>> = (0..3u8).map(|i| vec![i; 8]).collect();
        let first = a.try_write_run(7, 42, 100, &pages).unwrap();
        assert_eq!(first.pages(), 3);
        let writes_after_first = a.stats().writes;
        // Same (client, tag): answered from the window, nothing re-applied.
        let second = a.try_write_run(7, 42, 100, &pages).unwrap();
        assert_eq!(second, first);
        let s = a.stats();
        assert_eq!(s.writes, writes_after_first);
        assert_eq!(s.dedup_hits, 1);
        // A different client reusing the tag is a distinct request.
        let other = a.try_write_run(8, 42, 100, &pages).unwrap();
        assert_eq!(other.pages(), 3);
        assert_eq!(a.stats().writes, writes_after_first + 3);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn dedup_window_evicts_oldest_tag() {
        let (ta, tb) = mem_pair();
        let ba = shared_backend(MemBackend::new());
        let bb = shared_backend(MemBackend::new());
        let mut cfg = NodeConfig::test_profile(0);
        cfg.dedup_window = 2;
        let a = Node::spawn(cfg, ta, ba);
        let b = Node::spawn(NodeConfig::test_profile(1), tb, bb);
        let page = [vec![1u8; 8]];
        a.try_write_run(1, 10, 0, &page).unwrap();
        a.try_write_run(1, 11, 1, &page).unwrap();
        a.try_write_run(1, 12, 2, &page).unwrap(); // evicts tag 10
        let writes = a.stats().writes;
        // Tags 11 and 12 are still remembered.
        a.try_write_run(1, 11, 1, &page).unwrap();
        a.try_write_run(1, 12, 2, &page).unwrap();
        assert_eq!(a.stats().writes, writes);
        assert_eq!(a.stats().dedup_hits, 2);
        // Tag 10 fell out of the window: the resend applies again.
        a.try_write_run(1, 10, 0, &page).unwrap();
        assert_eq!(a.stats().writes, writes + 1);
        assert_eq!(a.stats().dedup_hits, 2);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn failed_node_refuses_and_restart_rejoins() {
        let (a, b, _ba, _bb) = pair();
        assert_eq!(a.write(1, b"x"), WriteOutcome::Replicated);
        b.fail();
        assert!(b.is_halted());
        assert_eq!(b.try_read_from(1, 1), Err(NodeDown));
        assert_eq!(b.try_flush_dirty(), Err(NodeDown));
        assert_eq!(b.try_write_run(1, 1, 0, &[b"y"]), Err(NodeDown));
        // The survivor detects the silence and walks to Solo/takeover.
        assert!(wait_until(
            || a.lifecycle_state() == PairState::Solo,
            Duration::from_secs(2)
        ));
        assert_eq!(a.write(2, b"solo"), WriteOutcome::WriteThrough);
        b.restart();
        assert!(!b.is_halted());
        // Heartbeats resume and both sides re-form the pair.
        assert!(wait_until(
            || {
                a.lifecycle_state() == PairState::Paired && b.lifecycle_state() == PairState::Paired
            },
            Duration::from_secs(5)
        ));
        assert_eq!(a.write(3, b"again"), WriteOutcome::Replicated);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn migration_moves_pages_between_pairs_and_fences_the_source() {
        let (a1, a2, _ba, _bb) = pair();
        let (tb1, tb2) = mem_pair();
        let b1 = Node::spawn(
            NodeConfig::test_profile(2),
            tb1,
            shared_backend(MemBackend::new()),
        );
        let b2 = Node::spawn(
            NodeConfig::test_profile(3),
            tb2,
            shared_backend(MemBackend::new()),
        );
        for lpn in 0..4u64 {
            assert_eq!(a1.write(lpn, format!("m{lpn}").as_bytes()), {
                WriteOutcome::Replicated
            });
        }
        a1.flush_dirty(); // half durable, half will re-dirty
        a1.write(0, b"m0v2");
        let lpns = a1.try_migration_lpns().unwrap();
        assert_eq!(lpns, vec![0, 1, 2, 3]);

        let entries = a1.try_export_pages(&lpns).unwrap();
        assert_eq!(entries.len(), 4);
        for (_, _, crc, data) in &entries {
            assert_eq!(*crc, crc32(data));
        }
        assert_eq!(b1.try_import_pages(&entries), Ok(4));
        assert_eq!(b1.read(0), Some(b"m0v2".to_vec()), "newest copy must move");
        assert_eq!(b1.stats().migrated_in_pages, 4);

        assert_eq!(a1.try_release_pages(&lpns), Ok(4));
        assert_eq!(a1.stats().migrated_out_pages, 4);
        for lpn in 0..4u64 {
            assert_eq!(a1.read(lpn), None, "fenced page served after release");
            assert!(b1.read(lpn).is_some());
        }
        // The version-bounded discard scrubs the peer's replicas too.
        assert!(wait_until(
            || a2.hosted_remote_pages().is_empty(),
            Duration::from_secs(2)
        ));
        a1.shutdown();
        a2.shutdown();
        b1.shutdown();
        b2.shutdown();
    }

    #[test]
    fn import_verifies_crc_before_applying_anything() {
        let (a, b, _ba, _bb) = pair();
        let good = resync_entry(1, 1, Bytes::from_static(b"ok"));
        let mut bad = resync_entry(2, 1, Bytes::from_static(b"tampered"));
        bad.3 = Bytes::from_static(b"tampereX");
        assert_eq!(
            a.try_import_pages(&[good, bad]),
            Err(MigrateError::Corrupt { lpn: 2 })
        );
        // Torn batch: nothing applied, not even the valid frame.
        assert_eq!(a.read(1), None);
        assert_eq!(a.stats().migrated_in_pages, 0);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn import_never_rolls_back_a_newer_local_copy() {
        let (a, b, _ba, _bb) = pair();
        a.write(7, b"newer");
        let stale = resync_entry(7, 0, Bytes::from_static(b"stale"));
        assert_eq!(a.try_import_pages(&[stale]), Ok(0));
        assert_eq!(a.read(7), Some(b"newer".to_vec()));
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn migration_lpns_excludes_pages_hosted_for_the_peer() {
        let (a, b, _ba, _bb) = pair();
        assert_eq!(a.write(5, b"mine-via-a"), WriteOutcome::Replicated);
        a.fail();
        // b walks Solo and takeover-destages a's replica under PEER_NS.
        assert!(wait_until(
            || b.lifecycle_state() == PairState::Solo,
            Duration::from_secs(2)
        ));
        b.write(100, b"bs-own");
        let lpns = b.try_migration_lpns().unwrap();
        assert!(lpns.contains(&100));
        assert!(
            !lpns.iter().any(|&l| l == 5 || l & PEER_NS != 0),
            "peer-hosted pages must not migrate with b's blocks: {lpns:?}"
        );
        assert_eq!(a.try_migration_lpns(), Err(NodeDown));
        a.shutdown();
        b.shutdown();
    }

    mod dedup_prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]
            /// Replaying any prefix of an already-applied tagged-run
            /// sequence (in any prefix order) never double-applies: the
            /// node's write count does not move and every page still reads
            /// back with its latest contents.
            #[test]
            fn replayed_prefixes_never_double_apply(
                runs in proptest::collection::vec((0u64..4, 0u64..32, 1usize..4), 1..12),
                replay_len in 0usize..12,
            ) {
                let (a, b, _ba, _bb) = pair();
                let mut applied: Vec<(u64, u64, u64, Vec<Vec<u8>>)> = Vec::new();
                for (i, (client, lpn, pages)) in runs.iter().enumerate() {
                    let tag = i as u64 + 1; // client-stamped, unique per run
                    let data: Vec<Vec<u8>> = (0..*pages)
                        .map(|p| format!("r{i}p{p}").into_bytes())
                        .collect();
                    a.try_write_run(*client, tag, *lpn, &data).unwrap();
                    applied.push((*client, tag, *lpn, data));
                }
                let writes_before = a.stats().writes;
                // Replay a prefix of the history, as a retrying gateway
                // would after an ambiguous failure.
                for (client, tag, lpn, data) in applied.iter().take(replay_len) {
                    a.try_write_run(*client, *tag, *lpn, data).unwrap();
                }
                let s = a.stats();
                prop_assert_eq!(s.writes, writes_before, "replay must not re-apply");
                prop_assert_eq!(s.dedup_hits, replay_len.min(applied.len()) as u64);
                // Latest writer per page still wins.
                let mut latest: HashMap<u64, Vec<u8>> = HashMap::new();
                for (_, _, lpn, data) in &applied {
                    for (p, d) in data.iter().enumerate() {
                        latest.insert(lpn + p as u64, d.clone());
                    }
                }
                for (lpn, want) in latest {
                    prop_assert_eq!(a.read(lpn), Some(want));
                }
                a.shutdown();
                b.shutdown();
            }
        }
    }
}
