//! A runnable FlashCoop node.
//!
//! [`Node`] is the real (threaded) counterpart of the simulation's
//! `CoopServer`: it buffers writes locally through the *same*
//! [`flashcoop::BufferManager`] and policies, replicates dirty pages to its
//! peer over a [`Transport`], flushes evicted blocks to a
//! [`StorageBackend`], sends and monitors heartbeats, and runs the
//! Section III.D recovery protocol (RCT fetch → replay → purge).
//!
//! Durability contract: a [`WriteOutcome::Replicated`] write is held in two
//! memories (local buffer + peer remote buffer); a
//! [`WriteOutcome::WriteThrough`] write is on the backend before the call
//! returns. Either way an acknowledged write survives a single failure.

use crate::backend::StorageBackend;
use crate::transport::{Transport, TransportError};
use crate::wire::{Message, SeqStatus, SeqTracker};
use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use fc_obs::{Counter, Obs};
use flashcoop::policy::Eviction;
use flashcoop::{
    BufferManager, HeartbeatMonitor, PeerEvent, PolicyKind, ReplicationStats, RetryPolicy,
};
use fc_simkit::{SimDuration, SimTime};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A backend shared between node incarnations (it is the durable medium, so
/// it must survive a node crash/restart in tests and demos).
pub type SharedBackend = Arc<Mutex<Box<dyn StorageBackend>>>;

/// Wrap a backend for use by a node.
pub fn shared_backend(b: impl StorageBackend + 'static) -> SharedBackend {
    Arc::new(Mutex::new(Box::new(b)))
}

/// Node tunables.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Node id (appears in heartbeats).
    pub id: u8,
    /// Buffer replacement policy.
    pub policy: PolicyKind,
    /// Local buffer capacity in pages.
    pub buffer_pages: usize,
    /// Pages per logical block (LAR granularity).
    pub pages_per_block: u32,
    /// Heartbeat period.
    pub heartbeat: Duration,
    /// Silence after which the peer is declared failed.
    pub failure_timeout: Duration,
    /// How long a write waits for its replication ack before retrying (and,
    /// with retries exhausted, degrading).
    pub ack_timeout: Duration,
    /// Bounded retry-with-backoff for the replication ack path. A lossy
    /// network drops the occasional Replicate or ack; retrying (the receiver
    /// dedups by sequence number and re-acks) keeps such writes on the
    /// replicated fast path instead of silently falling back to
    /// write-through on the first loss.
    pub retry: RetryPolicy,
}

impl Default for NodeConfig {
    /// Production-shaped defaults (the paper's block geometry; relaxed
    /// timers). Tests usually start from [`NodeConfig::test_profile`].
    fn default() -> Self {
        NodeConfig {
            id: 0,
            policy: PolicyKind::Lar,
            buffer_pages: 4096,
            pages_per_block: 64,
            heartbeat: Duration::from_millis(100),
            failure_timeout: Duration::from_millis(500),
            ack_timeout: Duration::from_millis(500),
            retry: RetryPolicy::default(),
        }
    }
}

impl NodeConfig {
    /// Fast timings for tests and demos.
    pub fn test_profile(id: u8) -> Self {
        NodeConfig {
            id,
            policy: PolicyKind::Lar,
            buffer_pages: 64,
            pages_per_block: 4,
            heartbeat: Duration::from_millis(25),
            failure_timeout: Duration::from_millis(200),
            ack_timeout: Duration::from_millis(500),
            retry: RetryPolicy::default(),
        }
    }

    /// Start a builder from the defaults:
    ///
    /// ```
    /// use fc_cluster::NodeConfig;
    /// use flashcoop::RetryPolicy;
    ///
    /// let cfg = NodeConfig::builder()
    ///     .id(1)
    ///     .buffer_pages(128)
    ///     .retry(RetryPolicy::no_retries())
    ///     .build();
    /// assert_eq!(cfg.id, 1);
    /// assert_eq!(cfg.retry.attempts, 1);
    /// ```
    pub fn builder() -> NodeConfigBuilder {
        NodeConfigBuilder {
            cfg: NodeConfig::default(),
        }
    }
}

/// Builder for [`NodeConfig`].
#[derive(Debug, Clone)]
pub struct NodeConfigBuilder {
    cfg: NodeConfig,
}

impl NodeConfigBuilder {
    /// Node id (appears in heartbeats).
    pub fn id(mut self, id: u8) -> Self {
        self.cfg.id = id;
        self
    }

    /// Buffer replacement policy.
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.cfg.policy = policy;
        self
    }

    /// Local buffer capacity in pages.
    pub fn buffer_pages(mut self, pages: usize) -> Self {
        self.cfg.buffer_pages = pages;
        self
    }

    /// Pages per logical block.
    pub fn pages_per_block(mut self, ppb: u32) -> Self {
        self.cfg.pages_per_block = ppb;
        self
    }

    /// Heartbeat period.
    pub fn heartbeat(mut self, period: Duration) -> Self {
        self.cfg.heartbeat = period;
        self
    }

    /// Silence after which the peer is declared failed.
    pub fn failure_timeout(mut self, timeout: Duration) -> Self {
        self.cfg.failure_timeout = timeout;
        self
    }

    /// Replication-ack wait per attempt.
    pub fn ack_timeout(mut self, timeout: Duration) -> Self {
        self.cfg.ack_timeout = timeout;
        self
    }

    /// Bounded retry-with-backoff policy for the replication path.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.cfg.retry = retry;
        self
    }

    /// Finish the configuration.
    pub fn build(self) -> NodeConfig {
        self.cfg
    }
}

/// How a write was made durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// Buffered locally and acknowledged by the peer's remote buffer.
    Replicated,
    /// Written synchronously to the backend (degraded mode or replication
    /// failure).
    WriteThrough,
}

/// Observable node counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Writes handled.
    pub writes: u64,
    /// Reads handled.
    pub reads: u64,
    /// Reads served from the local buffer.
    pub read_hits: u64,
    /// Pages acknowledged by the peer.
    pub replicated_pages: u64,
    /// Writes that fell back to write-through.
    pub write_through: u64,
    /// Pages flushed to the backend by evictions.
    pub flushed_pages: u64,
    /// Page deletions (short-lived files).
    pub deletes: u64,
    /// Remote (peer) pages currently hosted.
    pub remote_pages: u64,
    /// Fault-tolerance counters (retries, dedup, reorders, destages).
    pub repl: ReplicationStats,
}

impl NodeStats {
    /// Durability invariant: every counted write finished either replicated
    /// or written through. Holds under any single [`Node::stats`] snapshot
    /// (the counters are committed together, under one lock).
    pub fn writes_balance(&self) -> bool {
        self.writes == self.replicated_pages + self.write_through
    }
}

/// Dumps the node counters under `cluster.node.*` and delegates the
/// fault-tolerance counters to [`ReplicationStats`]'s own source
/// (`cluster.replication.*`).
impl fc_obs::StatSource for NodeStats {
    fn emit(&self, reg: &mut fc_obs::Registry) {
        reg.counter("cluster.node.writes").store(self.writes);
        reg.counter("cluster.node.reads").store(self.reads);
        reg.counter("cluster.node.read_hits").store(self.read_hits);
        reg.counter("cluster.node.replicated_pages")
            .store(self.replicated_pages);
        reg.counter("cluster.node.write_through")
            .store(self.write_through);
        reg.counter("cluster.node.flushed_pages")
            .store(self.flushed_pages);
        reg.counter("cluster.node.deletes").store(self.deletes);
        reg.gauge("cluster.node.remote_pages")
            .set_u64(self.remote_pages);
        self.repl.emit(reg);
    }
}

/// Cached obs handles for the hot replication path: counters resolved once
/// at attach time, event emission via the shared [`Obs`] handle.
#[derive(Debug, Clone)]
struct NodeObs {
    obs: Obs,
    id: u64,
    replicated: Counter,
    write_through: Counter,
    retries: Counter,
    dedups: Counter,
}

impl NodeObs {
    /// Start a wall-stamped `cluster.node` event tagged with the node id.
    fn ev(&self, kind: &'static str) -> fc_obs::Event {
        self.obs.wall_event("cluster.node", kind).u64_field("id", self.id)
    }
}

struct Inner {
    cfg: NodeConfig,
    buffer: BufferManager,
    /// Contents of every resident page (the buffer tracks metadata only).
    data: HashMap<u64, Bytes>,
    versions: HashMap<u64, u64>,
    next_version: u64,
    backend: SharedBackend,
    /// Pages hosted for the peer: lpn → (version, data).
    remote: HashMap<u64, (u64, Bytes)>,
    /// Data-plane sequence numbers seen from the peer (dedup/reorder
    /// detection for retransmitted or duplicated deliveries).
    peer_seqs: SeqTracker,
    degraded: bool,
    monitor: HeartbeatMonitor,
    pending_acks: HashMap<u64, Sender<()>>,
    snapshot_waiters: Vec<Sender<Vec<(u64, u64, Bytes)>>>,
    purge_waiters: Vec<Sender<()>>,
    next_seq: u64,
    stats: NodeStats,
    obs: Option<NodeObs>,
}

impl Inner {
    /// Flush an eviction's runs to the backend; returns the flushed
    /// `(lpn, version)` pairs so the caller can send a version-bounded
    /// Discard.
    fn apply_eviction(&mut self, ev: &Eviction) -> Vec<(u64, u64)> {
        let mut flushed = Vec::new();
        for run in &ev.runs {
            for i in 0..run.pages as u64 {
                let lpn = run.lpn + i;
                if let Some(bytes) = self.data.get(&lpn) {
                    let ver = self.versions.get(&lpn).copied().unwrap_or(0);
                    self.backend.lock().write_page(lpn, ver, bytes);
                    self.stats.flushed_pages += 1;
                    flushed.push((lpn, ver));
                }
            }
        }
        // Drop contents of pages no longer resident.
        if !ev.runs.is_empty() || ev.clean_dropped > 0 {
            let buffer = &self.buffer;
            self.data.retain(|l, _| buffer.lookup(*l).is_some());
        }
        flushed
    }

    /// Remote failure handling: flush every dirty page and stop forwarding.
    fn enter_degraded(&mut self) {
        if self.degraded {
            return;
        }
        self.degraded = true;
        let ev = self.buffer.drain_dirty();
        for run in &ev.runs {
            for i in 0..run.pages as u64 {
                let lpn = run.lpn + i;
                if let Some(bytes) = self.data.get(&lpn) {
                    let ver = self.versions.get(&lpn).copied().unwrap_or(0);
                    self.backend.lock().write_page(lpn, ver, bytes);
                    self.stats.flushed_pages += 1;
                    self.stats.repl.partition_destages += 1;
                }
            }
        }
        // Writers waiting on acks will time out and take the write-through
        // path themselves.
    }
}

/// A live FlashCoop node: background pump thread + synchronous API.
pub struct Node {
    inner: Arc<Mutex<Inner>>,
    transport: Arc<dyn Transport + Sync>,
    shutdown: Arc<AtomicBool>,
    pump: Option<JoinHandle<()>>,
}

impl Node {
    /// Start a node over an established transport and backend.
    pub fn spawn(
        cfg: NodeConfig,
        transport: impl Transport + Sync + 'static,
        backend: SharedBackend,
    ) -> Node {
        let monitor = HeartbeatMonitor::new(
            SimDuration::from_nanos(cfg.heartbeat.as_nanos() as u64),
            SimDuration::from_nanos(cfg.failure_timeout.as_nanos() as u64),
        );
        let buffer = BufferManager::new(cfg.policy, cfg.buffer_pages, cfg.pages_per_block, true);
        let inner = Arc::new(Mutex::new(Inner {
            cfg: cfg.clone(),
            buffer,
            data: HashMap::new(),
            versions: HashMap::new(),
            next_version: 1,
            backend,
            remote: HashMap::new(),
            peer_seqs: SeqTracker::new(),
            degraded: false,
            monitor,
            pending_acks: HashMap::new(),
            snapshot_waiters: Vec::new(),
            purge_waiters: Vec::new(),
            next_seq: 1,
            stats: NodeStats::default(),
            obs: None,
        }));
        let transport: Arc<dyn Transport + Sync> = Arc::new(transport);
        let shutdown = Arc::new(AtomicBool::new(false));
        let pump = {
            let inner = inner.clone();
            let transport = transport.clone();
            let shutdown = shutdown.clone();
            std::thread::Builder::new()
                .name(format!("fc-node-{}", cfg.id))
                .spawn(move || pump_loop(cfg, inner, transport, shutdown))
                .expect("spawn node pump")
        };
        Node {
            inner,
            transport,
            shutdown,
            pump: Some(pump),
        }
    }

    /// Write one page. Blocks until the page is durable (replicated or
    /// written through).
    ///
    /// Stats contract: `writes` is committed together with its outcome
    /// counter (`replicated_pages` or `write_through`), under the same lock
    /// acquisition — a concurrent [`Node::stats`] snapshot always satisfies
    /// [`NodeStats::writes_balance`], never observing a write that is
    /// counted but not yet resolved.
    pub fn write(&self, lpn: u64, data: &[u8]) -> WriteOutcome {
        let bytes = Bytes::copy_from_slice(data);
        let (seq, version, ack_rx, flushed, nobs) = {
            let mut inner = self.inner.lock();
            let version = inner.next_version;
            inner.next_version += 1;
            inner.versions.insert(lpn, version);

            if inner.degraded {
                inner.backend.lock().write_page(lpn, version, &bytes);
                let ev = inner.buffer.insert_clean(lpn, 1);
                inner.data.insert(lpn, bytes);
                inner.apply_eviction(&ev);
                inner.stats.writes += 1;
                inner.stats.write_through += 1;
                if let Some(o) = &inner.obs {
                    o.write_through.inc();
                    o.obs.emit(
                        o.ev("write_through")
                            .u64_field("lpn", lpn)
                            .str_field("reason", "degraded"),
                    );
                }
                return WriteOutcome::WriteThrough;
            }

            // Contents must be in place *before* the buffer insert: the
            // insert can evict the very block being written, and the flush
            // needs the data.
            inner.data.insert(lpn, bytes.clone());
            let ev = inner.buffer.write(lpn, 1);
            let flushed = inner.apply_eviction(&ev);
            if flushed.iter().any(|&(l, _)| l == lpn) {
                // The new page was evicted (and flushed) synchronously by
                // its own insertion — it is already durable on the backend,
                // so replicating it would only leave a stale orphan at the
                // peer.
                inner.stats.writes += 1;
                inner.stats.write_through += 1;
                if let Some(o) = &inner.obs {
                    o.write_through.inc();
                    o.obs.emit(
                        o.ev("write_through")
                            .u64_field("lpn", lpn)
                            .str_field("reason", "self_evicted"),
                    );
                }
                drop(inner);
                self.send_discard(flushed);
                return WriteOutcome::WriteThrough;
            }
            let seq = inner.next_seq;
            inner.next_seq += 1;
            let (tx, rx) = bounded(1);
            inner.pending_acks.insert(seq, tx);
            let nobs = inner.obs.clone();
            (seq, version, rx, flushed, nobs)
        };

        if !flushed.is_empty() {
            self.send_discard(flushed);
        }
        let (ack_timeout, retry) = {
            let inner = self.inner.lock();
            (inner.cfg.ack_timeout, inner.cfg.retry)
        };
        // Bounded retry-with-backoff: resend the *same* sequence number on
        // every attempt, so the receiver can dedup a retransmission whose
        // predecessor (or whose ack) was merely late, and re-ack it.
        let mut acked = false;
        let mut retries_used: u32 = 0;
        loop {
            if let Some(o) = &nobs {
                o.obs.emit(
                    o.ev("repl_send")
                        .u64_field("seq", seq)
                        .u64_field("lpn", lpn)
                        .u64_field("attempt", retries_used as u64),
                );
            }
            let sent = self.transport.send(Message::WriteRepl {
                seq,
                lpn,
                version,
                data: bytes.clone(),
            });
            if sent == Err(TransportError::Disconnected) {
                // A disconnected transport stays disconnected; retrying
                // cannot help.
                break;
            }
            if wait_ack(&ack_rx, ack_timeout).is_ok() {
                acked = true;
                break;
            }
            if retries_used >= retry.max_retries() {
                break;
            }
            let backoff = retry.backoff_for(retries_used);
            retries_used += 1;
            self.inner.lock().stats.repl.retries += 1;
            if let Some(o) = &nobs {
                o.retries.inc();
                o.obs.emit(
                    o.ev("repl_retry")
                        .u64_field("seq", seq)
                        .u64_field("lpn", lpn)
                        .u64_field("attempt", retries_used as u64)
                        .u64_field("backoff_ns", backoff.as_nanos()),
                );
            }
            std::thread::sleep(Duration::from_nanos(backoff.as_nanos()));
        }

        let mut inner = self.inner.lock();
        inner.pending_acks.remove(&seq);
        inner.stats.writes += 1;
        if acked {
            inner.stats.replicated_pages += 1;
            if let Some(o) = &nobs {
                o.replicated.inc();
                o.obs.emit(
                    o.ev("repl_ack")
                        .u64_field("seq", seq)
                        .u64_field("lpn", lpn)
                        .u64_field("attempts", retries_used as u64 + 1),
                );
            }
            WriteOutcome::Replicated
        } else {
            // Peer unreachable: make the page durable ourselves and degrade.
            inner.backend.lock().write_page(lpn, version, &bytes);
            inner.buffer.mark_clean(lpn);
            inner.stats.write_through += 1;
            inner.enter_degraded();
            if let Some(o) = &nobs {
                o.write_through.inc();
                o.obs.emit(
                    o.ev("write_through")
                        .u64_field("seq", seq)
                        .u64_field("lpn", lpn)
                        .str_field("reason", "ack_timeout"),
                );
            }
            WriteOutcome::WriteThrough
        }
    }

    /// Attach observability: registers the node's hot counters
    /// (`cluster.node.replicated_pages`, `cluster.node.write_through`,
    /// `cluster.replication.retries`, `cluster.replication.dups_dropped`)
    /// seeded with the current stats, and starts emitting wall-stamped
    /// `cluster.node` events (`repl_send` / `repl_ack` / `repl_retry` /
    /// `repl_dedup` / `write_through`).
    pub fn attach_obs(&self, obs: &Obs) {
        let mut inner = self.inner.lock();
        let reg = obs.registry();
        let replicated = reg.counter("cluster.node.replicated_pages");
        replicated.store(inner.stats.replicated_pages);
        let write_through = reg.counter("cluster.node.write_through");
        write_through.store(inner.stats.write_through);
        let retries = reg.counter("cluster.replication.retries");
        retries.store(inner.stats.repl.retries);
        let dedups = reg.counter("cluster.replication.dups_dropped");
        dedups.store(inner.stats.repl.dups_dropped);
        inner.obs = Some(NodeObs {
            obs: obs.clone(),
            id: inner.cfg.id as u64,
            replicated,
            write_through,
            retries,
            dedups,
        });
    }

    /// Send a seq-stamped, version-bounded Discard (fire-and-forget: a lost
    /// Discard only leaves stale — version-guarded — copies at the peer).
    fn send_discard(&self, pages: Vec<(u64, u64)>) {
        if pages.is_empty() {
            return;
        }
        let seq = {
            let mut inner = self.inner.lock();
            let seq = inner.next_seq;
            inner.next_seq += 1;
            seq
        };
        let _ = self.transport.send(Message::Discard { seq, pages });
    }

    /// Read one page: local buffer first, then the backend (caching the
    /// result).
    pub fn read(&self, lpn: u64) -> Option<Vec<u8>> {
        let mut inner = self.inner.lock();
        inner.stats.reads += 1;
        if inner.buffer.lookup(lpn).is_some() {
            inner.buffer.read(lpn, 1);
            inner.stats.read_hits += 1;
            return inner.data.get(&lpn).map(|b| b.to_vec());
        }
        inner.buffer.read(lpn, 1);
        let fetched = inner.backend.lock().read_page(lpn);
        match fetched {
            Some((_, data)) => {
                inner.data.insert(lpn, Bytes::from(data.clone()));
                let ev = inner.buffer.insert_clean(lpn, 1);
                let flushed = inner.apply_eviction(&ev);
                drop(inner);
                self.send_discard(flushed);
                Some(data)
            }
            None => None,
        }
    }

    /// Delete one page (a short-lived file dies): the buffered copy, the
    /// peer's replica, and the backend copy all go away without a flush.
    pub fn delete(&self, lpn: u64) {
        let version = {
            let mut inner = self.inner.lock();
            inner.buffer.discard(lpn, 1);
            inner.data.remove(&lpn);
            let version = inner.versions.remove(&lpn).unwrap_or(u64::MAX);
            inner.backend.lock().trim_page(lpn);
            inner.stats.deletes += 1;
            version
        };
        // Every replica of this page carries a version <= the one current at
        // delete time, so the bound removes them all.
        self.send_discard(vec![(lpn, version)]);
    }

    /// Run the local-failure recovery protocol: fetch the peer's snapshot of
    /// our replicated pages, replay it into the backend, then ask the peer
    /// to purge. Returns the number of pages recovered.
    pub fn recover_from_peer(&self, timeout: Duration) -> Result<usize, TransportError> {
        let (tx, rx) = bounded(1);
        self.inner.lock().snapshot_waiters.push(tx);
        self.transport.send(Message::RctFetch)?;
        let entries = rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => TransportError::Timeout,
            RecvTimeoutError::Disconnected => TransportError::Disconnected,
        })?;
        let n = entries.len();
        {
            let inner = self.inner.lock();
            let mut backend = inner.backend.lock();
            for (lpn, ver, data) in &entries {
                backend.write_page(*lpn, *ver, data);
            }
        }
        let (ptx, prx) = bounded(1);
        self.inner.lock().purge_waiters.push(ptx);
        self.transport.send(Message::Purge)?;
        let _ = prx.recv_timeout(timeout);
        Ok(n)
    }

    /// Current counters.
    pub fn stats(&self) -> NodeStats {
        let inner = self.inner.lock();
        let mut s = inner.stats;
        s.remote_pages = inner.remote.len() as u64;
        s
    }

    /// Dirty pages in the local buffer.
    pub fn dirty_pages(&self) -> usize {
        self.inner.lock().buffer.dirty()
    }

    /// True once remote-failure handling has engaged.
    pub fn is_degraded(&self) -> bool {
        self.inner.lock().degraded
    }

    /// Snapshot of the pages this node hosts for its peer (diagnostics).
    pub fn hosted_remote_pages(&self) -> Vec<u64> {
        let inner = self.inner.lock();
        let mut v: Vec<u64> = inner.remote.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Export the pages hosted for the peer, e.g. to re-home them onto a
    /// replacement node after this node's network link died (the peer's
    /// data must survive *our* reconnects).
    pub fn export_remote(&self) -> Vec<(u64, u64, Vec<u8>)> {
        let inner = self.inner.lock();
        let mut v: Vec<(u64, u64, Vec<u8>)> = inner
            .remote
            .iter()
            .map(|(&l, (ver, d))| (l, *ver, d.to_vec()))
            .collect();
        v.sort_unstable_by_key(|e| e.0);
        v
    }

    /// Import hosted pages exported from a previous incarnation.
    pub fn import_remote(&self, entries: &[(u64, u64, Vec<u8>)]) {
        let mut inner = self.inner.lock();
        for (lpn, ver, data) in entries {
            let e = inner
                .remote
                .entry(*lpn)
                .or_insert((*ver, Bytes::copy_from_slice(data)));
            if *ver >= e.0 {
                *e = (*ver, Bytes::copy_from_slice(data));
            }
        }
    }

    /// Stop the pump thread and flush all dirty pages to the backend
    /// (a clean shutdown never loses data).
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.pump.take() {
            let _ = h.join();
        }
        let mut inner = self.inner.lock();
        inner.enter_degraded(); // flushes dirty pages
    }

    /// Simulate a crash: stop the pump *without* flushing. Volatile state
    /// (buffer, hosted remote pages) is dropped; only the backend survives.
    pub fn crash(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.pump.take() {
            let _ = h.join();
        }
        let mut inner = self.inner.lock();
        inner.buffer.clear();
        inner.data.clear();
        inner.remote.clear();
    }
}

impl Drop for Node {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.pump.take() {
            let _ = h.join();
        }
    }
}

fn wait_ack(rx: &Receiver<()>, timeout: Duration) -> Result<(), ()> {
    rx.recv_timeout(timeout).map_err(|_| ())
}

/// Background loop: receive messages, send heartbeats, watch the monitor.
fn pump_loop(
    cfg: NodeConfig,
    inner: Arc<Mutex<Inner>>,
    transport: Arc<dyn Transport + Sync>,
    shutdown: Arc<AtomicBool>,
) {
    let epoch = Instant::now();
    let now_sim = |at: Instant| SimTime::from_nanos(at.duration_since(epoch).as_nanos() as u64);
    let mut last_beat = Instant::now() - cfg.heartbeat;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        // Periodic heartbeat.
        if last_beat.elapsed() >= cfg.heartbeat {
            last_beat = Instant::now();
            let _ = transport.send(Message::Heartbeat {
                from: cfg.id,
                at_millis: epoch.elapsed().as_millis() as u64,
            });
        }
        // Receive with a short timeout so beats and polls stay timely.
        let msg = transport.recv_timeout(cfg.heartbeat / 2);
        let now = now_sim(Instant::now());
        match msg {
            Ok(Some(m)) => handle_message(&inner, &transport, m, now),
            Ok(None) => {}
            Err(TransportError::Disconnected) => {
                inner.lock().enter_degraded();
                // Keep looping: the caller may replace nothing, but shutdown
                // still needs to be honoured; back off a little.
                std::thread::sleep(cfg.heartbeat);
            }
            // A timed-out receive is not a verdict on the link; the
            // heartbeat monitor decides.
            Err(TransportError::Timeout) => {}
        }
        // Failure detection.
        let mut guard = inner.lock();
        if let Some(PeerEvent::Failed) = guard.monitor.poll(now) {
            guard.enter_degraded();
        }
    }
}

fn handle_message(
    inner: &Arc<Mutex<Inner>>,
    transport: &Arc<dyn Transport + Sync>,
    msg: Message,
    now: SimTime,
) {
    match msg {
        Message::WriteRepl {
            seq,
            lpn,
            version,
            data,
        } => {
            {
                let mut g = inner.lock();
                match g.peer_seqs.observe(seq) {
                    SeqStatus::Duplicate => {
                        // Retransmission or network duplication: already
                        // applied, just re-ack below (the first ack may have
                        // been the casualty).
                        g.stats.repl.dups_dropped += 1;
                        if let Some(o) = &g.obs {
                            o.dedups.inc();
                            o.obs.emit(
                                o.ev("repl_dedup")
                                    .u64_field("seq", seq)
                                    .u64_field("lpn", lpn)
                                    .str_field("msg", "write_repl"),
                            );
                        }
                    }
                    status => {
                        if status == SeqStatus::NewOutOfOrder {
                            g.stats.repl.reorders_healed += 1;
                        }
                        let e = g.remote.entry(lpn).or_insert((version, data.clone()));
                        if version >= e.0 {
                            *e = (version, data);
                        }
                    }
                }
            }
            let _ = transport.send(Message::ReplAck { seq });
        }
        Message::ReplAck { seq } => {
            let waiter = inner.lock().pending_acks.remove(&seq);
            if let Some(tx) = waiter {
                let _ = tx.send(());
            }
        }
        Message::Discard { seq, pages } => {
            let mut g = inner.lock();
            match g.peer_seqs.observe(seq) {
                SeqStatus::Duplicate => {
                    g.stats.repl.dups_dropped += 1;
                    if let Some(o) = &g.obs {
                        o.dedups.inc();
                        o.obs.emit(
                            o.ev("repl_dedup")
                                .u64_field("seq", seq)
                                .str_field("msg", "discard"),
                        );
                    }
                }
                status => {
                    if status == SeqStatus::NewOutOfOrder {
                        g.stats.repl.reorders_healed += 1;
                    }
                    for (lpn, ver) in pages {
                        // Version-bounded: a reordered Discard must not
                        // delete a copy newer than the flush it refers to.
                        if g.remote.get(&lpn).is_some_and(|(v, _)| *v <= ver) {
                            g.remote.remove(&lpn);
                        }
                    }
                }
            }
        }
        Message::Heartbeat { .. } => {
            let mut g = inner.lock();
            if let Some(PeerEvent::Recovered) = g.monitor.on_beat(now) {
                g.degraded = false;
            }
        }
        Message::RctFetch => {
            let entries: Vec<(u64, u64, Bytes)> = {
                let g = inner.lock();
                let mut v: Vec<(u64, u64, Bytes)> = g
                    .remote
                    .iter()
                    .map(|(&l, (ver, d))| (l, *ver, d.clone()))
                    .collect();
                v.sort_unstable_by_key(|e| e.0);
                v
            };
            let _ = transport.send(Message::RctSnapshot { entries });
        }
        Message::RctSnapshot { entries } => {
            let waiters: Vec<_> = std::mem::take(&mut inner.lock().snapshot_waiters);
            for w in waiters {
                let _ = w.send(entries.clone());
            }
        }
        Message::Purge => {
            inner.lock().remote.clear();
            let _ = transport.send(Message::PurgeAck);
        }
        Message::PurgeAck => {
            let waiters: Vec<_> = std::mem::take(&mut inner.lock().purge_waiters);
            for w in waiters {
                let _ = w.send(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::transport::mem_pair;

    fn pair() -> (Node, Node, SharedBackend, SharedBackend) {
        let (ta, tb) = mem_pair();
        let ba = shared_backend(MemBackend::new());
        let bb = shared_backend(MemBackend::new());
        let a = Node::spawn(NodeConfig::test_profile(0), ta, ba.clone());
        let b = Node::spawn(NodeConfig::test_profile(1), tb, bb.clone());
        (a, b, ba, bb)
    }

    #[test]
    fn replicated_write_lands_in_peer_remote_buffer() {
        let (a, b, _ba, _bb) = pair();
        assert_eq!(a.write(7, b"hello"), WriteOutcome::Replicated);
        // The peer hosts the page.
        for _ in 0..50 {
            if b.hosted_remote_pages() == vec![7] {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(b.hosted_remote_pages(), vec![7]);
        assert_eq!(a.stats().replicated_pages, 1);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn read_your_writes_from_buffer() {
        let (a, b, _ba, _bb) = pair();
        a.write(3, b"abc");
        assert_eq!(a.read(3), Some(b"abc".to_vec()));
        assert_eq!(a.stats().read_hits, 1);
        assert_eq!(a.read(99), None);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn eviction_flushes_to_backend_and_discards_remote() {
        let (a, b, ba, _bb) = pair();
        // Buffer is 64 pages; write 80 distinct pages to force evictions.
        for i in 0..80u64 {
            a.write(i, format!("p{i}").as_bytes());
        }
        assert!(a.stats().flushed_pages > 0);
        assert!(ba.lock().pages() > 0);
        // Discards propagate: the peer hosts fewer pages than were written.
        let mut remote = usize::MAX;
        for _ in 0..100 {
            remote = b.hosted_remote_pages().len();
            if remote <= 64 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(remote <= 64, "peer still hosts {remote} pages");
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn severed_link_degrades_but_stays_durable() {
        let (ta, tb) = mem_pair();
        let ba = shared_backend(MemBackend::new());
        let bb = shared_backend(MemBackend::new());
        let a = Node::spawn(NodeConfig::test_profile(0), ta, ba.clone());
        let b = Node::spawn(NodeConfig::test_profile(1), tb, bb);
        a.write(1, b"before");
        // Cut the network; node A can't reach its peer any more. We sever
        // via a fresh handle is not possible — MemTransport::sever is on the
        // endpoint we moved into the node. Crash B instead (drops its
        // endpoint, disconnecting the channel).
        b.crash();
        let outcome = a.write(2, b"after");
        assert_eq!(outcome, WriteOutcome::WriteThrough);
        assert!(a.is_degraded());
        // Both pages durable: page 2 written through, page 1 flushed by
        // degraded-mode entry.
        let backend = ba.lock();
        assert!(backend.read_page(2).is_some());
        assert!(backend.read_page(1).is_some());
        drop(backend);
        a.shutdown();
    }

    #[test]
    fn crash_and_recovery_restores_pages_from_peer() {
        let (ta, tb) = mem_pair();
        let ba = shared_backend(MemBackend::new());
        let bb = shared_backend(MemBackend::new());
        let a = Node::spawn(NodeConfig::test_profile(0), ta, ba.clone());
        let b = Node::spawn(NodeConfig::test_profile(1), tb, bb.clone());
        for i in 0..10u64 {
            assert_eq!(a.write(i, format!("v{i}").as_bytes()), WriteOutcome::Replicated);
        }
        // A crashes; its buffered pages exist only at B.
        a.crash();
        assert_eq!(ba.lock().pages(), 0, "nothing was flushed before crash");

        // A "reboots" with the same backend but needs a fresh link; in this
        // in-memory setup the old channel died with the crash, so make a new
        // pair and a fresh B-side pump via a second node sharing B's state…
        // Simplest faithful reboot: spawn A2 and B2 over a new link, with B2
        // inheriting B's hosted pages through the snapshot path is not
        // possible — so instead verify the protocol with B still alive:
        // that requires A's endpoint to survive the crash, which mem
        // transport cannot do. Covered end-to-end in the TCP integration
        // test; here verify the snapshot contents directly.
        let hosted = b.hosted_remote_pages();
        assert_eq!(hosted.len(), 10);
        b.shutdown();
    }

    #[test]
    fn clean_shutdown_flushes_everything() {
        let (a, b, ba, _bb) = pair();
        for i in 0..5u64 {
            a.write(i, b"data");
        }
        assert!(a.dirty_pages() > 0);
        a.shutdown();
        assert_eq!(ba.lock().pages(), 5);
        b.shutdown();
    }

    #[test]
    fn delete_removes_page_everywhere() {
        let (a, b, ba, _bb) = pair();
        a.write(3, b"ephemeral");
        // Wait until replicated at B.
        for _ in 0..100 {
            if b.hosted_remote_pages() == vec![3] {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        a.delete(3);
        assert_eq!(a.read(3), None);
        assert_eq!(ba.lock().read_page(3), None);
        assert_eq!(a.stats().deletes, 1);
        for _ in 0..100 {
            if b.hosted_remote_pages().is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(b.hosted_remote_pages().is_empty(), "peer replica survived");
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn peer_heartbeats_keep_link_healthy() {
        let (a, b, _ba, _bb) = pair();
        std::thread::sleep(Duration::from_millis(400)); // >> failure_timeout
        assert!(!a.is_degraded(), "beats should prevent degradation");
        assert!(!b.is_degraded());
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn stats_snapshot_is_consistent_while_writes_run() {
        // Regression: `writes` used to be bumped at the top of Node::write,
        // with the outcome counter (`replicated_pages`/`write_through`)
        // only landing after the unlocked retry loop — so a concurrent
        // stats() call could observe writes > replicated + write_through.
        let (a, b, _ba, _bb) = pair();
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let stop = stop.clone();
            let a = Arc::new(a);
            let a2 = a.clone();
            let h = std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    a2.write(i % 256, b"payload");
                    i += 1;
                }
            });
            (a, h)
        };
        let (a, h) = writer;
        let deadline = Instant::now() + Duration::from_millis(500);
        let mut snapshots = 0u32;
        while Instant::now() < deadline {
            let s = a.stats();
            assert!(
                s.writes_balance(),
                "inconsistent snapshot: writes={} replicated={} write_through={}",
                s.writes,
                s.replicated_pages,
                s.write_through
            );
            snapshots += 1;
        }
        stop.store(true, Ordering::SeqCst);
        h.join().unwrap();
        assert!(snapshots > 100, "sampler barely ran");
        let s = a.stats();
        assert!(s.writes > 0 && s.writes_balance());
        Arc::try_unwrap(a).ok().expect("writer released node").shutdown();
        b.shutdown();
    }

    #[test]
    fn obs_events_and_counters_mirror_node_stats() {
        let (a, b, _ba, _bb) = pair();
        let (obs, ring) = Obs::ring(1024);
        a.attach_obs(&obs);
        for i in 0..8u64 {
            assert_eq!(a.write(i, b"data"), WriteOutcome::Replicated);
        }
        let s = a.stats();
        assert_eq!(s.replicated_pages, 8);
        // Cached counters track live.
        assert_eq!(
            obs.registry().counter("cluster.node.replicated_pages").get(),
            8
        );
        assert_eq!(obs.registry().counter("cluster.node.write_through").get(), 0);
        let events = ring.events();
        let sends = events.iter().filter(|e| e.kind == "repl_send").count();
        let acks = events.iter().filter(|e| e.kind == "repl_ack").count();
        assert_eq!(acks, 8);
        assert!(sends >= 8, "every replication has at least one send span");
        for e in &events {
            assert_eq!(e.component, "cluster.node");
            assert_eq!(e.get("id").and_then(fc_obs::Value::as_u64), Some(0));
            assert!(matches!(e.t, fc_obs::Stamp::Wall(_)));
        }
        // StatSource retrofit: a registry dump agrees with the snapshot.
        use fc_obs::StatSource;
        let mut reg = fc_obs::Registry::new();
        s.emit(&mut reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("cluster.node.writes"), Some(s.writes));
        assert_eq!(
            snap.counter("cluster.node.replicated_pages"),
            Some(s.replicated_pages)
        );
        assert_eq!(
            snap.counter("cluster.replication.retries"),
            Some(s.repl.retries)
        );
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn stale_version_does_not_overwrite_newer_remote_copy() {
        let (a, b, _ba, _bb) = pair();
        a.write(1, b"v1");
        a.write(1, b"v2");
        // Wait for both replications to land.
        std::thread::sleep(Duration::from_millis(100));
        let g = b.hosted_remote_pages();
        assert_eq!(g, vec![1]);
        a.shutdown();
        b.shutdown();
    }
}
