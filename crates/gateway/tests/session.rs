//! Session-level behaviour of the gateway over in-memory links: handshake
//! versioning, request validation, batching/coalescing accounting, and
//! admission shedding — everything short of the full-cluster e2e (which
//! lives in the workspace-root `tests/gateway_e2e.rs`).

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use fc_cluster::{mem_pair, shared_backend, MemBackend, Node, NodeConfig};
use fc_gateway::{AdmissionConfig, ClientError, ErrorCode, Gateway, GatewayConfig, Reply, Request};

fn pair() -> (Arc<Node>, Node) {
    let (ta, tb) = mem_pair();
    let backend = shared_backend(MemBackend::default());
    let a = Arc::new(Node::spawn(
        NodeConfig::test_profile(0),
        ta,
        backend.clone(),
    ));
    let b = Node::spawn(NodeConfig::test_profile(1), tb, backend);
    (a, b)
}

fn page(tag: u8) -> Bytes {
    Bytes::from(vec![tag; 64])
}

#[test]
fn hello_rejects_wrong_version() {
    let (a, _b) = pair();
    let gw = Gateway::new(GatewayConfig::test_profile(), a);
    let (client_half, server_half) = fc_gateway::mem_session();
    gw.serve(server_half);

    client_half
        .send(Request::Hello {
            version: fc_gateway::PROTO_VERSION + 1,
            client: 1,
        })
        .unwrap();
    let reply = client_half
        .recv_timeout(Duration::from_secs(2))
        .unwrap()
        .unwrap();
    assert_eq!(
        reply,
        Reply::Error {
            id: 0,
            code: ErrorCode::BadVersion
        }
    );
    gw.shutdown();
}

#[test]
fn io_before_hello_is_bad_request() {
    let (a, _b) = pair();
    let gw = Gateway::new(GatewayConfig::test_profile(), a);
    let (client_half, server_half) = fc_gateway::mem_session();
    gw.serve(server_half);

    client_half.send(Request::Flush { id: 9 }).unwrap();
    let reply = client_half
        .recv_timeout(Duration::from_secs(2))
        .unwrap()
        .unwrap();
    assert_eq!(
        reply,
        Reply::Error {
            id: 9,
            code: ErrorCode::BadRequest
        }
    );
    // The session survives: a proper Hello still works.
    client_half
        .send(Request::Hello {
            version: fc_gateway::PROTO_VERSION,
            client: 1,
        })
        .unwrap();
    let reply = client_half
        .recv_timeout(Duration::from_secs(2))
        .unwrap()
        .unwrap();
    assert!(matches!(reply, Reply::HelloOk { .. }));
    gw.shutdown();
}

#[test]
fn zero_page_and_oversized_requests_are_refused() {
    let (a, _b) = pair();
    let mut cfg = GatewayConfig::test_profile();
    cfg.max_req_pages = 4;
    let gw = Gateway::new(cfg, a);
    let mut c = gw.connect_mem();
    c.hello().unwrap();

    assert_eq!(
        c.write(0, Vec::new()).unwrap_err(),
        ClientError::Rejected(ErrorCode::BadRequest),
        "empty write"
    );
    assert_eq!(
        c.read(0, 0).unwrap_err(),
        ClientError::Rejected(ErrorCode::BadRequest),
        "zero-page read"
    );
    assert_eq!(
        c.read(0, 5).unwrap_err(),
        ClientError::Rejected(ErrorCode::BadRequest),
        "read past max_req_pages"
    );
    assert_eq!(
        c.write(0, (0..5).map(|i| page(i as u8)).collect())
            .unwrap_err(),
        ClientError::Rejected(ErrorCode::BadRequest),
        "write past max_req_pages"
    );
    // Valid traffic still flows on the same session.
    assert_eq!(c.write(0, vec![page(1)]).unwrap().pages, 1);
    gw.shutdown();
}

#[test]
fn pipelined_writes_are_batched_and_coalesced() {
    let (a, _b) = pair();
    let gw = Gateway::new(GatewayConfig::test_profile(), a);

    // Queue the handshake and four pipelined writes *before* serving the
    // session, so the batch window deterministically finds them all: two
    // adjacent pages, one overwrite of the first, one distant page.
    let (client_half, server_half) = fc_gateway::mem_session();
    client_half
        .send(Request::Hello {
            version: fc_gateway::PROTO_VERSION,
            client: 1,
        })
        .unwrap();
    let writes: [(u64, u64, u8); 4] = [(1, 0, 0xA), (2, 1, 0xB), (3, 0, 0xC), (4, 100, 0xD)];
    for (id, lpn, tag) in writes {
        client_half
            .send(Request::Write {
                id,
                lpn,
                pages: vec![page(tag)],
            })
            .unwrap();
    }
    gw.serve(server_half);

    let hello = client_half
        .recv_timeout(Duration::from_secs(5))
        .unwrap()
        .unwrap();
    assert!(matches!(hello, Reply::HelloOk { .. }));
    for (id, _, _) in writes {
        let reply = client_half
            .recv_timeout(Duration::from_secs(5))
            .unwrap()
            .unwrap();
        assert_eq!(reply.id(), id, "replies arrive in issue order");
        assert!(matches!(reply, Reply::WriteOk { .. }));
    }

    // Last-writer-wins inside the batch: page 0 holds the later payload.
    assert_eq!(gw.node().read(0).unwrap()[0], 0xC);
    assert_eq!(gw.node().read(1).unwrap()[0], 0xB);
    assert_eq!(gw.node().read(100).unwrap()[0], 0xD);

    let stats = gw.stats();
    assert_eq!(stats.writes, 4);
    assert_eq!(stats.write_pages, 4);
    assert_eq!(stats.batches, 1, "all four writes shared one batch window");
    assert_eq!(stats.coalesced_pages, 1, "the overwrite merged away");
    assert_eq!(
        stats.runs, 2,
        "pages 0-1 form one run, page 100 another (block-aligned)"
    );
    gw.shutdown();
}

#[test]
fn rate_limited_client_gets_busy_and_recovers_nothing_else_lost() {
    let (a, _b) = pair();
    let mut cfg = GatewayConfig::test_profile();
    cfg.admission = AdmissionConfig {
        per_client_rate: 0.0, // no refill: exactly `burst` requests succeed
        per_client_burst: 3.0,
        max_inflight: u32::MAX,
    };
    let gw = Gateway::new(cfg, a);
    let mut c = gw.connect_mem();
    c.hello().unwrap();

    let mut acked = 0;
    let mut shed = 0;
    for i in 0..10u64 {
        match c.write(i, vec![page(i as u8)]) {
            Ok(_) => acked += 1,
            Err(ClientError::Busy) => shed += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert_eq!(acked, 3, "exactly the burst is admitted");
    assert_eq!(shed, 7);

    let stats = gw.stats();
    assert_eq!(stats.shed_total, 7);
    assert_eq!(stats.shed_rate_limited, 7);
    assert_eq!(stats.shed_queue_full, 0);
    assert!((stats.shed_rate() - 0.7).abs() < 1e-9);

    // Every acknowledged write is readable; shed writes left no trace.
    let mut present = 0;
    for i in 0..10u64 {
        // Reads are also admission-gated here (bucket empty) — go straight
        // to the node to check state.
        if gw.node().read(i).is_some() {
            present += 1;
        }
    }
    assert_eq!(present, acked);
    gw.shutdown();
}

#[test]
fn trim_and_flush_round_trip() {
    let (a, _b) = pair();
    let gw = Gateway::new(GatewayConfig::test_profile(), a);
    let mut c = gw.connect_mem();
    c.hello().unwrap();

    c.write(10, vec![page(1), page(2)]).unwrap();
    let flushed = c.flush().unwrap();
    assert!(flushed > 0, "dirty pages were destaged");
    assert_eq!(c.trim(10, 1).unwrap(), 1);
    let got = c.read(10, 2).unwrap();
    assert!(got[0].is_none(), "trimmed page is gone");
    assert_eq!(got[1].as_ref().unwrap()[0], 2);

    let stats = gw.stats();
    assert_eq!(stats.trims, 1);
    assert_eq!(stats.flushes, 1);
    gw.shutdown();
}

#[test]
fn per_client_node_stats_attribute_gateway_traffic() {
    let (a, _b) = pair();
    let gw = Gateway::new(GatewayConfig::test_profile(), a);
    let mut c1 = gw.connect_mem_as(101);
    let mut c2 = gw.connect_mem_as(202);
    c1.hello().unwrap();
    c2.hello().unwrap();

    c1.write(0, vec![page(1)]).unwrap();
    c1.write(1, vec![page(2)]).unwrap();
    c2.write(50, vec![page(3)]).unwrap();
    c1.read(0, 1).unwrap();

    let rows = gw.node().client_stats();
    let row = |id: u64| rows.iter().find(|(c, _)| *c == id).unwrap().1;
    let r1 = row(101);
    assert_eq!(r1.pages_written, 2);
    assert_eq!(r1.reads, 1);
    let r2 = row(202);
    assert_eq!(r2.pages_written, 1);
    assert_eq!(r2.reads, 0);
    gw.shutdown();
}
