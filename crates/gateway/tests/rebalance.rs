//! Gateway-level elastic-membership tests: the dual-ring window mechanics
//! (attach → begin → migrate → commit) against real mem pairs, the
//! control-surface error paths, and the flush fast-fail regression (a
//! dead shard answers `Unavailable` immediately instead of burning the
//! whole retry deadline).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use fc_cluster::{mem_pair, shared_backend, MemBackend, Node, NodeConfig};
use fc_gateway::{ClientError, GatewayConfig, RebalanceError, ShardStatsSum, ShardedGateway};
use fc_ring::RingConfig;

const BLOCKS: u64 = 64;

fn page(lpn: u64, tag: u8) -> Bytes {
    Bytes::from(vec![tag, lpn as u8, (lpn >> 8) as u8, 0xFC])
}

/// Spawn one extra mem pair with node ids `2*shard`/`2*shard+1`, block
/// geometry matching the gateway config.
fn spawn_extra_pair(cfg: &GatewayConfig, shard: u16) -> (Arc<Node>, Arc<Node>) {
    let (ta, tb) = mem_pair();
    let backend = shared_backend(MemBackend::default());
    let mut cfg_a = NodeConfig::test_profile((2 * shard) as u8);
    cfg_a.pages_per_block = cfg.pages_per_block;
    let mut cfg_b = NodeConfig::test_profile((2 * shard + 1) as u8);
    cfg_b.pages_per_block = cfg.pages_per_block;
    (
        Arc::new(Node::spawn(cfg_a, ta, backend.clone())),
        Arc::new(Node::spawn(cfg_b, tb, backend)),
    )
}

/// The full scale-up path: write across two pairs, attach a third, fence
/// exactly the occupied moved blocks, migrate in bounded batches under the
/// dual-ring window, cut over — every acked write stays readable through
/// the router, moved blocks live on the new pair, and writes issued
/// *during* the window route per the fence rule.
#[test]
fn live_add_pair_migrates_only_moved_blocks_and_loses_nothing() {
    let cfg = GatewayConfig::test_profile();
    let sg = ShardedGateway::spawn_mem(cfg.clone(), RingConfig::default(), 2);
    let old_ring = sg.gateway().ring().expect("ring");
    let bp = u64::from(old_ring.block_pages());

    let mut client = sg.connect_mem_as(7);
    client.hello().expect("hello");

    // Occupy the even blocks (two pages each); flush half the space so
    // migration sees both buffer-resident and durable-only pages.
    let mut oracle: HashMap<u64, Bytes> = HashMap::new();
    for block in (0..BLOCKS).step_by(2) {
        for off in 0..2 {
            let lpn = block * bp + off;
            let data = page(lpn, 1);
            client.write(lpn, vec![data.clone()]).expect("write");
            oracle.insert(lpn, data);
        }
        if block == BLOCKS / 2 {
            client.flush().expect("flush");
        }
    }

    // Attach pair 2 and open the window for the grown ring.
    let (primary, secondary) = spawn_extra_pair(&cfg, 2);
    assert_eq!(sg.attach_pair(primary, secondary), 2);
    assert_eq!(sg.shards(), 3);
    let mut new_ring = old_ring.clone();
    new_ring.add_pair(2);
    let moved = old_ring.moved_blocks(&new_ring, BLOCKS);
    assert!(!moved.is_empty(), "adding a pair must move some blocks");
    assert!(moved.iter().all(|&(_, _, to)| to == 2));
    let occupied: Vec<u64> = moved
        .iter()
        .map(|&(b, _, _)| b)
        .filter(|b| oracle.keys().any(|lpn| lpn / bp == *b))
        .collect();
    let plan: Vec<u64> = occupied.clone();
    assert!(!plan.is_empty());
    let fenced_set = sg
        .gateway()
        .begin_rebalance(new_ring.clone(), plan.clone())
        .expect("begin");
    let mut plan_sorted = plan.clone();
    plan_sorted.sort_unstable();
    assert_eq!(
        fenced_set, plan_sorted,
        "begin's live occupancy scan agrees with the plan when nothing wrote in between"
    );
    assert!(sg.gateway().rebalance_active());
    assert_eq!(sg.gateway().rebalance_pending(), Some(plan.len() as u64));
    assert_eq!(sg.gateway().ring_epoch(), Some(new_ring.epoch()));

    // In-window routing: a write to an *unfenced* owner-changed block
    // (odd ⇒ unoccupied ⇒ not in the plan) lands directly on the new
    // pair; a write to a *fenced* block still lands on its old owner.
    let unfenced = moved
        .iter()
        .map(|&(b, _, _)| b)
        .find(|b| !plan.contains(b))
        .expect("some moved block is unoccupied");
    let lpn_new = unfenced * bp;
    let data_new = page(lpn_new, 2);
    client
        .write(lpn_new, vec![data_new.clone()])
        .expect("write");
    oracle.insert(lpn_new, data_new);
    assert!(
        sg.primary(2).read(lpn_new).is_some(),
        "unfenced moved block must route to the new owner during the window"
    );
    let fenced = plan[0];
    let from_shard = old_ring.shard_of_block(fenced);
    let lpn_old = fenced * bp + 3;
    let data_old = page(lpn_old, 3);
    client
        .write(lpn_old, vec![data_old.clone()])
        .expect("write");
    oracle.insert(lpn_old, data_old);
    assert!(
        sg.primary(from_shard).read(lpn_old).is_some(),
        "fenced block must keep routing to its old owner until migrated"
    );
    assert!(sg.primary(2).read(lpn_old).is_none());

    // Migrate in bounded batches. Node handles are captured up front:
    // the copy callback runs under the route-table write guard, where
    // calling back into the router would self-deadlock.
    let primaries: Vec<Arc<Node>> = (0..3).map(|s| sg.primary(s)).collect();
    let mut copy = |block: u64, from: u16, to: u16| {
        let lpns: Vec<u64> = (block * bp..(block + 1) * bp).collect();
        let entries = primaries[usize::from(from)].try_export_pages(&lpns)?;
        let n = primaries[usize::from(to)].try_import_pages(&entries)?;
        primaries[usize::from(from)].try_release_pages(&lpns)?;
        Ok(n)
    };
    let mut moved_pages = 0u64;
    for chunk in plan.chunks(4) {
        moved_pages += sg.gateway().migrate_batch(chunk, &mut copy).expect("batch");
    }
    assert!(moved_pages > 0);
    assert_eq!(sg.gateway().rebalance_pending(), Some(0));

    // Cut over and verify: epoch advanced, every acked write readable
    // through the router, moved blocks hosted by pair 2, counters exact.
    assert_eq!(
        sg.gateway().commit_rebalance().expect("commit"),
        new_ring.epoch()
    );
    assert!(!sg.gateway().rebalance_active());
    for (lpn, data) in &oracle {
        assert_eq!(
            client.read(*lpn, 1).expect("read")[0].as_deref(),
            Some(&data[..]),
            "lpn {lpn} lost across the rebalance"
        );
        let owner = new_ring.shard_of_lpn(*lpn);
        assert!(
            sg.primary(owner).read(*lpn).is_some(),
            "lpn {lpn} not hosted by its new-ring owner {owner}"
        );
    }
    for &block in &plan {
        let lpn = block * bp;
        assert!(
            sg.primary(old_ring.shard_of_block(block))
                .read(lpn)
                .is_none(),
            "block {block} still hosted by its old owner after migration"
        );
    }
    let stats = sg.stats();
    assert_eq!(stats.rebalances_started, 1);
    assert_eq!(stats.rebalances_completed, 1);
    assert_eq!(stats.rebalance_moved_blocks, plan.len() as u64);
    assert_eq!(stats.rebalance_moved_pages, moved_pages);
    assert_eq!(stats.rebalance_batches, plan.chunks(4).count() as u64);
    if let Err((name, sum, total)) = ShardStatsSum::of(&sg.shard_stats()).matches(&stats) {
        panic!("Σ shard.{name} = {sum} != gateway.{name} = {total}");
    }
    sg.shutdown();
}

/// Control-surface error paths: stale epochs, double-begin, early commit,
/// migrating with no window, unknown members.
#[test]
fn rebalance_control_surface_rejects_invalid_transitions() {
    let cfg = GatewayConfig::test_profile();
    let sg = ShardedGateway::spawn_mem(cfg, RingConfig::default(), 2);
    let ring = sg.gateway().ring().expect("ring");

    // Same (or older) epoch: refused.
    assert_eq!(
        sg.gateway().begin_rebalance(ring.clone(), []),
        Err(RebalanceError::StaleEpoch {
            current: ring.epoch(),
            offered: ring.epoch()
        })
    );
    // Member without an attached slot: refused.
    let mut unknown = ring.clone();
    unknown.add_pair(9);
    assert_eq!(
        sg.gateway().begin_rebalance(unknown, []),
        Err(RebalanceError::UnknownMember(9))
    );
    // No window: migrate and commit are refused.
    assert!(matches!(
        sg.gateway().migrate_batch(&[0], |_, _, _| Ok(0)),
        Err(fc_gateway::MigrateBatchError::State(
            RebalanceError::NoWindow
        ))
    ));
    assert_eq!(
        sg.gateway().commit_rebalance(),
        Err(RebalanceError::NoWindow)
    );

    // Open a remove-pair window fencing one (synthetic) block set.
    let mut shrunk = ring.clone();
    shrunk.remove_pair(1);
    let moved: Vec<u64> = ring
        .moved_blocks(&shrunk, BLOCKS)
        .iter()
        .map(|&(b, _, _)| b)
        .collect();
    assert!(!moved.is_empty());
    sg.gateway()
        .begin_rebalance(shrunk.clone(), moved.clone())
        .expect("begin");
    // Double begin: refused.
    let mut again = shrunk.clone();
    again.add_pair(1);
    assert_eq!(
        sg.gateway().begin_rebalance(again, []),
        Err(RebalanceError::WindowOpen)
    );
    // Early commit: refused while blocks are fenced.
    assert_eq!(
        sg.gateway().commit_rebalance(),
        Err(RebalanceError::PendingBlocks(moved.len() as u64))
    );
    // A failing copy leaves the rest fenced and the window open.
    let boom = sg
        .gateway()
        .migrate_batch(&moved, |_, _, _| Err(fc_cluster::MigrateError::Down));
    assert!(matches!(
        boom,
        Err(fc_gateway::MigrateBatchError::Copy { .. })
    ));
    assert_eq!(sg.gateway().rebalance_pending(), Some(moved.len() as u64));
    assert!(sg.gateway().rebalance_active());
    sg.shutdown();
}

/// Satellite regression: once a shard's breaker is open and neither
/// replica is alive, a flush answers `Unavailable` immediately (shortest
/// retry hint) instead of walking the dead shard through the full retry
/// deadline — and still flushes the healthy shards first.
#[test]
fn flush_fast_fails_on_a_dead_shard_without_burning_the_deadline() {
    let cfg = GatewayConfig::test_profile();
    let retry_deadline = cfg.retry_deadline;
    let sg = ShardedGateway::spawn_mem(cfg, RingConfig::default(), 2);
    let ring = sg.gateway().ring().expect("ring");
    let mut client = sg.connect_mem_as(3);
    client.hello().expect("hello");

    // One dirty page per shard.
    let lpn_s0 = (0..BLOCKS * 4)
        .find(|&l| ring.shard_of_lpn(l) == 0)
        .unwrap();
    let lpn_s1 = (0..BLOCKS * 4)
        .find(|&l| ring.shard_of_lpn(l) == 1)
        .unwrap();
    client.write(lpn_s0, vec![page(lpn_s0, 1)]).expect("write");
    client.write(lpn_s1, vec![page(lpn_s1, 1)]).expect("write");

    // Kill both replicas of shard 1, then burn one op's deadline to trip
    // the breaker (this first flush is the slow path).
    sg.primary(1).fail();
    sg.secondary(1).fail();
    let before = sg.stats().flushed_pages;
    match client.flush() {
        Err(ClientError::Unavailable { .. }) => {}
        other => panic!("expected Unavailable from the first flush, got {other:?}"),
    }
    assert!(
        sg.stats().flushed_pages > before,
        "healthy shard 0 must still have flushed"
    );

    // Regression: with the breaker open, the next flush fast-fails well
    // inside the retry deadline.
    let unavailable_before = sg.stats().unavailable;
    let started = Instant::now();
    match client.flush() {
        Err(ClientError::Unavailable { retry_after_ms }) => assert!(retry_after_ms > 0),
        other => panic!("expected Unavailable from the fast path, got {other:?}"),
    }
    let elapsed = started.elapsed();
    assert!(
        elapsed < retry_deadline / 2,
        "flush took {elapsed:?}; the dead shard burned the retry deadline"
    );
    assert_eq!(sg.stats().unavailable, unavailable_before + 1);
    if let Err((name, sum, total)) = ShardStatsSum::of(&sg.shard_stats()).matches(&sg.stats()) {
        panic!("Σ shard.{name} = {sum} != gateway.{name} = {total}");
    }

    // Both replicas back: flush serves again (after failback settles).
    sg.primary(1).restart();
    sg.secondary(1).restart();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match client.flush() {
            Ok(_) => break,
            Err(ClientError::Unavailable { .. }) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            other => panic!("flush never recovered: {other:?}"),
        }
    }
    sg.shutdown();
}
