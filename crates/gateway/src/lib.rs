//! # fc-gateway
//!
//! The client-facing front door of a FlashCoop pair. `fc-cluster` gives a
//! node its *peer*-facing protocol (replication, heartbeats, resync); this
//! crate gives it a *client*-facing one — the paper's servers are, after
//! all, storage servers with users.
//!
//! * [`proto`] — versioned request/reply wire protocol (Read / Write /
//!   Trim / Flush plus typed errors), CRC-framed exactly like the peer
//!   protocol.
//! * [`conn`] — session transports: in-memory channel pairs for
//!   deterministic tests, TCP for real deployments.
//! * [`admission`] — per-client token buckets and a global in-flight cap;
//!   overload is shed with explicit `Busy` replies, never unbounded queues.
//! * [`batch`] — per-session write coalescing into block-aligned runs, so
//!   the node's destage policy sees the sequential windows it looks for.
//! * [`gateway`] — the service tying it together, with `gateway.*`
//!   fc-obs metrics and events.
//! * [`shard`] — scale-out: a [`ShardedGateway`] fronts N cooperative
//!   pairs behind one endpoint, routing by an `fc-ring` consistent-hash
//!   ring with per-shard `gateway.shard.*` counters that sum exactly to
//!   the aggregate gateway counters.
//! * front-door failover — each shard tracks its primary's health with a
//!   consecutive-error circuit breaker, fails the route over to the
//!   surviving secondary, retries with deadline-bounded jittered backoff,
//!   fails back once the pair re-forms, and degrades to a typed
//!   `Unavailable { retry_after_ms }` reply (protocol v2) when no replica
//!   is live. Write runs carry client-stamped dedup tags, so retries are
//!   exactly-once end to end.
//! * elastic membership — the control surface an `fc-rebalance`
//!   coordinator drives to add or remove pairs *live*: attach a shard
//!   slot, open an epoch-fenced dual-ring window
//!   ([`Gateway::begin_rebalance`] — fenced blocks keep routing to their
//!   old owner until migrated), stream blocks over in bounded barrier
//!   batches ([`Gateway::migrate_batch`]), and cut over atomically
//!   ([`Gateway::commit_rebalance`]), with `gateway.rebalance.*`
//!   counters and a per-run moved-blocks histogram.
//!
//! ```
//! use fc_cluster::{mem_pair, shared_backend, MemBackend, Node, NodeConfig};
//! use fc_gateway::{Gateway, GatewayConfig};
//! use std::sync::Arc;
//!
//! let (ta, tb) = mem_pair();
//! let backend = shared_backend(MemBackend::default());
//! let a = Arc::new(Node::spawn(NodeConfig::test_profile(0), ta, backend.clone()));
//! let _b = Node::spawn(NodeConfig::test_profile(1), tb, backend);
//!
//! let gw = Gateway::new(GatewayConfig::test_profile(), a);
//! let mut client = gw.connect_mem();
//! client.hello().unwrap();
//! let ack = client.write(0, vec![bytes::Bytes::from_static(b"hello")]).unwrap();
//! assert_eq!(ack.pages, 1);
//! assert_eq!(client.read(0, 1).unwrap()[0].as_deref(), Some(&b"hello"[..]));
//! gw.shutdown();
//! ```

pub mod admission;
pub mod batch;
pub mod client;
pub mod conn;
pub mod gateway;
mod health;
pub mod proto;
pub mod shard;

pub use admission::{Admission, AdmissionConfig, Permit, ShedReason, TokenBucket};
pub use batch::{coalesce, coalesce_sharded, WriteRun};
pub use client::{ClientError, GatewayClient, WriteAck};
pub use conn::{
    mem_session, LinkClosed, MemClientConn, MemSessionLink, SessionLink, TcpSessionLink,
};
pub use gateway::{Gateway, GatewayConfig, GatewayStats, MigrateBatchError, RebalanceError};
pub use proto::{
    ErrorCode, ProtoError, Reply, Request, MAX_FRAME, MIN_PROTO_VERSION, PROTO_VERSION,
};
pub use shard::{ShardStats, ShardStatsSum, ShardedGateway};
