//! Admission control: per-client token buckets plus a global in-flight cap.
//!
//! The gateway sheds load *explicitly* — a refused request gets an
//! [`ErrorCode::Busy`](crate::proto::ErrorCode::Busy) reply immediately
//! instead of queueing without bound. Two independent gates:
//!
//! * **Per-client rate** — a token bucket per client id smooths each
//!   client's offered rate to `per_client_rate` with bursts up to
//!   `per_client_burst`. One client hammering the gateway cannot starve
//!   the others.
//! * **Global queue depth** — at most `max_inflight` admitted requests may
//!   be in service at once, across all sessions. This bounds the work
//!   queued on the node (and therefore tail latency) no matter how many
//!   clients connect.
//!
//! Time is passed *into* the bucket (`now_nanos`) rather than read from a
//! clock inside it, so unit tests drive it deterministically.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Admission knobs. [`AdmissionConfig::unlimited`] disables both gates —
/// used by tests that need deterministic no-shed behaviour.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Steady-state tokens (requests) per second granted to each client.
    /// `f64::INFINITY` disables rate limiting.
    pub per_client_rate: f64,
    /// Bucket capacity: how large a burst a client may send after idling.
    pub per_client_burst: f64,
    /// Global cap on concurrently admitted requests. `u32::MAX` disables
    /// the gate.
    pub max_inflight: u32,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            per_client_rate: 10_000.0,
            per_client_burst: 256.0,
            max_inflight: 64,
        }
    }
}

impl AdmissionConfig {
    /// No rate limit, no queue-depth cap — every request admitted.
    pub fn unlimited() -> Self {
        AdmissionConfig {
            per_client_rate: f64::INFINITY,
            per_client_burst: f64::INFINITY,
            max_inflight: u32::MAX,
        }
    }
}

/// Which gate refused the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The client's token bucket was empty.
    RateLimited,
    /// The global in-flight cap was reached.
    QueueFull,
}

impl ShedReason {
    /// Static label used in obs events.
    pub fn name(self) -> &'static str {
        match self {
            ShedReason::RateLimited => "rate_limited",
            ShedReason::QueueFull => "queue_full",
        }
    }
}

/// Deterministic token bucket: refill is computed from the caller-supplied
/// monotonic timestamp, never from a wall clock.
#[derive(Debug)]
pub struct TokenBucket {
    capacity: f64,
    rate_per_sec: f64,
    tokens: f64,
    last_nanos: u64,
}

impl TokenBucket {
    /// A bucket that starts full.
    pub fn new(capacity: f64, rate_per_sec: f64) -> Self {
        TokenBucket {
            capacity,
            rate_per_sec,
            tokens: capacity,
            last_nanos: 0,
        }
    }

    /// Take one token at time `now_nanos`; false when the bucket is empty.
    /// Timestamps may repeat but must not go backwards (a regression is
    /// treated as zero elapsed time).
    pub fn try_take(&mut self, now_nanos: u64) -> bool {
        if self.rate_per_sec.is_infinite() {
            return true;
        }
        let elapsed = now_nanos.saturating_sub(self.last_nanos);
        self.last_nanos = self.last_nanos.max(now_nanos);
        self.tokens = (self.tokens + elapsed as f64 * self.rate_per_sec / 1e9).min(self.capacity);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Return one token (admission succeeded at this gate but a later gate
    /// refused the request — the client should not be double-charged).
    pub fn refund(&mut self) {
        self.tokens = (self.tokens + 1.0).min(self.capacity);
    }

    /// Tokens currently available (for tests and introspection).
    pub fn available(&self) -> f64 {
        self.tokens
    }
}

/// RAII lease on one slot of the global in-flight budget; dropping it
/// releases the slot.
#[derive(Debug)]
pub struct Permit {
    inflight: Arc<AtomicU32>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Shared admission state for one gateway.
pub struct Admission {
    cfg: AdmissionConfig,
    buckets: Mutex<HashMap<u64, TokenBucket>>,
    inflight: Arc<AtomicU32>,
    max_seen: AtomicU32,
}

impl Admission {
    pub fn new(cfg: AdmissionConfig) -> Self {
        Admission {
            cfg,
            buckets: Mutex::new(HashMap::new()),
            inflight: Arc::new(AtomicU32::new(0)),
            max_seen: AtomicU32::new(0),
        }
    }

    /// Try to admit one request from `client` at time `now_nanos`. On
    /// success the returned [`Permit`] must be held for the duration of
    /// service; on failure the caller replies `Busy`.
    pub fn try_admit(&self, client: u64, now_nanos: u64) -> Result<Permit, ShedReason> {
        {
            let mut buckets = self.buckets.lock();
            let bucket = buckets.entry(client).or_insert_with(|| {
                TokenBucket::new(self.cfg.per_client_burst, self.cfg.per_client_rate)
            });
            if !bucket.try_take(now_nanos) {
                return Err(ShedReason::RateLimited);
            }
        }
        loop {
            let cur = self.inflight.load(Ordering::Acquire);
            if cur >= self.cfg.max_inflight {
                // Refund the rate token: this request was within its
                // client's budget — the *global* gate refused it.
                if !self.cfg.per_client_rate.is_infinite() {
                    if let Some(b) = self.buckets.lock().get_mut(&client) {
                        b.refund();
                    }
                }
                return Err(ShedReason::QueueFull);
            }
            if self
                .inflight
                .compare_exchange_weak(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.max_seen.fetch_max(cur + 1, Ordering::AcqRel);
                return Ok(Permit {
                    inflight: self.inflight.clone(),
                });
            }
        }
    }

    /// Requests currently admitted and in service.
    pub fn inflight(&self) -> u32 {
        self.inflight.load(Ordering::Acquire)
    }

    /// High-water mark of concurrent admitted requests since start — the
    /// saturation test asserts this never exceeds `max_inflight`.
    pub fn max_inflight_seen(&self) -> u32 {
        self.max_seen.load(Ordering::Acquire)
    }

    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn bucket_starts_full_and_empties() {
        let mut b = TokenBucket::new(3.0, 1.0);
        assert!(b.try_take(0));
        assert!(b.try_take(0));
        assert!(b.try_take(0));
        assert!(!b.try_take(0), "burst exhausted");
    }

    #[test]
    fn bucket_refills_at_rate() {
        let mut b = TokenBucket::new(2.0, 2.0); // 2 tokens/s
        assert!(b.try_take(0));
        assert!(b.try_take(0));
        assert!(!b.try_take(0));
        // 0.5 s later: one token back.
        assert!(b.try_take(SEC / 2));
        assert!(!b.try_take(SEC / 2));
        // A long idle caps at capacity, not beyond.
        assert!(b.try_take(100 * SEC));
        assert!(b.try_take(100 * SEC));
        assert!(!b.try_take(100 * SEC));
    }

    #[test]
    fn bucket_tolerates_time_regression() {
        let mut b = TokenBucket::new(1.0, 1.0);
        assert!(b.try_take(5 * SEC));
        // Clock goes backwards: no refill, and no panic.
        assert!(!b.try_take(4 * SEC));
        // Forward again from the high-water mark.
        assert!(b.try_take(6 * SEC));
    }

    #[test]
    fn infinite_rate_never_sheds() {
        let mut b = TokenBucket::new(f64::INFINITY, f64::INFINITY);
        for _ in 0..10_000 {
            assert!(b.try_take(0));
        }
    }

    #[test]
    fn per_client_buckets_are_independent() {
        let adm = Admission::new(AdmissionConfig {
            per_client_rate: 1.0,
            per_client_burst: 1.0,
            max_inflight: u32::MAX,
        });
        let p1 = adm.try_admit(1, 0);
        assert!(p1.is_ok(), "client 1's burst token");
        assert_eq!(adm.try_admit(1, 0).unwrap_err(), ShedReason::RateLimited);
        // Client 2 still has its own token.
        assert!(adm.try_admit(2, 0).is_ok());
    }

    #[test]
    fn global_cap_sheds_queue_full_and_permits_release() {
        let adm = Admission::new(AdmissionConfig {
            per_client_rate: f64::INFINITY,
            per_client_burst: f64::INFINITY,
            max_inflight: 2,
        });
        let a = adm.try_admit(1, 0).unwrap();
        let b = adm.try_admit(2, 0).unwrap();
        assert_eq!(adm.inflight(), 2);
        assert_eq!(adm.try_admit(3, 0).unwrap_err(), ShedReason::QueueFull);
        drop(a);
        assert_eq!(adm.inflight(), 1);
        let c = adm.try_admit(3, 0).unwrap();
        drop(b);
        drop(c);
        assert_eq!(adm.inflight(), 0);
        assert_eq!(adm.max_inflight_seen(), 2, "cap was never exceeded");
    }

    #[test]
    fn queue_full_refunds_the_rate_token() {
        let adm = Admission::new(AdmissionConfig {
            per_client_rate: 0.0, // no refill: the burst is all there is
            per_client_burst: 1.0,
            max_inflight: 1,
        });
        let hold = adm.try_admit(1, 0).unwrap();
        // Client 2 passes its rate gate but hits the global cap; its one
        // burst token must come back.
        assert_eq!(adm.try_admit(2, 0).unwrap_err(), ShedReason::QueueFull);
        drop(hold);
        assert!(
            adm.try_admit(2, 0).is_ok(),
            "refunded token admits the retry"
        );
    }
}
