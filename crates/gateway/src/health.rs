//! Per-shard backend health: a consecutive-error circuit breaker and the
//! active-replica route.
//!
//! Each sharded-gateway shard owns one [`ShardHealth`]: which replica of
//! the pair currently serves client traffic ([`Replica`]), and a
//! [`CircuitBreaker`] tracking the *primary's* health. The breaker walks
//! the classic three states:
//!
//! ```text
//!            threshold consecutive errors
//!   Closed ───────────────────────────────▶ Open
//!      ▲                                      │ cooldown elapses
//!      │ probe succeeds                       ▼
//!      └─────────────────────────────────  HalfOpen
//!                    probe fails ──▶ Open (new cooldown)
//! ```
//!
//! While the breaker is Open the shard routes to the secondary (which the
//! pair lifecycle has walked to Solo/takeover). The cooldown timer doubles
//! as the failback probe cadence: each time it elapses the gateway moves
//! the breaker to HalfOpen and attempts one failback (recover the primary
//! from its peer, flush the secondary as a read barrier, flip the route).
//! A failed probe re-opens the breaker and re-arms the timer.

use std::time::{Duration, Instant};

/// Which node of the pair serves a shard's client traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Replica {
    Primary,
    Secondary,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

/// Consecutive-error circuit breaker over a shard's primary node.
#[derive(Debug)]
pub(crate) struct CircuitBreaker {
    state: BreakerState,
    consecutive_errors: u32,
    threshold: u32,
    cooldown: Duration,
    /// When Open: earliest instant a HalfOpen probe may run.
    probe_at: Option<Instant>,
}

impl CircuitBreaker {
    pub(crate) fn new(threshold: u32, cooldown: Duration) -> CircuitBreaker {
        CircuitBreaker {
            state: BreakerState::Closed,
            consecutive_errors: 0,
            threshold: threshold.max(1),
            cooldown,
            probe_at: None,
        }
    }

    pub(crate) fn state(&self) -> BreakerState {
        self.state
    }

    /// The primary proved healthy (op served, or failback completed):
    /// close the breaker and forget the error streak.
    pub(crate) fn on_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_errors = 0;
        self.probe_at = None;
    }

    /// True when [`CircuitBreaker::on_success`] would change anything —
    /// lets the hot path skip the write lock on healthy shards.
    pub(crate) fn needs_success(&self) -> bool {
        self.state != BreakerState::Closed || self.consecutive_errors != 0
    }

    /// Record one failed op (or failed probe) against the primary at
    /// `now`. Returns true when this error *trips* the breaker
    /// Closed→Open — the moment the caller should fail the route over.
    pub(crate) fn on_error(&mut self, now: Instant) -> bool {
        self.consecutive_errors += 1;
        match self.state {
            BreakerState::Closed if self.consecutive_errors >= self.threshold => {
                self.state = BreakerState::Open;
                self.probe_at = Some(now + self.cooldown);
                true
            }
            BreakerState::Closed => false,
            // A failed probe re-opens with a fresh cooldown; errors while
            // already Open just push the next probe out.
            BreakerState::HalfOpen | BreakerState::Open => {
                self.state = BreakerState::Open;
                self.probe_at = Some(now + self.cooldown);
                false
            }
        }
    }

    /// True when the breaker is Open and the cooldown has elapsed.
    pub(crate) fn probe_due(&self, now: Instant) -> bool {
        self.state == BreakerState::Open && self.probe_at.is_some_and(|at| now >= at)
    }

    /// Move Open→HalfOpen if a probe is due. Returns true when the caller
    /// now owns the (single) probe attempt.
    pub(crate) fn try_probe(&mut self, now: Instant) -> bool {
        if self.probe_due(now) {
            self.state = BreakerState::HalfOpen;
            true
        } else {
            false
        }
    }

    /// The cooldown, as the `retry_after_ms` hint for `Unavailable`.
    pub(crate) fn retry_after_ms(&self) -> u32 {
        (self.cooldown.as_millis() as u32).max(1)
    }
}

/// One shard's routing + health state, guarded by an `RwLock` in the
/// gateway: ops hold the read half across the node call; failover and
/// failback take the write half, so a route flip (and its flush barrier)
/// never interleaves with an in-flight op on the old route.
#[derive(Debug)]
pub(crate) struct ShardHealth {
    pub(crate) breaker: CircuitBreaker,
    pub(crate) active: Replica,
}

impl ShardHealth {
    pub(crate) fn new(threshold: u32, cooldown: Duration) -> ShardHealth {
        ShardHealth {
            breaker: CircuitBreaker::new(threshold, cooldown),
            active: Replica::Primary,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(3, Duration::from_millis(50))
    }

    #[test]
    fn trips_only_on_threshold() {
        let mut b = breaker();
        let now = Instant::now();
        assert!(!b.on_error(now));
        assert!(!b.on_error(now));
        assert!(b.on_error(now), "third consecutive error trips");
        assert_eq!(b.state(), BreakerState::Open);
        // Further errors while Open never re-report a trip.
        assert!(!b.on_error(now));
    }

    #[test]
    fn success_resets_the_streak() {
        let mut b = breaker();
        let now = Instant::now();
        b.on_error(now);
        b.on_error(now);
        b.on_success();
        assert!(!b.on_error(now));
        assert!(!b.on_error(now));
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn probe_cycle_half_open_then_reopen_or_close() {
        let mut b = breaker();
        let t0 = Instant::now();
        for _ in 0..3 {
            b.on_error(t0);
        }
        assert!(!b.probe_due(t0), "cooldown not elapsed yet");
        assert!(!b.try_probe(t0));
        let later = t0 + Duration::from_millis(60);
        assert!(b.probe_due(later));
        assert!(b.try_probe(later), "first caller wins the probe");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.try_probe(later), "probe is single-owner");
        // Failed probe: re-open with a fresh cooldown.
        assert!(!b.on_error(later));
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.probe_due(later + Duration::from_millis(10)));
        assert!(b.probe_due(later + Duration::from_millis(60)));
        // Successful probe closes.
        assert!(b.try_probe(later + Duration::from_millis(60)));
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(!b.needs_success());
    }
}
